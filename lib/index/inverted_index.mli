(** Inverted index over the dictionary (Section 3.1): token id → ascending
    list of ids of entities containing that token. An entity appears once
    per *distinct* token it contains; document-side multiplicity is carried
    by token positions, so heap occurrence counts upper-bound the multiset
    overlap (safe for filtering).

    Posting lists are stored delta+varint-compressed in one shared byte
    blob and decoded on demand — either through the {!Postings} cursor or,
    on the hot path, into a reusable flat buffer via {!decode_document}. *)

type t

(** A read-only cursor over one compressed posting block. Entity ids come
    out in ascending order; no intermediate list is materialized. *)
module Postings : sig
  type t

  val length : t -> int
  (** Posting count, O(1). *)

  val is_empty : t -> bool

  val iter : (int -> unit) -> t -> unit
  (** Apply to each entity id in ascending order, decoding in place. *)

  val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

  val to_array : t -> int array
  (** Fresh decoded array — for tests and cold paths only. *)
end

val build : Dictionary.t -> t
(** Lists come out sorted for free because entities are scanned in id
    order, then each list is delta+varint encoded. *)

val of_stored : Dictionary.t -> int array array -> t
(** Reassemble from plain postings (one ascending entity-id array per token
    id) — the v1 codec path; re-encodes into compressed blocks. *)

val of_blocks :
  Dictionary.t -> blob:string -> offs:int array -> counts:int array -> t
(** Adopt already-encoded blocks (the v2 codec path): token [i]'s block is
    [blob[offs.(i) .. offs.(i+1))] holding [counts.(i)] ids. The blocks must
    have been validated — decoding trusts them. *)

val of_overlay :
  t ->
  dictionary:Dictionary.t ->
  adds:int array array ->
  dead:Bytes.t ->
  dead_counts:int array ->
  t
(** [of_overlay base ~dictionary ~adds ~dead ~dead_counts] is a merged
    read-only view of [base] plus a mutation overlay (built by
    {!Delta}): per-token ascending arrays of added entity ids (all
    numbered past the base id space, so merged lists stay ascending by
    construction), a tombstone bitset over entity ids, and the per-block
    tombstone tally. [dictionary] must cover both base and added
    entities; [adds] must span at least the base token space (it may be
    wider when added entities introduced new tokens). {!Extractor.run}
    and every cursor work on the view unchanged.

    @raise Invalid_argument if [base] is itself an overlay view or the
    overlay shapes disagree with [base]. *)

val is_overlay : t -> bool

val entity_live : t -> int -> bool
(** False exactly for tombstoned ids of an overlay view (always true on
    a frozen index). {!Faerie_core.Problem} consults this so removed
    entities vanish from the heap {e and} fallback paths. *)

val raw_blocks : t -> string * int array * int array
(** [(blob, offs, counts)] — the stored representation, for {!Codec}.

    @raise Invalid_argument on an overlay view: the merged form has no
    stored representation until the delta is compacted into a fresh
    snapshot. *)

val dictionary : t -> Dictionary.t

val n_tokens : t -> int
(** Number of token slots (interner size at build). *)

val postings : t -> int -> Postings.t
(** [postings t token] is a cursor over the inverted list of a token id;
    the empty cursor for {!Faerie_tokenize.Span.missing} or any token
    without postings. *)

val n_postings : t -> int
(** Total posting count over all lists. *)

val n_lists : t -> int
(** Number of non-empty lists. *)

val heap_bytes : t -> int
(** Estimated resident size: compressed blob + block directory + the share
    of the interner holding the token strings (what Table 5 reports as
    "Inverted Index"). *)

(** Reusable scratch for {!decode_document}: a flat entity-id buffer plus
    per-token memo tables, grown on demand and reused across documents so
    the steady-state hot path allocates nothing. *)
module Workspace : sig
  type t

  val create : unit -> t
end

val decode_document :
  t -> Workspace.t -> Faerie_tokenize.Document.t -> int array * int array * int array
(** [decode_document t ws doc] decodes the posting block of every token in
    [doc] into [ws]'s flat buffer, memoizing per distinct token (each block
    is decoded once per call even if the token repeats). Returns
    [(buf, offs, lens)]: document position [i]'s postings are
    [buf[offs.(i) .. offs.(i) + lens.(i))], ascending. The arrays are owned
    by [ws] and invalidated by the next call. *)
