module Tk = Faerie_tokenize
module Dynarray = Faerie_util.Dynarray
module Bytesize = Faerie_util.Bytesize
module Varint = Faerie_util.Varint

(* Posting lists live delta+varint-compressed in one shared [blob];
   token [i]'s block is [blob[offs.(i) .. offs.(i+1))] holding
   [counts.(i)] ascending entity ids (first varint is the first id,
   subsequent varints are strictly positive deltas). *)
(* A mutated dictionary is served as the frozen compressed base plus a
   small uncompressed overlay: per-token arrays of {e added} entity ids
   (always numbered past the base id space, so they sort after every base
   posting and merged lists stay ascending for free) and a tombstone
   bitset over base ids with a per-block tombstone tally (maintainable
   without decoding a block, since an entity appears once per distinct
   token). [overlay = None] is the frozen fast path — bit-identical to
   the pre-overlay code. *)
type overlay = {
  adds : int array array;
      (* per token id (length = interner size at view build): ascending
         ids of live added entities *)
  dead : Bytes.t;  (* bitset over entity ids: tombstoned *)
  dead_counts : int array;  (* per base token: tombstones in its block *)
}

type t = {
  dictionary : Dictionary.t;
  blob : string;
  offs : int array;  (* n_tokens + 1 byte offsets into [blob] *)
  counts : int array;  (* postings per token *)
  n_postings : int;
  overlay : overlay option;
}

let no_dead = Bytes.create 0

let no_adds : int array = [||]

let dead_bit dead id =
  let i = id lsr 3 in
  i < Bytes.length dead
  && Char.code (Bytes.unsafe_get dead i) land (1 lsl (id land 7)) <> 0

module Postings = struct
  type t = {
    blob : string;
    off : int;
    stop : int;
    count : int;  (* merged: live base postings + adds *)
    dead : Bytes.t;  (* tombstone filter for the base block *)
    adds : int array;  (* appended after the base block *)
  }

  let empty =
    { blob = ""; off = 0; stop = 0; count = 0; dead = no_dead; adds = no_adds }

  let length p = p.count

  let is_empty p = p.count = 0

  let iter f p =
    (if Bytes.length p.dead = 0 then begin
       let pos = ref p.off and prev = ref 0 in
       while !pos < p.stop do
         let acc = ref 0 and shift = ref 0 and cont = ref true in
         while !cont do
           let b = Char.code (String.unsafe_get p.blob !pos) in
           incr pos;
           acc := !acc lor ((b land 0x7f) lsl !shift);
           shift := !shift + 7;
           cont := b land 0x80 <> 0
         done;
         prev := !prev + !acc;
         f !prev
       done
     end
     else begin
       let pos = ref p.off and prev = ref 0 in
       while !pos < p.stop do
         let acc = ref 0 and shift = ref 0 and cont = ref true in
         while !cont do
           let b = Char.code (String.unsafe_get p.blob !pos) in
           incr pos;
           acc := !acc lor ((b land 0x7f) lsl !shift);
           shift := !shift + 7;
           cont := b land 0x80 <> 0
         done;
         prev := !prev + !acc;
         if not (dead_bit p.dead !prev) then f !prev
       done
     end);
    Array.iter f p.adds

  let fold f init p =
    let acc = ref init in
    iter (fun id -> acc := f !acc id) p;
    !acc

  let to_array p =
    let out = Array.make p.count 0 in
    let i = ref 0 in
    iter
      (fun id ->
        out.(!i) <- id;
        incr i)
      p;
    out
end

(* Decode one block into [dst] starting at [dst_off]; the blob is validated
   at build/load time, so this inner loop runs unchecked. *)
let decode_into blob ~off ~stop ~dst ~dst_off =
  let pos = ref off and prev = ref 0 and i = ref dst_off in
  while !pos < stop do
    let acc = ref 0 and shift = ref 0 and cont = ref true in
    while !cont do
      let b = Char.code (String.unsafe_get blob !pos) in
      incr pos;
      acc := !acc lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      cont := b land 0x80 <> 0
    done;
    prev := !prev + !acc;
    Array.unsafe_set dst !i !prev;
    incr i
  done;
  !i - dst_off

let encode_lists dictionary lists =
  let n_tokens = Array.length lists in
  let buf = Buffer.create 4096 in
  let offs = Array.make (n_tokens + 1) 0 in
  let counts = Array.make n_tokens 0 in
  let n_postings = ref 0 in
  for tok = 0 to n_tokens - 1 do
    offs.(tok) <- Buffer.length buf;
    let ids = lists.(tok) in
    let prev = ref 0 in
    Array.iter
      (fun id ->
        Varint.write buf (id - !prev);
        prev := id)
      ids;
    counts.(tok) <- Array.length ids;
    n_postings := !n_postings + Array.length ids
  done;
  offs.(n_tokens) <- Buffer.length buf;
  {
    dictionary;
    blob = Buffer.contents buf;
    offs;
    counts;
    n_postings = !n_postings;
    overlay = None;
  }

let build dictionary =
  let n_tokens = Tk.Interner.size (Dictionary.interner dictionary) in
  let acc = Array.init n_tokens (fun _ -> Dynarray.create ()) in
  Array.iter
    (fun e ->
      Array.iter
        (fun token -> Dynarray.push acc.(token) e.Entity.id)
        e.Entity.distinct_tokens)
    (Dictionary.entities dictionary);
  encode_lists dictionary (Array.map Dynarray.to_array acc)

let of_stored dictionary lists = encode_lists dictionary lists

let of_blocks dictionary ~blob ~offs ~counts =
  {
    dictionary;
    blob;
    offs;
    counts;
    n_postings = Array.fold_left ( + ) 0 counts;
    overlay = None;
  }

let of_overlay base ~dictionary ~adds ~dead ~dead_counts =
  if base.overlay <> None then
    invalid_arg "Inverted_index.of_overlay: base is itself an overlay view";
  if Array.length dead_counts <> Array.length base.counts then
    invalid_arg "Inverted_index.of_overlay: dead_counts/base shape mismatch";
  if Array.length adds < Array.length base.counts then
    invalid_arg "Inverted_index.of_overlay: adds narrower than base";
  let n_dead = Array.fold_left ( + ) 0 dead_counts in
  let n_added =
    Array.fold_left (fun acc a -> acc + Array.length a) 0 adds
  in
  {
    dictionary;
    blob = base.blob;
    offs = base.offs;
    counts = base.counts;
    n_postings = base.n_postings - n_dead + n_added;
    overlay = Some { adds; dead; dead_counts };
  }

let is_overlay t = t.overlay <> None

let entity_live t id =
  match t.overlay with None -> true | Some ov -> not (dead_bit ov.dead id)

let raw_blocks t =
  if t.overlay <> None then
    invalid_arg
      "Inverted_index.raw_blocks: overlay view has no stored form (compact \
       first)";
  (t.blob, t.offs, t.counts)

let dictionary t = t.dictionary

let n_tokens t =
  match t.overlay with
  | None -> Array.length t.counts
  | Some ov -> Array.length ov.adds

let postings t token =
  match t.overlay with
  | None ->
      if token < 0 || token >= Array.length t.counts || t.counts.(token) = 0
      then Postings.empty
      else
        {
          Postings.blob = t.blob;
          off = t.offs.(token);
          stop = t.offs.(token + 1);
          count = t.counts.(token);
          dead = no_dead;
          adds = no_adds;
        }
  | Some ov ->
      if token < 0 || token >= Array.length ov.adds then Postings.empty
      else begin
        let n_base = Array.length t.counts in
        let base_raw = if token < n_base then t.counts.(token) else 0 in
        let base_live =
          if token < n_base then base_raw - ov.dead_counts.(token) else 0
        in
        let adds = ov.adds.(token) in
        let count = base_live + Array.length adds in
        if count = 0 then Postings.empty
        else if base_raw = 0 then
          { Postings.empty with count; adds }
        else
          {
            Postings.blob = t.blob;
            off = t.offs.(token);
            stop = t.offs.(token + 1);
            count;
            dead = (if base_live < base_raw then ov.dead else no_dead);
            adds;
          }
      end

let n_postings t = t.n_postings

let n_lists t =
  match t.overlay with
  | None -> Array.fold_left (fun acc c -> acc + if c > 0 then 1 else 0) 0 t.counts
  | Some ov ->
      let n = ref 0 in
      let n_base = Array.length t.counts in
      Array.iteri
        (fun tok adds ->
          let base_live =
            if tok < n_base then t.counts.(tok) - ov.dead_counts.(tok) else 0
          in
          if base_live + Array.length adds > 0 then incr n)
        ov.adds;
      !n

let heap_bytes t =
  let directory_words =
    Bytesize.words_per_int_array (Array.length t.offs)
    + Bytesize.words_per_int_array (Array.length t.counts)
  in
  let overlay_bytes =
    match t.overlay with
    | None -> 0
    | Some ov ->
        let add_words =
          Array.fold_left
            (fun acc a -> acc + Bytesize.words_per_int_array (Array.length a))
            (Array.length ov.adds)
            ov.adds
        in
        Bytesize.bytes_of_words
          (add_words + Bytesize.words_per_int_array (Array.length ov.dead_counts))
        + Bytes.length ov.dead
  in
  Bytesize.string_bytes t.blob
  + Bytesize.bytes_of_words directory_words
  + overlay_bytes
  + Tk.Interner.heap_bytes (Dictionary.interner t.dictionary)

(* ---- per-document decode workspace ---- *)

module Workspace = struct
  type t = {
    mutable epoch : int;
    mutable tok_epoch : int array;  (* per token id: epoch of last decode *)
    mutable tok_off : int array;  (* per token id: offset of decode in buf *)
    mutable tok_len : int array;
        (* per token id: merged posting count (overlay path only; the base
           path reads lengths straight from [counts]) *)
    mutable buf : int array;  (* decoded entity ids, flat *)
    mutable buf_len : int;
    mutable offs : int array;  (* per document position: offset into buf *)
    mutable lens : int array;  (* per document position: posting count *)
  }

  let create () =
    {
      epoch = 0;
      tok_epoch = [||];
      tok_off = [||];
      tok_len = [||];
      buf = Array.make 1024 0;
      buf_len = 0;
      offs = [||];
      lens = [||];
    }
end

let ensure_len a n = if Array.length a >= n then a else Array.make n 0

let grow_buf ws need =
  let open Workspace in
  if Array.length ws.buf < need then begin
    let cap = ref (2 * Array.length ws.buf) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let buf = Array.make !cap 0 in
    Array.blit ws.buf 0 buf 0 ws.buf_len;
    ws.buf <- buf
  end

let decode_document_base t ws doc =
  let open Workspace in
  let ntok = Array.length t.counts in
  if Array.length ws.tok_epoch < ntok then begin
    ws.tok_epoch <- Array.make ntok 0;
    ws.tok_off <- Array.make ntok 0;
    ws.epoch <- 0
  end;
  ws.epoch <- ws.epoch + 1;
  ws.buf_len <- 0;
  let n = Tk.Document.n_tokens doc in
  let tokens = Tk.Document.tokens doc in
  ws.offs <- ensure_len ws.offs n;
  ws.lens <- ensure_len ws.lens n;
  for pos = 0 to n - 1 do
    let tok = Array.unsafe_get tokens pos in
    if tok < 0 || tok >= ntok || t.counts.(tok) = 0 then begin
      ws.offs.(pos) <- 0;
      ws.lens.(pos) <- 0
    end
    else begin
      (* Each distinct token is decoded once per document. *)
      if ws.tok_epoch.(tok) <> ws.epoch then begin
        let count = t.counts.(tok) in
        grow_buf ws (ws.buf_len + count);
        let k =
          decode_into t.blob ~off:t.offs.(tok) ~stop:t.offs.(tok + 1)
            ~dst:ws.buf ~dst_off:ws.buf_len
        in
        assert (k = count);
        ws.tok_epoch.(tok) <- ws.epoch;
        ws.tok_off.(tok) <- ws.buf_len;
        ws.buf_len <- ws.buf_len + count
      end;
      ws.offs.(pos) <- ws.tok_off.(tok);
      ws.lens.(pos) <- t.counts.(tok)
    end
  done;
  (ws.buf, ws.offs, ws.lens)

(* Overlay slow path: per distinct token, decode the base block, compact
   tombstoned ids out in place, then append the (already ascending,
   always larger) added ids. [tok_len] memoizes the merged length per
   token, since it is no longer derivable from [t.counts]. *)
let decode_document_overlay t ov ws doc =
  let open Workspace in
  let ntok = Array.length ov.adds in
  let n_base = Array.length t.counts in
  if Array.length ws.tok_epoch < ntok then begin
    ws.tok_epoch <- Array.make ntok 0;
    ws.tok_off <- Array.make ntok 0;
    ws.epoch <- 0
  end;
  if Array.length ws.tok_len < ntok then ws.tok_len <- Array.make ntok 0;
  ws.epoch <- ws.epoch + 1;
  ws.buf_len <- 0;
  let n = Tk.Document.n_tokens doc in
  let tokens = Tk.Document.tokens doc in
  ws.offs <- ensure_len ws.offs n;
  ws.lens <- ensure_len ws.lens n;
  for pos = 0 to n - 1 do
    let tok = Array.unsafe_get tokens pos in
    if tok < 0 || tok >= ntok then begin
      ws.offs.(pos) <- 0;
      ws.lens.(pos) <- 0
    end
    else begin
      if ws.tok_epoch.(tok) <> ws.epoch then begin
        let base_raw = if tok < n_base then t.counts.(tok) else 0 in
        let adds = ov.adds.(tok) in
        grow_buf ws (ws.buf_len + base_raw + Array.length adds);
        let w = ref ws.buf_len in
        if base_raw > 0 then
          if ov.dead_counts.(tok) = 0 then
            w :=
              ws.buf_len
              + decode_into t.blob ~off:t.offs.(tok) ~stop:t.offs.(tok + 1)
                  ~dst:ws.buf ~dst_off:ws.buf_len
          else begin
            let k =
              decode_into t.blob ~off:t.offs.(tok) ~stop:t.offs.(tok + 1)
                ~dst:ws.buf ~dst_off:ws.buf_len
            in
            for i = ws.buf_len to ws.buf_len + k - 1 do
              let id = ws.buf.(i) in
              if not (dead_bit ov.dead id) then begin
                ws.buf.(!w) <- id;
                incr w
              end
            done
          end;
        Array.blit adds 0 ws.buf !w (Array.length adds);
        w := !w + Array.length adds;
        ws.tok_epoch.(tok) <- ws.epoch;
        ws.tok_off.(tok) <- ws.buf_len;
        ws.tok_len.(tok) <- !w - ws.buf_len;
        ws.buf_len <- !w
      end;
      ws.offs.(pos) <- ws.tok_off.(tok);
      ws.lens.(pos) <- ws.tok_len.(tok)
    end
  done;
  (ws.buf, ws.offs, ws.lens)

let decode_document t ws doc =
  match t.overlay with
  | None -> decode_document_base t ws doc
  | Some ov -> decode_document_overlay t ov ws doc
