module Tk = Faerie_tokenize
module Dynarray = Faerie_util.Dynarray
module Bytesize = Faerie_util.Bytesize
module Varint = Faerie_util.Varint

(* Posting lists live delta+varint-compressed in one shared [blob];
   token [i]'s block is [blob[offs.(i) .. offs.(i+1))] holding
   [counts.(i)] ascending entity ids (first varint is the first id,
   subsequent varints are strictly positive deltas). *)
type t = {
  dictionary : Dictionary.t;
  blob : string;
  offs : int array;  (* n_tokens + 1 byte offsets into [blob] *)
  counts : int array;  (* postings per token *)
  n_postings : int;
}

module Postings = struct
  type t = { blob : string; off : int; stop : int; count : int }

  let empty = { blob = ""; off = 0; stop = 0; count = 0 }

  let length p = p.count

  let is_empty p = p.count = 0

  let iter f p =
    let pos = ref p.off and prev = ref 0 in
    while !pos < p.stop do
      let acc = ref 0 and shift = ref 0 and cont = ref true in
      while !cont do
        let b = Char.code (String.unsafe_get p.blob !pos) in
        incr pos;
        acc := !acc lor ((b land 0x7f) lsl !shift);
        shift := !shift + 7;
        cont := b land 0x80 <> 0
      done;
      prev := !prev + !acc;
      f !prev
    done

  let fold f init p =
    let acc = ref init in
    iter (fun id -> acc := f !acc id) p;
    !acc

  let to_array p =
    let out = Array.make p.count 0 in
    let i = ref 0 in
    iter
      (fun id ->
        out.(!i) <- id;
        incr i)
      p;
    out
end

(* Decode one block into [dst] starting at [dst_off]; the blob is validated
   at build/load time, so this inner loop runs unchecked. *)
let decode_into blob ~off ~stop ~dst ~dst_off =
  let pos = ref off and prev = ref 0 and i = ref dst_off in
  while !pos < stop do
    let acc = ref 0 and shift = ref 0 and cont = ref true in
    while !cont do
      let b = Char.code (String.unsafe_get blob !pos) in
      incr pos;
      acc := !acc lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      cont := b land 0x80 <> 0
    done;
    prev := !prev + !acc;
    Array.unsafe_set dst !i !prev;
    incr i
  done;
  !i - dst_off

let encode_lists dictionary lists =
  let n_tokens = Array.length lists in
  let buf = Buffer.create 4096 in
  let offs = Array.make (n_tokens + 1) 0 in
  let counts = Array.make n_tokens 0 in
  let n_postings = ref 0 in
  for tok = 0 to n_tokens - 1 do
    offs.(tok) <- Buffer.length buf;
    let ids = lists.(tok) in
    let prev = ref 0 in
    Array.iter
      (fun id ->
        Varint.write buf (id - !prev);
        prev := id)
      ids;
    counts.(tok) <- Array.length ids;
    n_postings := !n_postings + Array.length ids
  done;
  offs.(n_tokens) <- Buffer.length buf;
  {
    dictionary;
    blob = Buffer.contents buf;
    offs;
    counts;
    n_postings = !n_postings;
  }

let build dictionary =
  let n_tokens = Tk.Interner.size (Dictionary.interner dictionary) in
  let acc = Array.init n_tokens (fun _ -> Dynarray.create ()) in
  Array.iter
    (fun e ->
      Array.iter
        (fun token -> Dynarray.push acc.(token) e.Entity.id)
        e.Entity.distinct_tokens)
    (Dictionary.entities dictionary);
  encode_lists dictionary (Array.map Dynarray.to_array acc)

let of_stored dictionary lists = encode_lists dictionary lists

let of_blocks dictionary ~blob ~offs ~counts =
  {
    dictionary;
    blob;
    offs;
    counts;
    n_postings = Array.fold_left ( + ) 0 counts;
  }

let raw_blocks t = (t.blob, t.offs, t.counts)

let dictionary t = t.dictionary

let n_tokens t = Array.length t.counts

let postings t token =
  if token < 0 || token >= Array.length t.counts || t.counts.(token) = 0 then
    Postings.empty
  else
    {
      Postings.blob = t.blob;
      off = t.offs.(token);
      stop = t.offs.(token + 1);
      count = t.counts.(token);
    }

let n_postings t = t.n_postings

let n_lists t =
  Array.fold_left (fun acc c -> acc + if c > 0 then 1 else 0) 0 t.counts

let heap_bytes t =
  let directory_words =
    Bytesize.words_per_int_array (Array.length t.offs)
    + Bytesize.words_per_int_array (Array.length t.counts)
  in
  Bytesize.string_bytes t.blob
  + Bytesize.bytes_of_words directory_words
  + Tk.Interner.heap_bytes (Dictionary.interner t.dictionary)

(* ---- per-document decode workspace ---- *)

module Workspace = struct
  type t = {
    mutable epoch : int;
    mutable tok_epoch : int array;  (* per token id: epoch of last decode *)
    mutable tok_off : int array;  (* per token id: offset of decode in buf *)
    mutable buf : int array;  (* decoded entity ids, flat *)
    mutable buf_len : int;
    mutable offs : int array;  (* per document position: offset into buf *)
    mutable lens : int array;  (* per document position: posting count *)
  }

  let create () =
    {
      epoch = 0;
      tok_epoch = [||];
      tok_off = [||];
      buf = Array.make 1024 0;
      buf_len = 0;
      offs = [||];
      lens = [||];
    }
end

let ensure_len a n = if Array.length a >= n then a else Array.make n 0

let grow_buf ws need =
  let open Workspace in
  if Array.length ws.buf < need then begin
    let cap = ref (2 * Array.length ws.buf) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let buf = Array.make !cap 0 in
    Array.blit ws.buf 0 buf 0 ws.buf_len;
    ws.buf <- buf
  end

let decode_document t ws doc =
  let open Workspace in
  let ntok = Array.length t.counts in
  if Array.length ws.tok_epoch < ntok then begin
    ws.tok_epoch <- Array.make ntok 0;
    ws.tok_off <- Array.make ntok 0;
    ws.epoch <- 0
  end;
  ws.epoch <- ws.epoch + 1;
  ws.buf_len <- 0;
  let n = Tk.Document.n_tokens doc in
  let tokens = Tk.Document.tokens doc in
  ws.offs <- ensure_len ws.offs n;
  ws.lens <- ensure_len ws.lens n;
  for pos = 0 to n - 1 do
    let tok = Array.unsafe_get tokens pos in
    if tok < 0 || tok >= ntok || t.counts.(tok) = 0 then begin
      ws.offs.(pos) <- 0;
      ws.lens.(pos) <- 0
    end
    else begin
      (* Each distinct token is decoded once per document. *)
      if ws.tok_epoch.(tok) <> ws.epoch then begin
        let count = t.counts.(tok) in
        grow_buf ws (ws.buf_len + count);
        let k =
          decode_into t.blob ~off:t.offs.(tok) ~stop:t.offs.(tok + 1)
            ~dst:ws.buf ~dst_off:ws.buf_len
        in
        assert (k = count);
        ws.tok_epoch.(tok) <- ws.epoch;
        ws.tok_off.(tok) <- ws.buf_len;
        ws.buf_len <- ws.buf_len + count
      end;
      ws.offs.(pos) <- ws.tok_off.(tok);
      ws.lens.(pos) <- t.counts.(tok)
    end
  done;
  (ws.buf, ws.offs, ws.lens)
