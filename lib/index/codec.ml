module Tk = Faerie_tokenize
module Varint = Faerie_util.Varint
module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace

exception Corrupt of string

exception Truncated of { at : int; len : int }

let m_save_bytes =
  Metrics.counter ~help:"bytes produced by index encoding" "codec_save_bytes"

let m_load_bytes =
  Metrics.counter ~help:"bytes consumed by index decoding" "codec_load_bytes"

let m_corrupt =
  Metrics.counter ~help:"decode attempts rejected as corrupt"
    "codec_corrupt_rejects"

let m_truncated =
  Metrics.counter ~help:"decode attempts rejected as truncated (torn write)"
    "codec_truncated_rejects"

let magic = "FAERIEIX"

(* v1 stored each posting list as bare delta varints; v2 stores the index's
   compressed blocks verbatim — per token [(count, nbytes, block bytes)] —
   so load adopts validated blocks without re-encoding. v1 is still read. *)
let version = 2

let encode dict index =
  Trace.with_span "codec_encode" @@ fun () ->
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  Varint.write buf version;
  (match Dictionary.mode dict with
  | Tk.Document.Word ->
      Varint.write buf 0;
      Varint.write buf 0
  | Tk.Document.Gram q ->
      Varint.write buf 1;
      Varint.write buf q);
  let interner = Dictionary.interner dict in
  let n_tokens = Tk.Interner.size interner in
  Varint.write buf n_tokens;
  for tok = 0 to n_tokens - 1 do
    Varint.write_string buf (Tk.Interner.to_string interner tok)
  done;
  let entities = Dictionary.entities dict in
  Varint.write buf (Array.length entities);
  Array.iter
    (fun e ->
      Varint.write_string buf e.Entity.raw;
      Varint.write buf (Array.length e.Entity.tokens);
      Array.iter (Varint.write buf) e.Entity.tokens)
    entities;
  let blob, offs, counts = Inverted_index.raw_blocks index in
  Varint.write buf (Array.length counts);
  for tok = 0 to Array.length counts - 1 do
    Varint.write buf counts.(tok);
    let nbytes = offs.(tok + 1) - offs.(tok) in
    Varint.write buf nbytes;
    Buffer.add_substring buf blob offs.(tok) nbytes
  done;
  let payload = Buffer.contents buf in
  let out = Buffer.create (String.length payload + 10) in
  Buffer.add_string out payload;
  Varint.write out (Varint.fnv1a payload);
  let data = Buffer.contents out in
  Metrics.add m_save_bytes (String.length data);
  data

let decode data =
  Trace.with_span "codec_decode" @@ fun () ->
  let fail msg =
    Metrics.incr m_corrupt;
    raise (Corrupt msg)
  in
  Faerie_util.Fault.site "codec_io";
  Metrics.add m_load_bytes (String.length data);
  (* The reader is created outside the [try] so the truncation handler can
     report how far decoding got before the input ran out. *)
  let r = Varint.reader data in
  try
    (* Every claimed element count is validated against the bytes still
       unread before any [Array.init] / [Interner.create] sized by it: each
       element costs at least one encoded byte, so a count larger than the
       remaining input is corrupt by construction. Without this, an
       adversarial length field triggers a multi-GB allocation (or
       [Out_of_memory]) before the trailing checksum is ever consulted. *)
    let check_count what n =
      if n < 0 || n > String.length data - Varint.pos r then
        fail (Printf.sprintf "%s count %d exceeds input" what n)
    in
    Varint.expect r magic;
    let v = Varint.read r in
    if v <> 1 && v <> 2 then fail (Printf.sprintf "unsupported version %d" v);
    let mode =
      match Varint.read r with
      | 0 ->
          ignore (Varint.read r);
          Tk.Document.Word
      | 1 -> Tk.Document.Gram (Varint.read r)
      | k -> fail (Printf.sprintf "unknown mode tag %d" k)
    in
    let n_tokens = Varint.read r in
    check_count "token" n_tokens;
    let interner = Tk.Interner.create ~initial_capacity:(max 16 n_tokens) () in
    for expected = 0 to n_tokens - 1 do
      let id = Tk.Interner.intern interner (Varint.read_string r) in
      if id <> expected then fail "duplicate token string"
    done;
    let n_entities = Varint.read r in
    check_count "entity" n_entities;
    let entities =
      Array.init n_entities (fun id ->
          let raw = Varint.read_string r in
          let n = Varint.read r in
          check_count "entity token" n;
          let tokens =
            Array.init n (fun _ ->
                let tok = Varint.read r in
                if tok >= n_tokens then fail "token id out of range";
                tok)
          in
          Entity.of_tokens ~id ~raw ~text:(Tk.Tokenizer.normalize raw) ~tokens)
    in
    let n_lists = Varint.read r in
    if n_lists <> n_tokens then fail "postings/token count mismatch";
    let make_index =
      if v = 1 then begin
        let lists =
          Array.init n_lists (fun _ ->
              let n = Varint.read r in
              check_count "postings" n;
              let prev = ref 0 in
              Array.init n (fun i ->
                  let delta = Varint.read r in
                  if i > 0 && delta = 0 then fail "non-ascending postings";
                  prev := !prev + delta;
                  if !prev >= n_entities then fail "entity id out of range";
                  !prev))
        in
        fun dict -> Inverted_index.of_stored dict lists
      end
      else begin
        (* v2: every block is fully validated here — ascending ids in
           range, exactly [nbytes] consumed — then adopted verbatim, so
           {!Inverted_index} may decode it unchecked later. *)
        let blob = Buffer.create 4096 in
        let offs = Array.make (n_lists + 1) 0 in
        let counts = Array.make n_lists 0 in
        for tok = 0 to n_lists - 1 do
          offs.(tok) <- Buffer.length blob;
          let count = Varint.read r in
          check_count "postings" count;
          let nbytes = Varint.read r in
          if nbytes > String.length data - Varint.pos r then begin
            (* A block length pointing past the input is the torn-write
               signature, same as running out of bytes mid-varint. *)
            Metrics.incr m_truncated;
            raise (Truncated { at = Varint.pos r; len = String.length data })
          end;
          if count > nbytes then fail "postings count exceeds block";
          let block_start = Varint.pos r in
          let prev = ref 0 in
          for i = 0 to count - 1 do
            let delta = Varint.read r in
            if i > 0 && delta = 0 then fail "non-ascending postings";
            prev := !prev + delta;
            if !prev >= n_entities then fail "entity id out of range"
          done;
          if Varint.pos r - block_start <> nbytes then
            fail "postings block length mismatch";
          counts.(tok) <- count;
          Buffer.add_substring blob data block_start nbytes
        done;
        offs.(n_lists) <- Buffer.length blob;
        let blob = Buffer.contents blob in
        fun dict -> Inverted_index.of_blocks dict ~blob ~offs ~counts
      end
    in
    let payload_end = Varint.pos r in
    let checksum = Varint.read r in
    if not (Varint.at_end r) then fail "trailing bytes";
    if checksum <> Varint.fnv1a (String.sub data 0 payload_end) then
      fail "checksum mismatch";
    let dict = Dictionary.of_stored ~mode ~interner entities in
    (dict, make_index dict)
  with Varint.Malformed msg ->
    (* [Varint] prefixes every ran-out-of-bytes message with "truncated";
       everything else (bad magic, malformed varint byte) is corruption.
       A truncated file is the signature of a torn write — a crash between
       write and rename, or a partial copy — and callers may want to fall
       back to a previous snapshot rather than alert on corruption. *)
    if String.length msg >= 9 && String.sub msg 0 9 = "truncated" then begin
      Metrics.incr m_truncated;
      raise (Truncated { at = Varint.pos r; len = String.length data })
    end
    else fail msg

(* Crash-safe save: encode to a temp file in the destination directory,
   fsync it, then atomically rename over [path]. A reader concurrently
   calling [load] sees either the old snapshot or the new one, never a
   partially written file. The "codec_rename" fault site models a crash in
   the window after the temp file is durable but before the rename: the
   destination still holds the previous snapshot and the temp file is left
   behind (as a real crash would), so recovery paths can be tested. *)
let save dict index path =
  let data = encode dict index in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  in
  (try
     let len = String.length data in
     let pos = ref 0 in
     while !pos < len do
       pos := !pos + Unix.write_substring fd data !pos (len - !pos)
     done;
     Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* An injected fault here simulates a crash inside the write/rename
     window: it propagates with the temp file left on disk, exactly as a
     kill would leave it. *)
  Faerie_util.Fault.site "codec_rename";
  (try Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* Best effort: make the rename itself durable. Directories cannot be
     opened O_WRONLY; some filesystems refuse fsync on O_RDONLY dirs. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd -> (
      (try Unix.fsync dfd with Unix.Unix_error _ -> ());
      try Unix.close dfd with Unix.Unix_error _ -> ())

let load path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  decode data
