(** Binary serialization of a dictionary and its inverted index.

    Loading never re-tokenizes: the interner, the entities' token arrays
    and the postings lists are stored verbatim, so a saved index for a
    large dictionary opens in I/O time.

    Format (all integers LEB128 varints, {!Faerie_util.Varint}):

    {v
    "FAERIEIX" version          magic + format version (1)
    mode q                      0 = word tokens, 1 = q-grams
    n_tokens,  strings...       interner contents, in id order
    n_entities, raw + tokens... per entity: raw string + token ids
    n_lists,   count + deltas.. postings: delta-coded ascending entity ids
    checksum                    FNV-1a-style hash of everything before it
    v} *)

exception Corrupt of string
(** Raised by {!load}/{!decode} on malformed input (bad magic, version,
    checksum mismatch, inconsistent counts). *)

exception Truncated of { at : int; len : int }
(** Raised by {!load}/{!decode} when the input ran out mid-value: decoding
    was consistent up to byte [at] of a [len]-byte input, then hit end of
    data. This is the signature of a torn write (crash between write and
    rename, partial copy) as opposed to in-place corruption ({!Corrupt});
    the serving layer treats it as "keep the previous snapshot", not
    "alert on a corrupt index". *)

val encode : Dictionary.t -> Inverted_index.t -> string
(** Serialize to a byte string. *)

val decode : string -> Dictionary.t * Inverted_index.t
(** Inverse of {!encode}.

    @raise Corrupt on malformed input.
    @raise Truncated when the input ends mid-value. *)

val save : Dictionary.t -> Inverted_index.t -> string -> unit
(** [save dict index path] writes the encoding to [path] atomically: the
    bytes go to a temp file in the same directory ([path.tmp.<pid>]),
    which is fsynced and then renamed over [path]. A crash at any point
    leaves [path] holding either the previous snapshot or the new one,
    never a torn mix. The ["codec_rename"] {!Faerie_util.Fault} site sits
    between fsync and rename to exercise the crash window (the injected
    fault propagates and the temp file is left behind, as a kill would
    leave it). *)

val load : string -> Dictionary.t * Inverted_index.t
(** [load path] reads an index saved by {!save}.

    @raise Corrupt on malformed input.
    @raise Truncated when the file ends mid-value (torn write).
    @raise Sys_error when the file cannot be read. *)
