(** Online dictionary mutation: a small uncompressed add/tombstone overlay
    over a frozen compressed index.

    Adds get fresh entity ids past the base id space (ids are never
    reused, so every merged posting list stays ascending by construction);
    removes tombstone the id. {!view} materializes an immutable merged
    {!Inverted_index.t} that {!Faerie_core.Extractor.run} consumes with
    zero change to callers; every structure a view captures is copied, so
    worker domains can keep reading a published view while further
    mutations land here. {!compact} folds the overlay into a fresh dense
    snapshot (new ids, fresh interner) for the Codec-v2 save +
    generation-bump reload path.

    Durability is the caller's: append to {!Faerie_util.Wal} {e before}
    applying the mutation here, and replay the WAL through {!add} /
    {!remove} on startup — both are idempotent under replay (re-adding a
    live raw is [Exists], removing an absent one is [Absent]), so a crash
    between a WAL append and a compaction's log truncation never loses or
    duplicates a mutation.

    Registers the [dict_adds] / [dict_removes] / [compactions] counters
    and the [delta_entities] gauge (current overlay size: live adds +
    tombstones). *)

type t

type add_result =
  | Added of int  (** fresh id, numbered past the base id space *)
  | Exists of int  (** raw already live under this id; no-op *)

type remove_result =
  | Removed of int
  | Absent  (** raw not live; no-op *)

val create : Inverted_index.t -> t
(** Start an empty overlay over a frozen base.

    @raise Invalid_argument if the base is itself an overlay view. *)

val base : t -> Inverted_index.t

val add : t -> string -> add_result
(** Add a raw entity string, tokenized exactly as {!Dictionary.create}
    would (into a private interner copy — never the one live readers
    probe). *)

val remove : t -> string -> remove_result
(** Remove by exact raw string. A base entity is tombstoned; an added one
    is withdrawn from the add lists (its id slot stays dead — ids are
    never reused). Re-adding the same raw later allocates a fresh id. *)

val mem : t -> string -> int option
(** Live id of a raw, if present. *)

val pending : t -> int
(** Overlay size: live adds + tombstones (what the [delta_entities] gauge
    reports). *)

val live_count : t -> int
(** Number of live entities in the merged view. *)

val live_raws : t -> string list
(** Live raw strings in id order — the compaction input. *)

val view : t -> Inverted_index.t
(** The merged read-only view (cached until the next mutation). With no
    mutations pending this is the base itself, so the zero-overlay fast
    path stays bit-identical. *)

val compact : t -> Inverted_index.t
(** Fold the overlay into a fresh dense index ({!Dictionary.create} +
    {!Inverted_index.build} over {!live_raws}): new dense ids, fresh
    interner, no overlay — ready for {!Codec.save}. The delta itself is
    not consumed; the caller swaps to [Delta.create (compact t)] once the
    snapshot is durable. *)
