module Tk = Faerie_tokenize
module Metrics = Faerie_obs.Metrics

(* Mutable overlay over a frozen index. The base blocks are never touched:
   adds get fresh ids past the base id space and live in small per-token
   arrays; removes set a tombstone bit and bump a per-block tombstone tally
   (an entity appears once per distinct token, so the tally is maintained
   without decoding any block). [view] materializes an immutable
   {!Inverted_index.of_overlay} snapshot — every mutable structure is
   copied or replaced wholesale, so published views are safe to read from
   worker domains while further mutations land here. *)

let m_dict_adds = Metrics.counter "dict_adds"

let m_dict_removes = Metrics.counter "dict_removes"

let m_compactions = Metrics.counter "compactions"

let g_delta_entities = Metrics.gauge "delta_entities"

type t = {
  base : Inverted_index.t;
  mode : Tk.Document.mode;
  interner : Tk.Interner.t;
      (* private copy: [add] interns new entity tokens here, never into the
         table live readers probe *)
  mutable entities : Entity.t array;
      (* dense: base entities ++ added (tombstoned slots stay) *)
  by_raw : (string, int) Hashtbl.t;  (* live raw -> id *)
  mutable dead : Bytes.t;  (* tombstone bitset over entity ids *)
  dead_counts : int array;  (* per base token: tombstones in its block *)
  adds_by_token : (int, int list ref) Hashtbl.t;  (* live added ids *)
  base_n : int;
  mutable n_tomb : int;  (* tombstoned base entities *)
  mutable n_add_live : int;
  mutable mutated : bool;
  mutable cache : Inverted_index.t option;
}

type add_result = Added of int | Exists of int

type remove_result = Removed of int | Absent

let is_dead t id =
  let i = id lsr 3 in
  i < Bytes.length t.dead
  && Char.code (Bytes.get t.dead i) land (1 lsl (id land 7)) <> 0

let set_dead t id =
  let need = (id lsr 3) + 1 in
  if Bytes.length t.dead < need then begin
    let b = Bytes.make (max need (2 * Bytes.length t.dead)) '\000' in
    Bytes.blit t.dead 0 b 0 (Bytes.length t.dead);
    t.dead <- b
  end;
  let i = id lsr 3 in
  Bytes.set t.dead i
    (Char.chr (Char.code (Bytes.get t.dead i) lor (1 lsl (id land 7))))

let create base =
  if Inverted_index.is_overlay base then
    invalid_arg "Delta.create: base must be a frozen index, not an overlay";
  let dict = Inverted_index.dictionary base in
  let entities = Dictionary.entities dict in
  let by_raw = Hashtbl.create (max 64 (Array.length entities)) in
  Array.iter (fun e -> Hashtbl.replace by_raw e.Entity.raw e.Entity.id) entities;
  Metrics.set g_delta_entities 0.;
  {
    base;
    mode = Dictionary.mode dict;
    interner = Tk.Interner.copy (Dictionary.interner dict);
    entities;
    by_raw;
    dead = Bytes.create 0;
    dead_counts = Array.make (Inverted_index.n_tokens base) 0;
    adds_by_token = Hashtbl.create 64;
    base_n = Array.length entities;
    n_tomb = 0;
    n_add_live = 0;
    mutated = false;
    cache = None;
  }

let base t = t.base

let pending t = t.n_tomb + t.n_add_live

let live_count t = t.base_n - t.n_tomb + t.n_add_live

let mem t raw = Hashtbl.find_opt t.by_raw raw

let note_pending t = Metrics.set g_delta_entities (float_of_int (pending t))

let tokenize t raw =
  match t.mode with
  | Tk.Document.Word -> Tk.Tokenizer.words_intern t.interner raw
  | Tk.Document.Gram q -> Tk.Tokenizer.qgrams_intern t.interner ~q raw

let add t raw =
  match Hashtbl.find_opt t.by_raw raw with
  | Some id -> Exists id
  | None ->
      let id = Array.length t.entities in
      let text = Tk.Tokenizer.normalize raw in
      let e = Entity.make ~id ~raw ~text ~spans:(tokenize t raw) in
      t.entities <- Array.append t.entities [| e |];
      Array.iter
        (fun tok ->
          match Hashtbl.find_opt t.adds_by_token tok with
          | Some ids -> ids := id :: !ids
          | None -> Hashtbl.add t.adds_by_token tok (ref [ id ]))
        e.Entity.distinct_tokens;
      Hashtbl.replace t.by_raw raw id;
      t.n_add_live <- t.n_add_live + 1;
      t.mutated <- true;
      t.cache <- None;
      Metrics.incr m_dict_adds;
      note_pending t;
      Added id

let remove t raw =
  match Hashtbl.find_opt t.by_raw raw with
  | None -> Absent
  | Some id ->
      Hashtbl.remove t.by_raw raw;
      set_dead t id;
      let e = t.entities.(id) in
      if id < t.base_n then begin
        Array.iter
          (fun tok -> t.dead_counts.(tok) <- t.dead_counts.(tok) + 1)
          e.Entity.distinct_tokens;
        t.n_tomb <- t.n_tomb + 1
      end
      else begin
        (* An added entity is physically withdrawn from the add lists; its
           id slot stays (tombstoned) so ids never get reused. *)
        Array.iter
          (fun tok ->
            match Hashtbl.find_opt t.adds_by_token tok with
            | Some ids -> ids := List.filter (fun i -> i <> id) !ids
            | None -> ())
          e.Entity.distinct_tokens;
        t.n_add_live <- t.n_add_live - 1
      end;
      t.mutated <- true;
      t.cache <- None;
      Metrics.incr m_dict_removes;
      note_pending t;
      Removed id

let view t =
  if not t.mutated then t.base
  else
    match t.cache with
    | Some v -> v
    | None ->
        let ntok = Tk.Interner.size t.interner in
        let adds = Array.make ntok [||] in
        Hashtbl.iter
          (fun tok ids ->
            match !ids with
            | [] -> ()
            | l ->
                let a = Array.of_list l in
                Array.sort compare a;
                if tok >= 0 && tok < ntok then adds.(tok) <- a)
          t.adds_by_token;
        let dict =
          Dictionary.of_stored ~mode:t.mode
            ~interner:(Tk.Interner.copy t.interner)
            t.entities
        in
        let v =
          Inverted_index.of_overlay t.base ~dictionary:dict ~adds
            ~dead:(Bytes.copy t.dead)
            ~dead_counts:(Array.copy t.dead_counts)
        in
        t.cache <- Some v;
        v

let live_raws t =
  let out = ref [] in
  Array.iter
    (fun e -> if not (is_dead t e.Entity.id) then out := e.Entity.raw :: !out)
    t.entities;
  List.rev !out

let compact t =
  let dict = Dictionary.create ~mode:t.mode (live_raws t) in
  let ix = Inverted_index.build dict in
  Metrics.incr m_compactions;
  ix
