let distance r s =
  let m = String.length r and n = String.length s in
  if m = 0 then n
  else if n = 0 then m
  else begin
    (* Keep the shorter string on the column axis. *)
    let r, s, m, n = if m <= n then (r, s, m, n) else (s, r, n, m) in
    let prev = Array.init (m + 1) (fun i -> i) in
    let curr = Array.make (m + 1) 0 in
    for j = 1 to n do
      curr.(0) <- j;
      let sj = s.[j - 1] in
      for i = 1 to m do
        let cost = if r.[i - 1] = sj then 0 else 1 in
        curr.(i) <-
          min (min (prev.(i) + 1) (curr.(i - 1) + 1)) (prev.(i - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let infinity_cost = max_int / 2

(* OCaml native ints carry 63 usable bits; the Myers recurrence needs one
   spare bit above the pattern mask for the addition carry, so patterns up
   to 62 characters run bit-parallel and longer ones fall back to the
   banded DP. *)
let myers_max_len = 62

(* Per-domain scratch, so neither engine allocates on the verify hot path:
   two DP rows for the banded fallback and a 256-entry pattern-bitmap table
   for Myers. The peq table is cleared after each call by walking the
   pattern's characters again (<= 62 writes), never the whole table. *)
type scratch = {
  mutable prev : int array;
  mutable curr : int array;
  peq : int array;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { prev = Array.make 64 0; curr = Array.make 64 0; peq = Array.make 256 0 })

let rows sc m =
  if Array.length sc.prev < m + 1 then begin
    let cap = max (m + 1) (2 * Array.length sc.prev) in
    sc.prev <- Array.make cap 0;
    sc.curr <- Array.make cap 0
  end;
  (sc.prev, sc.curr)

(* Threshold-banded DP over slices: distance between r[r_off..r_off+m) and
   s[s_off..s_off+n), m <= n. prev.(i) = D(i, j-1); cells outside the band
   of half-width [cap] are infinity. *)
let banded_core ~cap sc r r_off m s s_off n =
  let prev, curr = rows sc m in
  Array.fill prev 0 (m + 1) infinity_cost;
  Array.fill curr 0 (m + 1) infinity_cost;
  for i = 0 to min m cap do
    prev.(i) <- i
  done;
  let result = ref (if n = 0 then Some m else None) in
  (try
     for j = 1 to n do
       let lo = max 0 (j - cap) and hi = min m (j + cap) in
       let row_min = ref infinity_cost in
       for i = lo to hi do
         let v =
           if i = 0 then j
           else begin
             let cost =
               if
                 String.unsafe_get r (r_off + i - 1)
                 = String.unsafe_get s (s_off + j - 1)
               then 0
               else 1
             in
             let best = prev.(i - 1) + cost in
             let best =
               if i - 1 >= lo then min best (curr.(i - 1) + 1) else best
             in
             let best =
               if i <= j + cap - 1 then min best (prev.(i) + 1) else best
             in
             best
           end
         in
         curr.(i) <- v;
         if v < !row_min then row_min := v
       done;
       if !row_min > cap then raise Exit;
       (* Reset prev outside next band, then swap rows. *)
       Array.blit curr 0 prev 0 (m + 1);
       Array.fill curr 0 (m + 1) infinity_cost;
       if lo > 0 then prev.(lo - 1) <- infinity_cost
     done;
     if prev.(m) <= cap then result := Some prev.(m)
   with Exit -> result := None);
  !result

(* Myers bit-vector edit distance (Hyyrö's formulation): the pattern
   p[p_off..p_off+m) is encoded as per-character position bitmaps and each
   text character updates the whole DP column in O(1) word operations.
   Requires 1 <= m <= myers_max_len and m <= n. All vectors are kept masked
   to the low m bits, so the (Eq land VP) + VP carry never reaches the sign
   bit for m <= 62. *)
let myers_core ~cap sc p p_off m t t_off n =
  let peq = sc.peq in
  for i = 0 to m - 1 do
    let c = Char.code (String.unsafe_get p (p_off + i)) in
    peq.(c) <- peq.(c) lor (1 lsl i)
  done;
  let mask = (1 lsl m) - 1 in
  let high = 1 lsl (m - 1) in
  let vp = ref mask and vn = ref 0 in
  let score = ref m in
  let cut = ref false in
  let j = ref 0 in
  while (not !cut) && !j < n do
    let eq = peq.(Char.code (String.unsafe_get t (t_off + !j))) in
    let d0 = (((eq land !vp) + !vp) lxor !vp) lor eq lor !vn in
    let hp = !vn lor lnot (d0 lor !vp) in
    let hn = !vp land d0 in
    if hp land high <> 0 then incr score
    else if hn land high <> 0 then decr score;
    let hp = ((hp lsl 1) lor 1) land mask in
    let hn = (hn lsl 1) land mask in
    vp := (hn lor lnot (d0 lor hp)) land mask;
    vn := hp land d0;
    incr j;
    (* The score drops by at most 1 per remaining text character, so once
       it cannot get back under the cap the column loop is done. *)
    if !score - (n - !j) > cap then cut := true
  done;
  for i = 0 to m - 1 do
    peq.(Char.code (String.unsafe_get p (p_off + i))) <- 0
  done;
  if !cut then None else if !score <= cap then Some !score else None

(* A while loop, not a local [rec]: a recursive closure over the slices
   would be heap-allocated on every cap-0 verification. *)
let slices_equal a a_off b b_off len =
  let i = ref 0 in
  while
    !i < len
    && String.unsafe_get a (a_off + !i) = String.unsafe_get b (b_off + !i)
  do
    incr i
  done;
  !i >= len

let distance_upto_slice ~cap ~banded r ~s ~off ~len =
  if cap < 0 then None
  else begin
    let r_len = String.length r in
    if abs (r_len - len) > cap then None
    else if r_len = 0 then Some len
    else if len = 0 then Some r_len
    else begin
      (* Pattern = the shorter side. *)
      let p, p_off, m, t, t_off, n =
        if r_len <= len then (r, 0, r_len, s, off, len)
        else (s, off, len, r, 0, r_len)
      in
      if cap = 0 then
        if slices_equal p p_off t t_off m then Some 0 else None
      else begin
        let sc = Domain.DLS.get scratch_key in
        if (not banded) && m <= myers_max_len then
          myers_core ~cap sc p p_off m t t_off n
        else banded_core ~cap sc p p_off m t t_off n
      end
    end
  end

let distance_upto ~cap r s =
  distance_upto_slice ~cap ~banded:false r ~s ~off:0 ~len:(String.length s)

let distance_upto_banded ~cap r s =
  distance_upto_slice ~cap ~banded:true r ~s ~off:0 ~len:(String.length s)

let distance_upto_myers ~cap r s =
  distance_upto_slice ~cap ~banded:false r ~s ~off:0 ~len:(String.length s)

let within r s tau = distance_upto ~cap:tau r s <> None

let similarity r s =
  let m = max (String.length r) (String.length s) in
  if m = 0 then 1.0
  else 1.0 -. (float_of_int (distance r s) /. float_of_int m)
