(** Exact verification of candidate pairs (the "verify" half of
    filter-and-verify). *)

type verifier =
  | Banded  (** always the threshold-banded DP *)
  | Myers
      (** Myers bit-parallel, falling back to the banded DP when the
          shorter string exceeds {!Edit_distance.myers_max_len} *)
  | Auto  (** engine chosen per pair (today: same policy as [Myers]) *)

val verifier_name : verifier -> string
(** ["banded"], ["myers"] or ["auto"] — the names the CLI's [--verifier]
    flag and the Explain verifier event use. *)

val verifier_of_string : string -> verifier option
(** Inverse of {!verifier_name}. *)

module Score : sig
  type t =
    | Similarity of float  (** jaccard / cosine / dice / edit similarity *)
    | Distance of int  (** edit distance *)

  val passes : Sim.t -> t -> bool
  (** Does the measured score satisfy the threshold? Similarities compare
      with a [1e-9] tolerance so that exact rational ties (e.g. [delta = 1]
      with identical strings) always pass. *)

  val pp : Format.formatter -> t -> unit

  val compare : t -> t -> int
  (** Orders better scores first: higher similarity, lower distance. *)
end

val token_score : Sim.t -> e_tokens:int array -> s_tokens:int array -> Score.t
(** Exact token-based similarity of two sorted token multisets.
    Occurrences of {!Faerie_tokenize.Span.missing} in [s_tokens] count
    toward [|s|] but never toward the overlap.

    @raise Invalid_argument when applied to a character-based function. *)

val char_score :
  ?verifier:verifier -> Sim.t -> e_str:string -> s_str:string -> Score.t
(** Exact character-based score, computed with a thresholded edit-distance
    engine capped at the largest distance that could still pass (a failing
    pair reports the cap + 1, enough to decide {!Score.passes}). The
    [verifier] (default [Auto]) picks the engine; the
    [verify_myers]/[verify_banded] counters record the routing.

    @raise Invalid_argument when applied to a token-based function. *)

val char_score_slice :
  ?verifier:verifier ->
  Sim.t ->
  e_str:string ->
  text:string ->
  off:int ->
  len:int ->
  Score.t
(** As {!char_score} against the document slice [text[off .. off+len)],
    without materializing the substring — the allocation-free form the
    verify hot path uses. *)

val check :
  ?verifier:verifier ->
  Sim.t ->
  e_tokens:int array ->
  e_str:string ->
  s_tokens:int array ->
  s_str:string ->
  Score.t
(** Dispatch on the function kind. *)
