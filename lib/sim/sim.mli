(** Similarity / dissimilarity function specifications.

    The five functions of the paper's unified framework. Token-based
    functions (jaccard, cosine, dice) see strings as word-token multisets;
    character-based functions (edit distance, edit similarity) see strings
    as character sequences and are filtered through q-gram multisets. *)

type t =
  | Jaccard of float  (** [jac(r,s) = |r∩s| / |r∪s| >= delta] *)
  | Cosine of float  (** [cos(r,s) = |r∩s| / sqrt(|r|*|s|) >= delta] *)
  | Dice of float  (** [dice(r,s) = 2|r∩s| / (|r|+|s|) >= delta] *)
  | Edit_distance of int  (** [ed(r,s) <= tau] *)
  | Edit_similarity of float
      (** [eds(r,s) = 1 - ed(r,s)/max(len r, len s) >= delta] *)

val validate : t -> unit
(** Check the threshold is in range: [delta] in (0, 1], [tau >= 0].

    @raise Invalid_argument otherwise. *)

val char_based : t -> bool
(** [true] for edit distance / edit similarity (q-gram token mode). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val name : t -> string
(** Function name without the threshold: ["jac"], ["cos"], ["dice"],
    ["ed"], ["eds"]. *)

val to_spec : t -> string
(** Machine-readable [FUNC=THRESH] form (["ed=2"], ["jac=0.8"]) — the CLI
    argument syntax, round-trippable through {!of_spec}. Used by
    quarantine dead-letter records so a repro names its similarity
    function exactly. *)

val of_spec : string -> (t, string) result
(** Parse the [FUNC=THRESH] form accepted by the CLI's [--sim]. Does not
    {!validate} the threshold. *)
