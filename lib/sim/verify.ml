module Token_ops = Faerie_tokenize.Token_ops
module Metrics = Faerie_obs.Metrics

let m_scores =
  Metrics.counter ~help:"similarity scores computed (token or char)"
    "verify_scores"

let m_early_exits =
  Metrics.counter ~help:"capped edit-distance computations cut off at the cap"
    "verify_early_exits"

let m_myers =
  Metrics.counter ~help:"character verifications routed to the Myers engine"
    "verify_myers"

let m_banded =
  Metrics.counter ~help:"character verifications routed to the banded DP"
    "verify_banded"

type verifier = Banded | Myers | Auto

let verifier_name = function
  | Banded -> "banded"
  | Myers -> "myers"
  | Auto -> "auto"

let verifier_of_string = function
  | "banded" -> Some Banded
  | "myers" -> Some Myers
  | "auto" -> Some Auto
  | _ -> None

module Score = struct
  type t = Similarity of float | Distance of int

  let passes sim t =
    match (sim, t) with
    | (Sim.Jaccard d | Sim.Cosine d | Sim.Dice d | Sim.Edit_similarity d), Similarity s ->
        s >= d -. 1e-9
    | Sim.Edit_distance tau, Distance d -> d <= tau
    | Sim.Edit_distance _, Similarity _ | _, Distance _ ->
        invalid_arg "Score.passes: score kind does not match function"

  let pp ppf = function
    | Similarity s -> Format.fprintf ppf "sim=%.4f" s
    | Distance d -> Format.fprintf ppf "ed=%d" d

  let compare a b =
    match (a, b) with
    | Similarity x, Similarity y -> Stdlib.compare y x
    | Distance x, Distance y -> Stdlib.compare x y
    | Similarity _, Distance _ -> -1
    | Distance _, Similarity _ -> 1
end

let token_score sim ~e_tokens ~s_tokens =
  Faerie_util.Fault.site "verify";
  Metrics.incr m_scores;
  let e = Array.length e_tokens and s = Array.length s_tokens in
  let o = float_of_int (Token_ops.multiset_overlap e_tokens s_tokens) in
  let e = float_of_int e and s = float_of_int s in
  match sim with
  | Sim.Jaccard _ ->
      let union = e +. s -. o in
      Score.Similarity (if union <= 0. then 1.0 else o /. union)
  | Sim.Cosine _ ->
      Score.Similarity (if e = 0. || s = 0. then 0. else o /. sqrt (e *. s))
  | Sim.Dice _ ->
      Score.Similarity (if e +. s = 0. then 1.0 else 2. *. o /. (e +. s))
  | Sim.Edit_distance _ | Sim.Edit_similarity _ ->
      invalid_arg "Verify.token_score: character-based function"

(* Engine routing: [Banded] forces the DP; [Myers]/[Auto] take the
   bit-parallel engine whenever the shorter string fits in one word.
   Counted per scoring call so the verify_myers/verify_banded pair sums to
   the character-verification total. *)
let route verifier ~e_len ~s_len =
  let banded =
    match verifier with
    | Banded -> true
    | Myers | Auto -> min e_len s_len > Edit_distance.myers_max_len
  in
  Metrics.incr (if banded then m_banded else m_myers);
  banded

let char_score_slice ?(verifier = Auto) sim ~e_str ~text ~off ~len =
  Faerie_util.Fault.site "verify";
  Metrics.incr m_scores;
  match sim with
  | Sim.Edit_distance tau -> (
      let banded = route verifier ~e_len:(String.length e_str) ~s_len:len in
      match Edit_distance.distance_upto_slice ~cap:tau ~banded e_str ~s:text ~off ~len with
      | Some d -> Score.Distance d
      | None ->
          Metrics.incr m_early_exits;
          Score.Distance (tau + 1))
  | Sim.Edit_similarity d ->
      let maxlen = max (String.length e_str) len in
      if maxlen = 0 then Score.Similarity 1.0
      else begin
        (* eds >= d iff ed <= (1 - d) * maxlen; cap the computation there. *)
        let cap =
          int_of_float (Float.floor (((1. -. d) *. float_of_int maxlen) +. 1e-9))
        in
        let banded = route verifier ~e_len:(String.length e_str) ~s_len:len in
        match Edit_distance.distance_upto_slice ~cap ~banded e_str ~s:text ~off ~len with
        | Some ed ->
            Score.Similarity (1. -. (float_of_int ed /. float_of_int maxlen))
        | None ->
            Metrics.incr m_early_exits;
            Score.Similarity
              (1. -. (float_of_int (cap + 1) /. float_of_int maxlen))
      end
  | Sim.Jaccard _ | Sim.Cosine _ | Sim.Dice _ ->
      invalid_arg "Verify.char_score: token-based function"

let char_score ?verifier sim ~e_str ~s_str =
  char_score_slice ?verifier sim ~e_str ~text:s_str ~off:0
    ~len:(String.length s_str)

let check ?verifier sim ~e_tokens ~e_str ~s_tokens ~s_str =
  if Sim.char_based sim then char_score ?verifier sim ~e_str ~s_str
  else token_score sim ~e_tokens ~s_tokens
