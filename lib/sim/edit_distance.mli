(** Levenshtein edit distance: full DP, a Myers bit-parallel verifier for
    thresholded queries, a threshold-banded DP fallback, and the derived
    edit similarity. Used by the verify step and by the NGPP baseline. *)

val distance : string -> string -> int
(** Classic two-row dynamic program, O(|r| * |s|) time, O(min) space. *)

val myers_max_len : int
(** Longest pattern (shorter string of the pair) the bit-parallel engine
    handles in one machine word: 62 on a 63-bit OCaml int (one bit is
    reserved for the addition carry). Longer patterns fall back to the
    banded DP. *)

val within : string -> string -> int -> bool
(** [within r s tau] iff [distance r s <= tau]. Dispatches like
    {!distance_upto}. *)

val distance_upto : cap:int -> string -> string -> int option
(** [distance_upto ~cap r s] is [Some d] with [d = distance r s] when
    [d <= cap], [None] otherwise. Automatic engine choice: Myers
    bit-parallel, O(|longer|) word-ops, when the shorter string fits in
    {!myers_max_len}; banded DP otherwise. Neither engine allocates — both
    run on per-domain scratch buffers. *)

val distance_upto_banded : cap:int -> string -> string -> int option
(** As {!distance_upto}, forcing the banded DP that visits only the
    diagonal band of width [2*cap+1] and exits early when every band cell
    exceeds [cap]. O((|r|+|s|) * cap) time. *)

val distance_upto_myers : cap:int -> string -> string -> int option
(** As {!distance_upto}, preferring the Myers bit-vector engine (with the
    banded DP as fallback beyond {!myers_max_len}) — today identical to the
    automatic dispatch, named for callers that want the intent explicit. *)

val distance_upto_slice :
  cap:int -> banded:bool -> string -> s:string -> off:int -> len:int ->
  int option
(** [distance_upto_slice ~cap ~banded r ~s ~off ~len] is
    [distance_upto ~cap r (String.sub s off len)] without materializing the
    substring — the verify hot path scores document slices in place.
    [banded:true] forces the banded DP; [banded:false] uses the automatic
    engine choice. *)

val similarity : string -> string -> float
(** [1 - distance r s / max(len r, len s)]; by convention [1.0] when both
    strings are empty. *)
