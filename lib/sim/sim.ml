type t =
  | Jaccard of float
  | Cosine of float
  | Dice of float
  | Edit_distance of int
  | Edit_similarity of float

let validate = function
  | Jaccard d | Cosine d | Dice d | Edit_similarity d ->
      if not (d > 0. && d <= 1.) then
        invalid_arg
          (Printf.sprintf "Sim.validate: delta %g outside (0, 1]" d)
  | Edit_distance tau ->
      if tau < 0 then
        invalid_arg (Printf.sprintf "Sim.validate: tau %d negative" tau)

let char_based = function
  | Edit_distance _ | Edit_similarity _ -> true
  | Jaccard _ | Cosine _ | Dice _ -> false

let name = function
  | Jaccard _ -> "jac"
  | Cosine _ -> "cos"
  | Dice _ -> "dice"
  | Edit_distance _ -> "ed"
  | Edit_similarity _ -> "eds"

let pp ppf = function
  | Jaccard d -> Format.fprintf ppf "jac(delta=%g)" d
  | Cosine d -> Format.fprintf ppf "cos(delta=%g)" d
  | Dice d -> Format.fprintf ppf "dice(delta=%g)" d
  | Edit_distance tau -> Format.fprintf ppf "ed(tau=%d)" tau
  | Edit_similarity d -> Format.fprintf ppf "eds(delta=%g)" d

let to_string t = Format.asprintf "%a" pp t

(* Shortest decimal rendering that parses back to exactly [d], so specs
   embedded in quarantine records replay with the original threshold. *)
let float_spec d =
  let s = Printf.sprintf "%.12g" d in
  if float_of_string s = d then s
  else
    let s = Printf.sprintf "%.15g" d in
    if float_of_string s = d then s else Printf.sprintf "%.17g" d

let to_spec = function
  | Jaccard d -> Printf.sprintf "jac=%s" (float_spec d)
  | Cosine d -> Printf.sprintf "cos=%s" (float_spec d)
  | Dice d -> Printf.sprintf "dice=%s" (float_spec d)
  | Edit_distance tau -> Printf.sprintf "ed=%d" tau
  | Edit_similarity d -> Printf.sprintf "eds=%s" (float_spec d)

let of_spec s =
  let num f v =
    match float_of_string_opt v with
    | Some d -> Ok (f d)
    | None -> Error (Printf.sprintf "bad threshold %S" v)
  in
  match String.split_on_char '=' s with
  | [ "jac"; d ] -> num (fun d -> Jaccard d) d
  | [ "cos"; d ] -> num (fun d -> Cosine d) d
  | [ "dice"; d ] -> num (fun d -> Dice d) d
  | [ "eds"; d ] -> num (fun d -> Edit_similarity d) d
  | [ "ed"; t ] -> (
      match int_of_string_opt t with
      | Some tau -> Ok (Edit_distance tau)
      | None -> Error (Printf.sprintf "bad tau %S" t))
  | _ ->
      Error
        "expected FUNC=THRESH with FUNC one of jac|cos|dice|eds (delta) or ed \
         (tau)"
