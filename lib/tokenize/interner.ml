module Dynarray = Faerie_util.Dynarray
module Bytesize = Faerie_util.Bytesize

(* Open-addressing hash table keyed by string content, probed either with a
   whole string or with a slice of a larger one ([find_sub]) — document
   tokenization looks grams up in place, never allocating a per-gram
   substring. Slots hold interned ids; [-1] marks an empty slot. *)
type t = {
  mutable table : int array;
  mutable mask : int;
  strings : string Dynarray.t;
}

let hash_sub s off len =
  (* FNV-1a, offset basis truncated to OCaml's 63-bit int. *)
  let h = ref 0x4bf29ce484222325 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * 0x100000001b3
  done;
  !h land max_int

(* A while loop, not a local [rec]: a recursive closure over [a]/[s]/[off]
   would be heap-allocated on every probe — once per gram lookup. *)
let eq_sub a s off len =
  String.length a = len
  && begin
       let i = ref 0 in
       while
         !i < len && String.unsafe_get a !i = String.unsafe_get s (off + !i)
       do
         incr i
       done;
       !i >= len
     end

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let create ?(initial_capacity = 1024) () =
  let cap = pow2 (max 16 (2 * initial_capacity)) 16 in
  { table = Array.make cap (-1); mask = cap - 1; strings = Dynarray.create () }

let find_sub t s ~off ~len =
  let h = hash_sub s off len in
  let i = ref (h land t.mask) in
  let found = ref (-2) in
  while !found = -2 do
    match t.table.(!i) with
    | -1 -> found := -1
    | id ->
        if eq_sub (Dynarray.get t.strings id) s off len then found := id
        else i := (!i + 1) land t.mask
  done;
  !found

let find_opt t s =
  match find_sub t s ~off:0 ~len:(String.length s) with
  | -1 -> None
  | id -> Some id

let grow t =
  let cap = 2 * Array.length t.table in
  let table = Array.make cap (-1) in
  let mask = cap - 1 in
  Dynarray.iteri
    (fun id s ->
      let i = ref (hash_sub s 0 (String.length s) land mask) in
      while table.(!i) >= 0 do
        i := (!i + 1) land mask
      done;
      table.(!i) <- id)
    t.strings;
  t.table <- table;
  t.mask <- mask

let intern t s =
  match find_sub t s ~off:0 ~len:(String.length s) with
  | -1 ->
      let id = Dynarray.length t.strings in
      if 2 * (id + 1) > Array.length t.table then grow t;
      let i = ref (hash_sub s 0 (String.length s) land t.mask) in
      while t.table.(!i) >= 0 do
        i := (!i + 1) land t.mask
      done;
      t.table.(!i) <- id;
      Dynarray.push t.strings s;
      id
  | id -> id

let copy t =
  (* Snapshot for copy-on-write callers: [intern] mutates [table] and
     [strings] in place, so a table that live readers probe concurrently
     (worker domains resolving document grams with [find_sub]) must never
     be the one a mutator grows. Dynamic-dictionary code interns new
     entity tokens into a private copy and publishes a fresh copy with
     each materialized view. *)
  {
    table = Array.copy t.table;
    mask = t.mask;
    strings = Dynarray.of_array (Dynarray.to_array t.strings);
  }

let to_string t id =
  if id < 0 || id >= Dynarray.length t.strings then
    invalid_arg (Printf.sprintf "Interner.to_string: unknown id %d" id);
  Dynarray.get t.strings id

let size t = Dynarray.length t.strings

let heap_bytes t =
  let string_bytes =
    Dynarray.fold_left (fun acc s -> acc + Bytesize.string_bytes s) 0 t.strings
  in
  (* The open-addressing slot array plus the pointer array in [strings]. *)
  let n = size t in
  string_bytes + Bytesize.bytes_of_words (Array.length t.table + (2 * n))
