(** String interning: a bijection between token strings and dense integer
    ids.

    All filtering structures (inverted lists, heaps, position lists) work on
    integer token ids; the interner is the single place where strings are
    compared. Ids are allocated densely from 0, so they can index arrays. *)

type t

val create : ?initial_capacity:int -> unit -> t

val intern : t -> string -> int
(** [intern t s] returns the id of [s], allocating a fresh one on first
    sight. *)

val find_opt : t -> string -> int option
(** [find_opt t s] is [Some id] if [s] was interned before, without
    allocating a new id. Used when tokenizing documents: a document token
    never seen in the dictionary has an empty inverted list and can be
    dropped eagerly. *)

val copy : t -> t
(** An independent snapshot preserving every id. [intern] mutates in
    place, so code that must keep publishing a stable table to concurrent
    lock-free readers (e.g. the dynamic-dictionary delta overlay) interns
    into a private copy and republishes. *)

val to_string : t -> int -> string
(** Inverse mapping.

    @raise Invalid_argument on an unknown id. *)

val size : t -> int
(** Number of distinct interned strings. *)

val heap_bytes : t -> int
(** Estimated in-memory footprint (for index-size reports). *)

val find_sub : t -> string -> off:int -> len:int -> int
(** [find_sub t s ~off ~len] is the id of the slice [s[off .. off+len)],
    or [-1] ({!Span.missing}) when it was never interned — a lookup that
    allocates nothing, used by the document tokenizers. *)
