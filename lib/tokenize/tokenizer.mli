(** Word and q-gram tokenizers.

    Both entity strings and documents pass through [normalize] (ASCII
    lowercasing — length preserving, so spans computed on normalized text
    are valid offsets into the original).

    Two interning disciplines:
    - [_intern] variants allocate fresh ids for unseen tokens — used when
      indexing the dictionary;
    - [_lookup] variants map unseen tokens to {!Span.missing} — used when
      tokenizing documents, since a token absent from every entity has an
      empty inverted list but must still occupy a position. *)

val normalize : string -> string
(** ASCII lowercase; every other byte unchanged. Length preserving. *)

val word_offsets : string -> (int * int) list
(** [word_offsets s] are the [(start, len)] extents of maximal runs of
    ASCII letters and digits in [s], left to right. Everything else
    (spaces, punctuation) separates words. *)

val words_intern : Interner.t -> string -> Span.t array
(** Tokenize into words, interning each. *)

val words_lookup : Interner.t -> string -> Span.t array
(** Tokenize into words; unknown words become {!Span.missing}. *)

val qgrams_intern : Interner.t -> q:int -> string -> Span.t array
(** All [q]-grams of the normalized string, interning each. A string shorter
    than [q] yields the empty array ([len(s) - q + 1 <= 0] grams).

    @raise Invalid_argument if [q <= 0]. *)

val qgrams_lookup : Interner.t -> q:int -> string -> Span.t array
(** As {!qgrams_intern}, but unknown grams become {!Span.missing}. *)

val qgram_ids : Interner.t -> q:int -> string -> int array
(** Lookup-mode q-gram ids of an {e already normalized} string, resolved in
    place with {!Interner.find_sub} — no per-gram substrings, no [Span.t]
    records. Position [i] holds the id of the gram starting at [i], or
    {!Span.missing}.

    @raise Invalid_argument if [q <= 0]. *)

val word_tokens : Interner.t -> string -> int array * int array * int array
(** Lookup-mode word tokenization of an {e already normalized} string:
    [(tokens, starts, lens)] parallel arrays, ids resolved in place (unknown
    words map to {!Span.missing}). *)
