let normalize s = String.lowercase_ascii s

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let word_offsets s =
  let n = String.length s in
  let rec scan i acc =
    if i >= n then List.rev acc
    else if is_word_char s.[i] then begin
      let j = ref i in
      while !j < n && is_word_char s.[!j] do
        incr j
      done;
      scan !j ((i, !j - i) :: acc)
    end
    else scan (i + 1) acc
  in
  scan 0 []

let words_of ~resolve s =
  let s = normalize s in
  let offsets = word_offsets s in
  let spans =
    List.map
      (fun (start_pos, len) ->
        let token = resolve (String.sub s start_pos len) in
        { Span.token; start_pos; len })
      offsets
  in
  Array.of_list spans

let words_intern interner s = words_of ~resolve:(Interner.intern interner) s

let words_lookup interner s =
  let resolve w =
    match Interner.find_opt interner w with
    | Some id -> id
    | None -> Span.missing
  in
  words_of ~resolve s

let qgrams_of ~resolve ~q s =
  if q <= 0 then invalid_arg "Tokenizer.qgrams: q must be positive";
  let s = normalize s in
  let n = String.length s - q + 1 in
  if n <= 0 then [||]
  else
    Array.init n (fun i ->
        { Span.token = resolve (String.sub s i q); start_pos = i; len = q })

let qgrams_intern interner ~q s =
  qgrams_of ~resolve:(Interner.intern interner) ~q s

let qgrams_lookup interner ~q s =
  let resolve g =
    match Interner.find_opt interner g with
    | Some id -> id
    | None -> Span.missing
  in
  qgrams_of ~resolve ~q s

(* ---- allocation-light id paths over pre-normalized text ---- *)

(* These feed {!Document}: the text is normalized once by the caller, grams
   are looked up in place ({!Interner.find_sub} returns {!Span.missing} as
   [-1] directly), and only flat int arrays come back — no per-token
   [Span.t] records, no per-gram substrings. *)

let qgram_ids interner ~q s =
  if q <= 0 then invalid_arg "Tokenizer.qgrams: q must be positive";
  let n = String.length s - q + 1 in
  if n <= 0 then [||]
  else Array.init n (fun i -> Interner.find_sub interner s ~off:i ~len:q)

let word_tokens interner s =
  let offsets = word_offsets s in
  let n = List.length offsets in
  let tokens = Array.make n 0
  and starts = Array.make n 0
  and lens = Array.make n 0 in
  List.iteri
    (fun i (off, len) ->
      tokens.(i) <- Interner.find_sub interner s ~off ~len;
      starts.(i) <- off;
      lens.(i) <- len)
    offsets;
  (tokens, starts, lens)
