(** A tokenized document.

    A document is a sequence of token positions [0 .. n_tokens - 1]; the
    substring [D\[start, len\]] of the paper is the [len] consecutive tokens
    beginning at [start]. Character extents let us map any token substring
    back to the original text. *)

type mode =
  | Word  (** word tokens — jaccard / cosine / dice *)
  | Gram of int  (** q-grams — edit distance / edit similarity *)

type t

val of_words : Interner.t -> string -> t
(** Tokenize a document into words against an existing (dictionary)
    interner; unknown words keep their position with an empty inverted
    list. *)

val of_grams : Interner.t -> q:int -> string -> t
(** Tokenize a document into q-grams (lookup mode). *)

val mode : t -> mode

val text : t -> string
(** The normalized document text. *)

val n_tokens : t -> int

val tokens : t -> int array
(** The flat token-id array, position [i] holding the id of token [i] (or
    {!Span.missing}). Shared, not a copy — callers must not mutate it. *)

val token_id : t -> int -> int
(** [token_id t i] is the interned id of position [i] (0-based), or
    {!Span.missing}. *)

val span : t -> int -> Span.t

val char_extent : t -> start:int -> len:int -> int * int
(** [char_extent t ~start ~len] is [(char_start, char_len)] of the substring
    covering token positions [start .. start+len-1].

    @raise Invalid_argument if the token range is out of bounds or empty. *)

val substring : t -> start:int -> len:int -> string
(** The normalized text of the token substring. *)

val token_multiset : t -> start:int -> len:int -> int array
(** Sorted token ids (including {!Span.missing} occurrences) of the
    substring — the multiset used to verify token-based similarities. *)
