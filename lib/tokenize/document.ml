type mode = Word | Gram of int

type t = { text : string; spans : Span.t array; mode : mode }

module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace
module Prof = Faerie_obs.Prof

let m_calls = Metrics.counter ~help:"document tokenizations" "tokenize_calls"

let m_tokens =
  Metrics.counter ~help:"tokens produced across all documents" "tokenize_tokens"

let m_doc_tokens =
  Metrics.histogram ~help:"tokens per tokenized document" "doc_tokens"

let finish t =
  Metrics.incr m_calls;
  let n = Array.length t.spans in
  Metrics.add m_tokens n;
  Metrics.observe m_doc_tokens (float_of_int n);
  t

let of_words interner raw =
  Prof.with_stage Prof.Tokenize (fun () ->
      Trace.with_span "tokenize" (fun () ->
          Faerie_util.Fault.site "tokenize";
          let text = Tokenizer.normalize raw in
          finish
            { text; spans = Tokenizer.words_lookup interner raw; mode = Word }))

let of_grams interner ~q raw =
  Prof.with_stage Prof.Tokenize (fun () ->
      Trace.with_span "tokenize" (fun () ->
          Faerie_util.Fault.site "tokenize";
          let text = Tokenizer.normalize raw in
          finish
            { text; spans = Tokenizer.qgrams_lookup interner ~q raw; mode = Gram q }))

let mode t = t.mode

let text t = t.text

let n_tokens t = Array.length t.spans

let check_range t ~start ~len name =
  if len <= 0 || start < 0 || start + len > Array.length t.spans then
    invalid_arg
      (Printf.sprintf "Document.%s: range (%d,%d) out of bounds [0,%d)" name
         start len (Array.length t.spans))

let token_id t i =
  if i < 0 || i >= Array.length t.spans then
    invalid_arg (Printf.sprintf "Document.token_id: %d out of bounds" i);
  t.spans.(i).Span.token

let span t i =
  if i < 0 || i >= Array.length t.spans then
    invalid_arg (Printf.sprintf "Document.span: %d out of bounds" i);
  t.spans.(i)

let char_extent t ~start ~len =
  check_range t ~start ~len "char_extent";
  let first = t.spans.(start) in
  let last = t.spans.(start + len - 1) in
  let char_start = first.Span.start_pos in
  let char_end = last.Span.start_pos + last.Span.len in
  (char_start, char_end - char_start)

let substring t ~start ~len =
  let char_start, char_len = char_extent t ~start ~len in
  String.sub t.text char_start char_len

let token_multiset t ~start ~len =
  check_range t ~start ~len "token_multiset";
  let ids = Array.init len (fun i -> t.spans.(start + i).Span.token) in
  Array.sort compare ids;
  ids
