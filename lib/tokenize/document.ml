type mode = Word | Gram of int

(* Struct-of-arrays: one flat int array of token ids, plus — for word
   documents only — parallel start/len arrays. Gram positions are implicit
   (gram [i] starts at [i] with length [q]), so a gram document carries a
   single int array instead of an array of [Span.t] records. *)
type positions = Gram_pos | Word_pos of { starts : int array; lens : int array }

type t = { text : string; tokens : int array; pos : positions; mode : mode }

module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace
module Prof = Faerie_obs.Prof

let m_calls = Metrics.counter ~help:"document tokenizations" "tokenize_calls"

let m_tokens =
  Metrics.counter ~help:"tokens produced across all documents" "tokenize_tokens"

let m_doc_tokens =
  Metrics.histogram ~help:"tokens per tokenized document" "doc_tokens"

let finish t =
  Metrics.incr m_calls;
  let n = Array.length t.tokens in
  Metrics.add m_tokens n;
  Metrics.observe m_doc_tokens (float_of_int n);
  t

let of_words interner raw =
  Prof.with_stage Prof.Tokenize (fun () ->
      Trace.with_span "tokenize" (fun () ->
          Faerie_util.Fault.site "tokenize";
          let text = Tokenizer.normalize raw in
          let tokens, starts, lens = Tokenizer.word_tokens interner text in
          finish { text; tokens; pos = Word_pos { starts; lens }; mode = Word }))

let of_grams interner ~q raw =
  Prof.with_stage Prof.Tokenize (fun () ->
      Trace.with_span "tokenize" (fun () ->
          Faerie_util.Fault.site "tokenize";
          let text = Tokenizer.normalize raw in
          let tokens = Tokenizer.qgram_ids interner ~q text in
          finish { text; tokens; pos = Gram_pos; mode = Gram q }))

let mode t = t.mode

let text t = t.text

let n_tokens t = Array.length t.tokens

let tokens t = t.tokens

let check_range t ~start ~len name =
  if len <= 0 || start < 0 || start + len > Array.length t.tokens then
    invalid_arg
      (Printf.sprintf "Document.%s: range (%d,%d) out of bounds [0,%d)" name
         start len (Array.length t.tokens))

let token_id t i =
  if i < 0 || i >= Array.length t.tokens then
    invalid_arg (Printf.sprintf "Document.token_id: %d out of bounds" i);
  t.tokens.(i)

let span t i =
  if i < 0 || i >= Array.length t.tokens then
    invalid_arg (Printf.sprintf "Document.span: %d out of bounds" i);
  match t.pos with
  | Gram_pos ->
      let q = match t.mode with Gram q -> q | Word -> assert false in
      { Span.token = t.tokens.(i); start_pos = i; len = q }
  | Word_pos { starts; lens } ->
      { Span.token = t.tokens.(i); start_pos = starts.(i); len = lens.(i) }

let char_extent t ~start ~len =
  check_range t ~start ~len "char_extent";
  match t.pos with
  | Gram_pos ->
      let q = match t.mode with Gram q -> q | Word -> assert false in
      (start, len - 1 + q)
  | Word_pos { starts; lens } ->
      let char_start = starts.(start) in
      let char_end = starts.(start + len - 1) + lens.(start + len - 1) in
      (char_start, char_end - char_start)

let substring t ~start ~len =
  let char_start, char_len = char_extent t ~start ~len in
  String.sub t.text char_start char_len

let token_multiset t ~start ~len =
  check_range t ~start ~len "token_multiset";
  let ids = Array.sub t.tokens start len in
  Array.sort compare ids;
  ids
