(** Slow-query capture for the serve path.

    Armed by [faerie serve --slow-ms T] / [--slowlog FILE]: keeps a
    bounded ring of the K slowest requests seen so far and writes every
    request over the threshold through to an NDJSON sink immediately
    (O_APPEND, one write(2) per record — the [Supervisor.Quarantine]
    sink discipline). Records are pre-rendered lines: the serve layer
    owns the record schema, this module owns retention and the sink.

    When armed, [Prof.with_stage] brackets also feed per-stage wall time
    into a per-domain scratch ({!doc_begin} / {!note_stage} /
    {!doc_end}), so the stage breakdown of a slow request is available
    even when the request was not sampled for tracing. Disarmed, every
    hook is one atomic load and allocates nothing ({!captures} proves
    it, mirroring [Prof.captures]). *)

val configure : ?capacity:int -> ?slow_ms:float -> ?path:string -> unit -> unit
(** Arm full capture. [capacity] (default 8) bounds the top-K ring;
    requests with wall time [>= slow_ms] are written through to [path]
    immediately, the rest of the ring is flushed at {!disarm}. Omitting
    [slow_ms] keeps ring-only capture (flush on disarm); omitting
    [path] keeps records in memory for the [{"op":"slowlog"}] admin
    op. Re-arming disarms (and flushes) the previous configuration. *)

val arm_stages : unit -> unit
(** Arm only the per-domain stage scratch — shard-process mode: the
    coordinator owns the ring, the shard measures stage breakdowns and
    ships them in Result frames. {!should_capture} is always [false]. *)

val disarm : unit -> unit
(** Flush unwritten ring entries to the sink, close it, clear state. *)

val armed : unit -> bool

val stage_armed : unit -> bool
(** Alias of {!armed}: guard used by [Prof.with_stage] (one atomic
    load on the disabled path). *)

val slow_ns : unit -> float
(** Write-through threshold in ns; [infinity] when none (ring-only). *)

(** {1 Per-domain stage scratch} — called on the extraction domain. *)

val doc_begin : unit -> unit
(** Zero this domain's scratch at the start of a document run. *)

val note_stage : int -> float -> unit
(** [note_stage i dt_ns] adds [dt_ns] to stage [i] (Prof stage index). *)

val doc_end : wall_ns:float -> trace:int -> unit
(** Seal the scratch with the document's wall time and trace id. *)

type doc = { wall_ns : float; trace : int; stages_ns : float array }

val last_doc : unit -> doc option
(** The sealed scratch of the last document run on this domain ([None]
    before any {!doc_end}). Read from the completion callback, which
    the supervisor runs on the same worker domain as the extraction. *)

val stage_clock : unit -> float
(** [Trace.now_ns] as a float — the clock the stage brackets use, so
    injected test clocks drive slowlog timings too. *)

val n_stages : int

val stage_name : int -> string
(** Prof stage names: tokenize, heap_merge, windows, verify. *)

(** {1 Capture ring} — called on the serve layer. *)

val should_capture : wall_ns:float -> bool
(** Would a request with this wall time be retained? True when it
    crosses the threshold or beats the ring (or the ring has room).
    Lets the caller skip rendering the record for fast requests. *)

val capture : wall_ns:float -> string -> unit
(** Retain a pre-rendered NDJSON record line (no trailing newline).
    Over-threshold records are appended to the sink immediately;
    ring-only records are flushed at {!disarm}. *)

val drain : unit -> (float * string) list
(** Current ring contents, slowest first, as [(wall_ns, line)]. Does
    not clear — the ring is a "K slowest so far" window, not a queue. *)

val total : unit -> int
(** Records captured since arming (including ones evicted since). *)

val flush : unit -> unit
(** Write ring entries that never crossed the threshold to the sink. *)

val captures : unit -> int
(** Armed-path activations since process start; stays at zero while
    disarmed (the [Prof.captures] guarantee). *)
