(** Memory/self-profiling: GC telemetry and flame profiles.

    Two halves share this module. {e GC telemetry} captures
    [Gc.quick_stat] deltas around instrumented pipeline stages and around
    each document in [Extractor.run], and publishes them through
    {!Metrics} (so they inherit shard merging, suppression and the
    export formats). {e Flame profiles} fold a drained {!Trace} span list
    into Brendan-Gregg folded-stack frames with self-time attribution.

    Profiling is off by default, with the same discipline as Trace and
    Explain: a disabled {!with_stage}/{!with_doc} is exactly one atomic
    flag check plus the call to the wrapped function — zero
    [Gc.quick_stat] calls (asserted by [test_obs] via {!captures}).

    Published metrics, all on the default registry:
    - [gc_minor_words], [gc_promoted_words], [gc_major_collections] —
      counters, per-document deltas summed (from {!with_doc});
    - [gc_minor_words_STAGE], [gc_promoted_words_STAGE] for each stage —
      counters, per-stage deltas (from {!with_stage}). Stage deltas are
      {e inclusive}: a stage nested inside another (windows inside a heap
      merge) counts toward both;
    - [gc_top_heap_bytes] — [`Max] gauge, largest heap watermark seen by
      any domain;
    - [doc_alloc_words] — histogram of words allocated per document
      (minor + major - promoted), the input to allocation percentiles in
      bench snapshots. *)

type stage = Tokenize | Heap_merge | Windows | Verify

val stage_name : stage -> string
(** Lowercase metric suffix: ["tokenize"], ["heap_merge"], ["windows"],
    ["verify"]. *)

val enable : unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

val captures : unit -> int
(** Number of GC captures ([Gc.quick_stat] or [Gc.counters]) taken since
    process start. Test hook for the disabled-overhead contract: an
    extraction run with profiling disabled must leave this unchanged. *)

val with_stage : stage -> (unit -> 'a) -> 'a
(** Run the function, attributing its GC deltas to [stage]. Records on
    exceptional exit too; always re-raises. *)

val with_doc : (unit -> 'a) -> 'a
(** Run one document's extraction, recording total GC deltas, the
    allocated-words histogram observation and the heap watermark. *)

val note_top_heap : unit -> unit
(** Record the current heap watermark into [gc_top_heap_bytes] (one
    [Gc.quick_stat] when enabled; a no-op when disabled). Called by
    [Parallel] workers before they retire so per-domain watermarks
    survive into the max-merged gauge. *)

val max_rss_bytes : unit -> int
(** The process's peak resident set size in bytes — Linux [VmHWM] from
    [/proc/self/status] (the counter [getrusage]'s [ru_maxrss] reads);
    [0] where procfs is unavailable. *)

val note_rss : unit -> unit
(** Record {!max_rss_bytes} into the [`Max]-agg [max_rss_bytes] gauge.
    Not gated on {!enabled}: the serve path samples it at stats and
    health time, so merged snapshots carry the cluster-wide high-water
    mark like [gc_top_heap_bytes]. *)

(** {1 Flame profiles} *)

type frame = {
  stack : string list;  (** outermost-first span names *)
  self_ns : int64;  (** duration minus children's durations; may be
                        negative if child spans overlap pathologically *)
  calls : int;  (** spans aggregated into this frame *)
}

val flame_of_spans : Trace.span list -> frame list
(** Fold a {!Trace.drain} result into frames. Nesting is reconstructed
    per domain from span [depth] and interval containment; identical
    stacks from different domains merge. Frames are sorted by stack. *)

val to_folded : frame list -> string
(** Brendan-Gregg folded-stack lines, ["a;b;c SELF_NS\n"], one per frame
    with positive self time (schema locked by [test_obs]). Feed to
    flamegraph.pl or speedscope. *)

val render_top : ?top:int -> frame list -> string
(** Human table of the [top] (default 10) frames by self time. *)
