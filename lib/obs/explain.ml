type reason =
  | Lazy_bound of { tl : int; count : int }
  | Bucket_pruned
  | Span_pruned
  | Shift_jumped of int

type event =
  | Doc of { doc_id : int }
  | Entity of { entity : int; e_len : int; n_positions : int }
  | Pruned of { entity : int; reason : reason }
  | Window of { entity : int; first : int; last : int }
  | Window_skip of { entity : int; reason : reason }
  | Candidate of {
      entity : int;
      start : int;
      len : int;
      count : int;
      t : int;
      survived : bool;
    }
  | Filter_done of { survivors : int }
  | Verifier of { choice : string }
  | Verify of { entity : int; start : int; len : int; matched : bool }
  | Selection of { total : int; kept : int }

type t = {
  mutable events : event list; (* newest first *)
  mutable n_events : int;
  mutable cur_entity : int; (* context for window-search hooks *)
}

let create () = { events = []; n_events = 0; cur_entity = -1 }

(* Fast global guard: number of sinks currently installed across all
   domains. Hot paths check this single flag before paying for the
   per-domain lookup or building an event payload. *)
let n_armed = Atomic.make 0

let armed () = Atomic.get n_armed > 0

let slot : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get slot)

let with_sink sink f =
  let r = Domain.DLS.get slot in
  let saved = !r in
  r := Some sink;
  Atomic.incr n_armed;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr n_armed;
      r := saved)
    f

let emit sink ev =
  sink.events <- ev :: sink.events;
  sink.n_events <- sink.n_events + 1

let record ev = match current () with None -> () | Some sink -> emit sink ev

let set_entity sink entity = sink.cur_entity <- entity

let skip reason =
  match current () with
  | None -> ()
  | Some sink -> emit sink (Window_skip { entity = sink.cur_entity; reason })

let events t = List.rev t.events

let length t = t.n_events

let clear t =
  t.events <- [];
  t.n_events <- 0;
  t.cur_entity <- -1

(* ---- summary ---- *)

type summary = {
  docs : int;
  entities_seen : int;
  pruned_lazy : int;
  buckets_pruned : int;
  windows : int;
  span_pruned : int;
  shift_jumped : int;
  candidates : int;
  candidates_survived : int;
  survivors : int;
  verify_calls : int;
  matched : int;
}

let empty_summary =
  {
    docs = 0;
    entities_seen = 0;
    pruned_lazy = 0;
    buckets_pruned = 0;
    windows = 0;
    span_pruned = 0;
    shift_jumped = 0;
    candidates = 0;
    candidates_survived = 0;
    survivors = 0;
    verify_calls = 0;
    matched = 0;
  }

let summarize t =
  List.fold_left
    (fun s ev ->
      match ev with
      | Doc _ -> { s with docs = s.docs + 1 }
      | Entity _ -> { s with entities_seen = s.entities_seen + 1 }
      | Pruned { reason = Lazy_bound _; _ } ->
          { s with pruned_lazy = s.pruned_lazy + 1 }
      | Pruned { reason = Bucket_pruned; _ } ->
          { s with buckets_pruned = s.buckets_pruned + 1 }
      | Pruned _ -> s
      | Window _ -> { s with windows = s.windows + 1 }
      | Window_skip { reason = Span_pruned; _ } ->
          { s with span_pruned = s.span_pruned + 1 }
      | Window_skip { reason = Shift_jumped _; _ } ->
          { s with shift_jumped = s.shift_jumped + 1 }
      | Window_skip _ -> s
      | Candidate { survived; _ } ->
          {
            s with
            candidates = s.candidates + 1;
            candidates_survived =
              (s.candidates_survived + if survived then 1 else 0);
          }
      | Filter_done { survivors } -> { s with survivors = s.survivors + survivors }
      | Verifier _ -> s
      | Verify { matched; _ } ->
          {
            s with
            verify_calls = s.verify_calls + 1;
            matched = (s.matched + if matched then 1 else 0);
          }
      | Selection _ -> s)
    empty_summary t.events

(* ---- rendering ---- *)

let pct part whole =
  if whole <= 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

(* Per-entity cost aggregation for the length groups and the top-k. *)
type entity_agg = {
  mutable e_len : int;
  mutable streams : int;
  mutable positions : int;
  mutable a_candidates : int;
  mutable a_verifies : int;
  mutable a_matches : int;
}

let aggregate t =
  let tbl : (int, entity_agg) Hashtbl.t = Hashtbl.create 64 in
  let get entity =
    match Hashtbl.find_opt tbl entity with
    | Some a -> a
    | None ->
        let a =
          {
            e_len = 0;
            streams = 0;
            positions = 0;
            a_candidates = 0;
            a_verifies = 0;
            a_matches = 0;
          }
        in
        Hashtbl.add tbl entity a;
        a
  in
  List.iter
    (fun ev ->
      match ev with
      | Entity { entity; e_len; n_positions } ->
          let a = get entity in
          a.e_len <- e_len;
          a.streams <- a.streams + 1;
          a.positions <- a.positions + n_positions
      | Candidate { entity; _ } ->
          let a = get entity in
          a.a_candidates <- a.a_candidates + 1
      | Verify { entity; matched; _ } ->
          let a = get entity in
          a.a_verifies <- a.a_verifies + 1;
          if matched then a.a_matches <- a.a_matches + 1
      | _ -> ())
    t.events;
  tbl

let render ?(top = 5) ?(name_of = fun id -> Printf.sprintf "e%d" id) t =
  let s = summarize t in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (str ^ "\n")) fmt in
  line "filter-cascade waterfall (%d events, %d document%s)" t.n_events s.docs
    (if s.docs = 1 then "" else "s");
  let after_lazy = s.entities_seen - s.pruned_lazy in
  line "  entities streamed off the heap   %8d" s.entities_seen;
  line "  | lazy bound (Tl)                %8d pruned  (%5.1f%%) -> %d survive"
    s.pruned_lazy (pct s.pruned_lazy s.entities_seen) after_lazy;
  line "  | bucket count                   %8d buckets pruned" s.buckets_pruned;
  line "  | window search                  %8d windows  (%d span-pruned, %d shift-jumps)"
    s.windows s.span_pruned s.shift_jumped;
  let failed = s.candidates - s.candidates_survived in
  line "  candidates counted               %8d" s.candidates;
  line "  | count test (>= T)              %8d pruned  (%5.1f%%) -> %d survive"
    failed (pct failed s.candidates) s.candidates_survived;
  line "  survivors after dedup            %8d  (%.1f%% of candidates)" s.survivors
    (pct s.survivors s.candidates);
  let wasted = s.verify_calls - s.matched in
  line "  verified matches                 %8d of %d calls  (%d wasted, %.1f%%)"
    s.matched s.verify_calls wasted (pct wasted s.verify_calls);
  let tbl = aggregate t in
  if Hashtbl.length tbl > 0 then begin
    (* Per-entity-length-group heap-merge stats: how much merge traffic
       each entity size class generated. *)
    let groups : (int, int * int * int) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ a ->
        let e, st, p =
          Option.value ~default:(0, 0, 0) (Hashtbl.find_opt groups a.e_len)
        in
        Hashtbl.replace groups a.e_len (e + 1, st + a.streams, p + a.positions))
      tbl;
    let group_rows =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) groups [])
    in
    line "heap-merge stats by entity token length";
    List.iter
      (fun (e_len, (n, streams, positions)) ->
        line "  len %2d: %5d entities, %6d list streams, %8d positions merged"
          e_len n streams positions)
      group_rows;
    let by_cost =
      List.sort
        (fun (_, a) (_, b) ->
          compare
            (b.a_candidates + b.a_verifies, b.a_candidates)
            (a.a_candidates + a.a_verifies, a.a_candidates))
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
    in
    line "top-%d most expensive entities (candidates + verifications)" top;
    List.iteri
      (fun i (entity, a) ->
        if i < top then
          line "  %-24s %6d candidates, %5d verifications, %4d matches"
            (name_of entity) a.a_candidates a.a_verifies a.a_matches)
      by_cost
  end;
  Buffer.contents buf

(* ---- JSONL export ---- *)

let to_jsonl t =
  let buf = Buffer.create (t.n_events * 48) in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun ev ->
      (match ev with
      | Doc { doc_id } -> add "{\"ev\":\"doc\",\"doc_id\":%d}" doc_id
      | Entity { entity; e_len; n_positions } ->
          add "{\"ev\":\"entity\",\"entity\":%d,\"e_len\":%d,\"positions\":%d}"
            entity e_len n_positions
      | Pruned { entity; reason = Lazy_bound { tl; count } } ->
          add "{\"ev\":\"pruned\",\"entity\":%d,\"reason\":\"lazy\",\"tl\":%d,\"count\":%d}"
            entity tl count
      | Pruned { entity; reason = Bucket_pruned } ->
          add "{\"ev\":\"pruned\",\"entity\":%d,\"reason\":\"bucket\"}" entity
      | Pruned { entity; reason = Span_pruned } ->
          add "{\"ev\":\"pruned\",\"entity\":%d,\"reason\":\"span\"}" entity
      | Pruned { entity; reason = Shift_jumped n } ->
          add "{\"ev\":\"pruned\",\"entity\":%d,\"reason\":\"shift\",\"jump\":%d}"
            entity n
      | Window { entity; first; last } ->
          add "{\"ev\":\"window\",\"entity\":%d,\"first\":%d,\"last\":%d}" entity
            first last
      | Window_skip { entity; reason = Span_pruned } ->
          add "{\"ev\":\"window_skip\",\"entity\":%d,\"reason\":\"span\"}" entity
      | Window_skip { entity; reason = Shift_jumped n } ->
          add "{\"ev\":\"window_skip\",\"entity\":%d,\"reason\":\"shift\",\"jump\":%d}"
            entity n
      | Window_skip { entity; reason = Lazy_bound { tl; count } } ->
          add "{\"ev\":\"window_skip\",\"entity\":%d,\"reason\":\"lazy\",\"tl\":%d,\"count\":%d}"
            entity tl count
      | Window_skip { entity; reason = Bucket_pruned } ->
          add "{\"ev\":\"window_skip\",\"entity\":%d,\"reason\":\"bucket\"}" entity
      | Candidate { entity; start; len; count; t; survived } ->
          add
            "{\"ev\":\"candidate\",\"entity\":%d,\"start\":%d,\"len\":%d,\"count\":%d,\"t\":%d,\"survived\":%b}"
            entity start len count t survived
      | Filter_done { survivors } ->
          add "{\"ev\":\"filter_done\",\"survivors\":%d}" survivors
      | Verifier { choice } -> add "{\"ev\":\"verifier\",\"choice\":%S}" choice
      | Verify { entity; start; len; matched } ->
          add "{\"ev\":\"verify\",\"entity\":%d,\"start\":%d,\"len\":%d,\"matched\":%b}"
            entity start len matched
      | Selection { total; kept } ->
          add "{\"ev\":\"selection\",\"total\":%d,\"kept\":%d}" total kept);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
