(* Deterministic head sampling for the serve path. The decision for a
   document depends only on (seed, ordinal) — a splitmix64-style
   finalizer maps the pair to a uniform fraction in [0,1) — so any
   process that knows a document's arrival ordinal reaches the same
   verdict: a 4-shard cluster run samples exactly the ordinals a
   1-shard run would (asserted by test_obs). *)

type config = { rate : float; seed : int }

let state : config option Atomic.t = Atomic.make None

(* Armed-path probe, mirroring Prof.captures: tests assert it stays at
   zero when sampling is disarmed, proving the hot path never reaches
   the decision logic. *)
let n_decisions = Atomic.make 0

let captures () = Atomic.get n_decisions

let configure ?(seed = 0) rate =
  if rate > 0. then Atomic.set state (Some { rate = Float.min rate 1.; seed })
  else Atomic.set state None

let disarm () = Atomic.set state None

let armed () = Atomic.get state <> None

let rate () = match Atomic.get state with Some c -> c.rate | None -> 0.

(* splitmix64 finalizer over (seed, ord), as Supervisor.mix_int does for
   fault keys. The low 53 bits become an IEEE-exact fraction in [0,1). *)
let fraction ~seed ord =
  let h =
    let open Int64 in
    let h = add (of_int seed) (mul 0x9e3779b97f4a7c15L (add (of_int ord) 1L)) in
    let h = logxor h (shift_right_logical h 30) in
    let h = mul h 0xbf58476d1ce4e5b9L in
    let h = logxor h (shift_right_logical h 27) in
    let h = mul h 0x94d049bb133111ebL in
    logxor h (shift_right_logical h 31)
  in
  let frac = Int64.to_int h land ((1 lsl 53) - 1) in
  float_of_int frac /. 9007199254740992. (* 2^53 *)

let decide ord =
  match Atomic.get state with
  | None -> false
  | Some { rate; seed } ->
      Atomic.incr n_decisions;
      fraction ~seed ord < rate

(* Trace ids are ordinal + 1: Trace reserves 0 for "no trace", and the
   cluster coordinator already tags Doc frames with doc + 1. *)
let trace_id ord = ord + 1

let ord_of_trace tid = tid - 1
