type stage = Tokenize | Heap_merge | Windows | Verify

let stage_name = function
  | Tokenize -> "tokenize"
  | Heap_merge -> "heap_merge"
  | Windows -> "windows"
  | Verify -> "verify"

let stage_idx = function
  | Tokenize -> 0
  | Heap_merge -> 1
  | Windows -> 2
  | Verify -> 3

let stages = [| Tokenize; Heap_merge; Windows; Verify |]

let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let n_captures = Atomic.make 0
let captures () = Atomic.get n_captures

(* [quick_stat] fields are flushed only at GC events, so a short stage
   that triggers no minor collection would read a zero delta. The
   dedicated [minor_words] counter is precise (it adds the current
   allocation-pointer offset), and minor words dominate every derived
   quantity, so splice it in. *)
let capture () =
  Atomic.incr n_captures;
  let s = Gc.quick_stat () in
  { s with Gc.minor_words = Gc.minor_words () }

let word_bytes = Sys.word_size / 8

let m_minor =
  Metrics.counter ~help:"minor words allocated across profiled documents"
    "gc_minor_words"

let m_promoted =
  Metrics.counter
    ~help:"words promoted to the major heap across profiled documents"
    "gc_promoted_words"

let m_major =
  Metrics.counter ~help:"major collections across profiled documents"
    "gc_major_collections"

let m_top_heap =
  Metrics.gauge ~agg:`Max
    ~help:"largest heap watermark observed by any domain (bytes)"
    "gc_top_heap_bytes"

let m_max_rss =
  Metrics.gauge ~agg:`Max
    ~help:"process peak resident set size in bytes (VmHWM)" "max_rss_bytes"

(* OCaml's Unix library binds no getrusage and this repo adds no C stubs,
   so read the counter ru_maxrss is sourced from on Linux — VmHWM in
   /proc/self/status (kB) — and gate it to 0 where procfs is absent. *)
let max_rss_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:" ->
            let digits =
              String.to_seq line
              |> Seq.filter (fun c -> c >= '0' && c <= '9')
              |> String.of_seq
            in
            (try int_of_string digits * 1024 with Failure _ -> 0)
        | _ -> scan ()
      in
      let v = scan () in
      close_in_noerr ic;
      v

(* Unconditional (not gated on the profiling flag): the serve path
   samples it at stats/health time, a few calls per interval. *)
let note_rss () = Metrics.set_max m_max_rss (float_of_int (max_rss_bytes ()))

let m_doc_alloc =
  Metrics.histogram ~help:"words allocated per document (minor+major-promoted)"
    ~buckets:[| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10 |]
    "doc_alloc_words"

let m_stage_minor =
  Array.map
    (fun st ->
      Metrics.counter
        ~help:("minor words allocated in stage " ^ stage_name st)
        ("gc_minor_words_" ^ stage_name st))
    stages

let m_stage_promoted =
  Array.map
    (fun st ->
      Metrics.counter
        ~help:("words promoted in stage " ^ stage_name st)
        ("gc_promoted_words_" ^ stage_name st))
    stages

(* GC stat fields are floats; counters are ints. Deltas from a single
   domain's quick_stat are non-negative in practice, but clamp anyway —
   [Metrics.add] rejects negatives. *)
let clampi f = if f > 0. then int_of_float f else 0

let note_watermark (s : Gc.stat) =
  Metrics.set_max m_top_heap (float_of_int (s.top_heap_words * word_bytes))

(* Stage brackets run on the hot path — the windows stage fires once per
   surviving entity — so the enabled path must not allocate, or the probe
   perturbs the quantity it measures. [Gc.minor_words] is an unboxed-float
   [@@noalloc] external, the deltas stay in registers (the clamp is inlined
   rather than calling [clampi], which would box its argument), and
   exception safety comes from [match ... with exception] instead of a
   [Fun.protect] closure that would capture (and box) the start values.

   Promoted words have no unboxed accessor — [Gc.counters] allocates a
   tuple — so only the per-document stages (everything but Windows) read
   them. Promotion during a windows search is still attributed to the
   enclosing heap_merge stage: stage deltas are inclusive by contract. *)
let promoted () =
  let _, p, _ = Gc.counters () in
  p

(* A second facility shares these brackets: when {!Slowlog} is armed,
   each stage's wall time accumulates into the per-domain slowlog
   scratch, so a slow request's stage breakdown can be reconstructed
   even when it was not sampled for tracing. Disabled cost is one more
   atomic load; when slowlog is armed the clock reads box two floats
   per bracket (documented perturbation of the GC stage counters — the
   two facilities are rarely armed together outside tests). *)
let with_stage st f =
  let prof_on = Atomic.get on in
  let slow_on = Slowlog.stage_armed () in
  if not (prof_on || slow_on) then f ()
  else begin
    if prof_on then Atomic.incr n_captures;
    let i = stage_idx st in
    let track_promoted = prof_on && st <> Windows in
    let p0 = if track_promoted then promoted () else 0. in
    let m0 = if prof_on then Gc.minor_words () else 0. in
    let t0 = if slow_on then Slowlog.stage_clock () else 0. in
    match f () with
    | v ->
        if prof_on then begin
          let d = Gc.minor_words () -. m0 in
          Metrics.add m_stage_minor.(i) (if d > 0. then int_of_float d else 0);
          if track_promoted then
            Metrics.add m_stage_promoted.(i) (clampi (promoted () -. p0))
        end;
        if slow_on then Slowlog.note_stage i (Slowlog.stage_clock () -. t0);
        v
    | exception e ->
        if prof_on then begin
          let d = Gc.minor_words () -. m0 in
          Metrics.add m_stage_minor.(i) (if d > 0. then int_of_float d else 0);
          if track_promoted then
            Metrics.add m_stage_promoted.(i) (clampi (promoted () -. p0))
        end;
        if slow_on then Slowlog.note_stage i (Slowlog.stage_clock () -. t0);
        raise e
  end

let allocated (s : Gc.stat) = s.minor_words +. s.major_words -. s.promoted_words

let with_doc f =
  if not (Atomic.get on) then f ()
  else begin
    let s0 = capture () in
    Fun.protect
      ~finally:(fun () ->
        let s1 = capture () in
        Metrics.add m_minor (clampi (s1.minor_words -. s0.minor_words));
        Metrics.add m_promoted
          (clampi (s1.promoted_words -. s0.promoted_words));
        Metrics.add m_major (max 0 (s1.major_collections - s0.major_collections));
        Metrics.observe m_doc_alloc (Float.max 0. (allocated s1 -. allocated s0));
        note_watermark s1)
      f
  end

let note_top_heap () = if Atomic.get on then note_watermark (capture ())

(* ------------------------------------------------------------------ *)
(* Flame profiles                                                      *)

type frame = { stack : string list; self_ns : int64; calls : int }

let flame_of_spans spans =
  (* Regroup per domain, preserving drain order (start_ns-sorted) within
     each: nesting only makes sense inside one domain's span stream. *)
  let by_domain = Hashtbl.create 7 in
  let domains = ref [] in
  List.iter
    (fun (s : Trace.span) ->
      match Hashtbl.find_opt by_domain s.domain with
      | Some r -> r := s :: !r
      | None ->
          Hashtbl.add by_domain s.domain (ref [ s ]);
          domains := s.domain :: !domains)
    spans;
  let acc = Hashtbl.create 32 in
  let bump path dself dcalls =
    match Hashtbl.find_opt acc path with
    | Some (s, c) ->
        s := Int64.add !s dself;
        c := !c + dcalls
    | None -> Hashtbl.add acc path (ref dself, ref dcalls)
  in
  List.iter
    (fun dom ->
      let dspans = List.rev !(Hashtbl.find by_domain dom) in
      (* Enclosing spans, innermost first: (span, end_ns, path). A span
         on the stack encloses the next one iff it is strictly shallower
         and its interval still covers the next start. *)
      let stack = ref [] in
      List.iter
        (fun (s : Trace.span) ->
          let rec pop () =
            match !stack with
            | ((top : Trace.span), top_end, _) :: rest
              when top.depth >= s.depth || Int64.compare top_end s.start_ns <= 0
              ->
                stack := rest;
                pop ()
            | _ -> ()
          in
          pop ();
          let parent = match !stack with (_, _, p) :: _ -> Some p | [] -> None in
          let path =
            match parent with Some p -> p @ [ s.name ] | None -> [ s.name ]
          in
          bump path s.dur_ns 1;
          (* Self time = own duration minus children's durations: charge
             this span's full duration to its frame, discharge it from
             the parent's. *)
          (match parent with
          | Some p -> bump p (Int64.neg s.dur_ns) 0
          | None -> ());
          stack := (s, Int64.add s.start_ns s.dur_ns, path) :: !stack)
        dspans)
    (List.rev !domains);
  Hashtbl.fold
    (fun path (s, c) l -> { stack = path; self_ns = !s; calls = !c } :: l)
    acc []
  |> List.sort (fun a b -> compare a.stack b.stack)

let to_folded frames =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      if Int64.compare f.self_ns 0L > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%s %Ld\n" (String.concat ";" f.stack) f.self_ns))
    frames;
  Buffer.contents buf

let render_top ?(top = 10) frames =
  let by_self =
    List.sort (fun a b -> Int64.compare b.self_ns a.self_ns) frames
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%12s %8s  %s\n" "SELF_NS" "CALLS" "STACK");
  List.iteri
    (fun i f ->
      if i < top then
        Buffer.add_string buf
          (Printf.sprintf "%12Ld %8d  %s\n" (Int64.max 0L f.self_ns) f.calls
             (String.concat ";" f.stack)))
    by_self;
  Buffer.contents buf
