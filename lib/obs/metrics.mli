(** Process-wide, domain-safe metrics registry.

    Three metric kinds — monotonic {e counters}, {e gauges} and fixed-bucket
    {e histograms} — live in a registry. Writes go to a per-domain {e shard}
    (plain mutable arrays reached through domain-local storage), so the hot
    path takes no lock and performs no atomic read-modify-write; a snapshot
    merges every shard under the registry lock. Merge semantics: counters
    and histogram cells sum across shards; gauges merge according to their
    [agg] mode — [`Sum] gauges sum (treat the gauge as each domain's
    contribution to a total, and set it from one domain when you mean an
    absolute value), [`Max] gauges take the maximum across shards
    (high-water marks such as heap watermarks).

    Metric handles are cheap value records; register them once at module
    initialization ([let m = Metrics.counter "name"]) and use them from any
    domain. Registering the same name twice returns the same metric (the
    kinds must agree).

    Snapshots export as JSON-lines ({!to_jsonl}, one object per metric) and
    Prometheus text ({!to_prometheus}). Both list metrics in registration
    order, so output is deterministic for a given binary.

    The [default] registry is the one all library instrumentation writes
    to; {!create} builds private registries for tests. *)

type registry

val default : registry
(** The process-wide registry used by all Faerie instrumentation. *)

val create : unit -> registry
(** A fresh, empty, independent registry (for tests). *)

type counter

type gauge

type histogram

val counter : ?registry:registry -> ?help:string -> string -> counter
(** Register (or look up) a monotonic counter.
    @raise Invalid_argument if [name] exists with a different kind. *)

val gauge :
  ?registry:registry -> ?help:string -> ?agg:[ `Sum | `Max ] -> string -> gauge
(** Register (or look up) a gauge. [agg] picks the cross-shard merge used
    by {!snapshot}: [`Sum] (default) adds the per-domain cells, [`Max]
    keeps the largest. Re-registration must agree on [agg].
    @raise Invalid_argument if [name] exists with a different kind/agg. *)

val labeled_gauge :
  ?registry:registry ->
  ?help:string ->
  ?agg:[ `Sum | `Max ] ->
  label:string * string * string ->
  string ->
  gauge
(** Register (or look up) a gauge that exports as the labeled Prometheus
    series [family{key="value"}] given [label = (family, key, value)]
    — the general form behind {!indexed_gauge}[ ~label], for info-style
    series whose label is not a small integer (e.g. [build_info]'s git
    revision). Identity, JSONL export and lookups stay on [name].
    @raise Invalid_argument on a label mismatch with a prior
    registration. *)

val indexed_gauge :
  ?registry:registry ->
  ?help:string ->
  ?agg:[ `Sum | `Max ] ->
  ?label:string ->
  string ->
  int ->
  gauge
(** [indexed_gauge name i] registers (or looks up) the gauge ["name_i"] —
    one instance of a per-member family such as a cluster's per-shard
    ["shard_up_0"], ["shard_up_1"], … gauges. Same semantics and
    constraints as {!gauge} applied to the composed name.

    [~label:key] records the member as the labeled series
    [name{key="i"}]: the Prometheus export renders the family once with
    one labeled sample per member instead of name-suffixed series (the
    JSONL export and all lookups keep using the composed ["name_i"]).
    Re-registration must agree on the label.
    @raise Invalid_argument on a label mismatch with a prior registration. *)

val histogram :
  ?registry:registry -> ?help:string -> ?buckets:float array -> string -> histogram
(** [buckets] are the ascending upper bounds of the histogram cells; an
    implicit overflow cell captures observations above the last bound.
    Default: decades from [1.] to [1e9].
    @raise Invalid_argument on an empty or non-ascending [buckets], or if
    [name] exists with a different kind or bucket layout. *)

val add : counter -> int -> unit
(** Lock-free (per-domain shard) add. Negative deltas are rejected with
    [Invalid_argument]: counters are monotonic. *)

val incr : counter -> unit

val set : gauge -> float -> unit

val add_gauge : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Raise this domain's cell to at least the given value. On a [`Max]
    gauge this records a process-wide high-water mark once shards merge. *)

val observe : histogram -> float -> unit

val observe_ex : histogram -> float -> trace:int -> unit
(** {!observe}, additionally retaining [(trace, value)] as the target
    bucket's {e exemplar} when it beats the incumbent (larger value
    wins; value ties break toward the larger trace id, so the choice is
    deterministic in any observation order). [trace = 0] records no
    exemplar. A separate entry point — not an optional argument on
    {!observe} — so the untraced hot path stays allocation-free. *)

val with_suppressed : ?registry:registry -> (unit -> 'a) -> 'a
(** Run [f] with this domain's writes to the registry discarded (they land
    in a scratch shard that no snapshot reads). Nests; affects only the
    calling domain. *)

(** {1 Snapshots and export} *)

type histogram_snapshot = {
  upper : float array;  (** bucket upper bounds, ascending *)
  counts : int array;  (** per-cell counts; length = [Array.length upper + 1],
                           the extra cell is the overflow bucket *)
  sum : float;  (** sum of all observed values *)
  count : int;  (** number of observations = sum of [counts] *)
  exemplars : (int * float) array;
      (** at most one [(trace, value)] exemplar per cell ([trace = 0] =
          none for that cell); [[||]] when the histogram never saw a
          traced observation. Merges take the larger value (ties toward
          the larger trace id). *)
}

type gauge_snapshot = {
  value : float;
  agg : [ `Sum | `Max ];  (** merge mode, for cross-snapshot merging *)
  label : (string * string * string) option;
      (** [(family, key, value)] for labeled {!indexed_gauge} members *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * gauge_snapshot) list;
  histograms : (string * histogram_snapshot) list;
}
(** All lists are in registration order. Snapshots are self-describing
    (gauges carry their [agg] and label), so they can be shipped across a
    process boundary and merged without access to the source registry. *)

val snapshot : ?registry:registry -> unit -> snapshot

val merge_snapshots : snapshot list -> snapshot
(** Merge snapshots with the same semantics {!snapshot} applies to
    per-domain shards, one level up: counters sum, gauges combine by their
    recorded [agg] ([`Sum] adds, [`Max] keeps the largest), histogram
    cells sum when bucket layouts agree (a mismatched layout keeps the
    first-seen cells). Metric lists in the result are sorted by name, so
    the merge is invariant under permutation of its inputs and under
    re-association (asserted by qcheck in [test_obs]). *)

val counter_value : snapshot -> string -> int
(** Value of a counter in a snapshot; [0] when not present. *)

val gauge_value : snapshot -> string -> float
(** Value of a gauge in a snapshot; [0.] when not present. *)

val render_jsonl : snapshot -> string
(** Render an arbitrary snapshot (e.g. a {!merge_snapshots} result) in the
    {!to_jsonl} schema. *)

val render_prometheus : ?registry:registry -> snapshot -> string
(** Render an arbitrary snapshot in the {!to_prometheus} format. [registry]
    (default: {!default}) supplies [# HELP] text for the names it knows;
    unknown names render without a HELP line. *)

val to_jsonl : ?registry:registry -> unit -> string
(** One JSON object per line, schema (locked by [test_obs]):
    {v
    {"type":"counter","name":N,"value":V}
    {"type":"gauge","name":N,"value":V}
    {"type":"histogram","name":N,"upper":[...],"counts":[...],"sum":S,"count":C}
    v} *)

val to_prometheus : ?registry:registry -> unit -> string
(** Prometheus text exposition format ([# HELP] / [# TYPE] comments,
    cumulative [_bucket{le="..."}] cells for histograms; labeled
    {!indexed_gauge} members as [family{key="value"}] samples; bucket
    exemplars as OpenMetrics [# {trace_id="..."} value] suffixes). *)

val reset : ?registry:registry -> unit -> unit
(** Zero every metric in every shard (registrations are kept). *)
