(** Machine-readable performance snapshots.

    Three pieces: percentile estimation over {!Metrics.histogram_snapshot},
    a minimal JSON codec (the library stack has no JSON dependency), and
    the [faerie-bench-v1] snapshot schema written by [bench --json] and
    compared by [faerie_cli regress]. *)

val quantile : Metrics.histogram_snapshot -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0. <= q <= 1.]) of the
    observations recorded in [h] by walking the cumulative bucket counts
    and interpolating linearly inside the bucket holding the target rank
    (the first bucket interpolates from [0.], the overflow bucket reports
    its lower bound — the histogram carries no upper limit there).
    Returns [nan] when the histogram is empty.
    @raise Invalid_argument if [q] is outside [0., 1.]. *)

(** {1 Minimal JSON} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  (** Strict parser for the JSON this library itself writes (objects,
      arrays, strings with the common escapes, numbers, booleans, null).
      Errors carry a byte offset. Trailing whitespace is allowed; any
      other trailing input is an error. *)

  val to_string : t -> string
  (** Compact (no whitespace) rendering. Object fields keep their order. *)

  val member : string -> t -> t option
  (** Field lookup; [None] on missing field or non-object. *)

  val to_float : t -> float option

  val to_int : t -> int option

  val to_str : t -> string option

  val to_list : t -> t list option
end

(** {1 Bench snapshots (schema [faerie-bench-v1])} *)

type exhibit = {
  ex_name : string;
  wall_s : float;  (** wall time for the whole exhibit *)
  tokens : int;  (** [tokenize_tokens] counter *)
  tokens_per_s : float;
  candidates : int;  (** [candidates_generated] *)
  pruned : int;  (** [entities_pruned_lazy] + [buckets_pruned] *)
  verify_calls : int;  (** [verify_calls] *)
  matches : int;  (** [matches_verified] *)
  p50_ns : float;  (** per-document wall-time percentiles from the *)
  p90_ns : float;  (** [doc_wall_ns] histogram; [nan] (serialized as *)
  p99_ns : float;  (** [null]) when no document timings were recorded *)
}

type bench = {
  schema : string;  (** ["faerie-bench-v1"] *)
  git_rev : string;
  scale : float;  (** [FAERIE_SCALE] in effect *)
  ocaml : string;  (** [Sys.ocaml_version] *)
  exhibits : exhibit list;
}

val schema_version : string

val exhibit_of_snapshot :
  name:string -> wall_s:float -> Metrics.snapshot -> exhibit
(** Pull the exhibit counters and [doc_wall_ns] percentiles out of a
    metrics snapshot taken at the end of the exhibit (reset the registry
    before the exhibit so the counts are per-exhibit). *)

val bench_to_json : bench -> string
(** Pretty-ish (one exhibit per line) rendering of the v1 schema:
    {v
    {"schema":"faerie-bench-v1","git_rev":R,"scale":N,"ocaml":V,"exhibits":[
    {"name":...,"wall_s":...,"tokens":...,"tokens_per_s":...,"candidates":...,
     "pruned":...,"verify_calls":...,"matches":...,
     "doc_wall_ns":{"p50":...,"p90":...,"p99":...}},
    ...]}
    v} *)

val bench_of_json : string -> (bench, string) result
(** Inverse of {!bench_to_json} (accepts any field order); rejects
    snapshots whose ["schema"] is not {!schema_version}. *)

(** {1 Regression comparison} *)

type verdict = {
  v_name : string;
  baseline_s : float;
  current_s : float;
  ratio : float;  (** [current_s /. baseline_s]; [infinity] on a 0 baseline *)
  regressed : bool;  (** [ratio > max_ratio] *)
}

type comparison = {
  verdicts : verdict list;  (** exhibits present in both snapshots *)
  missing : string list;  (** baseline exhibits absent from current *)
  any_regressed : bool;  (** some verdict regressed, or some exhibit missing *)
}

val compare_benches :
  ?max_ratio:float -> baseline:bench -> current:bench -> unit -> comparison
(** Per-exhibit wall-time ratio check; [max_ratio] defaults to [1.5].
    Exhibits only in [current] are ignored (new exhibits are not
    regressions); exhibits only in [baseline] are reported missing and
    count as a regression. *)

val render_comparison : max_ratio:float -> comparison -> string
(** Human table: one line per verdict plus a final PASS/REGRESSED line. *)
