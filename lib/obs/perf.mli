(** Machine-readable performance snapshots.

    Three pieces: percentile estimation over {!Metrics.histogram_snapshot},
    a minimal JSON codec (the library stack has no JSON dependency), and
    the [faerie-bench-v2] snapshot schema written by [bench --json] and
    compared by [faerie_cli regress] (v1 snapshots still parse — their gc
    and allocation fields decay to absent). *)

val quantile : Metrics.histogram_snapshot -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0. <= q <= 1.]) of the
    observations recorded in [h] by walking the cumulative bucket counts
    and interpolating linearly inside the bucket holding the target rank
    (the first bucket interpolates from [0.], the overflow bucket reports
    its lower bound — the histogram carries no upper limit there).
    Returns [nan] when the histogram is empty.
    @raise Invalid_argument if [q] is outside [0., 1.]. *)

(** {1 Minimal JSON} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  (** Strict parser for the JSON this library itself writes (objects,
      arrays, strings with the common escapes, numbers, booleans, null).
      Errors carry a byte offset. Trailing whitespace is allowed; any
      other trailing input is an error. *)

  val to_string : t -> string
  (** Compact (no whitespace) rendering. Object fields keep their order. *)

  val member : string -> t -> t option
  (** Field lookup; [None] on missing field or non-object. *)

  val to_float : t -> float option

  val to_int : t -> int option

  val to_str : t -> string option

  val to_list : t -> t list option
end

(** {1 Bench snapshots (schema [faerie-bench-v2])} *)

type gc = {
  minor_words : float;  (** [gc_minor_words] counter *)
  promoted_words : float;  (** [gc_promoted_words] *)
  major_collections : int;  (** [gc_major_collections] *)
  top_heap_bytes : int;  (** [gc_top_heap_bytes] max gauge *)
  words_per_token : float;  (** total allocated words / [tokenize_tokens] *)
}
(** GC telemetry for one exhibit, present only when [Prof] was enabled
    during it (serialized as ["gc":null] otherwise). *)

type exhibit = {
  ex_name : string;
  wall_s : float;  (** wall time for the whole exhibit *)
  tokens : int;  (** [tokenize_tokens] counter *)
  tokens_per_s : float;
  candidates : int;  (** [candidates_generated] *)
  pruned : int;  (** [entities_pruned_lazy] + [buckets_pruned] *)
  verify_calls : int;  (** [verify_calls] *)
  matches : int;  (** [matches_verified] *)
  p50_ns : float;  (** per-document wall-time percentiles from the *)
  p90_ns : float;  (** [doc_wall_ns] histogram; [nan] (serialized as *)
  p99_ns : float;  (** [null]) when no document timings were recorded *)
  a50_w : float;  (** per-document allocated-words percentiles from the *)
  a90_w : float;  (** [doc_alloc_words] histogram; [nan]/[null] when *)
  a99_w : float;  (** profiling was off or the snapshot is v1 *)
  gc : gc option;
}

type bench = {
  schema : string;  (** ["faerie-bench-v2"] (or ["faerie-bench-v1"] parsed) *)
  git_rev : string;
  scale : float;  (** [FAERIE_SCALE] in effect *)
  ocaml : string;  (** [Sys.ocaml_version] *)
  exhibits : exhibit list;
}

val schema_version : string
(** ["faerie-bench-v2"], the schema written by {!bench_to_json}. *)

val schema_v1 : string
(** ["faerie-bench-v1"], still accepted by {!bench_of_json}. *)

val exhibit_of_snapshot :
  name:string -> wall_s:float -> Metrics.snapshot -> exhibit
(** Pull the exhibit counters and [doc_wall_ns] percentiles out of a
    metrics snapshot taken at the end of the exhibit (reset the registry
    before the exhibit so the counts are per-exhibit). *)

val bench_to_json : bench -> string
(** Pretty-ish (one exhibit per line) rendering of the v2 schema:
    {v
    {"schema":"faerie-bench-v2","git_rev":R,"scale":N,"ocaml":V,"exhibits":[
    {"name":...,"wall_s":...,"tokens":...,"tokens_per_s":...,"candidates":...,
     "pruned":...,"verify_calls":...,"matches":...,
     "doc_wall_ns":{"p50":...,"p90":...,"p99":...},
     "alloc_per_doc":{"p50":...,"p90":...,"p99":...},
     "gc":{"minor_words":...,"promoted_words":...,"major_collections":...,
           "top_heap_bytes":...,"words_per_token":...}|null},
    ...]}
    v} *)

val bench_of_json : string -> (bench, string) result
(** Inverse of {!bench_to_json} (accepts any field order); accepts
    {!schema_version} and {!schema_v1} (v1 exhibits parse with [nan]
    allocation percentiles and [gc = None]); rejects anything else. *)

(** {1 Regression comparison} *)

type verdict = {
  v_name : string;
  baseline_s : float;
  current_s : float;
  ratio : float;  (** [current_s /. baseline_s]; [infinity] on a 0 baseline *)
  regressed : bool;  (** [ratio > max_ratio] *)
  alloc_ratio : float option;
      (** minor-words ratio; [None] when either side lacks a gc block
          (except: baseline has one, current doesn't, and the alloc gate
          is on — then [Some infinity]) *)
  alloc_regressed : bool;  (** only ever [true] when the alloc gate is on *)
}

type comparison = {
  verdicts : verdict list;  (** exhibits present in both snapshots *)
  missing : string list;  (** baseline exhibits absent from current *)
  any_regressed : bool;
      (** some verdict regressed (wall or alloc), or some exhibit missing *)
}

val compare_benches :
  ?max_ratio:float ->
  ?max_alloc_ratio:float ->
  baseline:bench ->
  current:bench ->
  unit ->
  comparison
(** Per-exhibit wall-time ratio check; [max_ratio] defaults to [1.5].
    Exhibits only in [current] are ignored (new exhibits are not
    regressions); exhibits only in [baseline] are reported missing and
    count as a regression. [max_alloc_ratio] additionally gates the
    minor-words allocation ratio: a v1/no-gc {e baseline} exempts the
    exhibit (nothing to compare against), but a baseline {e with} gc data
    and a current without it fails — the profiling went dark. *)

val render_comparison :
  max_ratio:float -> ?max_alloc_ratio:float -> comparison -> string
(** Human table: one line per verdict plus a final PASS/REGRESSED line. *)
