(* Service-level objectives over merged metric snapshots.

   An objective is declared on the serve command line
   ([--slo p99=50ms,avail=99.9]) and assessed over sliding windows: each
   assessment takes the delta between the current merged snapshot and
   the previous assessment's snapshot, so attainment and burn rate
   describe the interval since the last stats tick, not the whole run.

   Burn-rate math (the standard error-budget form): an objective admits
   a bad-event budget of [1 - target] per unit of traffic; the burn rate
   is the observed bad fraction divided by that budget. Burn 1.0 means
   the budget is being consumed exactly at the sustainable rate; above
   1.0 the objective will be violated if the window's behaviour
   persists. Latency treats a request over the threshold as a bad event
   (budget [1 - q] for a [q]-quantile objective); availability treats a
   failed or shed document as one (budget [1 - avail_target]). *)

type objective = {
  latency : (float * float) option;  (* (quantile q in (0,1), threshold ns) *)
  avail : float option;  (* target fraction in (0,1) *)
}

let none = { latency = None; avail = None }

let is_empty o = o.latency = None && o.avail = None

(* ---- parsing ---- *)

let parse_duration_ms s =
  let num, unit_ =
    let n = String.length s in
    let rec split i =
      if i < n && (s.[i] = '.' || (s.[i] >= '0' && s.[i] <= '9')) then
        split (i + 1)
      else i
    in
    let k = split 0 in
    (String.sub s 0 k, String.sub s k (n - k))
  in
  match float_of_string_opt num with
  | None -> None
  | Some v -> (
      match String.lowercase_ascii unit_ with
      | "" | "ms" -> Some v
      | "s" -> Some (v *. 1e3)
      | "us" -> Some (v /. 1e3)
      | "ns" -> Some (v /. 1e6)
      | _ -> None)

let parse spec =
  let items =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> if is_empty acc then Error "empty --slo spec" else Ok acc
    | item :: rest -> (
        match String.index_opt item '=' with
        | None -> Error (Printf.sprintf "bad SLO item %S (want key=value)" item)
        | Some eq -> (
            let k = String.lowercase_ascii (String.sub item 0 eq) in
            let v = String.sub item (eq + 1) (String.length item - eq - 1) in
            match k with
            | "avail" -> (
                match float_of_string_opt v with
                | Some p when p > 1. && p < 100. ->
                    go { acc with avail = Some (p /. 100.) } rest
                | Some p when p > 0. && p < 1. ->
                    go { acc with avail = Some p } rest
                | _ ->
                    Error
                      (Printf.sprintf
                         "bad availability target %S (want a percentage like \
                          99.9 or a fraction like 0.999)"
                         v))
            | _ when String.length k > 1 && k.[0] = 'p' -> (
                match
                  ( float_of_string_opt (String.sub k 1 (String.length k - 1)),
                    parse_duration_ms v )
                with
                | Some pq, Some ms when pq > 0. && pq < 100. && ms > 0. ->
                    go { acc with latency = Some (pq /. 100., ms *. 1e6) } rest
                | _, None ->
                    Error
                      (Printf.sprintf
                         "bad latency threshold %S (want e.g. 50ms, 2s)" v)
                | _ ->
                    Error
                      (Printf.sprintf "bad latency quantile %S (want p50..p99.9)"
                         k))
            | _ ->
                Error
                  (Printf.sprintf "unknown SLO key %S (want pNN=DURms, avail=PCT)"
                     k)))
  in
  go none items

let to_string o =
  String.concat ","
    ((match o.latency with
     | Some (q, ns) ->
         [ Printf.sprintf "p%g=%gms" (q *. 100.) (ns /. 1e6) ]
     | None -> [])
    @
    match o.avail with
    | Some a -> [ Printf.sprintf "avail=%g" (a *. 100.) ]
    | None -> [])

(* ---- assessment ---- *)

type assessment = {
  window_s : float;  (* wall span of the assessed window *)
  docs : int;  (* documents in the window (processed + shed) *)
  latency_q : float option;  (* objective quantile *)
  latency_target_ms : float option;
  latency_measured_ms : float option;  (* measured quantile; None if no docs *)
  latency_bad_frac : float option;  (* fraction over threshold *)
  burn_latency : float option;
  avail_target : float option;
  avail_measured : float option;
  burn_avail : float option;
  burning : bool;
}

(* Fraction of a histogram's observations at or below [x], interpolating
   linearly inside the bucket that contains [x] (the dual of
   Perf.quantile's rank interpolation). The overflow bucket counts
   entirely above any finite [x] beyond the last bound. *)
let fraction_le (h : Metrics.histogram_snapshot) x =
  if h.count = 0 then nan
  else begin
    let total = float_of_int h.count in
    let below = ref 0. in
    let n = Array.length h.upper in
    (try
       for i = 0 to n - 1 do
         let lo = if i = 0 then 0. else h.upper.(i - 1) in
         let hi = h.upper.(i) in
         let c = float_of_int h.counts.(i) in
         if x >= hi then below := !below +. c
         else begin
           if x > lo && hi > lo then
             below := !below +. (c *. ((x -. lo) /. (hi -. lo)));
           raise Exit
         end
       done
     with Exit -> ());
    Float.min 1. (!below /. total)
  end

(* Delta of [cur] against [prev] for the metrics the SLO math reads.
   Counters and histogram cells are monotonic, so the piecewise
   subtraction is safe; a shrinking value (shard restarted and re-counted
   from zero) clamps to the current reading. *)
let delta_counter prev cur name =
  let d = Metrics.counter_value cur name - Metrics.counter_value prev name in
  if d >= 0 then d else Metrics.counter_value cur name

let delta_hist (prev : Metrics.snapshot) (cur : Metrics.snapshot) name =
  match List.assoc_opt name cur.Metrics.histograms with
  | None -> None
  | Some h -> (
      match List.assoc_opt name prev.Metrics.histograms with
      | Some p
        when p.Metrics.upper = h.Metrics.upper
             && h.Metrics.count >= p.Metrics.count ->
          Some
            {
              h with
              Metrics.counts =
                Array.mapi (fun i c -> c - p.Metrics.counts.(i)) h.Metrics.counts;
              sum = h.Metrics.sum -. p.Metrics.sum;
              count = h.Metrics.count - p.Metrics.count;
            }
      | _ -> Some h)

type tracker = {
  mutable prev : Metrics.snapshot option;
  mutable prev_t : float option;
}

let tracker () = { prev = None; prev_t = None }

let empty_snapshot =
  { Metrics.counters = []; gauges = []; histograms = [] }

let assess ?now_s t objective (snap : Metrics.snapshot) =
  let now = match now_s with Some n -> n | None -> Unix.gettimeofday () in
  let prev = Option.value t.prev ~default:empty_snapshot in
  let window_s =
    match t.prev_t with Some p when now > p -> now -. p | _ -> 0.
  in
  t.prev <- Some snap;
  t.prev_t <- Some now;
  let processed = delta_counter prev snap "docs_processed" in
  let shed = delta_counter prev snap "docs_shed" in
  let failed = delta_counter prev snap "docs_failed" in
  let docs = processed + shed in
  let wall = delta_hist prev snap "doc_wall_ns" in
  let latency_q, latency_target_ms, latency_measured_ms, latency_bad_frac,
      burn_latency =
    match objective.latency with
    | None -> (None, None, None, None, None)
    | Some (q, thr_ns) -> (
        let target_ms = Some (thr_ns /. 1e6) in
        match wall with
        | Some h when h.Metrics.count > 0 ->
            let measured = Perf.quantile h q in
            let ok_frac = fraction_le h thr_ns in
            let bad = 1. -. ok_frac in
            let budget = 1. -. q in
            let burn = if budget > 0. then bad /. budget else infinity in
            ( Some q,
              target_ms,
              (if Float.is_nan measured then None else Some (measured /. 1e6)),
              Some bad,
              Some burn )
        | _ -> (Some q, target_ms, None, None, None))
  in
  let avail_target, avail_measured, burn_avail =
    match objective.avail with
    | None -> (None, None, None)
    | Some target ->
        if docs = 0 then (Some target, None, None)
        else begin
          let bad = float_of_int (failed + shed) /. float_of_int docs in
          let measured = 1. -. bad in
          let budget = 1. -. target in
          let burn = if budget > 0. then bad /. budget else infinity in
          (Some target, Some measured, Some burn)
        end
  in
  let burning =
    let over = function Some b -> b > 1. | None -> false in
    over burn_latency || over burn_avail
  in
  {
    window_s;
    docs;
    latency_q;
    latency_target_ms;
    latency_measured_ms;
    latency_bad_frac;
    burn_latency;
    avail_target;
    avail_measured;
    burn_avail;
    burning;
  }

(* ---- rendering ---- *)

let fopt = function
  | None -> "null"
  | Some v ->
      if Float.is_nan v then "null"
      else if Float.is_integer v && Float.abs v < 1e15 then
        Printf.sprintf "%.0f" v
      else Printf.sprintf "%.6g" v

let to_json a =
  Printf.sprintf
    "{\"window_s\":%s,\"docs\":%d,\"latency\":{\"q\":%s,\"target_ms\":%s,\"measured_ms\":%s,\"bad_frac\":%s,\"burn\":%s},\"avail\":{\"target\":%s,\"measured\":%s,\"burn\":%s},\"burning\":%b}"
    (fopt (Some a.window_s))
    a.docs (fopt a.latency_q)
    (fopt a.latency_target_ms)
    (fopt a.latency_measured_ms)
    (fopt a.latency_bad_frac)
    (fopt a.burn_latency) (fopt a.avail_target) (fopt a.avail_measured)
    (fopt a.burn_avail) a.burning

let render a =
  let parts = ref [] in
  (match (a.latency_q, a.latency_measured_ms, a.latency_target_ms) with
  | Some q, Some m, Some t ->
      parts :=
        Printf.sprintf "p%g %.2fms (target %gms, burn %s)" (q *. 100.) m t
          (match a.burn_latency with
          | Some b -> Printf.sprintf "%.2f" b
          | None -> "-")
        :: !parts
  | Some q, None, Some t ->
      parts := Printf.sprintf "p%g - (target %gms)" (q *. 100.) t :: !parts
  | _ -> ());
  (match (a.avail_target, a.avail_measured) with
  | Some t, Some m ->
      parts :=
        Printf.sprintf "avail %.4f%% (target %g%%, burn %s)" (m *. 100.)
          (t *. 100.)
          (match a.burn_avail with
          | Some b -> Printf.sprintf "%.2f" b
          | None -> "-")
        :: !parts
  | Some t, None ->
      parts := Printf.sprintf "avail - (target %g%%)" (t *. 100.) :: !parts
  | _ -> ());
  let status = if a.burning then "BURNING" else "ok" in
  Printf.sprintf "slo %s: %s" status (String.concat ", " (List.rev !parts))
