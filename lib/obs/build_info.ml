(* Binary identity for snapshots: a constant-1 gauge labeled with the
   build's git revision, so a stats pull (or a merged cluster snapshot)
   names the binary that produced it. The revision is resolved once per
   process — env override first (containers without a .git), then
   [git rev-parse] — and memoized, so shard processes that re-note after
   their post-fork [Metrics.reset] never shell out. *)

let env_var = "FAERIE_GIT_REV"

let memo = ref None

let rev () =
  match !memo with
  | Some r -> r
  | None ->
      let r =
        match Sys.getenv_opt env_var with
        | Some r when r <> "" -> r
        | _ -> (
            try
              let ic =
                Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
              in
              let line = try input_line ic with End_of_file -> "" in
              match Unix.close_process_in ic with
              | Unix.WEXITED 0 when line <> "" -> line
              | _ -> "unknown"
            with _ -> "unknown")
      in
      memo := Some r;
      r

let note ?registry () =
  let g =
    Metrics.labeled_gauge ?registry ~agg:`Max
      ~help:"binary identity: constant 1 labeled with the build's git revision"
      ~label:("build_info", "rev", rev ())
      "build_info"
  in
  Metrics.set_max g 1.
