(** Binary identity for metric snapshots.

    {!note} registers a constant-1 [`Max] gauge named [build_info],
    exported to Prometheus as the labeled series
    [build_info{rev="<git rev>"} 1] (the conventional info-metric
    shape), so any stats snapshot — including merged cluster snapshots —
    identifies the binary that produced it. Bench [--json] uses {!rev}
    directly for its [rev] field. *)

val rev : unit -> string
(** The build's short git revision: the [FAERIE_GIT_REV] environment
    variable when set (containers built without a [.git]), else
    [git rev-parse --short HEAD], else ["unknown"]. Resolved once per
    process and memoized — forked shards inherit the memo and never
    shell out. *)

val note : ?registry:Metrics.registry -> unit -> unit
(** Register (idempotent) and set the [build_info] gauge to 1. Shard
    processes call it again after their post-fork [Metrics.reset]. *)
