type agg = Sum | Max

type kind = Counter | Gauge of agg | Hist of float array

(* [label], when present, is the (family, key, value) triple an
   {!indexed_gauge} member exports as a labeled Prometheus series
   (family{key="value"}) instead of the name-suffixed series. Identity —
   slots, lookup, JSONL — stays on the composed [name]. *)
type def = {
  name : string;
  help : string;
  kind : kind;
  slot : int;
  label : (string * string * string) option;
}

(* One histogram cell: per-shard bucket counts plus running sum/count.
   [buckets] has one extra slot for observations above the last bound.
   [ex] holds at most one (trace, value) exemplar per bucket — the
   largest-valued traced observation seen by this shard — and stays
   [[||]] (no allocation, no scan cost) until the first traced
   observation arrives. *)
type hcell = {
  bounds : float array;
  buckets : int array;
  mutable hsum : float;
  mutable hcount : int;
  mutable ex : (int * float) array;
}

type shard = {
  mutable counters : int array;
  mutable gauges : float array;
  mutable hists : hcell array;
}

type registry = {
  lock : Mutex.t;
  mutable defs : def list; (* reverse registration order *)
  by_name : (string, def) Hashtbl.t;
  mutable n_counters : int;
  mutable n_gauges : int;
  mutable n_hists : int;
  mutable hist_bounds : float array array; (* indexed by histogram slot *)
  mutable shards : shard list;
  (* Domain-local pointer to this domain's live shard. [with_suppressed]
     swaps it to a scratch shard that is registered nowhere, so writes
     vanish without any extra branch on the hot path. *)
  shard_slot : shard option ref Domain.DLS.key;
  scratch_slot : shard option ref Domain.DLS.key;
}

type counter = { creg : registry; cslot : int }

type gauge = { greg : registry; gslot : int }

type histogram = { hreg : registry; hslot : int }

let create () =
  {
    lock = Mutex.create ();
    defs = [];
    by_name = Hashtbl.create 64;
    n_counters = 0;
    n_gauges = 0;
    n_hists = 0;
    hist_bounds = [||];
    shards = [];
    shard_slot = Domain.DLS.new_key (fun () -> ref None);
    scratch_slot = Domain.DLS.new_key (fun () -> ref None);
  }

let default = create ()

let locked reg f =
  Mutex.lock reg.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.lock) f

let new_hcell bounds =
  {
    bounds;
    buckets = Array.make (Array.length bounds + 1) 0;
    hsum = 0.;
    hcount = 0;
    ex = [||];
  }

(* Shard arrays are sized for the metrics registered at creation time and
   grown on demand when a metric registered later is first written. *)
let new_shard reg =
  {
    counters = Array.make (max 1 reg.n_counters) 0;
    gauges = Array.make (max 1 reg.n_gauges) 0.;
    hists = Array.init reg.n_hists (fun i -> new_hcell reg.hist_bounds.(i));
  }

let shard_of reg =
  let slot = Domain.DLS.get reg.shard_slot in
  match !slot with
  | Some s -> s
  | None ->
      locked reg (fun () ->
          let s = new_shard reg in
          reg.shards <- s :: reg.shards;
          slot := Some s;
          s)

let with_suppressed ?(registry = default) f =
  let slot = Domain.DLS.get registry.shard_slot in
  let saved = !slot in
  let scratch_ref = Domain.DLS.get registry.scratch_slot in
  let scratch =
    match !scratch_ref with
    | Some s -> s
    | None ->
        (* Not added to [registry.shards]: writes are never read back. *)
        let s = locked registry (fun () -> new_shard registry) in
        scratch_ref := Some s;
        s
  in
  slot := Some scratch;
  Fun.protect ~finally:(fun () -> slot := saved) f

(* ---- registration ---- *)

let kind_name = function
  | Counter -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let register ?label reg ~name ~help kind =
  locked reg (fun () ->
      match Hashtbl.find_opt reg.by_name name with
      | Some d ->
          let compatible =
            match (d.kind, kind) with
            | Counter, Counter -> true
            | Gauge a, Gauge b -> a = b
            | Hist a, Hist b -> a = b
            | _ -> false
          in
          if not compatible then
            invalid_arg
              (Printf.sprintf "Metrics: %S already registered as a %s" name
                 (kind_name d.kind));
          if label <> None && d.label <> label then
            invalid_arg
              (Printf.sprintf "Metrics: %S already registered with a different label"
                 name);
          d
      | None ->
          let slot =
            match kind with
            | Counter ->
                let s = reg.n_counters in
                reg.n_counters <- s + 1;
                s
            | Gauge _ ->
                let s = reg.n_gauges in
                reg.n_gauges <- s + 1;
                s
            | Hist bounds ->
                let s = reg.n_hists in
                reg.n_hists <- s + 1;
                reg.hist_bounds <- Array.append reg.hist_bounds [| bounds |];
                s
          in
          let d = { name; help; kind; slot; label } in
          Hashtbl.add reg.by_name name d;
          reg.defs <- d :: reg.defs;
          d)

let counter ?(registry = default) ?(help = "") name =
  let d = register registry ~name ~help Counter in
  { creg = registry; cslot = d.slot }

let gauge_with_label ?(registry = default) ?(help = "") ?(agg = `Sum) ?label name =
  let agg = match agg with `Sum -> Sum | `Max -> Max in
  let d = register ?label registry ~name ~help (Gauge agg) in
  { greg = registry; gslot = d.slot }

let gauge ?registry ?help ?agg name =
  gauge_with_label ?registry ?help ?agg name

let labeled_gauge ?registry ?help ?agg ~label name =
  gauge_with_label ?registry ?help ?agg ~label name

let indexed_gauge ?registry ?help ?agg ?label name i =
  let label = Option.map (fun key -> (name, key, string_of_int i)) label in
  gauge_with_label ?registry ?help ?agg ?label (Printf.sprintf "%s_%d" name i)

let default_buckets = [| 1.; 10.; 100.; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let histogram ?(registry = default) ?(help = "") ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: buckets must be non-empty";
  Array.iteri
    (fun i b ->
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg "Metrics.histogram: buckets must be strictly ascending")
    buckets;
  let d = register registry ~name ~help (Hist (Array.copy buckets)) in
  { hreg = registry; hslot = d.slot }

(* ---- hot-path writes ---- *)

let grow_counters reg sh =
  locked reg (fun () ->
      let n = Array.length sh.counters in
      if reg.n_counters > n then begin
        let a = Array.make reg.n_counters 0 in
        Array.blit sh.counters 0 a 0 n;
        sh.counters <- a
      end)

let grow_gauges reg sh =
  locked reg (fun () ->
      let n = Array.length sh.gauges in
      if reg.n_gauges > n then begin
        let a = Array.make reg.n_gauges 0. in
        Array.blit sh.gauges 0 a 0 n;
        sh.gauges <- a
      end)

let grow_hists reg sh =
  locked reg (fun () ->
      let n = Array.length sh.hists in
      if reg.n_hists > n then begin
        let a =
          Array.init reg.n_hists (fun i ->
              if i < n then sh.hists.(i) else new_hcell reg.hist_bounds.(i))
        in
        sh.hists <- a
      end)

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  if n > 0 then begin
    let sh = shard_of c.creg in
    if c.cslot >= Array.length sh.counters then grow_counters c.creg sh;
    sh.counters.(c.cslot) <- sh.counters.(c.cslot) + n
  end

let incr c = add c 1

let set g v =
  let sh = shard_of g.greg in
  if g.gslot >= Array.length sh.gauges then grow_gauges g.greg sh;
  sh.gauges.(g.gslot) <- v

let add_gauge g v =
  let sh = shard_of g.greg in
  if g.gslot >= Array.length sh.gauges then grow_gauges g.greg sh;
  sh.gauges.(g.gslot) <- sh.gauges.(g.gslot) +. v

(* Raise this domain's cell to at least [v]. Together with [`Max] merge
   semantics this yields a process-wide high-water mark. *)
let set_max g v =
  let sh = shard_of g.greg in
  if g.gslot >= Array.length sh.gauges then grow_gauges g.greg sh;
  if v > sh.gauges.(g.gslot) then sh.gauges.(g.gslot) <- v

let observe h v =
  let sh = shard_of h.hreg in
  if h.hslot >= Array.length sh.hists then grow_hists h.hreg sh;
  let cell = sh.hists.(h.hslot) in
  let n = Array.length cell.bounds in
  (* First bucket whose upper bound admits [v]; the extra last cell is the
     overflow bucket. Bucket counts are few (fixed layout) — linear scan. *)
  let i = ref 0 in
  while !i < n && v > cell.bounds.(!i) do
    i := !i + 1
  done;
  cell.buckets.(!i) <- cell.buckets.(!i) + 1;
  cell.hsum <- cell.hsum +. v;
  cell.hcount <- cell.hcount + 1

(* Traced variant: additionally retain [v] as the bucket's exemplar when
   it beats the incumbent. Ties break toward the larger trace id so the
   choice is deterministic regardless of observation order (the same
   rule {!merge_snapshots} applies across shards). A separate function —
   not an optional argument — so the untraced hot path stays
   allocation-free. *)
let observe_ex h v ~trace =
  let sh = shard_of h.hreg in
  if h.hslot >= Array.length sh.hists then grow_hists h.hreg sh;
  let cell = sh.hists.(h.hslot) in
  let n = Array.length cell.bounds in
  let i = ref 0 in
  while !i < n && v > cell.bounds.(!i) do
    i := !i + 1
  done;
  cell.buckets.(!i) <- cell.buckets.(!i) + 1;
  cell.hsum <- cell.hsum +. v;
  cell.hcount <- cell.hcount + 1;
  if trace <> 0 then begin
    if Array.length cell.ex = 0 then cell.ex <- Array.make (n + 1) (0, 0.);
    let t0, v0 = cell.ex.(!i) in
    if t0 = 0 || v > v0 || (v = v0 && trace > t0) then
      cell.ex.(!i) <- (trace, v)
  end

(* ---- snapshot / export ---- *)

type histogram_snapshot = {
  upper : float array;
  counts : int array;
  sum : float;
  count : int;
  exemplars : (int * float) array;
      (* per-bucket (trace, value); [[||]] when no traced observation *)
}

(* Exemplar merge: per bucket, keep the larger value; break value ties
   toward the larger trace id. Commutative and associative, so merged
   snapshots are invariant under permutation/re-association of inputs
   (the qcheck law in test_obs covers this field too). *)
let merge_ex a b =
  if Array.length a = 0 then b
  else if Array.length b = 0 then a
  else if Array.length a <> Array.length b then a
  else
    Array.mapi
      (fun i ((t0, v0) as e0) ->
        let (t1, v1) as e1 = b.(i) in
        if t0 = 0 then e1
        else if t1 = 0 then e0
        else if v1 > v0 || (v1 = v0 && t1 > t0) then e1
        else e0)
      a

(* Gauge entries carry their merge mode and label metadata so snapshots are
   self-describing: a coordinator merging snapshots pulled from shard
   processes needs the [agg] (it has no access to the shard's registry
   defs), and the Prometheus renderer needs the label triple. *)
type gauge_snapshot = {
  value : float;
  agg : [ `Sum | `Max ];
  label : (string * string * string) option;  (** (family, key, value) *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * gauge_snapshot) list;
  histograms : (string * histogram_snapshot) list;
}

(* Reads of other domains' shard cells are plain (non-atomic) loads of
   immediate values: never torn, possibly a few increments stale — fine for
   monitoring, and tests snapshot only quiescent registries. *)
let snapshot ?(registry = default) () =
  locked registry (fun () ->
      let defs = List.rev registry.defs in
      let shards = registry.shards in
      let counters = ref [] and gauges = ref [] and histograms = ref [] in
      List.iter
        (fun d ->
          match d.kind with
          | Counter ->
              let v =
                List.fold_left
                  (fun acc (sh : shard) ->
                    if d.slot < Array.length sh.counters then
                      acc + sh.counters.(d.slot)
                    else acc)
                  0 shards
              in
              counters := (d.name, v) :: !counters
          | Gauge agg ->
              let combine =
                match agg with Sum -> ( +. ) | Max -> Float.max
              in
              let v =
                List.fold_left
                  (fun acc (sh : shard) ->
                    if d.slot < Array.length sh.gauges then
                      combine acc sh.gauges.(d.slot)
                    else acc)
                  0. shards
              in
              let agg = match agg with Sum -> `Sum | Max -> `Max in
              gauges := (d.name, { value = v; agg; label = d.label }) :: !gauges
          | Hist bounds ->
              let counts = Array.make (Array.length bounds + 1) 0 in
              let sum = ref 0. and count = ref 0 in
              let ex = ref [||] in
              List.iter
                (fun (sh : shard) ->
                  if d.slot < Array.length sh.hists then begin
                    let cell = sh.hists.(d.slot) in
                    Array.iteri
                      (fun i c -> counts.(i) <- counts.(i) + c)
                      cell.buckets;
                    sum := !sum +. cell.hsum;
                    count := !count + cell.hcount;
                    (* copy: the cell stays live under observe_ex *)
                    ex := merge_ex !ex (Array.copy cell.ex)
                  end)
                shards;
              histograms :=
                (d.name,
                 {
                   upper = bounds;
                   counts;
                   sum = !sum;
                   count = !count;
                   exemplars = !ex;
                 })
                :: !histograms)
        defs;
      {
        counters = List.rev !counters;
        gauges = List.rev !gauges;
        histograms = List.rev !histograms;
      })

let counter_value snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let gauge_value snap name =
  match List.assoc_opt name snap.gauges with Some g -> g.value | None -> 0.

(* Cross-snapshot merge: the same semantics {!snapshot} applies to
   per-domain shards, one level up — counters and matching histogram cells
   sum, gauges combine by their recorded [agg]. Output is sorted by name,
   so merging any permutation of the same snapshots yields an identical
   result (registration order is meaningless across processes). Histograms
   whose bucket layouts disagree keep the first-seen cells: layouts only
   diverge across binaries, where summing cells would be meaningless. *)
let merge_snapshots snaps =
  let by_name fold lists =
    let tbl = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun entries ->
        List.iter
          (fun (name, v) ->
            match Hashtbl.find_opt tbl name with
            | None ->
                Hashtbl.add tbl name v;
                order := name :: !order
            | Some v0 -> Hashtbl.replace tbl name (fold v0 v))
          entries)
      lists;
    List.sort compare !order
    |> List.map (fun name -> (name, Hashtbl.find tbl name))
  in
  {
    counters = by_name (fun a b -> a + b) (List.map (fun s -> s.counters) snaps);
    gauges =
      by_name
        (fun g0 g ->
          let value =
            match g0.agg with
            | `Sum -> g0.value +. g.value
            | `Max -> Float.max g0.value g.value
          in
          { g0 with value })
        (List.map (fun s -> s.gauges) snaps);
    histograms =
      by_name
        (fun h0 h ->
          if h0.upper <> h.upper then h0
          else
            {
              upper = h0.upper;
              counts = Array.mapi (fun i c -> c + h.counts.(i)) h0.counts;
              sum = h0.sum +. h.sum;
              count = h0.count + h.count;
              exemplars = merge_ex h0.exemplars h.exemplars;
            })
        (List.map (fun s -> s.histograms) snaps);
  }

let reset ?(registry = default) () =
  locked registry (fun () ->
      List.iter
        (fun (sh : shard) ->
          Array.fill sh.counters 0 (Array.length sh.counters) 0;
          Array.fill sh.gauges 0 (Array.length sh.gauges) 0.;
          Array.iter
            (fun cell ->
              Array.fill cell.buckets 0 (Array.length cell.buckets) 0;
              cell.hsum <- 0.;
              cell.hcount <- 0;
              cell.ex <- [||])
            sh.hists)
        registry.shards)

(* %.17g round-trips every float; trim the common integral case so counters
   of observations read naturally ("5" not "5.0000000000000000"). *)
let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let render_jsonl snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"counter\",\"name\":%s,\"value\":%d}\n"
           (json_string name) v))
    snap.counters;
  List.iter
    (fun (name, g) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"gauge\",\"name\":%s,\"value\":%s}\n"
           (json_string name) (json_float g.value)))
    snap.gauges;
  List.iter
    (fun (name, h) ->
      let arr f a =
        "[" ^ String.concat "," (Array.to_list (Array.map f a)) ^ "]"
      in
      (* Exemplars render only when some bucket has one, so the locked
         histogram line schema is unchanged for untraced registries. *)
      let ex =
        if Array.length h.exemplars = 0 then ""
        else
          let cells = ref [] in
          Array.iteri
            (fun i (t, v) ->
              if t <> 0 then
                cells :=
                  Printf.sprintf "{\"i\":%d,\"trace\":%d,\"value\":%s}" i t
                    (json_float v)
                  :: !cells)
            h.exemplars;
          if !cells = [] then ""
          else
            Printf.sprintf ",\"exemplars\":[%s]"
              (String.concat "," (List.rev !cells))
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"histogram\",\"name\":%s,\"upper\":%s,\"counts\":%s,\"sum\":%s,\"count\":%d%s}\n"
           (json_string name) (arr json_float h.upper) (arr string_of_int h.counts)
           (json_float h.sum) h.count ex))
    snap.histograms;
  Buffer.contents buf

let to_jsonl ?(registry = default) () = render_jsonl (snapshot ~registry ())

(* Prometheus exposition format escaping for HELP text: only backslash and
   line feed are escaped (the format is line-oriented; quotes are legal in
   HELP). *)
let prom_escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Float rendering for exposition-format sample values and [le] labels.
   Deliberately decoupled from [json_float]: Prometheus conventions
   (shortest round-trip decimal, integral bounds without a fraction part)
   must not drift if the JSON formatter changes. *)
let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* Label values additionally escape double quotes (they are quoted in the
   exposition format, unlike HELP text). *)
let prom_escape_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_prometheus ?(registry = default) snap =
  let help_of =
    locked registry (fun () ->
        let tbl = Hashtbl.create 32 in
        List.iter (fun d -> Hashtbl.replace tbl d.name d.help) registry.defs;
        tbl)
  in
  let buf = Buffer.create 1024 in
  let header ?(help_name = "") name typ =
    let help_name = if help_name = "" then name else help_name in
    (match Hashtbl.find_opt help_of help_name with
    | Some h when h <> "" ->
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" name (prom_escape_help h))
    | _ -> ());
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  List.iter
    (fun (name, v) ->
      header name "counter";
      Buffer.add_string buf (Printf.sprintf "%s %d\n" name v))
    snap.counters;
  (* Labeled gauges render as one family (shard_up{shard="3"}) rather than
     name-suffixed series; the family header is emitted once, ahead of the
     first member. *)
  let family_headered = Hashtbl.create 8 in
  List.iter
    (fun (name, g) ->
      match g.label with
      | None ->
          header name "gauge";
          Buffer.add_string buf (Printf.sprintf "%s %s\n" name (prom_float g.value))
      | Some (family, key, value) ->
          if not (Hashtbl.mem family_headered family) then begin
            Hashtbl.add family_headered family ();
            header ~help_name:name family "gauge"
          end;
          Buffer.add_string buf
            (Printf.sprintf "%s{%s=\"%s\"} %s\n" family key
               (prom_escape_label value) (prom_float g.value)))
    snap.gauges;
  List.iter
    (fun (name, h) ->
      header name "histogram";
      (* OpenMetrics exemplar suffix: `... # {trace_id="T"} V` after the
         bucket's cumulative count. The exemplar belongs to the bucket
         (non-cumulative) even though the count is cumulative. *)
      let exemplar i =
        if i < Array.length h.exemplars then
          match h.exemplars.(i) with
          | 0, _ -> ""
          | t, v -> Printf.sprintf " # {trace_id=\"%d\"} %s" t (prom_float v)
        else ""
      in
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d%s\n" name
               (prom_float h.upper.(i)) !cum (exemplar i)))
        (Array.sub h.counts 0 (Array.length h.upper));
      cum := !cum + h.counts.(Array.length h.upper);
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d%s\n" name !cum
           (exemplar (Array.length h.upper)));
      Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" name (prom_float h.sum));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.count))
    snap.histograms;
  Buffer.contents buf

let to_prometheus ?(registry = default) () =
  render_prometheus ~registry (snapshot ~registry ())
