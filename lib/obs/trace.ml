type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  domain : int;
  trace : int;
  ok : bool;
  attrs : (string * string) list;
}

let recording = Atomic.make false

(* Selective mode (head sampling): record only spans tagged with a
   nonzero trace id, i.e. inside some [with_context]. Requests that were
   not sampled run with trace id 0 and leave nothing behind, so a serve
   process tracing 1% of requests does not accumulate spans for the
   other 99%. *)
let selective = Atomic.make false

let clock : (unit -> int64) option Atomic.t = Atomic.make None

let real_now () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let now_ns () =
  match Atomic.get clock with Some f -> f () | None -> real_now ()

let set_clock f = Atomic.set clock f

let enable () = Atomic.set recording true

let disable () = Atomic.set recording false

let enabled () = Atomic.get recording

let set_selective b = Atomic.set selective b

let is_selective () = Atomic.get selective

(* Per-domain recording state; registered in a global list under a mutex on
   first use so [drain] can reach every domain's buffer. [trace] tags every
   span recorded by this domain with a request-scoped trace id (0 = none)
   and [depth] doubles as the nesting base: {!with_context} sets both so a
   shard process records its subtree at the absolute depth the
   coordinator's request span would give it. *)
type buf = { mutable spans : span list; mutable depth : int; mutable trace : int }

let lock = Mutex.create ()

let bufs : buf list ref = ref []

let buf_slot : buf option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let my_buf () =
  let slot = Domain.DLS.get buf_slot in
  match !slot with
  | Some b -> b
  | None ->
      let b = { spans = []; depth = 0; trace = 0 } in
      Mutex.lock lock;
      bufs := b :: !bufs;
      Mutex.unlock lock;
      slot := Some b;
      b

let with_span ?(attrs = []) name f =
  if not (Atomic.get recording) then f ()
  else begin
    let b = my_buf () in
    if Atomic.get selective && b.trace = 0 then f ()
    else begin
    let depth = b.depth in
    b.depth <- depth + 1;
    let t0 = now_ns () in
    let close ok =
      let t1 = now_ns () in
      b.depth <- depth;
      b.spans <-
        {
          name;
          start_ns = t0;
          dur_ns = Int64.sub t1 t0;
          depth;
          domain = (Domain.self () :> int);
          trace = b.trace;
          ok;
          attrs;
        }
        :: b.spans
    in
    match f () with
    | v ->
        close true;
        v
    | exception e ->
        close false;
        raise e
    end
  end

let with_context ~trace ~depth f =
  if not (Atomic.get recording) then f ()
  else begin
    let b = my_buf () in
    let saved_depth = b.depth and saved_trace = b.trace in
    b.depth <- depth;
    b.trace <- trace;
    Fun.protect
      ~finally:(fun () ->
        b.depth <- saved_depth;
        b.trace <- saved_trace)
      f
  end

let current_depth () = if Atomic.get recording then (my_buf ()).depth else 0

let current_trace () = if Atomic.get recording then (my_buf ()).trace else 0

(* Adopt spans recorded by another process into this domain's buffer.
   [offset_ns] re-bases the foreign clock onto ours (measured against the
   peer's Ready timestamp); residual skew is then absorbed by two uniform
   shifts of the whole subtree. The adopted spans are completed work, so
   the subtree must not extend past the adoption instant ([now_ns ()] —
   an offset measured late pushes everything late, past the close of the
   enclosing request span); and [lo_ns], applied last because a child
   appearing to start before its enclosing request span is the worse
   breakage for flame reconstruction, keeps the earliest start at or
   after the request start. Both clamps hold together under monotonic
   clocks: the peer's work happened inside the [lo_ns, now] window, so
   the subtree extent fits it. Depths are absolute already (the peer
   recorded under {!with_context}); domains are remapped to the adopting
   domain so per-domain nesting reconstruction sees one coherent
   stream. *)
let graft ?(offset_ns = 0L) ?lo_ns spans =
  if Atomic.get recording && spans <> [] then begin
    let b = my_buf () in
    let shift =
      let rebased_max_end =
        List.fold_left
          (fun acc s ->
            Int64.max acc
              (Int64.add (Int64.add s.start_ns offset_ns) s.dur_ns))
          Int64.min_int spans
      in
      let now = now_ns () in
      let shift =
        if Int64.compare rebased_max_end now > 0 then
          Int64.sub offset_ns (Int64.sub rebased_max_end now)
        else offset_ns
      in
      let shifted_min =
        List.fold_left
          (fun acc s -> Int64.min acc (Int64.add s.start_ns shift))
          Int64.max_int spans
      in
      match lo_ns with
      | Some lo when Int64.compare shifted_min lo < 0 ->
          Int64.add shift (Int64.sub lo shifted_min)
      | _ -> shift
    in
    let dom = (Domain.self () :> int) in
    List.iter
      (fun s ->
        b.spans <-
          { s with start_ns = Int64.add s.start_ns shift; domain = dom }
          :: b.spans)
      spans
  end

let compare_span a b =
  let c = Int64.compare a.start_ns b.start_ns in
  if c <> 0 then c
  else
    let c = compare a.depth b.depth in
    if c <> 0 then c else compare a.name b.name

(* Remove and return only the spans of one trace, leaving every other
   buffered span in place. Unlike {!drain} this is safe while other
   requests are in flight on sibling domains: a sampled request's
   completion callback collects its own subtree without stealing spans
   that belong to a request still being assembled elsewhere. *)
let drain_trace tid =
  Mutex.lock lock;
  let mine = ref [] in
  List.iter
    (fun b ->
      let keep, take =
        List.partition (fun (s : span) -> s.trace <> tid) b.spans
      in
      b.spans <- keep;
      mine := take @ !mine)
    !bufs;
  Mutex.unlock lock;
  List.sort compare_span !mine

let drain () =
  Mutex.lock lock;
  let all =
    List.concat_map
      (fun b ->
        let s = b.spans in
        b.spans <- [];
        s)
      !bufs
  in
  Mutex.unlock lock;
  List.sort compare_span all

let reset () = ignore (drain ())

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_jsonl spans =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      let attrs =
        String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) (json_string v))
             s.attrs)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%s,\"start_ns\":%Ld,\"dur_ns\":%Ld,\"depth\":%d,\"domain\":%d,\"trace\":%d,\"ok\":%b,\"attrs\":{%s}}\n"
           (json_string s.name) s.start_ns s.dur_ns s.depth s.domain s.trace
           s.ok attrs))
    spans;
  Buffer.contents buf
