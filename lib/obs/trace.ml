type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  domain : int;
  ok : bool;
  attrs : (string * string) list;
}

let recording = Atomic.make false

let clock : (unit -> int64) option Atomic.t = Atomic.make None

let real_now () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let now_ns () =
  match Atomic.get clock with Some f -> f () | None -> real_now ()

let set_clock f = Atomic.set clock f

let enable () = Atomic.set recording true

let disable () = Atomic.set recording false

let enabled () = Atomic.get recording

(* Per-domain recording state; registered in a global list under a mutex on
   first use so [drain] can reach every domain's buffer. *)
type buf = { mutable spans : span list; mutable depth : int }

let lock = Mutex.create ()

let bufs : buf list ref = ref []

let buf_slot : buf option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let my_buf () =
  let slot = Domain.DLS.get buf_slot in
  match !slot with
  | Some b -> b
  | None ->
      let b = { spans = []; depth = 0 } in
      Mutex.lock lock;
      bufs := b :: !bufs;
      Mutex.unlock lock;
      slot := Some b;
      b

let with_span ?(attrs = []) name f =
  if not (Atomic.get recording) then f ()
  else begin
    let b = my_buf () in
    let depth = b.depth in
    b.depth <- depth + 1;
    let t0 = now_ns () in
    let close ok =
      let t1 = now_ns () in
      b.depth <- depth;
      b.spans <-
        {
          name;
          start_ns = t0;
          dur_ns = Int64.sub t1 t0;
          depth;
          domain = (Domain.self () :> int);
          ok;
          attrs;
        }
        :: b.spans
    in
    match f () with
    | v ->
        close true;
        v
    | exception e ->
        close false;
        raise e
  end

let compare_span a b =
  let c = Int64.compare a.start_ns b.start_ns in
  if c <> 0 then c
  else
    let c = compare a.depth b.depth in
    if c <> 0 then c else compare a.name b.name

let drain () =
  Mutex.lock lock;
  let all =
    List.concat_map
      (fun b ->
        let s = b.spans in
        b.spans <- [];
        s)
      !bufs
  in
  Mutex.unlock lock;
  List.sort compare_span all

let reset () = ignore (drain ())

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_jsonl spans =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      let attrs =
        String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) (json_string v))
             s.attrs)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%s,\"start_ns\":%Ld,\"dur_ns\":%Ld,\"depth\":%d,\"domain\":%d,\"ok\":%b,\"attrs\":{%s}}\n"
           (json_string s.name) s.start_ns s.dur_ns s.depth s.domain s.ok attrs))
    spans;
  Buffer.contents buf
