(** Named, nested trace spans with an injectable monotonic clock.

    Tracing is off by default: a disabled {!with_span} is one atomic load
    plus the call to the wrapped function. When enabled, each completed
    span is recorded into a per-domain buffer (no locks on the hot path)
    and {!drain} collects, clears and time-orders all buffers.

    A span is recorded when it {e closes} — including closure by exception
    ([ok = false]), so a fault injected deep in the pipeline still leaves a
    complete, properly nested span tree behind (asserted by [test_obs]).

    The clock is process-wide and injectable ({!set_clock}); tests and the
    fault/fuzz harness install a deterministic counter so span timings (and
    anything else derived from {!now_ns}, e.g. report timings) reproduce
    exactly. *)

val now_ns : unit -> int64
(** Current time in nanoseconds from the installed clock (default: the
    system clock scaled to ns). Monotonicity is the clock's contract. *)

val set_clock : (unit -> int64) option -> unit
(** [set_clock (Some f)] installs [f] as the clock; [set_clock None]
    restores the default system clock. *)

val enable : unit -> unit

val disable : unit -> unit
(** Stop recording. Buffered spans are kept until {!drain} or {!reset}. *)

val enabled : unit -> bool

val set_selective : bool -> unit
(** Selective (head-sampling) mode: while set, only spans recorded
    inside some {!with_context} (trace id [<> 0]) are kept — requests
    that were not sampled leave nothing behind. Orthogonal to
    {!enable}; off by default. *)

val is_selective : unit -> bool

type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;  (** nesting depth within the recording domain, 0 = root *)
  domain : int;  (** numeric id of the recording domain *)
  trace : int;  (** request-scoped trace id set by {!with_context}, 0 = none *)
  ok : bool;  (** [false] when the span closed by exception *)
  attrs : (string * string) list;
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the function inside a span. Always re-raises; never swallows. *)

val with_context : trace:int -> depth:int -> (unit -> 'a) -> 'a
(** Run the function with this domain's trace id set to [trace] and its
    nesting base set to [depth]: spans recorded inside are tagged with
    [trace] and nest at absolute depths [>= depth]. This is how a shard
    process records its subtree at the depth the coordinator's enclosing
    request span dictates, so the reassembled cross-process tree is one
    properly nested stack. Restores the previous context on exit (also on
    exception); a no-op wrapper while tracing is disabled. *)

val current_depth : unit -> int
(** This domain's current nesting depth — the depth the next {!with_span}
    would record at. [0] while tracing is disabled. *)

val current_trace : unit -> int
(** This domain's current trace id ({!with_context}); [0] outside any
    context or while tracing is disabled. *)

val graft : ?offset_ns:int64 -> ?lo_ns:int64 -> span list -> unit
(** Adopt spans recorded in another process into this domain's buffer.
    [offset_ns] (default [0L]) is added to every [start_ns] to re-base the
    peer's clock onto ours. Residual skew is then absorbed by uniform
    shifts of the whole subtree: it is pulled back so it ends no later
    than {!now_ns} at the call (adopted spans are completed work — an
    offset measured late must not push them past the close of the
    enclosing request span), and if [lo_ns] is given the subtree is
    finally shifted to start no earlier than it (a child must not escape
    the request span's start either). Spans keep their absolute depths
    and are re-domained to the calling domain. No-op while tracing is
    disabled. *)

val drain : unit -> span list
(** All completed spans from every domain, cleared from the buffers,
    sorted by (start_ns, depth, name). *)

val drain_trace : int -> span list
(** Remove and return only the spans tagged with this trace id, sorted
    like {!drain}; every other buffered span stays. Safe while other
    requests are in flight on sibling domains (a request's completion
    callback collects its own subtree without stealing theirs). *)

val reset : unit -> unit
(** Drop buffered spans (keeps the enabled state and clock). *)

val to_jsonl : span list -> string
(** One JSON object per line, schema (locked by [test_obs]):
    {v
    {"name":N,"start_ns":S,"dur_ns":D,"depth":P,"domain":I,"trace":T,"ok":B,"attrs":{...}}
    v} *)
