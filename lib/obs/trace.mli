(** Named, nested trace spans with an injectable monotonic clock.

    Tracing is off by default: a disabled {!with_span} is one atomic load
    plus the call to the wrapped function. When enabled, each completed
    span is recorded into a per-domain buffer (no locks on the hot path)
    and {!drain} collects, clears and time-orders all buffers.

    A span is recorded when it {e closes} — including closure by exception
    ([ok = false]), so a fault injected deep in the pipeline still leaves a
    complete, properly nested span tree behind (asserted by [test_obs]).

    The clock is process-wide and injectable ({!set_clock}); tests and the
    fault/fuzz harness install a deterministic counter so span timings (and
    anything else derived from {!now_ns}, e.g. report timings) reproduce
    exactly. *)

val now_ns : unit -> int64
(** Current time in nanoseconds from the installed clock (default: the
    system clock scaled to ns). Monotonicity is the clock's contract. *)

val set_clock : (unit -> int64) option -> unit
(** [set_clock (Some f)] installs [f] as the clock; [set_clock None]
    restores the default system clock. *)

val enable : unit -> unit

val disable : unit -> unit
(** Stop recording. Buffered spans are kept until {!drain} or {!reset}. *)

val enabled : unit -> bool

type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;  (** nesting depth within the recording domain, 0 = root *)
  domain : int;  (** numeric id of the recording domain *)
  ok : bool;  (** [false] when the span closed by exception *)
  attrs : (string * string) list;
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the function inside a span. Always re-raises; never swallows. *)

val drain : unit -> span list
(** All completed spans from every domain, cleared from the buffers,
    sorted by (start_ns, depth, name). *)

val reset : unit -> unit
(** Drop buffered spans (keeps the enabled state and clock). *)

val to_jsonl : span list -> string
(** One JSON object per line, schema (locked by [test_obs]):
    {v
    {"name":N,"start_ns":S,"dur_ns":D,"depth":P,"domain":I,"ok":B,"attrs":{...}}
    v} *)
