(* Slow-query capture for the serve path.

   Two cooperating pieces:

   - Per-domain stage scratch: when armed, [Prof.with_stage] brackets
     feed per-stage wall time into a domain-local accumulator
     ([doc_begin] / [note_stage] / [doc_end]), so the stage breakdown of
     a slow request can be retro-materialized even when the request was
     not sampled for tracing. Disarmed cost is one atomic load per
     bracket, mirroring Prof.

   - A bounded capture ring: the K slowest requests seen so far, plus
     write-through of every request over the slow threshold. Records are
     pre-rendered NDJSON lines (the serve layer owns the schema — this
     module must not depend on lib/core); over-threshold lines are
     appended to the sink immediately with the same O_APPEND +
     single-write(2) discipline as Supervisor.Quarantine, and the
     below-threshold top-K remainder is flushed at disarm. *)

let n_stages = 4

let stage_names = [| "tokenize"; "heap_merge"; "windows"; "verify" |]

let stage_name i = stage_names.(i)

type config = {
  slow_ns : float;  (* write-through threshold; infinity = ring-only *)
  capacity : int;
  sink : Unix.file_descr option;
  stages_only : bool;  (* shard mode: stage scratch armed, no ring *)
}

let state : config option Atomic.t = Atomic.make None

(* Armed-path probe (the Prof.captures pattern): zero while disarmed. *)
let n_captures = Atomic.make 0

let captures () = Atomic.get n_captures

let armed () = Atomic.get state <> None

let stage_armed = armed

(* ---- per-domain stage scratch ---- *)

type scratch = {
  st : float array;
  mutable s_wall_ns : float;
  mutable s_trace : int;
  mutable live : bool;
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { st = Array.make n_stages 0.; s_wall_ns = 0.; s_trace = 0; live = false })

let stage_clock () = Int64.to_float (Trace.now_ns ())

let doc_begin () =
  Atomic.incr n_captures;
  let s = Domain.DLS.get scratch_key in
  Array.fill s.st 0 n_stages 0.;
  s.s_wall_ns <- 0.;
  s.s_trace <- 0;
  s.live <- false

let note_stage i dt =
  let s = Domain.DLS.get scratch_key in
  if i >= 0 && i < n_stages then s.st.(i) <- s.st.(i) +. dt

let doc_end ~wall_ns ~trace =
  let s = Domain.DLS.get scratch_key in
  s.s_wall_ns <- wall_ns;
  s.s_trace <- trace;
  s.live <- true

type doc = { wall_ns : float; trace : int; stages_ns : float array }

let last_doc () =
  let s = Domain.DLS.get scratch_key in
  if not s.live then None
  else Some { wall_ns = s.s_wall_ns; trace = s.s_trace; stages_ns = Array.copy s.st }

(* ---- capture ring ---- *)

type entry = { e_wall_ns : float; e_line : string; mutable e_written : bool }

let ring_lock = Mutex.create ()

let ring : entry list ref = ref [] (* unordered; capacity is small *)

let n_total = ref 0

let write_line fd line =
  (* One write(2) per record: O_APPEND makes concurrent appends atomic
     for sane record sizes (same discipline as Quarantine.sink). *)
  let payload = Bytes.of_string (line ^ "\n") in
  ignore (Unix.write fd payload 0 (Bytes.length payload))

let ring_min () =
  List.fold_left (fun acc e -> Float.min acc e.e_wall_ns) Float.infinity !ring

let should_capture ~wall_ns =
  match Atomic.get state with
  | None -> false
  | Some c ->
      (not c.stages_only)
      && (wall_ns >= c.slow_ns
         || begin
              Mutex.lock ring_lock;
              let keep =
                List.length !ring < c.capacity || wall_ns > ring_min ()
              in
              Mutex.unlock ring_lock;
              keep
            end)

let capture ~wall_ns line =
  match Atomic.get state with
  | None -> ()
  | Some c when c.stages_only -> ()
  | Some c ->
      Atomic.incr n_captures;
      let written =
        if wall_ns >= c.slow_ns then (
          (match c.sink with Some fd -> write_line fd line | None -> ());
          true)
        else false
      in
      Mutex.lock ring_lock;
      incr n_total;
      let e = { e_wall_ns = wall_ns; e_line = line; e_written = written } in
      let r = e :: !ring in
      let r =
        if List.length r <= c.capacity then r
        else
          (* evict the least-slow entry; ties broken by list order *)
          let m =
            List.fold_left (fun acc x -> Float.min acc x.e_wall_ns) infinity r
          in
          let dropped = ref false in
          List.filter
            (fun x ->
              if (not !dropped) && x.e_wall_ns = m then (
                dropped := true;
                false)
              else true)
            r
      in
      ring := r;
      Mutex.unlock ring_lock

let drain () =
  Mutex.lock ring_lock;
  let l = List.map (fun e -> (e.e_wall_ns, e.e_line)) !ring in
  Mutex.unlock ring_lock;
  List.sort (fun (a, _) (b, _) -> Float.compare b a) l

let total () =
  Mutex.lock ring_lock;
  let n = !n_total in
  Mutex.unlock ring_lock;
  n

(* Flush ring entries that never crossed the write-through threshold
   (the below-threshold tail of the top-K), slowest first. *)
let flush () =
  match Atomic.get state with
  | Some { sink = Some fd; _ } ->
      Mutex.lock ring_lock;
      let pending =
        List.filter (fun e -> not e.e_written) !ring
        |> List.sort (fun a b -> Float.compare b.e_wall_ns a.e_wall_ns)
      in
      List.iter (fun e -> e.e_written <- true) pending;
      Mutex.unlock ring_lock;
      List.iter (fun e -> write_line fd e.e_line) pending
  | _ -> ()

let disarm () =
  flush ();
  (match Atomic.get state with
  | Some { sink = Some fd; _ } -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | _ -> ());
  Atomic.set state None;
  Mutex.lock ring_lock;
  ring := [];
  n_total := 0;
  Mutex.unlock ring_lock

let configure ?(capacity = 8) ?slow_ms ?path () =
  (match Atomic.get state with Some _ -> disarm () | None -> ());
  let sink =
    match path with
    | None -> None
    | Some p ->
        Some (Unix.openfile p [ Unix.O_WRONLY; O_CREAT; O_APPEND ] 0o644)
  in
  let slow_ns =
    match slow_ms with Some ms -> ms *. 1e6 | None -> Float.infinity
  in
  Atomic.set state
    (Some { slow_ns; capacity = max 1 capacity; sink; stages_only = false })

let arm_stages () =
  (* A forked shard inherits the coordinator's armed state — ring
     contents and sink fd included. Drop both WITHOUT flushing (a flush
     here would duplicate the coordinator's records into the shared
     O_APPEND file) and close only our copy of the descriptor. *)
  (match Atomic.get state with
  | Some { sink = Some fd; _ } -> (
      try Unix.close fd with Unix.Unix_error _ -> ())
  | _ -> ());
  Mutex.lock ring_lock;
  ring := [];
  n_total := 0;
  Mutex.unlock ring_lock;
  Atomic.set state
    (Some { slow_ns = Float.infinity; capacity = 1; sink = None; stages_only = true })

let slow_ns () =
  match Atomic.get state with Some c -> c.slow_ns | None -> Float.infinity
