(** EXPLAIN-style auditor for the filter cascade.

    A {!t} is a per-run event sink. Extraction code emits structured
    decision events — which entities the heap merge streamed, why an
    entity (or bucket, or window start) was pruned, every candidate's
    count-vs-threshold test, every verification outcome — and the sink
    renders them as a human "waterfall" report ({!render}) or a JSONL
    event dump ({!to_jsonl}).

    Arming is per-domain and dynamically scoped: {!with_sink} installs a
    sink for the calling domain, instrumented code reaches it through
    {!current}. Disarmed (the production state) every hook is a single
    flag check ({!armed} is one atomic load) and allocates nothing; the
    candidate hot path pays nothing until a sink is installed.
    [Extractor.opts.explain] is the normal way to arm a run.

    The sink is an append-only event log owned by one domain at a time —
    it is not synchronized. Audit single runs (or reuse one sink across
    sequential documents); parallel batch workers do not record. *)

type reason =
  | Lazy_bound of { tl : int; count : int }
      (** entity pruned: its position list holds [count] < [tl] entries
          (Section 4.1's lazy-count bound) *)
  | Bucket_pruned
      (** a position-list bucket shorter than [Tl] was discarded
          (Section 4.1's bucket-count bound) *)
  | Span_pruned
      (** a window start failed the binary-span test: the [Tl]-sized
          window starting there already spans more than [⌈e] tokens
          (Section 4.2) *)
  | Shift_jumped of int
      (** binary shift skipped this many window starts in one jump
          (Section 4.2, Lemma 4) *)

type event =
  | Doc of { doc_id : int }  (** start of a document's run *)
  | Entity of { entity : int; e_len : int; n_positions : int }
      (** the heap merge streamed this entity's position list *)
  | Pruned of { entity : int; reason : reason }
  | Window of { entity : int; first : int; last : int }
      (** a maximal valid window [positions[first..last]] survived the
          span test and went to candidate enumeration *)
  | Window_skip of { entity : int; reason : reason }
  | Candidate of {
      entity : int;
      start : int;
      len : int;
      count : int;
      t : int;
      survived : bool;  (** [count >= t]: passed the count filter *)
    }
  | Filter_done of { survivors : int }
      (** filter finished; [survivors] candidates remain after dedup *)
  | Verifier of { choice : string }
      (** the edit-distance engine verification will use for this run
          ({!Faerie_sim.Verify.verifier_name}) *)
  | Verify of { entity : int; start : int; len : int; matched : bool }
      (** exact verification of one surviving candidate; [matched =
          false] is a wasted verification (filter false positive) *)
  | Selection of { total : int; kept : int }
      (** overlap resolution ({!Span_select.select}) kept [kept] of
          [total] spans *)

type t

val create : unit -> t

val with_sink : t -> (unit -> 'a) -> 'a
(** Install [t] as the calling domain's sink for the duration of the
    callback (restores the previous sink on exit, including by
    exception). *)

val armed : unit -> bool
(** Cheap global check (one atomic load): is any sink installed in any
    domain? Use as the guard before building event payloads on hot
    paths; {!record} re-checks the calling domain's sink. *)

val current : unit -> t option
(** The calling domain's installed sink, if any. Resolve once per run
    and thread the result when emitting from a loop. *)

val emit : t -> event -> unit

val record : event -> unit
(** [emit] to the calling domain's current sink; no-op when none. *)

val set_entity : t -> int -> unit
(** Set the entity context used by {!skip} (window-search hooks don't
    know which entity's position list they are scanning). *)

val skip : reason -> unit
(** Record a [Window_skip] against the current sink's entity context;
    no-op when no sink is installed. *)

val events : t -> event list
(** All events, in emission order. *)

val length : t -> int

val clear : t -> unit

(** {1 Reporting} *)

type summary = {
  docs : int;
  entities_seen : int;  (** = [Types.stats.entities_seen] *)
  pruned_lazy : int;  (** = [Types.stats.entities_pruned_lazy] *)
  buckets_pruned : int;  (** = [Types.stats.buckets_pruned] *)
  windows : int;
  span_pruned : int;
  shift_jumped : int;
  candidates : int;  (** = [Types.stats.candidates] *)
  candidates_survived : int;  (** passed the count test, before dedup *)
  survivors : int;  (** = [Types.stats.survivors] (post-dedup) *)
  verify_calls : int;
  matched : int;  (** = [Types.stats.verified] *)
}
(** Per-level totals folded from the event log. The fields marked [=]
    agree exactly with the [Types.stats] of the audited run(s)
    (test-asserted at every pruning level, summed across documents when
    one sink audits several runs). *)

val summarize : t -> summary

val render : ?top:int -> ?name_of:(int -> string) -> t -> string
(** Human waterfall report: candidates surviving each cascade level with
    per-filter selectivity, per-entity-length-group heap-merge stats,
    and the [top] (default 5) most expensive entities (by candidates
    generated + verifications). [name_of] renders entity ids. *)

val to_jsonl : t -> string
(** One JSON object per event, schema (locked by [test_cli]):
    {v
    {"ev":"doc","doc_id":0}
    {"ev":"entity","entity":3,"e_len":2,"positions":5}
    {"ev":"pruned","entity":3,"reason":"lazy","tl":2,"count":1}
    {"ev":"pruned","entity":4,"reason":"bucket"}
    {"ev":"window","entity":3,"first":0,"last":4}
    {"ev":"window_skip","entity":3,"reason":"span"}
    {"ev":"window_skip","entity":3,"reason":"shift","jump":5}
    {"ev":"candidate","entity":3,"start":7,"len":2,"count":2,"t":2,"survived":true}
    {"ev":"filter_done","survivors":12}
    {"ev":"verify","entity":3,"start":7,"len":2,"matched":true}
    {"ev":"selection","total":9,"kept":4}
    v} *)
