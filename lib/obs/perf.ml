(* ---- percentile estimation ---- *)

let quantile (h : Metrics.histogram_snapshot) q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Perf.quantile: q must be in [0, 1]";
  if h.count = 0 then nan
  else begin
    let rank = q *. float_of_int h.count in
    let n = Array.length h.upper in
    let cum = ref 0 in
    let result = ref nan in
    (try
       for i = 0 to Array.length h.counts - 1 do
         let prev = float_of_int !cum in
         cum := !cum + h.counts.(i);
         if float_of_int !cum >= rank && h.counts.(i) > 0 then begin
           if i >= n then
             (* Overflow bucket: no upper bound, report its lower bound. *)
             result := h.upper.(n - 1)
           else begin
             let lo = if i = 0 then 0. else h.upper.(i - 1) in
             let hi = h.upper.(i) in
             let frac =
               (rank -. prev) /. float_of_int h.counts.(i)
             in
             let frac = Float.max 0. (Float.min 1. frac) in
             result := lo +. (frac *. (hi -. lo))
           end;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

(* ---- minimal JSON ---- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Fail of int * string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Fail (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char buf '"'; loop ()
            | '\\' -> Buffer.add_char buf '\\'; loop ()
            | '/' -> Buffer.add_char buf '/'; loop ()
            | 'n' -> Buffer.add_char buf '\n'; loop ()
            | 't' -> Buffer.add_char buf '\t'; loop ()
            | 'r' -> Buffer.add_char buf '\r'; loop ()
            | 'b' -> Buffer.add_char buf '\b'; loop ()
            | 'f' -> Buffer.add_char buf '\012'; loop ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail "bad \\u escape"
                in
                (* Encode the code point as UTF-8 (BMP only; surrogate
                   pairs in bench files don't occur — we never write
                   them). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                loop ()
            | _ -> fail "unknown escape")
        | c -> Buffer.add_char buf c; loop ()
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numchar s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match float_of_string_opt tok with
      | Some f -> Num f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' -> parse_obj ()
      | Some '[' -> parse_arr ()
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected %C" c)
    and parse_obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec loop () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        loop ();
        Obj (List.rev !fields)
      end
    and parse_arr () =
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        loop ();
        Arr (List.rev !items)
      end
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing input";
      v
    with
    | v -> Ok v
    | exception Fail (at, msg) ->
        Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

  let escape_string s =
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

  let number_to_string v =
    if Float.is_nan v then "null"
    else if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.17g" v

  let rec to_string = function
    | Null -> "null"
    | Bool b -> if b then "true" else "false"
    | Num v -> number_to_string v
    | Str s -> escape_string s
    | Arr items -> "[" ^ String.concat "," (List.map to_string items) ^ "]"
    | Obj fields ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) -> escape_string k ^ ":" ^ to_string v)
               fields)
        ^ "}"

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let to_float = function Num v -> Some v | _ -> None

  let to_int = function
    | Num v when Float.is_integer v -> Some (int_of_float v)
    | _ -> None

  let to_str = function Str s -> Some s | _ -> None

  let to_list = function Arr items -> Some items | _ -> None
end

(* ---- bench snapshots ---- *)

type gc = {
  minor_words : float;
  promoted_words : float;
  major_collections : int;
  top_heap_bytes : int;
  words_per_token : float;
}

type exhibit = {
  ex_name : string;
  wall_s : float;
  tokens : int;
  tokens_per_s : float;
  candidates : int;
  pruned : int;
  verify_calls : int;
  matches : int;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  a50_w : float;
  a90_w : float;
  a99_w : float;
  gc : gc option;
}

type bench = {
  schema : string;
  git_rev : string;
  scale : float;
  ocaml : string;
  exhibits : exhibit list;
}

let schema_version = "faerie-bench-v2"

let schema_v1 = "faerie-bench-v1"

let exhibit_of_snapshot ~name ~wall_s (snap : Metrics.snapshot) =
  let c n = Metrics.counter_value snap n in
  let tokens = c "tokenize_tokens" in
  let pcts hist_name =
    match List.assoc_opt hist_name snap.histograms with
    | Some h when h.count > 0 ->
        (quantile h 0.5, quantile h 0.9, quantile h 0.99)
    | _ -> (nan, nan, nan)
  in
  let p50, p90, p99 = pcts "doc_wall_ns" in
  let a50, a90, a99 = pcts "doc_alloc_words" in
  (* The gc block exists only when Prof actually captured document-level
     deltas during the exhibit (doc_alloc_words observed at least once);
     an unprofiled exhibit serializes "gc":null. *)
  let gc =
    match List.assoc_opt "doc_alloc_words" snap.histograms with
    | Some h when h.count > 0 ->
        Some
          {
            minor_words = float_of_int (c "gc_minor_words");
            promoted_words = float_of_int (c "gc_promoted_words");
            major_collections = c "gc_major_collections";
            top_heap_bytes =
              int_of_float (Metrics.gauge_value snap "gc_top_heap_bytes");
            words_per_token =
              (if tokens > 0 then h.sum /. float_of_int tokens else 0.);
          }
    | _ -> None
  in
  {
    ex_name = name;
    wall_s;
    tokens;
    tokens_per_s =
      (if wall_s > 0. then float_of_int tokens /. wall_s else 0.);
    candidates = c "candidates_generated";
    pruned = c "entities_pruned_lazy" + c "buckets_pruned";
    verify_calls = c "verify_calls";
    matches = c "matches_verified";
    p50_ns = p50;
    p90_ns = p90;
    p99_ns = p99;
    a50_w = a50;
    a90_w = a90;
    a99_w = a99;
    gc;
  }

let num_or_null v = if Float.is_nan v then Json.Null else Json.Num v

let json_of_exhibit (e : exhibit) =
  Json.Obj
    [
      ("name", Json.Str e.ex_name);
      ("wall_s", Json.Num e.wall_s);
      ("tokens", Json.Num (float_of_int e.tokens));
      ("tokens_per_s", Json.Num e.tokens_per_s);
      ("candidates", Json.Num (float_of_int e.candidates));
      ("pruned", Json.Num (float_of_int e.pruned));
      ("verify_calls", Json.Num (float_of_int e.verify_calls));
      ("matches", Json.Num (float_of_int e.matches));
      ( "doc_wall_ns",
        Json.Obj
          [
            ("p50", num_or_null e.p50_ns);
            ("p90", num_or_null e.p90_ns);
            ("p99", num_or_null e.p99_ns);
          ] );
      ( "alloc_per_doc",
        Json.Obj
          [
            ("p50", num_or_null e.a50_w);
            ("p90", num_or_null e.a90_w);
            ("p99", num_or_null e.a99_w);
          ] );
      ( "gc",
        match e.gc with
        | None -> Json.Null
        | Some g ->
            Json.Obj
              [
                ("minor_words", Json.Num g.minor_words);
                ("promoted_words", Json.Num g.promoted_words);
                ( "major_collections",
                  Json.Num (float_of_int g.major_collections) );
                ("top_heap_bytes", Json.Num (float_of_int g.top_heap_bytes));
                ("words_per_token", Json.Num g.words_per_token);
              ] );
    ]

let bench_to_json (b : bench) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":%s,\"git_rev\":%s,\"scale\":%s,\"ocaml\":%s,\"exhibits\":[\n"
       (Json.escape_string b.schema)
       (Json.escape_string b.git_rev)
       (Json.number_to_string b.scale)
       (Json.escape_string b.ocaml));
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Json.to_string (json_of_exhibit e)))
    b.exhibits;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let exhibit_of_json j =
  let ( let* ) = Option.bind in
  let* name = Option.bind (Json.member "name" j) Json.to_str in
  let* wall_s = Option.bind (Json.member "wall_s" j) Json.to_float in
  let int_field k = Option.bind (Json.member k j) Json.to_int in
  let* tokens = int_field "tokens" in
  let* tokens_per_s = Option.bind (Json.member "tokens_per_s" j) Json.to_float in
  let* candidates = int_field "candidates" in
  let* pruned = int_field "pruned" in
  let* verify_calls = int_field "verify_calls" in
  let* matches = int_field "matches" in
  let pct block k =
    match Option.bind (Json.member block j) (Json.member k) with
    | Some (Json.Num v) -> v
    | _ -> nan
  in
  (* v1 exhibits have neither block: percentiles decay to nan, gc to None. *)
  let gc =
    match Json.member "gc" j with
    | Some (Json.Obj _ as g) ->
        let f k =
          Option.value ~default:0. (Option.bind (Json.member k g) Json.to_float)
        in
        let i k =
          Option.value ~default:0 (Option.bind (Json.member k g) Json.to_int)
        in
        Some
          {
            minor_words = f "minor_words";
            promoted_words = f "promoted_words";
            major_collections = i "major_collections";
            top_heap_bytes = i "top_heap_bytes";
            words_per_token = f "words_per_token";
          }
    | _ -> None
  in
  Some
    {
      ex_name = name;
      wall_s;
      tokens;
      tokens_per_s;
      candidates;
      pruned;
      verify_calls;
      matches;
      p50_ns = pct "doc_wall_ns" "p50";
      p90_ns = pct "doc_wall_ns" "p90";
      p99_ns = pct "doc_wall_ns" "p99";
      a50_w = pct "alloc_per_doc" "p50";
      a90_w = pct "alloc_per_doc" "p90";
      a99_w = pct "alloc_per_doc" "p99";
      gc;
    }

let bench_of_json s =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> (
      match Option.bind (Json.member "schema" j) Json.to_str with
      | None -> Error "missing \"schema\" field"
      | Some v when v <> schema_version && v <> schema_v1 ->
          Error
            (Printf.sprintf "unsupported schema %S (want %S or %S)" v
               schema_version schema_v1)
      | Some schema -> (
          let str_field k ~default =
            Option.value ~default (Option.bind (Json.member k j) Json.to_str)
          in
          let scale =
            Option.value ~default:1.0
              (Option.bind (Json.member "scale" j) Json.to_float)
          in
          match Option.bind (Json.member "exhibits" j) Json.to_list with
          | None -> Error "missing \"exhibits\" array"
          | Some items -> (
              let parsed = List.map exhibit_of_json items in
              if List.exists Option.is_none parsed then
                Error "malformed exhibit entry"
              else
                Ok
                  {
                    schema;
                    git_rev = str_field "git_rev" ~default:"unknown";
                    scale;
                    ocaml = str_field "ocaml" ~default:"unknown";
                    exhibits = List.filter_map Fun.id parsed;
                  })))

(* ---- regression comparison ---- *)

type verdict = {
  v_name : string;
  baseline_s : float;
  current_s : float;
  ratio : float;
  regressed : bool;
  alloc_ratio : float option;
  alloc_regressed : bool;
}

type comparison = {
  verdicts : verdict list;
  missing : string list;
  any_regressed : bool;
}

let compare_benches ?(max_ratio = 1.5) ?max_alloc_ratio ~baseline ~current () =
  let find name =
    List.find_opt (fun e -> e.ex_name = name) current.exhibits
  in
  let verdicts, missing =
    List.fold_left
      (fun (vs, ms) b ->
        match find b.ex_name with
        | None -> (vs, b.ex_name :: ms)
        | Some c ->
            let ratio =
              if b.wall_s > 0. then c.wall_s /. b.wall_s
              else if c.wall_s > 0. then infinity
              else 1.
            in
            (* Allocation gate on minor words (the bulk of allocation and
               the least noisy GC stat). A v1/no-gc baseline cannot gate;
               a baseline with gc but a current without it means
               profiling silently went dark — fail loudly. *)
            let alloc_ratio, alloc_regressed =
              match (max_alloc_ratio, b.gc, c.gc) with
              | None, Some bg, Some cg when bg.minor_words > 0. ->
                  (Some (cg.minor_words /. bg.minor_words), false)
              | None, _, _ -> (None, false)
              | Some _, None, _ -> (None, false)
              | Some _, Some _, None -> (Some infinity, true)
              | Some r, Some bg, Some cg ->
                  let ar =
                    if bg.minor_words > 0. then cg.minor_words /. bg.minor_words
                    else if cg.minor_words > 0. then infinity
                    else 1.
                  in
                  (Some ar, ar > r)
            in
            let v =
              {
                v_name = b.ex_name;
                baseline_s = b.wall_s;
                current_s = c.wall_s;
                ratio;
                regressed = ratio > max_ratio;
                alloc_ratio;
                alloc_regressed;
              }
            in
            (v :: vs, ms))
      ([], []) baseline.exhibits
  in
  let verdicts = List.rev verdicts and missing = List.rev missing in
  {
    verdicts;
    missing;
    any_regressed =
      missing <> []
      || List.exists (fun v -> v.regressed || v.alloc_regressed) verdicts;
  }

let render_comparison ~max_ratio ?max_alloc_ratio c =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%-24s %12s %12s %8s %8s" "exhibit" "baseline_s" "current_s" "ratio"
    "alloc";
  List.iter
    (fun v ->
      let alloc =
        match v.alloc_ratio with
        | None -> "-"
        | Some r when r = infinity -> "inf"
        | Some r -> Printf.sprintf "%.2fx" r
      in
      line "%-24s %12.4f %12.4f %7.2fx %8s%s" v.v_name v.baseline_s
        v.current_s v.ratio alloc
        (if v.regressed || v.alloc_regressed then "  REGRESSED" else ""))
    c.verdicts;
  List.iter (fun name -> line "%-24s MISSING from current snapshot" name) c.missing;
  line "%s (max-ratio %.2f%s)"
    (if c.any_regressed then "REGRESSED" else "PASS")
    max_ratio
    (match max_alloc_ratio with
    | None -> ""
    | Some r -> Printf.sprintf ", max-alloc-ratio %.2f" r);
  Buffer.contents buf
