(** Deterministic head sampling for per-request diagnostics.

    [faerie serve --trace-sample-rate R] arms Trace + Explain for a
    deterministic subset of requests. The decision for a document is a
    pure function of [(seed, ordinal)] — a splitmix64 finalizer mapped
    to a uniform fraction in [0,1), compared against the rate — so
    sampling is reproducible across runs and independent of process
    topology: a sharded cluster samples exactly the ordinals a
    single-process run would (asserted by [test_obs]).

    Disarmed (the default), {!decide} is one atomic load returning
    [false]; {!captures} counts armed-path decisions so tests can prove
    the disarmed hot path never reaches them, mirroring [Prof]. *)

val configure : ?seed:int -> float -> unit
(** [configure rate] arms sampling at [rate] (clamped to [1.0]; a rate
    [<= 0.] disarms). [seed] (default 0) keys the per-ordinal hash. *)

val disarm : unit -> unit

val armed : unit -> bool

val rate : unit -> float
(** The armed rate, [0.] when disarmed. *)

val decide : int -> bool
(** [decide ord] — should the request with arrival ordinal [ord] be
    sampled? Deterministic in [(seed, ord)]; [false] (one atomic load,
    no allocation) while disarmed. *)

val fraction : seed:int -> int -> float
(** The uniform fraction behind {!decide}, exposed for determinism
    tests: [decide ord = (fraction ~seed ord < rate)]. *)

val trace_id : int -> int
(** [trace_id ord = ord + 1]: the trace id a sampled request records
    under (Trace reserves 0 for "no trace"; matches the cluster
    coordinator's Doc-frame convention). *)

val ord_of_trace : int -> int
(** Inverse of {!trace_id}. *)

val captures : unit -> int
(** Number of armed-path sampling decisions taken since process start —
    stays at zero while disarmed (the [Prof.captures] guarantee). *)
