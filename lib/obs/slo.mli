(** Service-level objectives and error-budget burn rate.

    [faerie serve --slo p99=50ms,avail=99.9] declares a latency and/or
    availability objective; each stats tick assesses the {e window}
    since the previous assessment from the delta of two merged metric
    snapshots, so the numbers describe recent behaviour, not the whole
    run.

    Burn rate is the standard error-budget form: the objective admits a
    bad-event budget of [1 - target] per unit of traffic, and burn is
    the observed bad fraction divided by that budget — a burn over 1.0
    means the objective will be violated if the window's behaviour
    persists, and degrades [{"op":"health"}] status to ["slo_burn"].
    Latency counts a document over the threshold as bad (budget [1 - q]
    for a [q]-quantile objective, bad fraction interpolated from the
    [doc_wall_ns] buckets); availability counts failed and shed
    documents against [docs_processed + docs_shed]. *)

type objective = {
  latency : (float * float) option;
      (** (quantile in (0,1), threshold in ns) *)
  avail : float option;  (** target fraction in (0,1) *)
}

val none : objective

val is_empty : objective -> bool

val parse : string -> (objective, string) result
(** Parse a [--slo] spec: comma-separated [pNN=DUR] (e.g. [p99=50ms],
    [p99.9=2s]; bare numbers are ms) and [avail=PCT] (e.g. [avail=99.9],
    or a fraction [avail=0.999]) items. *)

val to_string : objective -> string

type assessment = {
  window_s : float;  (** wall span of the assessed window, 0 on first *)
  docs : int;  (** documents in the window (processed + shed) *)
  latency_q : float option;
  latency_target_ms : float option;
  latency_measured_ms : float option;
      (** the objective quantile measured over the window *)
  latency_bad_frac : float option;  (** fraction over the threshold *)
  burn_latency : float option;
  avail_target : float option;
  avail_measured : float option;
  burn_avail : float option;
  burning : bool;  (** some burn rate exceeds 1.0 *)
}

type tracker
(** Remembers the previous snapshot and its wall time; owned by the
    serve loop. *)

val tracker : unit -> tracker

val assess : ?now_s:float -> tracker -> objective -> Metrics.snapshot -> assessment
(** Assess the window between the tracker's previous snapshot and
    [snap], then advance the tracker. The first assessment windows from
    process start (an empty previous snapshot). [now_s] injects a clock
    for tests. Counter deltas clamp to the current reading if a value
    shrank (a shard restarted and re-counted). *)

val fraction_le : Metrics.histogram_snapshot -> float -> float
(** Fraction of observations at or below [x], linearly interpolated
    inside the bucket containing [x] (the dual of [Perf.quantile]);
    [nan] on an empty histogram. *)

val to_json : assessment -> string
(** One JSON object:
    [{"window_s":..,"docs":..,"latency":{"q":..,"target_ms":..,
    "measured_ms":..,"bad_frac":..,"burn":..},"avail":{"target":..,
    "measured":..,"burn":..},"burning":..}] — absent measurements render
    as [null]. *)

val render : assessment -> string
(** One human line for the stderr summary. *)
