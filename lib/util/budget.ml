type exhaustion = Deadline | Bytes | Candidates

let exhaustion_to_string = function
  | Deadline -> "deadline"
  | Bytes -> "bytes"
  | Candidates -> "candidates"

exception Exhausted of exhaustion

type spec = {
  timeout_ms : int option;
  max_bytes : int option;
  max_candidates : int option;
}

let spec_unlimited = { timeout_ms = None; max_bytes = None; max_candidates = None }

let deadline_ns spec ~now_ns =
  Option.map
    (fun ms -> Int64.add now_ns (Int64.mul (Int64.of_int ms) 1_000_000L))
    spec.timeout_ms

let is_spec_unlimited s =
  s.timeout_ms = None && s.max_bytes = None && s.max_candidates = None

type t = {
  limited : bool;
  deadline : float;  (* absolute gettimeofday; infinity when unbounded *)
  mutable bytes_left : int;
  mutable cands_left : int;
  mutable ticks : int;
  mutable tripped : exhaustion option;
}

let unlimited =
  {
    limited = false;
    deadline = infinity;
    bytes_left = max_int;
    cands_left = max_int;
    ticks = 0;
    tripped = None;
  }

let start spec =
  if is_spec_unlimited spec then unlimited
  else
    {
      limited = true;
      deadline =
        (match spec.timeout_ms with
        | None -> infinity
        | Some ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.));
      bytes_left = Option.value spec.max_bytes ~default:max_int;
      cands_left = Option.value spec.max_candidates ~default:max_int;
      ticks = 0;
      tripped = None;
    }

let is_unlimited t = not t.limited

module Metrics = Faerie_obs.Metrics

let m_trips = Metrics.counter ~help:"budget exhaustions, any cause" "budget_trips"

let m_trips_deadline =
  Metrics.counter ~help:"budget exhaustions: deadline" "budget_trips_deadline"

let m_trips_bytes =
  Metrics.counter ~help:"budget exhaustions: byte cap" "budget_trips_bytes"

let m_trips_candidates =
  Metrics.counter ~help:"budget exhaustions: candidate cap" "budget_trips_candidates"

let trip t what =
  t.tripped <- Some what;
  Metrics.incr m_trips;
  Metrics.incr
    (match what with
    | Deadline -> m_trips_deadline
    | Bytes -> m_trips_bytes
    | Candidates -> m_trips_candidates);
  raise (Exhausted what)

let charge_bytes t n =
  if t.limited then begin
    t.bytes_left <- t.bytes_left - n;
    if t.bytes_left < 0 then trip t Bytes
  end

let charge_candidates t n =
  if t.limited then begin
    t.cands_left <- t.cands_left - n;
    if t.cands_left < 0 then trip t Candidates
  end

let check_deadline t =
  if t.limited && t.deadline < infinity && Unix.gettimeofday () > t.deadline
  then trip t Deadline

let tick t =
  if t.limited && t.deadline < infinity then begin
    t.ticks <- t.ticks + 1;
    if t.ticks land 255 = 0 then check_deadline t
  end

let exhausted t = t.tripped
