(** Per-document processing budgets: wall-clock deadline, input bytes and
    candidate count.

    Extraction over adversarial or pathological documents can blow up
    (quadratic candidate enumeration, huge inputs); a budget bounds the
    damage. A {!spec} describes the limits; {!start} arms a budget (the
    deadline clock starts ticking) for one document. The hot loop charges
    candidates with {!charge_candidates} (a decrement and branch) and polls
    the deadline with {!tick}, which reads the real clock only once every
    256 calls, so checks are cheap enough for inner loops. Tripping a limit
    raises {!Exhausted}; the pipeline catches it and degrades gracefully —
    partial results flagged, never silently dropped
    ({!Faerie_core.Parallel}). *)

type exhaustion = Deadline | Bytes | Candidates

val exhaustion_to_string : exhaustion -> string

exception Exhausted of exhaustion

type spec = {
  timeout_ms : int option;  (** wall-clock budget per document *)
  max_bytes : int option;  (** document size over which to degrade *)
  max_candidates : int option;  (** filter-phase candidate cap *)
}

val spec_unlimited : spec

val is_spec_unlimited : spec -> bool

val deadline_ns : spec -> now_ns:int64 -> int64 option
(** [deadline_ns spec ~now_ns] is the absolute admission deadline
    [now_ns + timeout_ms] (in nanoseconds), or [None] when the spec has no
    timeout. Admission control ({!Faerie_core.Supervisor}) stamps this at
    enqueue time so a document that outlives its own deadline while
    {e waiting} can be shed without ever being started. *)

type t

val unlimited : t
(** Never trips; every charge/tick is a single branch. *)

val start : spec -> t
(** Arm a budget: the deadline (if any) is [now + timeout_ms]. *)

val is_unlimited : t -> bool

val charge_bytes : t -> int -> unit
(** @raise Exhausted [Bytes] once the running total exceeds [max_bytes]. *)

val charge_candidates : t -> int -> unit
(** @raise Exhausted [Candidates] once the total exceeds [max_candidates]. *)

val tick : t -> unit
(** Amortized deadline poll (real clock read every 256 ticks).

    @raise Exhausted [Deadline] past the deadline. *)

val check_deadline : t -> unit
(** Immediate deadline poll. @raise Exhausted [Deadline] past it. *)

val exhausted : t -> exhaustion option
(** Which limit tripped, if any (sticky once raised). *)
