(** Minimal JSON codec for the NDJSON surfaces (serve protocol, quarantine
    dead-letter records).

    Self-contained on purpose: the repo's only runtime dependencies are the
    compiler distribution plus cmdliner, so the few places that must
    {e read} JSON (serve requests, quarantine replays) share this module
    instead of pulling in a JSON library. It is a strict subset of JSON:
    numbers parse as OCaml floats, strings support the standard escapes
    including [\uXXXX] (encoded back as UTF-8), and the parser rejects
    trailing garbage. It is meant for small one-line documents, not for
    streaming gigabyte payloads. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** insertion order preserved *)

val to_string : t -> string
(** Compact one-line rendering (no added whitespace). Integral floats in
    int range print without a decimal point, so counters round-trip as
    ["42"] rather than ["42."]. *)

val of_string : string -> (t, string) result
(** Parse one JSON document; [Error msg] on malformed input (never
    raises). Leading/trailing whitespace is allowed, trailing non-space
    bytes are an error. *)

(** {1 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]. *)

val to_str : t -> string option

val to_num : t -> float option

val to_int : t -> int option
(** [Num] with an integral value in [int] range. *)

val to_list : t -> t list option

val to_bool : t -> bool option
