exception Injected of string

type config = { seed : int; rates : (string * float) list }

(* The armed configuration is immutable and swapped atomically, so worker
   domains racing with configure/disarm only ever see a consistent config. *)
let state : config option Atomic.t = Atomic.make None

let injected = Atomic.make 0

(* Per-domain scope: the document id being processed plus one call counter
   per site, reset on entry. Keyed decisions make the fault schedule a
   function of the document, not of domain scheduling. *)
type ctx = { doc : int; counters : (string, int ref) Hashtbl.t }

let ctx_key : ctx option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let configure c = Atomic.set state (Some c)

let disarm () = Atomic.set state None

let active () = Atomic.get state <> None

let current () = Atomic.get state

let injected_count () = Atomic.get injected

let reset_counts () = Atomic.set injected 0

let with_context doc f =
  let slot = Domain.DLS.get ctx_key in
  let saved = !slot in
  slot := Some { doc; counters = Hashtbl.create 8 };
  Fun.protect ~finally:(fun () -> slot := saved) f

(* splitmix64 finalizer: full-avalanche mixing of the decision key. *)
let mix64 x =
  let open Int64 in
  let x = logxor x (shift_right_logical x 30) in
  let x = mul x 0xbf58476d1ce4e5b9L in
  let x = logxor x (shift_right_logical x 27) in
  let x = mul x 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let decide cfg ~site ~doc ~ord =
  match List.assoc_opt site cfg.rates with
  | None -> false
  | Some rate when rate <= 0. -> false
  | Some rate ->
      let h = mix64 (Int64.of_int cfg.seed) in
      let h = mix64 (Int64.logxor h (Int64.of_int (Hashtbl.hash site))) in
      let h = mix64 (Int64.logxor h (Int64.of_int doc)) in
      let h = mix64 (Int64.logxor h (Int64.of_int ord)) in
      let u =
        Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.
      in
      u < rate

let site name =
  match Atomic.get state with
  | None -> ()
  | Some cfg -> (
      match !(Domain.DLS.get ctx_key) with
      | None -> ()
      | Some ctx ->
          let counter =
            match Hashtbl.find_opt ctx.counters name with
            | Some c -> c
            | None ->
                let c = ref 0 in
                Hashtbl.add ctx.counters name c;
                c
          in
          let ord = !counter in
          incr counter;
          if decide cfg ~site:name ~doc:ctx.doc ~ord then begin
            Atomic.incr injected;
            raise (Injected name)
          end)

let known_sites =
  [
    "tokenize"; "heap_merge"; "verify"; "codec_io"; "supervisor_worker";
    "codec_rename"; "serve_decode"; "shard_frame"; "shard_stats";
    "wal_append"; "wal_replay"; "compact_save"; "compact_commit";
  ]
