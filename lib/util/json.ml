type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_nan f || Float.abs f = Float.infinity then
    (* JSON has no NaN/Inf; null is the least-bad lossy rendering. *)
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Bad (Printf.sprintf "%s at byte %d" msg c.pos))

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance c
  done

let expect_char c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let expect_lit c lit v =
  let n = String.length lit in
  if
    c.pos + n <= String.length c.s
    && String.equal (String.sub c.s c.pos n) lit
  then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" lit)

(* Encode a Unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let hex4 c =
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> fail c "bad \\u escape"
  in
  if c.pos + 4 > String.length c.s then fail c "truncated \\u escape";
  let v =
    (digit c.s.[c.pos] lsl 12)
    lor (digit c.s.[c.pos + 1] lsl 8)
    lor (digit c.s.[c.pos + 2] lsl 4)
    lor digit c.s.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let parse_string c =
  expect_char c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'; advance c
        | Some '\\' -> Buffer.add_char buf '\\'; advance c
        | Some '/' -> Buffer.add_char buf '/'; advance c
        | Some 'n' -> Buffer.add_char buf '\n'; advance c
        | Some 'r' -> Buffer.add_char buf '\r'; advance c
        | Some 't' -> Buffer.add_char buf '\t'; advance c
        | Some 'b' -> Buffer.add_char buf '\b'; advance c
        | Some 'f' -> Buffer.add_char buf '\012'; advance c
        | Some 'u' ->
            advance c;
            let u = hex4 c in
            (* Surrogate pair: a high surrogate must be followed by an
               escaped low surrogate; combine into one scalar value. *)
            if u >= 0xd800 && u <= 0xdbff then begin
              if
                c.pos + 2 <= String.length c.s
                && c.s.[c.pos] = '\\'
                && c.s.[c.pos + 1] = 'u'
              then begin
                c.pos <- c.pos + 2;
                let lo = hex4 c in
                if lo < 0xdc00 || lo > 0xdfff then fail c "bad surrogate pair";
                add_utf8 buf
                  (0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00))
              end
              else fail c "lone high surrogate"
            end
            else if u >= 0xdc00 && u <= 0xdfff then fail c "lone low surrogate"
            else add_utf8 buf u
        | _ -> fail c "bad escape");
        loop ())
    | Some ch when Char.code ch < 0x20 -> fail c "raw control byte in string"
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when num_char ch -> true | _ -> false do
    advance c
  done;
  if c.pos = start then fail c "expected a number";
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some f -> f
  | None -> fail c "malformed number"

let rec parse_value depth c =
  if depth > 512 then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect_char c ':';
          let v = parse_value (depth + 1) c in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members ()
          | Some '}' -> advance c
          | _ -> fail c "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value (depth + 1) c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; elements ()
          | Some ']' -> advance c
          | _ -> fail c "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some 'n' -> expect_lit c "null" Null
  | Some _ -> Num (parse_number c)

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value 0 c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then
        Error (Printf.sprintf "trailing bytes at %d" c.pos)
      else Ok v
  | exception Bad msg -> Error msg

(* ---- accessors ---- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_int = function
  | Num f
    when Float.is_integer f
         && f >= Int.to_float min_int
         && f <= Int.to_float max_int ->
      Some (int_of_float f)
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
