module Metrics = Faerie_obs.Metrics

exception Corrupt of string

exception Truncated of { at : int; len : int }

type op = Add of string | Remove of string

type tail = Clean | Torn of { at : int; len : int }

type t = { path : string; fd : Unix.file_descr; mutable seq : int }

let m_wal_replays = Metrics.counter "wal_replays"

(* ---- record format ----

   One record per mutation:

     [varint payload-len] [payload] [varint fnv1a(payload)]

   where payload is a one-byte opcode ('A' = add, 'R' = remove) followed
   by the raw entity string. Each record is emitted with a single
   O_APPEND write(2) followed by fsync, so a crash leaves the file equal
   to a whole-record prefix plus at most one torn tail — never an
   interleaving. The parser exploits that shape: running out of bytes
   mid-record is {!Torn} (normal after a crash), while a structurally
   complete record that fails its checksum can only come from real
   corruption and is {!Corrupt}. *)

let encode op =
  let payload =
    match op with
    | Add raw -> "A" ^ raw
    | Remove raw -> "R" ^ raw
  in
  let buf = Buffer.create (String.length payload + 12) in
  Varint.write buf (String.length payload);
  Buffer.add_string buf payload;
  Varint.write buf (Varint.fnv1a payload);
  Buffer.contents buf

(* Checked inline varint decode. Running past [limit] raises [Exit]
   (a torn tail is always a byte-prefix of a valid record, so premature
   end of input is the torn signature); an overlong encoding cannot be a
   prefix of anything valid and is corruption. *)
let read_varint data pos limit =
  let acc = ref 0 and shift = ref 0 and p = ref pos and fin = ref false in
  while not !fin do
    if !p >= limit then raise Exit;
    if !shift > 62 then
      raise (Corrupt (Printf.sprintf "wal: varint overflow at byte %d" pos));
    let b = Char.code (String.unsafe_get data !p) in
    incr p;
    acc := !acc lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then fin := true
  done;
  (!acc, !p)

let parse data =
  let n = String.length data in
  let ops = ref [] in
  let pos = ref 0 in
  let torn = ref None in
  (try
     while !pos < n do
       let start = !pos in
       try
         let len, p = read_varint data !pos n in
         if len < 1 then
           raise (Corrupt (Printf.sprintf "wal: empty record at byte %d" start));
         if n - p < len then raise Exit;
         let payload = String.sub data p len in
         let sum, p2 = read_varint data (p + len) n in
         if sum <> Varint.fnv1a payload then
           raise
             (Corrupt (Printf.sprintf "wal: checksum mismatch at byte %d" start));
         let op =
           match payload.[0] with
           | 'A' -> Add (String.sub payload 1 (len - 1))
           | 'R' -> Remove (String.sub payload 1 (len - 1))
           | c ->
               raise
                 (Corrupt
                    (Printf.sprintf "wal: unknown opcode %C at byte %d" c start))
         in
         ops := op :: !ops;
         pos := p2
       with Exit ->
         torn := Some start;
         raise Exit
     done
   with Exit -> ());
  ( List.rev !ops,
    match !torn with None -> Clean | Some at -> Torn { at; len = n } )

(* ---- file handle ---- *)

let openfile path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  { path; fd; seq = 0 }

let path t = t.path

let append t op =
  let seq = t.seq in
  t.seq <- seq + 1;
  (* The site fires before any byte is written: an injection models a
     crash before the record is durable, so the mutation must be rejected
     (never acked, never applied in memory). *)
  Fault.with_context seq (fun () -> Fault.site "wal_append");
  let rec_bytes = encode op in
  let len = String.length rec_bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring t.fd rec_bytes !off (len - !off)
  done;
  Unix.fsync t.fd

let truncate t =
  Unix.ftruncate t.fd 0;
  Unix.fsync t.fd;
  t.seq <- 0

let close t = Unix.close t.fd

(* ---- recovery ---- *)

let read_all path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ""
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let len = (Unix.fstat fd).Unix.st_size in
          let b = Bytes.create len in
          let off = ref 0 and eof = ref false in
          while !off < len && not !eof do
            let n = Unix.read fd b !off (len - !off) in
            if n = 0 then eof := true else off := !off + n
          done;
          Bytes.sub_string b 0 !off)

let replay ?(strict = false) path f =
  let ops, tail = parse (read_all path) in
  (if strict then
     match tail with
     | Clean -> ()
     | Torn { at; len } -> raise (Truncated { at; len }));
  Metrics.incr m_wal_replays;
  List.iteri
    (fun i op ->
      Fault.with_context i (fun () -> Fault.site "wal_replay");
      f op)
    ops;
  (List.length ops, tail)

let repair path = function
  | Clean -> ()
  | Torn { at; _ } ->
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.ftruncate fd at;
          Unix.fsync fd)
