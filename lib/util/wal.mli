(** Crash-safe write-ahead log for dictionary mutations.

    Each mutation is one length-prefixed, checksummed record written with a
    single [O_APPEND] write(2) + fsync, so after a crash the file is always
    a whole-record prefix plus at most one torn tail. Recovery mirrors
    {!Faerie_index.Codec.load}'s taxonomy: a record cut short by the crash
    is {e truncated} (expected; the whole-record prefix is recovered and
    the tail can be trimmed), while a structurally complete record with a
    bad checksum or unknown opcode is {e corrupt} (refuse to serve).

    Record layout: [varint payload-len ∥ payload ∥ varint fnv1a(payload)]
    with [payload = opcode byte ('A'|'R') ∥ raw entity string]. *)

exception Corrupt of string
(** Structural damage that cannot result from a torn append: checksum
    mismatch, unknown opcode, overlong varint, zero-length record. *)

exception Truncated of { at : int; len : int }
(** Raised by [replay ~strict:true] on a torn tail: the last (partial)
    record starts at byte [at] of a [len]-byte file. *)

type op = Add of string | Remove of string
(** One logged mutation, carrying the raw entity string. *)

type tail =
  | Clean
  | Torn of { at : int; len : int }
      (** The file ends with a partial record starting at byte [at]. *)

type t
(** An open append handle. *)

val openfile : string -> t
(** Open (creating if absent) for appending. *)

val path : t -> string

val append : t -> op -> unit
(** Durably append one record: single [O_APPEND] write + fsync. Fires the
    ["wal_append"] fault site {e before} writing — an injection models a
    crash before the record reaches disk, so the mutation must be rejected
    by the caller, never half-applied.

    @raise Faerie_util.Fault.Injected when the site fires. *)

val truncate : t -> unit
(** Reset the log to empty (after a successful compaction has folded every
    logged mutation into a durable snapshot). *)

val close : t -> unit

val encode : op -> string
(** The exact byte encoding of one record (exposed for tests). *)

val parse : string -> op list * tail
(** Decode a log image into its whole-record prefix and tail status.

    @raise Corrupt on structural damage (never on a torn tail). *)

val replay : ?strict:bool -> string -> (op -> unit) -> int * tail
(** [replay path f] parses the log (a missing file reads as empty) and
    applies [f] to each whole record in order, firing the ["wal_replay"]
    fault site per record; returns the applied count and the tail status.
    Parsing completes before any [f] runs, so a {!Corrupt} log applies
    nothing. With [~strict:true] a torn tail raises {!Truncated} instead
    of being recovered.

    @raise Corrupt on structural damage. *)

val repair : string -> tail -> unit
(** Trim a torn tail off the file ([Clean] is a no-op), so the next append
    starts at a record boundary. *)
