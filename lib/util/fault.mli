(** Deterministic fault injection for robustness testing.

    Library code marks named {e injection sites} ([Fault.site "tokenize"]);
    a test harness arms the registry with a seed and per-site failure
    probabilities, and each site call then raises {!Injected} with that
    probability. Whether a given call fires is a pure function of
    [(seed, site, document context, call ordinal within the context)] — no
    hidden global RNG state — so a campaign is exactly reproducible from
    its seed regardless of domain scheduling or work-stealing order: the
    same document always experiences the same faults.

    When the registry is disarmed (the default, and the only state
    production code ever runs in) a site call is a single atomic load and
    branch — effectively a no-op; no per-call allocation, hashing or
    branching on site names happens. Sites also stay inert outside a
    {!with_context} scope, so dictionary building and other setup work is
    never faulted even while a campaign is armed. *)

exception Injected of string
(** [Injected site] — the deliberate failure raised at an armed site.
    Pipeline code contains it at the per-document boundary
    ({!Faerie_core.Parallel}); it must never escape a batch run. *)

type config = {
  seed : int;  (** campaign seed; decisions derive from it deterministically *)
  rates : (string * float) list;
      (** per-site failure probability in [\[0,1\]]; unlisted sites never
          fire *)
}

val configure : config -> unit
(** Arm the registry. Safe to call from any domain; takes effect for
    subsequent {!site} calls in every domain. *)

val disarm : unit -> unit
(** Return every site to the no-op fast path. *)

val active : unit -> bool

val current : unit -> config option
(** The armed configuration, if any. Quarantine dead-letter records
    ({!Faerie_core.Supervisor}) capture it so a repro replays the exact
    fault schedule the document experienced. *)

val site : string -> unit
(** [site name] raises {!Injected name} with the configured probability —
    but only when the registry is armed {e and} the calling domain is
    inside a {!with_context} scope. Otherwise it returns immediately. *)

val with_context : int -> (unit -> 'a) -> 'a
(** [with_context doc_id f] runs [f] with fault context [doc_id] set for
    the calling domain (saved/restored on exit, exception-safe). Fault
    decisions are keyed by [doc_id], so which faults a document experiences
    is independent of which domain processes it or in what order. *)

val injected_count : unit -> int
(** Total faults raised since the last {!reset_counts} (all domains). *)

val reset_counts : unit -> unit

val known_sites : string list
(** The site names wired into the library, for campaign configuration:
    ["tokenize"] (document tokenization), ["heap_merge"] (multiway
    inverted-list merge), ["verify"] (candidate verification),
    ["codec_io"] (binary index decode), ["supervisor_worker"] (the
    {!Faerie_core.Supervisor} worker loop, {e outside} the per-document
    containment boundary — an injection here simulates a worker-domain
    crash), ["codec_rename"] (the window between writing a durable temp
    file and renaming it over the snapshot in
    {!Faerie_index.Codec.save} — an injection simulates a kill between
    write and rename), ["serve_decode"] (NDJSON request decoding in
    {!Faerie_core.Serve_proto}), ["shard_frame"] (frame handling in a
    {!Faerie_core.Cluster} shard process, {e outside} the per-document
    boundary — an injection there makes the whole shard process exit
    abnormally, simulating a shard crash mid-request), ["wal_append"]
    (fired {e before} the write(2) in {!Wal.append} — an injection
    simulates a crash before the mutation reaches disk: the op must be
    rejected, not half-applied), ["wal_replay"] (fired per record during
    {!Wal.replay} — simulates a crash mid-recovery; replay must be
    idempotent so a rerun converges), ["compact_save"] (before the
    compactor writes the folded snapshot) and ["compact_commit"] (after
    the snapshot is durable but before it is adopted — an injection at
    either must leave the old generation serving and the WAL intact). *)
