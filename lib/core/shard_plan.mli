(** Dictionary partitioning for the sharded serving cluster.

    A cluster ({!Cluster}) splits the dictionary into contiguous
    entity-id ranges, one per shard. Contiguity matters: a shard's slice
    keeps its entities in global order, so a shard-local match's entity id
    maps back to the global id by adding the range's lower bound
    ({!remap_matches}) — no per-entity translation table travels over the
    wire, and merged responses use exactly the ids a single-process server
    would have produced.

    Per-shard index snapshots are written through
    {!Faerie_index.Codec.save}, inheriting its durability contract (temp
    file + fsync + atomic rename): a shard process can be killed and
    restarted against its snapshot path at any point without observing a
    torn file. *)

type range = { lo : int; hi : int }
(** Half-open global entity-id interval [\[lo, hi)]. *)

val width : range -> int

val partition : n_entities:int -> shards:int -> range array
(** [partition ~n_entities ~shards] covers [\[0, n_entities)] with
    [shards] contiguous, disjoint, near-equal ranges (sizes differ by at
    most one; earlier shards take the remainder). Deterministic, so the
    coordinator and any offline tooling agree on ownership.
    @raise Invalid_argument when [shards <= 0] or [n_entities < 0]. *)

val owner : range array -> int -> int option
(** Which shard owns a global entity id, if any. *)

val owner_dyn : range array -> int -> int
(** Ownership extended to dynamically added entities: ids inside a range
    map to its shard, ids past the partitioned space round-robin over the
    shards ([(id - top) mod shards]) — deterministic, so ownership is
    recomputable after a coordinator restart without a routing table.
    @raise Invalid_argument on an empty range array. *)

val snapshot_path : dir:string -> gen:int -> shard:int -> string
(** The canonical per-shard snapshot filename,
    [DIR/shard-S.gen-G.faerie]. Generation-stamped so a two-phase reload
    can have old and new snapshots on disk simultaneously. *)

type shard_snapshot = { shard : int; range : range; path : string }

val write_snapshots :
  dir:string ->
  gen:int ->
  sim:Faerie_sim.Sim.t ->
  q:int ->
  shards:int ->
  string array ->
  shard_snapshot array
(** [write_snapshots ~dir ~gen ~sim ~q ~shards entities] partitions
    [entities], builds one {!Problem} per slice and saves each as an
    atomic index snapshot at {!snapshot_path}. Returns the plan in shard
    order. Raises on I/O failure (the caller aborts the reload and keeps
    serving the old generation). *)

val remap_matches : range:range -> Types.char_match list -> Types.char_match list
(** Translate shard-local entity ids in a match list back to global ids
    ([local + range.lo]). *)
