module Budget = Faerie_util.Budget

type exn_info = { exn_name : string; message : string; backtrace : string }

let exn_info_of ?backtrace exn =
  {
    exn_name = Printexc.exn_slot_name exn;
    message = Printexc.to_string exn;
    backtrace =
      (match backtrace with Some b -> b | None -> Printexc.get_backtrace ());
  }

type error =
  | Doc_too_large of { bytes : int; limit : int }
  | Budget_exhausted of Budget.exhaustion
  | Tokenize_error of string
  | Corrupt_index of string
  | Injected_fault of string
  | Worker_crash of exn_info

type degradation =
  | Oversize_chunked of { bytes : int; limit : int }
  | Partial of Budget.exhaustion

type 'a t = Ok of 'a | Degraded of 'a * degradation | Failed of error

let is_ok = function Ok _ -> true | Degraded _ | Failed _ -> false

let is_failed = function Failed _ -> true | Ok _ | Degraded _ -> false

let matches = function
  | Ok v | Degraded (v, _) -> Some v
  | Failed _ -> None

let error_to_string = function
  | Doc_too_large { bytes; limit } ->
      Printf.sprintf "document too large (%d bytes, limit %d)" bytes limit
  | Budget_exhausted e ->
      Printf.sprintf "budget exhausted (%s)" (Budget.exhaustion_to_string e)
  | Tokenize_error msg -> Printf.sprintf "tokenization failed: %s" msg
  | Corrupt_index msg -> Printf.sprintf "corrupt index: %s" msg
  | Injected_fault site -> Printf.sprintf "injected fault at site %S" site
  | Worker_crash { exn_name; message; _ } ->
      Printf.sprintf "worker crashed: %s (%s)" exn_name message

let degradation_to_string = function
  | Oversize_chunked { bytes; limit } ->
      Printf.sprintf "oversize document (%d bytes > %d): chunked processing"
        bytes limit
  | Partial e ->
      Printf.sprintf "partial results: %s budget exhausted"
        (Budget.exhaustion_to_string e)

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

type summary = {
  n_docs : int;
  n_ok : int;
  n_degraded : int;
  n_failed : int;
  failures : (int * error) list;
  elapsed_ns : int64;
}

let summarize ?(elapsed_ns = 0L) outcomes =
  let n_ok = ref 0 and n_degraded = ref 0 and n_failed = ref 0 in
  let failures = ref [] in
  Array.iteri
    (fun i -> function
      | Ok _ -> incr n_ok
      | Degraded _ -> incr n_degraded
      | Failed err ->
          incr n_failed;
          failures := (i, err) :: !failures)
    outcomes;
  {
    n_docs = Array.length outcomes;
    n_ok = !n_ok;
    n_degraded = !n_degraded;
    n_failed = !n_failed;
    failures = List.rev !failures;
    elapsed_ns;
  }

let pp_summary ppf s =
  Format.fprintf ppf "%d documents: %d ok, %d degraded, %d failed" s.n_docs
    s.n_ok s.n_degraded s.n_failed;
  if s.elapsed_ns > 0L then
    Format.fprintf ppf " in %.1f ms"
      (Int64.to_float s.elapsed_ns /. 1e6)
