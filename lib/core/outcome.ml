module Budget = Faerie_util.Budget

type exn_info = { exn_name : string; message : string; backtrace : string }

let exn_info_of ?backtrace exn =
  {
    exn_name = Printexc.exn_slot_name exn;
    message = Printexc.to_string exn;
    backtrace =
      (match backtrace with Some b -> b | None -> Printexc.get_backtrace ());
  }

type shed_cause = Deadline_expired | Queue_full | Shutdown

let shed_cause_to_string = function
  | Deadline_expired -> "deadline already expired"
  | Queue_full -> "admission queue full"
  | Shutdown -> "service shutting down"

type error =
  | Doc_too_large of { bytes : int; limit : int }
  | Budget_exhausted of Budget.exhaustion
  | Tokenize_error of string
  | Corrupt_index of string
  | Injected_fault of string
  | Worker_crash of exn_info
  | Shed of shed_cause
  | Quarantined of { attempts : int; last : error }

type degradation =
  | Oversize_chunked of { bytes : int; limit : int }
  | Partial of Budget.exhaustion
  | Shard_partial of { n_shards : int; missing : int list }

type 'a t = Ok of 'a | Degraded of 'a * degradation | Failed of error

let is_ok = function Ok _ -> true | Degraded _ | Failed _ -> false

let is_failed = function Failed _ -> true | Ok _ | Degraded _ -> false

let matches = function
  | Ok v | Degraded (v, _) -> Some v
  | Failed _ -> None

let rec error_to_string = function
  | Doc_too_large { bytes; limit } ->
      Printf.sprintf "document too large (%d bytes, limit %d)" bytes limit
  | Budget_exhausted e ->
      Printf.sprintf "budget exhausted (%s)" (Budget.exhaustion_to_string e)
  | Tokenize_error msg -> Printf.sprintf "tokenization failed: %s" msg
  | Corrupt_index msg -> Printf.sprintf "corrupt index: %s" msg
  | Injected_fault site -> Printf.sprintf "injected fault at site %S" site
  | Worker_crash { exn_name; message; _ } ->
      Printf.sprintf "worker crashed: %s (%s)" exn_name message
  | Shed cause -> Printf.sprintf "shed: %s" (shed_cause_to_string cause)
  | Quarantined { attempts; last } ->
      Printf.sprintf "quarantined after %d attempts (last: %s)" attempts
        (error_to_string last)

let degradation_to_string = function
  | Oversize_chunked { bytes; limit } ->
      Printf.sprintf "oversize document (%d bytes > %d): chunked processing"
        bytes limit
  | Partial e ->
      Printf.sprintf "partial results: %s budget exhausted"
        (Budget.exhaustion_to_string e)
  | Shard_partial { n_shards; missing } ->
      Printf.sprintf "partial results: %d of %d shards missing (%s)"
        (List.length missing) n_shards
        (String.concat "," (List.map string_of_int missing))

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

type cls = [ `Ok | `Degraded | `Failed | `Shed | `Quarantined ]

let classify = function
  | Ok _ -> `Ok
  | Degraded _ -> `Degraded
  | Failed (Shed _) -> `Shed
  | Failed (Quarantined _) -> `Quarantined
  | Failed _ -> `Failed

let class_name = function
  | `Ok -> "ok"
  | `Degraded -> "degraded"
  | `Failed -> "failed"
  | `Shed -> "shed"
  | `Quarantined -> "quarantined"

type summary = {
  n_docs : int;
  n_ok : int;
  n_degraded : int;
  n_failed : int;
  n_shed : int;
  n_quarantined : int;
  failures : (int * error) list;
  elapsed_ns : int64;
}

let summarize ?(elapsed_ns = 0L) outcomes =
  let n_ok = ref 0
  and n_degraded = ref 0
  and n_failed = ref 0
  and n_shed = ref 0
  and n_quarantined = ref 0 in
  let failures = ref [] in
  Array.iteri
    (fun i o ->
      match classify o with
      | `Ok -> incr n_ok
      | `Degraded -> incr n_degraded
      | `Shed -> incr n_shed
      | `Quarantined -> incr n_quarantined
      | `Failed -> (
          incr n_failed;
          match o with
          | Failed err -> failures := (i, err) :: !failures
          | Ok _ | Degraded _ -> assert false))
    outcomes;
  {
    n_docs = Array.length outcomes;
    n_ok = !n_ok;
    n_degraded = !n_degraded;
    n_failed = !n_failed;
    n_shed = !n_shed;
    n_quarantined = !n_quarantined;
    failures = List.rev !failures;
    elapsed_ns;
  }

let pp_summary ppf s =
  Format.fprintf ppf "%d documents: %d ok, %d degraded, %d failed" s.n_docs
    s.n_ok s.n_degraded s.n_failed;
  if s.n_shed > 0 then Format.fprintf ppf ", %d shed" s.n_shed;
  if s.n_quarantined > 0 then
    Format.fprintf ppf ", %d quarantined" s.n_quarantined;
  if s.elapsed_ns > 0L then
    Format.fprintf ppf " in %.1f ms"
      (Int64.to_float s.elapsed_ns /. 1e6)

(* Locked by test_robustness: the serve loop prints this as its final
   stderr line, and the smoke CI job greps it. *)
let summary_to_json s =
  Printf.sprintf
    "{\"docs\":%d,\"ok\":%d,\"degraded\":%d,\"failed\":%d,\"shed\":%d,\"quarantined\":%d,\"elapsed_ns\":%Ld}"
    s.n_docs s.n_ok s.n_degraded s.n_failed s.n_shed s.n_quarantined
    s.elapsed_ns
