module Tk = Faerie_tokenize
module S = Faerie_sim
module Heaps = Faerie_heaps
module Ix = Faerie_index
module Dynarray = Faerie_util.Dynarray
module Budget = Faerie_util.Budget
module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace
module Prof = Faerie_obs.Prof
module Explain = Faerie_obs.Explain
open Types

type report = {
  matches : Types.token_match list;
  stats : Types.stats;
  exhausted : Budget.exhaustion option;
}

let m_candidates =
  Metrics.counter ~help:"candidate substrings generated, all pruning levels"
    "candidates_generated"

let m_cand_none =
  Metrics.counter ~help:"candidates generated at pruning level none"
    "candidates_generated_none"

let m_cand_lazy =
  Metrics.counter ~help:"candidates generated at pruning level lazy"
    "candidates_generated_lazy"

let m_cand_bucket =
  Metrics.counter ~help:"candidates generated at pruning level bucket"
    "candidates_generated_bucket"

let m_cand_binary =
  Metrics.counter ~help:"candidates generated at pruning level binary"
    "candidates_generated_binary"

let m_cand_level = function
  | No_prune -> m_cand_none
  | Lazy_count -> m_cand_lazy
  | Bucket_count -> m_cand_bucket
  | Binary_window -> m_cand_binary

let m_entities_seen =
  Metrics.counter ~help:"indexed entities streamed off the heap" "entities_seen"

let m_pruned_lazy =
  Metrics.counter ~help:"entities pruned by the lazy-count bound"
    "entities_pruned_lazy"

let m_buckets_pruned =
  Metrics.counter ~help:"position buckets pruned by the bucket-count bound"
    "buckets_pruned"

let m_survivors =
  Metrics.counter ~help:"deduplicated candidates surviving the filter"
    "filter_survivors"

let m_matches =
  Metrics.counter ~help:"candidates confirmed by verification" "matches_verified"

(* Auditing: [ex] is the explain sink resolved once per filter run
   ([Explain.current] at the top of [collect]). Disabled it is [None] and
   every hook below is a single immediate-value branch — the candidate hot
   path allocates nothing extra. *)
let note_candidate ex ~entity ~start ~len ~count ~t =
  match ex with
  | None -> ()
  | Some sink ->
      Explain.emit sink
        (Explain.Candidate { entity; start; len; count; t; survived = count >= t })

(* Occurrence counting for one entity over one slice of its position list,
   at one substring length: emit survivors with count >= T. *)
let count_slice problem (stats : stats) ~ex ~entity
    ~(info : Problem.entity_info) ~positions ~first ~last ~n_tokens ~emit =
  for len = info.lower to min info.upper n_tokens do
    let t = Problem.overlap_t problem ~e_len:info.e_len ~s_len:len in
    Counting.iter_nonzero ~positions ~first ~last ~len ~n_tokens
      ~f:(fun ~start ~count ->
        stats.candidates <- stats.candidates + 1;
        note_candidate ex ~entity ~start ~len ~count ~t;
        if count >= t then emit { entity; start; len })
  done

(* Candidate enumeration from a maximal window [first..last] (Section 4.1's
   batch-count, driven by the windows of Section 4.2). Substring starts are
   restricted to (p_{first-1}, p_first] so each candidate substring is
   produced exactly once, at the window whose first element is the first
   position it contains. *)
let enumerate_window problem (stats : stats) ~ex ~entity
    ~(info : Problem.entity_info) ~positions ~first ~last ~n_tokens ~emit =
  let p_first = positions.(first) in
  let prev = if first = 0 then -1 else positions.(first - 1) in
  let max_count = last - first + 1 in
  (* A substring must hold >= Tl positions, so it must reach at least the
     (first + Tl - 1)-th position. *)
  let b_floor = positions.(first + info.tl - 1) in
  let a_min = max 0 (max (p_first - info.upper + 1) (prev + 1)) in
  for a = a_min to p_first do
    let b_min = max (a + info.lower - 1) b_floor in
    let b_max = min (a + info.upper - 1) (n_tokens - 1) in
    if b_min <= b_max then begin
      (* k: last index in [first..last] with positions.(k) <= b. Positions
         beyond [last] exceed p_first + upper - 1 >= a + upper - 1 >= b, so
         capping at [last] is exact. *)
      let k = ref (first + info.tl - 1) in
      for b = b_min to b_max do
        while !k < last && positions.(!k + 1) <= b do
          incr k
        done;
        let len = b - a + 1 in
        let t = Problem.overlap_t problem ~e_len:info.e_len ~s_len:len in
        if t <= max_count then begin
          stats.candidates <- stats.candidates + 1;
          let count = !k - first + 1 in
          note_candidate ex ~entity ~start:a ~len ~count ~t;
          if count >= t then emit { entity; start = a; len }
        end
      done
    end
  done

let process_entity problem (stats : stats) ~ex ~pruning ~entity ~positions
    ~n_tokens ~emit =
  let info = Problem.info problem entity in
  match info.path with
  | Problem.Fallback | Problem.Impossible -> ()
  | Problem.Indexed -> (
      stats.entities_seen <- stats.entities_seen + 1;
      let m = Array.length positions in
      (match ex with
      | None -> ()
      | Some sink ->
          (* Entity context makes the window-search hooks in Windows
             attributable without threading the sink through them. *)
          Explain.set_entity sink entity;
          Explain.emit sink
            (Explain.Entity { entity; e_len = info.e_len; n_positions = m }));
      let note_lazy () =
        match ex with
        | None -> ()
        | Some sink ->
            Explain.emit sink
              (Explain.Pruned
                 { entity; reason = Explain.Lazy_bound { tl = info.tl; count = m } })
      in
      match pruning with
      | No_prune ->
          count_slice problem stats ~ex ~entity ~info ~positions ~first:0
            ~last:(m - 1) ~n_tokens ~emit
      | Lazy_count ->
          if m < info.tl then begin
            stats.entities_pruned_lazy <- stats.entities_pruned_lazy + 1;
            note_lazy ()
          end
          else
            count_slice problem stats ~ex ~entity ~info ~positions ~first:0
              ~last:(m - 1) ~n_tokens ~emit
      | Bucket_count ->
          if m < info.tl then begin
            stats.entities_pruned_lazy <- stats.entities_pruned_lazy + 1;
            note_lazy ()
          end
          else
            List.iter
              (fun (first, last) ->
                if last - first + 1 < info.tl then begin
                  stats.buckets_pruned <- stats.buckets_pruned + 1;
                  match ex with
                  | None -> ()
                  | Some sink ->
                      Explain.emit sink
                        (Explain.Pruned { entity; reason = Explain.Bucket_pruned })
                end
                else
                  count_slice problem stats ~ex ~entity ~info ~positions ~first
                    ~last ~n_tokens ~emit)
              (Position_list.buckets ~positions ~gap:info.gap)
      | Binary_window ->
          if m < info.tl then begin
            stats.entities_pruned_lazy <- stats.entities_pruned_lazy + 1;
            note_lazy ()
          end
          else
            Prof.with_stage Prof.Windows (fun () ->
                Windows.iter_windows ~positions ~tl:info.tl ~upper:info.upper
                  ~f:(fun ~first ~last ->
                    (match ex with
                    | None -> ()
                    | Some sink ->
                        Explain.emit sink
                          (Explain.Window { entity; first; last }));
                    enumerate_window problem stats ~ex ~entity ~info ~positions
                      ~first ~last ~n_tokens ~emit)))

let dedup_candidates acc =
  Dynarray.sort compare_candidate acc;
  let out = ref [] in
  Dynarray.iter
    (fun c ->
      match !out with
      | prev :: _ when compare_candidate prev c = 0 -> ()
      | _ -> out := c :: !out)
    acc;
  List.rev !out

let collect ?merger ?(budget = Budget.unlimited) ~pruning problem doc =
  Trace.with_span "filter" @@ fun () ->
  let stats = new_stats () in
  (* Resolved once per run: [None] (the production state) keeps every
     per-candidate audit hook down to one branch on an immediate value. *)
  let ex = Explain.current () in
  let index = Problem.index problem in
  let n_tokens = Tk.Document.n_tokens doc in
  let acc = Dynarray.create () in
  let aborted = ref None in
  (* Budget exhaustion aborts the merge mid-stream; the candidates already
     in [acc] are kept and flagged as partial by the caller. *)
  (try
     Heaps.Multiway.iter_entity_positions ?merger ~n_positions:n_tokens
       ~list_at:(Ix.Inverted_index.document_lists index doc)
       ~f:(fun ~entity ~positions ->
         Budget.tick budget;
         let positions = Dynarray.to_array positions in
         process_entity problem stats ~ex ~pruning ~entity ~positions ~n_tokens
           ~emit:(fun c ->
             Budget.charge_candidates budget 1;
             Dynarray.push acc c))
       ()
   with Budget.Exhausted e -> aborted := Some e);
  let survivors = dedup_candidates acc in
  stats.survivors <- List.length survivors;
  (match ex with
  | None -> ()
  | Some sink ->
      Explain.emit sink (Explain.Filter_done { survivors = stats.survivors }));
  (* Flush once per filter run, after [stats] is final, so registry counters
     agree exactly with the per-run [Types.stats] a caller aggregates. *)
  Metrics.add m_candidates stats.candidates;
  Metrics.add (m_cand_level pruning) stats.candidates;
  Metrics.add m_entities_seen stats.entities_seen;
  Metrics.add m_pruned_lazy stats.entities_pruned_lazy;
  Metrics.add m_buckets_pruned stats.buckets_pruned;
  Metrics.add m_survivors stats.survivors;
  (survivors, stats, !aborted)

let candidates ?merger ~pruning problem doc =
  let survivors, stats, _ = collect ?merger ~pruning problem doc in
  (survivors, stats)

let run_budgeted ?merger ?(pruning = Binary_window) ?(budget = Budget.unlimited)
    problem doc =
  let survivors, stats, aborted = collect ?merger ~budget ~pruning problem doc in
  let aborted = ref aborted in
  (* Verification also respects the deadline: a trip keeps the matches
     verified so far (a subset of the full set, reported as partial). *)
  let matches = ref [] in
  let ex = Explain.current () in
  (try
     Prof.with_stage Prof.Verify @@ fun () ->
     Trace.with_span "verify" (fun () ->
         List.iter
           (fun (c : candidate) ->
             Budget.tick budget;
             let score = Problem.verify_candidate problem doc c in
             let passed = S.Verify.Score.passes (Problem.sim problem) score in
             (match ex with
             | None -> ()
             | Some sink ->
                 Explain.emit sink
                   (Explain.Verify
                      {
                        entity = c.entity;
                        start = c.start;
                        len = c.len;
                        matched = passed;
                      }));
             if passed then
               matches :=
                 {
                   m_entity = c.entity;
                   m_start = c.start;
                   m_len = c.len;
                   m_score = score;
                 }
                 :: !matches)
           survivors)
   with Budget.Exhausted e -> if !aborted = None then aborted := Some e);
  let matches = List.rev !matches in
  stats.verified <- List.length matches;
  Metrics.add m_matches stats.verified;
  { matches; stats; exhausted = !aborted }

let run ?merger ?(pruning = Binary_window) problem doc =
  let r = run_budgeted ?merger ~pruning problem doc in
  (r.matches, r.stats)
