module Tk = Faerie_tokenize
module S = Faerie_sim
module Heaps = Faerie_heaps
module Ix = Faerie_index
module Dynarray = Faerie_util.Dynarray
module Budget = Faerie_util.Budget
module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace
module Prof = Faerie_obs.Prof
module Explain = Faerie_obs.Explain
open Types

type report = {
  matches : Types.token_match list;
  stats : Types.stats;
  exhausted : Budget.exhaustion option;
}

let m_candidates =
  Metrics.counter ~help:"candidate substrings generated, all pruning levels"
    "candidates_generated"

let m_cand_none =
  Metrics.counter ~help:"candidates generated at pruning level none"
    "candidates_generated_none"

let m_cand_lazy =
  Metrics.counter ~help:"candidates generated at pruning level lazy"
    "candidates_generated_lazy"

let m_cand_bucket =
  Metrics.counter ~help:"candidates generated at pruning level bucket"
    "candidates_generated_bucket"

let m_cand_binary =
  Metrics.counter ~help:"candidates generated at pruning level binary"
    "candidates_generated_binary"

let m_cand_level = function
  | No_prune -> m_cand_none
  | Lazy_count -> m_cand_lazy
  | Bucket_count -> m_cand_bucket
  | Binary_window -> m_cand_binary

let m_entities_seen =
  Metrics.counter ~help:"indexed entities streamed off the heap" "entities_seen"

let m_pruned_lazy =
  Metrics.counter ~help:"entities pruned by the lazy-count bound"
    "entities_pruned_lazy"

let m_buckets_pruned =
  Metrics.counter ~help:"position buckets pruned by the bucket-count bound"
    "buckets_pruned"

let m_survivors =
  Metrics.counter ~help:"deduplicated candidates surviving the filter"
    "filter_survivors"

let m_matches =
  Metrics.counter ~help:"candidates confirmed by verification" "matches_verified"

(* Per-domain posting-decode workspace, reused across every filter run on
   the domain — the steady-state merge allocates nothing per document. *)
let workspace_key : Ix.Inverted_index.Workspace.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Ix.Inverted_index.Workspace.create ())

(* Per-domain candidate accumulator, likewise reused across runs so the
   triple buffer's growth amortizes to zero. Each [collect] clears and
   refills it, and every caller fully consumes the result (copying what it
   keeps) before the next filter run on the domain. *)
let acc_key : int Dynarray.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Dynarray.create ())

(* Auditing: [ex] is the explain sink resolved once per filter run
   ([Explain.current] at the top of [collect]). Disabled it is [None] and
   every hook below is a single immediate-value branch — the candidate hot
   path allocates nothing extra. *)
let note_candidate ex ~entity ~start ~len ~count ~t =
  match ex with
  | None -> ()
  | Some sink ->
      Explain.emit sink
        (Explain.Candidate { entity; start; len; count; t; survived = count >= t })

(* Occurrence counting for one entity over one slice of its position list,
   at one substring length: emit survivors with count >= T. *)
let count_slice problem (stats : stats) ~ex ~entity
    ~(info : Problem.entity_info) ~positions ~first ~last ~n_tokens ~emit =
  for len = info.lower to min info.upper n_tokens do
    let t = Problem.overlap_t problem ~e_len:info.e_len ~s_len:len in
    Counting.iter_nonzero ~positions ~first ~last ~len ~n_tokens
      ~f:(fun ~start ~count ->
        stats.candidates <- stats.candidates + 1;
        note_candidate ex ~entity ~start ~len ~count ~t;
        if count >= t then emit entity start len)
  done

(* Candidate enumeration from a maximal window [first..last] (Section 4.1's
   batch-count, driven by the windows of Section 4.2). Substring starts are
   restricted to (p_{first-1}, p_first] so each candidate substring is
   produced exactly once, at the window whose first element is the first
   position it contains. *)
let enumerate_window problem (stats : stats) ~ex ~entity
    ~(info : Problem.entity_info) ~positions ~first ~last ~n_tokens ~emit =
  let p_first = positions.(first) in
  let prev = if first = 0 then -1 else positions.(first - 1) in
  let max_count = last - first + 1 in
  (* A substring must hold >= Tl positions, so it must reach at least the
     (first + Tl - 1)-th position. *)
  let b_floor = positions.(first + info.tl - 1) in
  let a_min = max 0 (max (p_first - info.upper + 1) (prev + 1)) in
  for a = a_min to p_first do
    let b_min = max (a + info.lower - 1) b_floor in
    let b_max = min (a + info.upper - 1) (n_tokens - 1) in
    if b_min <= b_max then begin
      (* k: last index in [first..last] with positions.(k) <= b. Positions
         beyond [last] exceed p_first + upper - 1 >= a + upper - 1 >= b, so
         capping at [last] is exact. *)
      let k = ref (first + info.tl - 1) in
      for b = b_min to b_max do
        while !k < last && positions.(!k + 1) <= b do
          incr k
        done;
        let len = b - a + 1 in
        let t = Problem.overlap_t problem ~e_len:info.e_len ~s_len:len in
        if t <= max_count then begin
          stats.candidates <- stats.candidates + 1;
          let count = !k - first + 1 in
          note_candidate ex ~entity ~start:a ~len ~count ~t;
          if count >= t then emit entity a len
        end
      done
    end
  done

let note_lazy ex ~entity ~tl ~m =
  match ex with
  | None -> ()
  | Some sink ->
      Explain.emit sink
        (Explain.Pruned { entity; reason = Explain.Lazy_bound { tl; count = m } })

(* [positions] may be an oversized reusable buffer; [m] is the live
   prefix length. *)
let process_entity problem (stats : stats) ~ex ~pruning ~entity ~positions ~m
    ~n_tokens ~emit =
  let info = Problem.info problem entity in
  match info.path with
  | Problem.Fallback | Problem.Impossible -> ()
  | Problem.Indexed -> (
      stats.entities_seen <- stats.entities_seen + 1;
      (match ex with
      | None -> ()
      | Some sink ->
          (* Entity context makes the window-search hooks in Windows
             attributable without threading the sink through them. *)
          Explain.set_entity sink entity;
          Explain.emit sink
            (Explain.Entity { entity; e_len = info.e_len; n_positions = m }));
      match pruning with
      | No_prune ->
          count_slice problem stats ~ex ~entity ~info ~positions ~first:0
            ~last:(m - 1) ~n_tokens ~emit
      | Lazy_count ->
          if m < info.tl then begin
            stats.entities_pruned_lazy <- stats.entities_pruned_lazy + 1;
            note_lazy ex ~entity ~tl:info.tl ~m
          end
          else
            count_slice problem stats ~ex ~entity ~info ~positions ~first:0
              ~last:(m - 1) ~n_tokens ~emit
      | Bucket_count ->
          if m < info.tl then begin
            stats.entities_pruned_lazy <- stats.entities_pruned_lazy + 1;
            note_lazy ex ~entity ~tl:info.tl ~m
          end
          else
            List.iter
              (fun (first, last) ->
                if last - first + 1 < info.tl then begin
                  stats.buckets_pruned <- stats.buckets_pruned + 1;
                  match ex with
                  | None -> ()
                  | Some sink ->
                      Explain.emit sink
                        (Explain.Pruned { entity; reason = Explain.Bucket_pruned })
                end
                else
                  count_slice problem stats ~ex ~entity ~info ~positions ~first
                    ~last ~n_tokens ~emit)
              (Position_list.buckets ~n:m ~positions ~gap:info.gap ())
      | Binary_window ->
          if m < info.tl then begin
            stats.entities_pruned_lazy <- stats.entities_pruned_lazy + 1;
            note_lazy ex ~entity ~tl:info.tl ~m
          end
          else
            Prof.with_stage Prof.Windows (fun () ->
                Windows.iter_windows ~n:m ~positions ~tl:info.tl
                  ~upper:info.upper
                  ~f:(fun ~first ~last ->
                    (match ex with
                    | None -> ()
                    | Some sink ->
                        Explain.emit sink
                          (Explain.Window { entity; first; last }));
                    enumerate_window problem stats ~ex ~entity ~info ~positions
                      ~first ~last ~n_tokens ~emit)
                  ()))

(* Candidates accumulate as flat (entity, start, len) int triples in one
   Dynarray — no per-candidate record allocation. Dedup sorts the triples
   in place (no index permutation, no per-run scratch arrays) and compacts
   distinct triples to the front, in (entity, start, len) order (the same
   order [compare_candidate] gives: the record fields are declared in that
   sequence). *)
let triple_compare acc i j =
  let a = 3 * i and b = 3 * j in
  let c = compare (Dynarray.get acc a) (Dynarray.get acc b) in
  if c <> 0 then c
  else
    let c = compare (Dynarray.get acc (a + 1)) (Dynarray.get acc (b + 1)) in
    if c <> 0 then c
    else compare (Dynarray.get acc (a + 2)) (Dynarray.get acc (b + 2))

let triple_swap acc i j =
  if i <> j then begin
    let a = 3 * i and b = 3 * j in
    for d = 0 to 2 do
      let t = Dynarray.get acc (a + d) in
      Dynarray.set acc (a + d) (Dynarray.get acc (b + d));
      Dynarray.set acc (b + d) t
    done
  end

(* Compare triple [i] against pivot values held in registers — partitioning
   moves elements, so the pivot is captured by value. *)
let cmp_pivot acc i pe ps pl =
  let a = 3 * i in
  let c = compare (Dynarray.get acc a) pe in
  if c <> 0 then c
  else
    let c = compare (Dynarray.get acc (a + 1)) ps in
    if c <> 0 then c else compare (Dynarray.get acc (a + 2)) pl

let insertion_sort acc lo hi =
  for i = lo + 1 to hi do
    let a = 3 * i in
    let pe = Dynarray.get acc a
    and ps = Dynarray.get acc (a + 1)
    and pl = Dynarray.get acc (a + 2) in
    let j = ref (i - 1) in
    while !j >= lo && cmp_pivot acc !j pe ps pl > 0 do
      let s = 3 * !j and d = 3 * (!j + 1) in
      Dynarray.set acc d (Dynarray.get acc s);
      Dynarray.set acc (d + 1) (Dynarray.get acc (s + 1));
      Dynarray.set acc (d + 2) (Dynarray.get acc (s + 2));
      decr j
    done;
    let d = 3 * (!j + 1) in
    Dynarray.set acc d pe;
    Dynarray.set acc (d + 1) ps;
    Dynarray.set acc (d + 2) pl
  done

(* Hoare partition with a median-of-three pivot. *)
let partition acc lo hi =
  let mid = lo + ((hi - lo) / 2) in
  if triple_compare acc mid lo < 0 then triple_swap acc mid lo;
  if triple_compare acc hi mid < 0 then begin
    triple_swap acc hi mid;
    if triple_compare acc mid lo < 0 then triple_swap acc mid lo
  end;
  let p = 3 * mid in
  let pe = Dynarray.get acc p
  and ps = Dynarray.get acc (p + 1)
  and pl = Dynarray.get acc (p + 2) in
  let i = ref (lo - 1) and j = ref (hi + 1) in
  let cut = ref (-1) in
  while !cut < 0 do
    incr i;
    while cmp_pivot acc !i pe ps pl < 0 do
      incr i
    done;
    decr j;
    while cmp_pivot acc !j pe ps pl > 0 do
      decr j
    done;
    if !i >= !j then cut := !j else triple_swap acc !i !j
  done;
  !cut

(* Smaller side recurses, larger side loops: stack depth is O(log n). *)
let rec sort_triples acc lo hi =
  let lo = ref lo and hi = ref hi in
  while !hi - !lo > 15 do
    let p = partition acc !lo !hi in
    if p - !lo < !hi - p then begin
      sort_triples acc !lo p;
      lo := p + 1
    end
    else begin
      sort_triples acc (p + 1) !hi;
      hi := p
    end
  done;
  insertion_sort acc !lo !hi

(* Sort + compact in place; returns the number of distinct triples, which
   occupy [acc]'s first [3 * n] slots afterwards. *)
let dedup_triples acc =
  let k = Dynarray.length acc / 3 in
  if k <= 1 then k
  else begin
    sort_triples acc 0 (k - 1);
    let w = ref 1 in
    for i = 1 to k - 1 do
      if triple_compare acc i (!w - 1) <> 0 then begin
        if i <> !w then begin
          let s = 3 * i and d = 3 * !w in
          Dynarray.set acc d (Dynarray.get acc s);
          Dynarray.set acc (d + 1) (Dynarray.get acc (s + 1));
          Dynarray.set acc (d + 2) (Dynarray.get acc (s + 2))
        end;
        incr w
      end
    done;
    !w
  end

let collect ?merger ?(budget = Budget.unlimited) ~pruning problem doc =
  Trace.with_span "filter" @@ fun () ->
  let stats = new_stats () in
  (* Resolved once per run: [None] (the production state) keeps every
     per-candidate audit hook down to one branch on an immediate value. *)
  let ex = Explain.current () in
  let index = Problem.index problem in
  let n_tokens = Tk.Document.n_tokens doc in
  let acc = Domain.DLS.get acc_key in
  Dynarray.clear acc;
  let aborted = ref None in
  (* Budget exhaustion aborts the merge mid-stream; the candidates already
     in [acc] are kept and flagged as partial by the caller. *)
  (try
     (* One Heap_merge bracket covers posting decode + the merge proper
        (decode is part of the merge cost this stage has always reported). *)
     Prof.with_stage Prof.Heap_merge (fun () ->
         let ws = Domain.DLS.get workspace_key in
         let buf, offs, lens = Ix.Inverted_index.decode_document index ws doc in
         (* Allocated once per run, not per entity: the merge callback fires
            for every streamed entity. *)
         let emit entity start len =
           Budget.charge_candidates budget 1;
           Dynarray.push acc entity;
           Dynarray.push acc start;
           Dynarray.push acc len
         in
         Heaps.Multiway.iter_entity_positions ?merger ~n_positions:n_tokens
           ~buf ~offs ~lens
           ~f:(fun ~entity ~positions ~n ->
             Budget.tick budget;
             process_entity problem stats ~ex ~pruning ~entity ~positions ~m:n
               ~n_tokens ~emit)
           ())
   with Budget.Exhausted e -> aborted := Some e);
  let n_survivors = dedup_triples acc in
  stats.survivors <- n_survivors;
  (match ex with
  | None -> ()
  | Some sink ->
      Explain.emit sink (Explain.Filter_done { survivors = stats.survivors }));
  (* Flush once per filter run, after [stats] is final, so registry counters
     agree exactly with the per-run [Types.stats] a caller aggregates. *)
  Metrics.add m_candidates stats.candidates;
  Metrics.add (m_cand_level pruning) stats.candidates;
  Metrics.add m_entities_seen stats.entities_seen;
  Metrics.add m_pruned_lazy stats.entities_pruned_lazy;
  Metrics.add m_buckets_pruned stats.buckets_pruned;
  Metrics.add m_survivors stats.survivors;
  (acc, n_survivors, stats, !aborted)

let survivor_list acc n_survivors =
  let tail = ref [] in
  for i = n_survivors - 1 downto 0 do
    let b = 3 * i in
    tail :=
      {
        entity = Dynarray.get acc b;
        start = Dynarray.get acc (b + 1);
        len = Dynarray.get acc (b + 2);
      }
      :: !tail
  done;
  !tail

let candidates ?merger ~pruning problem doc =
  let acc, n_survivors, stats, _ = collect ?merger ~pruning problem doc in
  (survivor_list acc n_survivors, stats)

let run_budgeted ?merger ?(pruning = Binary_window) ?(budget = Budget.unlimited)
    ?(verifier = S.Verify.Auto) problem doc =
  let acc, n_survivors, stats, aborted =
    collect ?merger ~budget ~pruning problem doc
  in
  let aborted = ref aborted in
  (* Verification also respects the deadline: a trip keeps the matches
     verified so far (a subset of the full set, reported as partial). *)
  let matches = ref [] in
  let ex = Explain.current () in
  (match ex with
  | None -> ()
  | Some sink ->
      Explain.emit sink
        (Explain.Verifier { choice = S.Verify.verifier_name verifier }));
  (try
     Prof.with_stage Prof.Verify @@ fun () ->
     Trace.with_span "verify" (fun () ->
         for i = 0 to n_survivors - 1 do
           Budget.tick budget;
           let b = 3 * i in
           let entity = Dynarray.get acc b
           and start = Dynarray.get acc (b + 1)
           and len = Dynarray.get acc (b + 2) in
           let score =
             Problem.verify_span ~verifier problem doc ~entity ~start ~len
           in
           let passed = S.Verify.Score.passes (Problem.sim problem) score in
           (match ex with
           | None -> ()
           | Some sink ->
               Explain.emit sink
                 (Explain.Verify { entity; start; len; matched = passed }));
           if passed then
             matches :=
               { m_entity = entity; m_start = start; m_len = len; m_score = score }
               :: !matches
         done)
   with Budget.Exhausted e -> if !aborted = None then aborted := Some e);
  let matches = List.rev !matches in
  stats.verified <- List.length matches;
  Metrics.add m_matches stats.verified;
  { matches; stats; exhausted = !aborted }

let run ?merger ?(pruning = Binary_window) ?verifier problem doc =
  let r = run_budgeted ?merger ~pruning ?verifier problem doc in
  (r.matches, r.stats)
