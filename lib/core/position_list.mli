(** Operations on an entity's position list [Pe] (the ascending document
    positions whose inverted list contains the entity). *)

val buckets :
  ?n:int -> positions:int array -> gap:int -> unit -> (int * int) list
(** Bucket-count partitioning (Section 4.1): split [positions] between
    neighbours [p_i, p_{i+1}] whenever [p_{i+1} - p_i - 1 > gap]; returns
    the [(first_index, last_index)] inclusive slices in order. A negative
    [gap] puts every element in its own bucket. Empty input yields [].
    [?n] restricts to the prefix [positions.(0 .. n-1)]. *)

val count_in_range : positions:int array -> lo:int -> hi:int -> int
(** Number of positions within [\[lo, hi\]] (by binary search). *)
