(** The single-heap filtering algorithm (Sections 3.3–5).

    One min-heap merges the inverted lists of every document token position,
    streaming each entity's complete, sorted position list off the heap
    while scanning every inverted list exactly once. Occurrence counting /
    candidate generation then runs at one of four pruning levels
    ({!Types.pruning}); [Binary_window] is the full Faerie filter.

    Entities on the {!Problem.Fallback} or {!Problem.Impossible} paths are
    ignored here — {!Fallback.run} completes the answer. *)

val run :
  ?merger:Faerie_heaps.Multiway.merger ->
  ?pruning:Types.pruning ->
  ?verifier:Faerie_sim.Verify.verifier ->
  Problem.t ->
  Faerie_tokenize.Document.t ->
  Types.token_match list * Types.stats
(** [run ?merger ?pruning ?verifier problem doc] returns the verified
    matches (deduplicated, sorted by (entity, start, len)) and filtering
    statistics. Default pruning is [Binary_window]; [merger] selects the
    multiway merge engine (default binary heap); [verifier] the
    edit-distance engine for character-based verification (default
    [Auto]). *)

type report = {
  matches : Types.token_match list;
      (** verified matches, deduplicated, sorted by (entity, start, len) *)
  stats : Types.stats;  (** filtering statistics for this run *)
  exhausted : Faerie_util.Budget.exhaustion option;
      (** [Some _] when a budget limit tripped and [matches] is a sound
          subset of the full result set (never a superset) *)
}

val run_budgeted :
  ?merger:Faerie_heaps.Multiway.merger ->
  ?pruning:Types.pruning ->
  ?budget:Faerie_util.Budget.t ->
  ?verifier:Faerie_sim.Verify.verifier ->
  Problem.t ->
  Faerie_tokenize.Document.t ->
  report
(** Like {!run}, but charges the filter loop (one candidate per emitted
    candidate, one deadline tick per entity and per verification) against
    [budget]. If a limit trips, filtering/verification stops early and the
    matches verified so far are returned in {!report.matches} together with
    the exhaustion reason. *)

val candidates :
  ?merger:Faerie_heaps.Multiway.merger ->
  pruning:Types.pruning ->
  Problem.t ->
  Faerie_tokenize.Document.t ->
  Types.candidate list * Types.stats
(** Filter only — the deduplicated surviving substring–entity pairs, before
    verification. Exposed for testing and for the Fig. 14 candidate-count
    experiment. *)
