type candidate = { entity : int; start : int; len : int }

type token_match = {
  m_entity : int;
  m_start : int;
  m_len : int;
  m_score : Faerie_sim.Verify.Score.t;
}

type pruning = No_prune | Lazy_count | Bucket_count | Binary_window

let pruning_name = function
  | No_prune -> "none"
  | Lazy_count -> "lazy"
  | Bucket_count -> "bucket"
  | Binary_window -> "binary"

let all_prunings = [ No_prune; Lazy_count; Bucket_count; Binary_window ]

type char_match = {
  c_entity : int;
  c_start : int;
  c_len : int;
  c_score : Faerie_sim.Verify.Score.t;
}

let compare_char_match a b =
  let c = compare a.c_entity b.c_entity in
  if c <> 0 then c
  else
    let c = compare a.c_start b.c_start in
    if c <> 0 then c else compare a.c_len b.c_len

type stats = {
  mutable entities_seen : int;
  mutable entities_pruned_lazy : int;
  mutable buckets_pruned : int;
  mutable candidates : int;
  mutable survivors : int;
  mutable verified : int;
}

let new_stats () =
  {
    entities_seen = 0;
    entities_pruned_lazy = 0;
    buckets_pruned = 0;
    candidates = 0;
    survivors = 0;
    verified = 0;
  }

let blit_stats ~src ~dst =
  dst.entities_seen <- src.entities_seen;
  dst.entities_pruned_lazy <- src.entities_pruned_lazy;
  dst.buckets_pruned <- src.buckets_pruned;
  dst.candidates <- src.candidates;
  dst.survivors <- src.survivors;
  dst.verified <- src.verified

let pp_stats ppf s =
  Format.fprintf ppf
    "{seen=%d; lazy_pruned=%d; buckets_pruned=%d; candidates=%d; survivors=%d; verified=%d}"
    s.entities_seen s.entities_pruned_lazy s.buckets_pruned s.candidates
    s.survivors s.verified

let compare_candidate a b =
  let c = compare a.entity b.entity in
  if c <> 0 then c
  else
    let c = compare a.start b.start in
    if c <> 0 then c else compare a.len b.len

let compare_token_match a b =
  let c = compare a.m_entity b.m_entity in
  if c <> 0 then c
  else
    let c = compare a.m_start b.m_start in
    if c <> 0 then c else compare a.m_len b.m_len
