module Metrics = Faerie_obs.Metrics
module Explain = Faerie_obs.Explain

let m_probes =
  Metrics.counter ~help:"binary-search probes in span/shift window search"
    "window_probes"

let binary_span ?n ~positions ~upper i =
  let m = match n with Some n -> n | None -> Array.length positions in
  let bound = positions.(i) + upper - 1 in
  (* Largest x in [i, min(m-1, i+upper-1)] with positions.(x) <= bound.
     positions are strictly increasing, so x <= i + upper - 1. *)
  let lo = ref i and hi = ref (min (m - 1) (i + upper - 1)) in
  let probes = ref 0 in
  while !lo < !hi do
    probes := !probes + 1;
    let mid = (!lo + !hi + 1) / 2 in
    if positions.(mid) <= bound then lo := mid else hi := mid - 1
  done;
  Metrics.add m_probes !probes;
  !lo

let rec binary_shift ?n ~positions ~tl ~upper i =
  let m = match n with Some n -> n | None -> Array.length positions in
  if i + tl - 1 >= m then m
  else begin
    let j = i + tl - 1 in
    if positions.(j) - positions.(i) + 1 <= upper then i
    else begin
      (* Find the smallest mid in [i, j] with
         F''(mid) = (p_j + (mid - i)) - p_mid + 1 <= upper.
         F'' is non-increasing in mid and underestimates the true span
         F'(mid) = p_{mid+j-i} - p_mid + 1, so everything before mid is
         safely skipped (Lemma 4). F''(j) = j - i + 1 = tl <= upper holds
         whenever any window can fit, so the search is well defined. *)
      let lo = ref i and hi = ref j in
      let probes = ref 0 in
      while !lo < !hi do
        probes := !probes + 1;
        let mid = (!lo + !hi) / 2 in
        if positions.(j) + (mid - i) - positions.(mid) + 1 > upper then
          lo := mid + 1
        else hi := mid
      done;
      Metrics.add m_probes !probes;
      let mid = !lo in
      if mid + tl - 1 >= m then m
      else if positions.(mid + tl - 1) - positions.(mid) + 1 <= upper then mid
      else binary_shift ?n ~positions ~tl ~upper (mid + 1)
    end
  end

let iter_windows_linear ?n ~positions ~tl ~upper ~f () =
  if tl < 1 then invalid_arg "Windows.iter_windows_linear: tl must be >= 1";
  let m = match n with Some n -> n | None -> Array.length positions in
  if tl <= upper then
    for i = 0 to m - tl do
      if positions.(i + tl - 1) - positions.(i) + 1 <= upper then begin
        (* plain span: extend one position at a time *)
        let x = ref (i + tl - 1) in
        while !x + 1 < m && positions.(!x + 1) - positions.(i) + 1 <= upper do
          incr x
        done;
        f ~first:i ~last:!x
      end
    done

let iter_windows ?n ~positions ~tl ~upper ~f () =
  if tl < 1 then invalid_arg "Windows.iter_windows: tl must be >= 1";
  let m = match n with Some n -> n | None -> Array.length positions in
  if tl <= upper then begin
    let i = ref 0 in
    while !i + tl - 1 < m do
      let i0 = !i in
      let j = i0 + tl - 1 in
      if positions.(j) - positions.(i0) + 1 <= upper then begin
        let last = binary_span ?n ~positions ~upper i0 in
        f ~first:i0 ~last;
        i := i0 + 1
      end
      else begin
        (* [armed] is one atomic load; the window search itself carries no
           sink, so skip events attribute to the entity context set by the
           caller (Single_heap sets it before streaming each entity). *)
        if Explain.armed () then Explain.skip Explain.Span_pruned;
        let next = binary_shift ?n ~positions ~tl ~upper i0 in
        (* binary_shift never returns a start before i0. *)
        let next = max next (i0 + 1) in
        if next > i0 + 1 && Explain.armed () then
          Explain.skip (Explain.Shift_jumped (next - i0));
        i := next
      end
    done
  end
