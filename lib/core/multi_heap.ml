module Tk = Faerie_tokenize
module S = Faerie_sim
module Heaps = Faerie_heaps
module Ix = Faerie_index
module Dynarray = Faerie_util.Dynarray
module Explain = Faerie_obs.Explain
open Types

(* Merge the inverted lists of tokens [a .. a+l-1], calling [f entity count]
   for each entity with its occurrence count in the substring. Heap keys
   encode (entity, slot) as in {!Faerie_heaps.Multiway}. *)
let rec bits_for n acc = if n <= 1 then acc else bits_for ((n + 1) / 2) (acc + 1)

let merge_substring lists ~a ~l ~f =
  let shift = max 1 (bits_for l 0) in
  let mask = (1 lsl shift) - 1 in
  let heap = Heaps.Int_heap.create ~capacity:l () in
  let cursor = Array.make l 0 in
  for slot = 0 to l - 1 do
    let list = lists.(a + slot) in
    if Array.length list > 0 then
      Heaps.Int_heap.push heap ((list.(0) lsl shift) lor slot)
  done;
  let current = ref (-1) and count = ref 0 in
  let flush () = if !current >= 0 && !count > 0 then f !current !count in
  while not (Heaps.Int_heap.is_empty heap) do
    let key = Heaps.Int_heap.peek_exn heap in
    let entity = key lsr shift and slot = key land mask in
    if entity <> !current then begin
      flush ();
      current := entity;
      count := 0
    end;
    incr count;
    let list = lists.(a + slot) in
    let next = cursor.(slot) + 1 in
    if next < Array.length list then begin
      cursor.(slot) <- next;
      Heaps.Int_heap.replace_top heap ((list.(next) lsl shift) lor slot)
    end
    else ignore (Heaps.Int_heap.pop_exn heap)
  done;
  flush ()

(* Decode each document position's posting block once up front (memoized
   per distinct token) — these baselines revisit every position's list once
   per covering substring. *)
let decode_lists index doc =
  let n = Tk.Document.n_tokens doc in
  let memo : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  Array.init n (fun pos ->
      let tok = Tk.Document.token_id doc pos in
      match Hashtbl.find_opt memo tok with
      | Some l -> l
      | None ->
          let l =
            Ix.Inverted_index.Postings.to_array
              (Ix.Inverted_index.postings index tok)
          in
          Hashtbl.add memo tok l;
          l)

type algorithm = Heap_count | Merge_skip | Divide_skip

(* Minimum overlap threshold over all indexed entities admitting substring
   length [l] — a sound skip threshold for the T-occurrence algorithms
   (every entity's own T is at least this). *)
let min_overlap_per_length problem ~lo ~hi =
  let t_min = Array.make (max 1 (hi - lo + 1)) max_int in
  Array.iter
    (fun e ->
      let info = Problem.info problem e.Ix.Entity.id in
      if info.Problem.path = Problem.Indexed then
        for l = max lo info.Problem.lower to min hi info.Problem.upper do
          let t =
            max 1 (Problem.overlap_t problem ~e_len:info.Problem.e_len ~s_len:l)
          in
          if t < t_min.(l - lo) then t_min.(l - lo) <- t
        done)
    (Ix.Dictionary.entities (Problem.dictionary problem));
  t_min

let collect ?(algorithm = Heap_count) problem doc =
  let stats = new_stats () in
  let index = Problem.index problem in
  let n_tokens = Tk.Document.n_tokens doc in
  let doc_lists = decode_lists index doc in
  let lo = max 1 (Problem.global_lower problem) in
  let hi = min (Problem.global_upper problem) n_tokens in
  let acc = Dynarray.create () in
  let ex = Explain.current () in
  let consider ~a ~l entity count =
    let info = Problem.info problem entity in
    if
      info.Problem.path = Problem.Indexed
      && l >= info.Problem.lower
      && l <= info.Problem.upper
    then begin
      stats.candidates <- stats.candidates + 1;
      let t = Problem.overlap_t problem ~e_len:info.Problem.e_len ~s_len:l in
      (match ex with
      | None -> ()
      | Some sink ->
          Explain.emit sink
            (Explain.Candidate
               { entity; start = a; len = l; count; t; survived = count >= t }));
      if count >= t then Dynarray.push acc { entity; start = a; len = l }
    end
  in
  (match algorithm with
  | Heap_count ->
      for l = lo to hi do
        for a = 0 to n_tokens - l do
          merge_substring doc_lists ~a ~l ~f:(consider ~a ~l)
        done
      done
  | Merge_skip | Divide_skip ->
      let t_min = min_overlap_per_length problem ~lo ~hi in
      let merge =
        match algorithm with
        | Merge_skip -> Heaps.Tmerge.merge_skip
        | Divide_skip | Heap_count -> Heaps.Tmerge.divide_skip
      in
      for l = lo to hi do
        let t = t_min.(l - lo) in
        if t < max_int then
          for a = 0 to n_tokens - l do
            let lists = Array.sub doc_lists a l in
            merge ~lists ~t ~f:(consider ~a ~l)
          done
      done);
  let survivors = Dynarray.to_list acc in
  let survivors = List.sort_uniq compare_candidate survivors in
  stats.survivors <- List.length survivors;
  (match ex with
  | None -> ()
  | Some sink ->
      Explain.emit sink (Explain.Filter_done { survivors = stats.survivors }));
  (survivors, stats)

let candidates ?algorithm problem doc = collect ?algorithm problem doc

let run ?algorithm ?verifier problem doc =
  let survivors, stats = collect ?algorithm problem doc in
  let ex = Explain.current () in
  let matches =
    List.filter_map
      (fun (c : candidate) ->
        let score = Problem.verify_candidate ?verifier problem doc c in
        let passed = S.Verify.Score.passes (Problem.sim problem) score in
        (match ex with
        | None -> ()
        | Some sink ->
            Explain.emit sink
              (Explain.Verify
                 { entity = c.entity; start = c.start; len = c.len; matched = passed }));
        if passed then
          Some
            { m_entity = c.entity; m_start = c.start; m_len = c.len; m_score = score }
        else None)
      survivors
  in
  stats.verified <- List.length matches;
  (matches, stats)
