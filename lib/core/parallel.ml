module Budget = Faerie_util.Budget
module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace
module Prof = Faerie_obs.Prof
open Types

type outcome = char_match list Outcome.t

let m_batches =
  Metrics.counter ~help:"parallel extraction batches" "parallel_batches"

let m_docs_per_worker =
  Metrics.histogram ~help:"documents processed per worker domain in a batch"
    ~buckets:[| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 1000.; 10000. |]
    "docs_per_worker"

let char_match_of_result (r : Extractor.result) =
  {
    c_entity = r.Extractor.entity_id;
    c_start = r.Extractor.start_char;
    c_len = r.Extractor.len_chars;
    c_score = r.Extractor.score;
  }

let outcome_of_report (r : Extractor.report) : outcome =
  let conv rs = List.sort compare_char_match (List.map char_match_of_result rs) in
  match r.Extractor.outcome with
  | Outcome.Ok rs -> Outcome.Ok (conv rs)
  | Outcome.Degraded (rs, why) -> Outcome.Degraded (conv rs, why)
  | Outcome.Failed err -> Outcome.Failed err

(* The containment boundary lives in {!Extractor.run}; this layer only
   translates results back to character matches and aggregates batches. *)
let run_one ex ?pruning ~budget ~oversize ?stats ~doc_id text : outcome =
  let opts =
    {
      Extractor.default_opts with
      Extractor.pruning = Option.value pruning ~default:Binary_window;
      budget;
      oversize;
      doc_id;
    }
  in
  let report = Extractor.run ~opts ex (`Text text) in
  (match stats with
  | Some dst -> blit_stats ~src:report.Extractor.stats ~dst
  | None -> ());
  outcome_of_report report

let extract_one_outcome ?pruning ?(budget = Budget.spec_unlimited)
    ?(oversize = `Chunk) ?stats ~doc_id problem text : outcome =
  run_one (Extractor.of_problem problem) ?pruning ~budget ~oversize ?stats
    ~doc_id text

let extract_all_outcomes ?pruning ?domains ?(budget = Budget.spec_unlimited)
    ?(oversize = `Chunk) problem docs =
  let t0 = Trace.now_ns () in
  Metrics.incr m_batches;
  let ex = Extractor.of_problem problem in
  let n = Array.length docs in
  let requested =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let workers = max 1 (min requested n) in
  let results = Array.make n (Outcome.Ok [] : outcome) in
  let process i =
    results.(i) <-
      (try run_one ex ?pruning ~budget ~oversize ~doc_id:i docs.(i)
       with exn ->
         (* Extractor.run already contains everything; this is the
            last-resort belt under the braces (e.g. allocation failure while
            building the outcome itself). *)
         Outcome.Failed (Outcome.Worker_crash (Outcome.exn_info_of exn)))
  in
  if workers <= 1 || n = 0 then begin
    for i = 0 to n - 1 do
      process i
    done;
    if n > 0 then Metrics.observe m_docs_per_worker (float_of_int n);
    Prof.note_top_heap ()
  end
  else begin
    (* Work stealing via a shared atomic counter: documents vary wildly in
       size, so static slicing would leave domains idle. *)
    let next = Atomic.make 0 in
    let worker () =
      let mine = ref 0 in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          process i;
          mine := !mine + 1;
          loop ()
        end
      in
      loop ();
      Metrics.observe m_docs_per_worker (float_of_int !mine);
      (* Flush this domain's heap watermark into the max-merged gauge
         before the domain retires. *)
      Prof.note_top_heap ()
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    (* Every spawned domain is joined even if the main-thread worker raises
       (it should not: [process] swallows everything) — a leaked domain
       would keep stealing work against a collection the caller believes is
       finished. A crashed domain's exception is already reflected in the
       per-document outcomes, so the join itself must not re-raise. *)
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun d -> match Domain.join d with () -> () | exception _ -> ())
          spawned)
      worker
  end;
  let elapsed_ns = Int64.sub (Trace.now_ns ()) t0 in
  (results, Outcome.summarize ~elapsed_ns results)

let extract_all ?pruning ?domains problem docs =
  let outcomes, _ = extract_all_outcomes ?pruning ?domains problem docs in
  Array.map
    (function
      | Outcome.Ok ms | Outcome.Degraded (ms, _) -> ms
      | Outcome.Failed err ->
          failwith ("Parallel.extract_all: " ^ Outcome.error_to_string err))
    outcomes
