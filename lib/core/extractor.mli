(** Public API: approximate dictionary-based entity extraction
    (filter with Faerie, verify exactly, report character spans).

    {!run} is the unified entry point — one call that bundles every
    execution policy ({!opts}) and returns a structured {!report}:

    {[
      let ex =
        Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2
          [ "surajit ch"; "chaudhuri"; "venkatesh" ]
      in
      let report = Extractor.run ex (`Text "... surauijt chadhurisigmod") in
      (match report.Extractor.outcome with
      | Outcome.Ok results ->
          List.iter
            (fun r -> print_endline (Extractor.result_to_string ex r))
            results
      | Outcome.Degraded (results, why) ->
          Printf.eprintf "degraded: %s\n" (Outcome.degradation_to_string why);
          List.iter
            (fun r -> print_endline (Extractor.result_to_string ex r))
            results
      | Outcome.Failed err ->
          prerr_endline (Outcome.error_to_string err))
    ]}

    {!extract} remains the one-line convenience wrapper for the common
    unlimited-budget case. *)

type t

type result = {
  entity_id : int;
  entity : string;  (** the dictionary entity (original form) *)
  start_char : int;  (** match offset in the (normalized) document *)
  len_chars : int;
  matched_text : string;  (** the matching document substring *)
  score : Faerie_sim.Verify.Score.t;
}

val create :
  sim:Faerie_sim.Sim.t ->
  ?q:int ->
  ?mode:Faerie_tokenize.Document.mode ->
  string list ->
  t
(** Build the dictionary, inverted index and per-entity thresholds once;
    reuse across documents (and freely across domains — the index is
    immutable after construction). [q] (default 2) is the gram length for
    edit distance / edit similarity and is ignored by the token-based
    functions unless [mode] forces gram tokens for them (see
    {!Problem.create}).

    @raise Invalid_argument on an invalid threshold or [q <= 0]. *)

val problem : t -> Problem.t
(** The underlying problem instance (index, thresholds) — the lower-level
    entry point used by the benchmarks. *)

val of_problem : Problem.t -> t
(** Wrap an existing problem — e.g. one built from a saved index via
    {!Problem.of_index}. *)

val results_of_char_matches :
  t ->
  Faerie_tokenize.Document.t ->
  Types.char_match list ->
  result list
(** Render raw character matches (from {!Topk}, {!Span_select},
    {!Chunked}, ...) as full results, sorted by (start, length, entity).
    The document must be the one the matches were produced from. *)

(** {1 Unified extraction} *)

type opts = {
  pruning : Types.pruning;  (** filter level, default [Binary_window] *)
  budget : Faerie_util.Budget.spec;
      (** deadline / byte / candidate limits, default unlimited *)
  oversize : [ `Chunk | `Reject ];
      (** routing for a [`Text] input over [budget.max_bytes]: [`Chunk]
          (default) degrades to bounded-memory {!Chunked} extraction with
          complete results; [`Reject] fails with [Doc_too_large] *)
  merger : Faerie_heaps.Multiway.merger;
      (** multiway merge engine, default [Binary_heap] *)
  verifier : Faerie_sim.Verify.verifier;
      (** edit-distance engine for character-based verification: [Auto]
          (default) and [Myers] use the bit-parallel verifier with the
          banded DP as long-string fallback; [Banded] forces the DP. The
          choice is echoed in the Explain event stream and the
          [verify_myers]/[verify_banded] counters record the routing *)
  metrics : bool;
      (** when [false], the run writes nothing to the metrics registry
          (timings in the report are unaffected); default [true] *)
  explain : Faerie_obs.Explain.t option;
      (** audit sink for the filter cascade: when set, the run records
          structured decision events (entities streamed, prune reasons,
          per-candidate count tests, verification outcomes) into the sink
          for {!Faerie_obs.Explain.render} / [to_jsonl]. Default [None] —
          disabled, the hot path pays a single flag check and allocates
          nothing extra *)
  doc_id : int;
      (** keys the {!Faerie_util.Fault} context; set it to the document's
          batch index so fault campaigns are deterministic *)
}

val default_opts : opts
(** [Binary_window], unlimited budget, [`Chunk], binary heap, [Auto]
    verifier, metrics on, explain off, [doc_id = 0]. Override fields with
    [{ default_opts with ... }]. *)

type input = [ `Text of string | `Doc of Faerie_tokenize.Document.t ]
(** A raw document string, or one already tokenized by {!tokenize} (the
    oversize byte check only applies to [`Text]). *)

type report = {
  outcome : result list Outcome.t;
      (** full ([Ok]), partial/chunked ([Degraded]) or failed results *)
  stats : Types.stats;
      (** filter statistics of the single-heap run; all zeros on the
          chunked path and on failure before filtering *)
  elapsed_ns : int64;  (** wall time of the call, from {!Faerie_obs.Trace.now_ns} *)
}

val run : ?opts:opts -> t -> input -> report
(** [run ?opts t input] extracts one document inside a fault/budget
    containment boundary: no exception raised while processing escapes —
    tokenizer rejections, injected {!Faerie_util.Fault}s, tripped
    {!Faerie_util.Budget}s, corrupt-index loads and any other crash all
    map to [Failed] (or [Degraded], when sound partial results exist) in
    the report's outcome. *)

(** {1 Convenience wrappers} *)

val extract : ?pruning:Types.pruning -> t -> string -> result list
(** All substrings of the document approximately matching some entity,
    sorted by (start, length, entity). Complete and exact: the filter
    (at any pruning level) never loses a true match, and every reported
    pair passed exact verification. Unlimited budget; exceptions
    propagate (use {!run} for containment). *)

val tokenize : t -> string -> Faerie_tokenize.Document.t

val result_to_string : t -> result -> string
(** One-line human-readable rendering. *)
