module Ix = Faerie_index
module Sim = Faerie_sim.Sim

type range = { lo : int; hi : int }

let width r = r.hi - r.lo

let partition ~n_entities ~shards =
  if shards <= 0 then invalid_arg "Shard_plan.partition: shards must be positive";
  if n_entities < 0 then
    invalid_arg "Shard_plan.partition: negative entity count";
  let base = n_entities / shards and rem = n_entities mod shards in
  Array.init shards (fun s ->
      let lo = (s * base) + min s rem in
      let hi = lo + base + if s < rem then 1 else 0 in
      { lo; hi })

let owner ranges entity =
  let rec go i =
    if i >= Array.length ranges then None
    else if entity >= ranges.(i).lo && entity < ranges.(i).hi then Some i
    else go (i + 1)
  in
  go 0

(* Dynamically added entities get global ids past the partitioned id
   space; they round-robin over shards so overlay growth spreads evenly.
   Deterministic in (id, ranges), so the coordinator can recompute
   ownership after restarts without a persisted routing table. *)
let owner_dyn ranges entity =
  match owner ranges entity with
  | Some s -> s
  | None ->
      let n = Array.length ranges in
      if n = 0 then invalid_arg "Shard_plan.owner_dyn: no ranges";
      let top = ranges.(n - 1).hi in
      (((entity - top) mod n) + n) mod n

let snapshot_path ~dir ~gen ~shard =
  Filename.concat dir (Printf.sprintf "shard-%d.gen-%d.faerie" shard gen)

type shard_snapshot = { shard : int; range : range; path : string }

let write_snapshots ~dir ~gen ~sim ~q ~shards entities =
  let ranges = partition ~n_entities:(Array.length entities) ~shards in
  Array.mapi
    (fun s r ->
      let slice = Array.to_list (Array.sub entities r.lo (width r)) in
      let p = Problem.create ~sim ~q slice in
      let path = snapshot_path ~dir ~gen ~shard:s in
      Ix.Codec.save (Problem.dictionary p) (Problem.index p) path;
      { shard = s; range = r; path })
    ranges

let remap_matches ~range ms =
  List.map
    (fun (m : Types.char_match) ->
      { m with Types.c_entity = m.Types.c_entity + range.lo })
    ms
