let buckets ?n ~positions ~gap () =
  let n = match n with Some n -> n | None -> Array.length positions in
  if n = 0 then []
  else begin
    let acc = ref [] in
    let first = ref 0 in
    for i = 0 to n - 2 do
      if positions.(i + 1) - positions.(i) - 1 > gap then begin
        acc := (!first, i) :: !acc;
        first := i + 1
      end
    done;
    acc := (!first, n - 1) :: !acc;
    List.rev !acc
  end

(* First index with positions.(i) >= x, in [first, last+1]. *)
let lower_bound positions ~first ~last x =
  let lo = ref first and hi = ref (last + 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if positions.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let count_in_range ~positions ~lo ~hi =
  let n = Array.length positions in
  if n = 0 || hi < lo then 0
  else begin
    let first = lower_bound positions ~first:0 ~last:(n - 1) lo in
    let after = lower_bound positions ~first:0 ~last:(n - 1) (hi + 1) in
    after - first
  end
