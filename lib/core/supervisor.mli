(** Supervised serving layer over {!Extractor}: a pool of worker domains
    with crash supervision, per-document retry, poison-document quarantine
    and deadline-aware load shedding.

    {!Parallel} is a batch engine: it contains per-document failures but
    assumes workers live for the whole batch and every document runs
    exactly once. A long-running service needs more: a worker domain that
    dies (bug, injected fault) must be replaced without losing the
    document it held; a document that fails transiently deserves a bounded
    number of retries with backoff; a document that fails {e every}
    attempt is poison and must be taken out of the flow with enough
    context to reproduce the failure offline; and a document whose
    deadline passed while it queued should be refused, not started.

    The supervision loop guarantees {b exactly-one-outcome}: every
    submitted document's [on_done] callback fires exactly once, with one
    of [Ok], [Degraded], [Failed], [Failed (Shed _)] or
    [Failed (Quarantined _)] — no document is lost to a worker crash and
    none is reported twice, which the fuzz harness checks under randomized
    worker-death campaigns.

    Determinism: all randomness (backoff jitter) comes from
    {!Faerie_util.Xorshift} seeded from [retry.seed], and retry attempts
    re-key the {!Faerie_util.Fault} context (attempt [k > 0] of document
    [d] uses a mix of [d] and [k]) so an injected fault schedule is a pure
    function of [(campaign seed, doc, attempt)] — reproducible regardless
    of which domain runs the attempt. *)

type outcome = Parallel.outcome

(** {1 Retry policy} *)

type retry = {
  retries : int;  (** max re-attempts after the first try; 0 = no retry *)
  backoff_ms : int;
      (** base backoff; attempt [k] waits up to [backoff_ms * 2^k] ms
          (full jitter). [<= 0] disables sleeping entirely (tests). *)
  backoff_max_ms : int;  (** cap on the backoff window *)
  seed : int;  (** jitter seed — fixed seed, fixed schedule *)
}

val default_retry : retry
(** [{ retries = 2; backoff_ms = 10; backoff_max_ms = 1000; seed = 0 }] *)

val fault_key : doc_id:int -> attempt:int -> int
(** The fault-context key used for attempt [attempt] of [doc_id]:
    [doc_id] itself on the first attempt (so supervised and batch runs see
    identical schedules), a deterministic re-key for each retry. Exposed so
    replay harnesses can reconstruct the exact context a quarantined
    document ran under. *)

val shard_fault_key : doc_id:int -> shard:int -> attempt:int -> int
(** Shard-salted {!fault_key} used by {!Cluster}: the same document gets an
    independent deterministic fault schedule on every shard, so injected
    shard crashes are uncorrelated across the fan-out. *)

val backoff_delay_ms : retry -> doc_id:int -> attempt:int -> int
(** The exact delay (ms) slept before re-attempt [attempt >= 1] of
    [doc_id]: full jitter, uniform in [\[1, min(backoff_max_ms,
    backoff_ms * 2^(attempt-1))\]], deterministic in
    [(seed, doc_id, attempt)]. [0] when [backoff_ms <= 0]. *)

(** {1 Pool configuration} *)

type config = {
  domains : int;
      (** worker domains. [0] is allowed on {!create} (no workers run —
          useful for deterministic admission-control tests);
          {!run_batch} forces at least 1. *)
  retry : retry;
  queue_capacity : int;  (** bounded admission queue size *)
  quarantine : string option;
      (** dead-letter NDJSON file (appended); [None] disables quarantine —
          exhausted documents finish as plain [Failed] *)
  shed : bool;
      (** when [true]: a submit against a full queue is refused
          immediately with [Shed Queue_full] (instead of blocking), and a
          queued document whose admission deadline has expired is refused
          with [Shed Deadline_expired] instead of started *)
  shard : int option;
      (** cluster shard id stamped into quarantine records written by this
          pool; [None] (the default) for standalone pools *)
}

val default_config : config
(** [domains = Domain.recommended_domain_count () - 1] (min 1),
    {!default_retry}, [queue_capacity = 64], no quarantine file,
    [shed = false]. *)

(** {1 Quarantine records} *)

module Quarantine : sig
  type record = {
    doc_id : int;  (** fault-context key of the first attempt *)
    id : string option;  (** caller-supplied request id, if any *)
    shard : int option;
        (** cluster shard that owned the failure, when written by a
            {!Cluster} member or coordinator *)
    attempts : int;  (** total attempts made (first try + retries) *)
    error : string;  (** rendering of the last error *)
    sim : Faerie_sim.Sim.t;
    q : int;
    pruning : Types.pruning;
    budget : Faerie_util.Budget.spec;
    fault : Faerie_util.Fault.config option;
        (** the armed fault campaign, for exact replay *)
    gen : int;
        (** dictionary generation serving at failure time ([0] in records
            written before dynamic dictionaries existed); replay tooling
            refuses a mismatched generation, since the text would extract
            against a different dictionary and not reproduce *)
    text : string;  (** the poison document itself *)
  }
  (** A self-contained repro: [fuzz.exe --replay=FILE --dict=DICT] rebuilds
      the problem, re-arms [fault] and re-runs the document. *)

  val to_json : record -> string
  (** One NDJSON line (no newline). *)

  val of_json : string -> (record, string) result

  (** {2 Dead-letter sink}

      The file is opened with [O_APPEND] and every record is emitted with a
      single [write(2)], so any number of processes (cluster coordinator
      plus shard children) appending to the same dead-letter file produce
      whole, never-interleaved NDJSON lines. *)

  type sink

  val open_sink : string -> sink
  (** @raise Unix.Unix_error if the file cannot be opened/created. *)

  val append : sink -> record -> unit

  val close_sink : sink -> unit
  (** Idempotent; swallows close errors. *)
end

(** {1 Pool lifecycle} *)

type t

val create : ?config:config -> (unit -> Extractor.t) -> t
(** [create getter] starts [config.domains] worker domains. [getter] is
    called once per attempt to obtain the extractor, so a server can swap
    in a freshly loaded index ([Atomic.set]) and in-flight work picks it
    up on the next document — the hot-reload path of [faerie serve]. *)

val note_generation : t -> int -> unit
(** Record the dictionary generation currently serving; stamped into every
    quarantine record this pool writes from now on. Safe to call from the
    owner thread while workers are extracting. Starts at [0]. *)

val submit :
  t ->
  ?id:string ->
  ?opts:Extractor.opts ->
  ?deadline_ns:int64 ->
  ?trace:int * int ->
  doc_id:int ->
  string ->
  on_done:(outcome -> unit) ->
  [ `Queued | `Shed ]
(** Submit one document. [doc_id] keys fault context and backoff jitter
    and should be the document's arrival ordinal. [deadline_ns] overrides
    the admission deadline otherwise derived from [opts.budget.timeout_ms]
    (tests use it to force expiry). [trace] is a [(trace id, depth)]
    context: the worker runs the document's attempt spans under
    {!Faerie_obs.Trace.with_context} with it, so spans land tagged with
    the caller's request trace at the right absolute depth. Returns
    [`Shed] — and completes the document synchronously with
    [Failed (Shed Queue_full)] — when the queue is full and
    [config.shed]; otherwise blocks until queue space frees
    (backpressure) and returns [`Queued].

    [on_done] is invoked exactly once, from a worker domain (or from the
    submitting domain for synchronous sheds), outside the pool lock; it
    must not call back into [t]. Exceptions it raises are swallowed.

    @raise Invalid_argument after {!shutdown}. *)

val drain : t -> unit
(** Block until every submitted document has completed. *)

val shutdown : ?drain:bool -> t -> unit
(** Stop the pool and join every worker domain (including respawned
    replacements). [drain] (default [true]) first waits for queued work;
    [~drain:false] completes still-queued documents with
    [Failed (Shed Shutdown)] without running them. Idempotent. *)

val worker_restarts : t -> int
(** Worker domains respawned after a death, over the pool's lifetime. *)

val queue_depth : t -> int
(** Documents currently waiting (admission queue + death-requeues);
    excludes documents being processed right now. *)

val note_queue_depth : t -> unit
(** Record {!queue_depth} into the ["pool_queue_depth"] gauge so it rides
    along in metrics snapshots (the shard stats path calls this just
    before snapshotting). *)

(** {1 One-shot batch} *)

val run_batch :
  ?config:config ->
  ?opts:Extractor.opts ->
  Problem.t ->
  string array ->
  outcome array * Outcome.summary
(** [run_batch problem docs]: submit every document through a fresh
    supervised pool ([doc_id] = array index), drain, shut down, and
    return outcomes in input order plus a summary — {!Parallel.extract_all_outcomes}
    semantics but with supervision, retry, quarantine and shedding.
    The pool is always shut down, even on exceptions. *)
