(** Exhaustive handling of entities the gram filter cannot cover.

    For edit distance / edit similarity, an entity shorter than [q] has no
    grams, and an entity whose lazy threshold [Tl] is non-positive can match
    a substring sharing zero grams with it. Filtering is vacuous in both
    cases, so for completeness such entities are checked by direct thresholded
    edit-distance verification of every document substring in the admissible character
    length range (derived from the threshold, not from gram counts):

    - edit distance [tau]: lengths in [\[len(e) - tau, len(e) + tau\]];
    - edit similarity [delta]: lengths in [\[⌈delta * len(e)⌉, ⌊len(e) / delta⌋\]].

    Token-based functions never take this path: an entity with at least one
    word token and [delta > 0] always has [Tl >= 1]. *)

val run :
  ?verifier:Faerie_sim.Verify.verifier ->
  Problem.t ->
  Faerie_tokenize.Document.t ->
  Types.char_match list
(** Verified matches (character coordinates, sorted and deduplicated) for
    every {!Problem.Fallback} entity. Empty when there are none.
    [verifier] picks the edit-distance engine (default [Auto]). *)

val char_length_bounds : Faerie_sim.Sim.t -> e_chars:int -> int * int
(** The admissible substring character-length range; exposed for testing.

    @raise Invalid_argument for token-based functions. *)
