(** An extraction problem: dictionary + inverted index + per-entity
    precomputed thresholds. Built once, reused across documents. *)

type path =
  | Indexed  (** normal filter path through the inverted index *)
  | Fallback
      (** the gram filter is vacuous for this entity ([Tl <= 0], or the
          entity is shorter than [q]); handled by exhaustive verification
          over the valid substring range (see {!Fallback}) *)
  | Impossible  (** no substring can ever match (empty length range) *)

type entity_info = {
  e_len : int;  (** [|e|] in tokens/grams *)
  lower : int;  (** Lemma 2 lower bound on [|s|] *)
  upper : int;  (** Lemma 2 upper bound on [|s|] *)
  tl : int;  (** lazy-count threshold [Tl] *)
  gap : int;  (** bucket-count maximum in-bucket gap *)
  path : path;
}

type t

val create :
  sim:Faerie_sim.Sim.t ->
  ?q:int ->
  ?mode:Faerie_tokenize.Document.mode ->
  ?lazy_bound:[ `Exact | `Paper ] ->
  string list ->
  t
(** [create ~sim ?q ?mode entities] tokenizes and indexes the dictionary.
    By default the token mode is implied by [sim]: [q]-grams for edit
    distance/similarity (default [q = 2]), word tokens otherwise. [mode]
    overrides this — e.g. [~mode:(Gram 4)] runs dice/cosine/jaccard over
    gram multisets, as the paper does on PubMed (Fig. 17d/e). A [Gram]
    override supersedes [q]; a [Word] override is rejected for the
    character-based functions.

    [lazy_bound] selects the lazy-count threshold: [`Exact] (default) is
    the exact minimum of the overlap threshold over the valid length range;
    [`Paper] is the paper's closed form, which can be strictly smaller
    (weaker pruning) — kept for the ablation benchmark. Both are sound.

    @raise Invalid_argument on an invalid threshold, [q <= 0], or an
    incompatible mode override. *)

val of_index :
  sim:Faerie_sim.Sim.t ->
  ?lazy_bound:[ `Exact | `Paper ] ->
  Faerie_index.Inverted_index.t ->
  t
(** [of_index ~sim index] builds a problem over a prebuilt inverted index —
    typically one restored by {!Faerie_index.Codec.load}. The index's token
    mode must suit [sim] (gram mode for the character-based functions; its
    gram length supplies [q]).

    @raise Invalid_argument on an invalid threshold or incompatible mode. *)

val sim : t -> Faerie_sim.Sim.t

val q : t -> int

val dictionary : t -> Faerie_index.Dictionary.t

val index : t -> Faerie_index.Inverted_index.t

val info : t -> int -> entity_info
(** Per-entity thresholds, by entity id. *)

val global_lower : t -> int
(** [⊥E]: min Lemma 2 lower bound over indexed entities ([max_int] if none). *)

val global_upper : t -> int
(** [⌈E]: max Lemma 2 upper bound over indexed entities ([0] if none). *)

val fallback_entities : t -> int list
(** Ids on the {!Fallback} path. *)

val overlap_t : t -> e_len:int -> s_len:int -> int
(** The overlap threshold [T] (Lemma 1) for this problem's function. *)

val tokenize_document : t -> string -> Faerie_tokenize.Document.t

val verify_span :
  ?verifier:Faerie_sim.Verify.verifier ->
  t ->
  Faerie_tokenize.Document.t ->
  entity:int ->
  start:int ->
  len:int ->
  Faerie_sim.Verify.Score.t
(** Exact score of the substring [D\[start, len\]] against [entity].
    Character-based functions score the document slice in place (no
    substring is materialized); [verifier] picks the edit-distance engine
    (default [Auto]). *)

val verify_candidate :
  ?verifier:Faerie_sim.Verify.verifier ->
  t ->
  Faerie_tokenize.Document.t ->
  Types.candidate ->
  Faerie_sim.Verify.Score.t
(** {!verify_span} on a {!Types.candidate}. *)
