module Budget = Faerie_util.Budget
module Fault = Faerie_util.Fault
module Json = Faerie_util.Json
module Xorshift = Faerie_util.Xorshift
module Sim = Faerie_sim.Sim
module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace

type outcome = Parallel.outcome

let m_worker_restarts =
  Metrics.counter ~help:"supervised worker domains respawned after a death"
    "worker_restarts"

let m_doc_retries =
  Metrics.counter ~help:"per-document retry attempts" "doc_retries"

let m_docs_quarantined =
  Metrics.counter ~help:"documents written to the quarantine dead-letter file"
    "docs_quarantined"

let m_docs_shed =
  Metrics.counter ~help:"documents refused by admission control" "docs_shed"

(* [`Max] agg: the depth is a pool-wide point-in-time value set by whichever
   domain observed it last — summing per-domain cells would double-count
   observations made from different domains. *)
let g_queue_depth =
  Metrics.gauge
    ~help:"documents waiting in the worker pool (admission + retry queues)"
    ~agg:`Max "pool_queue_depth"

(* splitmix64-style finalizer over an (a, b) pair, for re-keying fault
   contexts and seeding backoff jitter. Full-avalanche so that nearby
   (doc, attempt) pairs get unrelated schedules. *)
let mix_int a b =
  let h =
    let open Int64 in
    let h = add (of_int a) (mul 0x9e3779b97f4a7c15L (add (of_int b) 1L)) in
    let h = logxor h (shift_right_logical h 30) in
    let h = mul h 0xbf58476d1ce4e5b9L in
    logxor h (shift_right_logical h 27)
  in
  Int64.to_int h land max_int

(* Attempt 0 keys the fault context by the plain document id — identical to
   what {!Parallel} would use, so a supervised run and a batch run see the
   same fault schedule on first attempts. Re-attempts get a fresh key:
   deterministic, but independent of the first attempt's schedule (otherwise
   an injected fault would re-fire identically forever and retry would be
   pointless). *)
let fault_key ~doc_id ~attempt =
  if attempt = 0 then doc_id else mix_int doc_id attempt

(* Shard-salted variant for {!Cluster}: each shard of a fan-out must see an
   independent fault schedule for the same document (otherwise every shard
   of the cluster would die on exactly the same documents and a partial
   merge could never occur). The salt keeps attempt 0 deterministic and
   distinct per shard while still flowing through [fault_key]'s re-keying
   for retries. Masked to 53 bits: the attempt-0 key is stored as the
   [doc] of coordinator quarantine records, and the NDJSON codec carries
   numbers as IEEE doubles — anything wider would round-trip lossily and
   break replay. *)
let shard_fault_key ~doc_id ~shard ~attempt =
  fault_key ~doc_id:(mix_int doc_id (0x5d17e0 + shard) land ((1 lsl 53) - 1))
    ~attempt

type retry = {
  retries : int;
  backoff_ms : int;
  backoff_max_ms : int;
  seed : int;
}

let default_retry = { retries = 2; backoff_ms = 10; backoff_max_ms = 1000; seed = 0 }

let backoff_delay_ms retry ~doc_id ~attempt =
  if retry.backoff_ms <= 0 then 0
  else begin
    (* Exponential window with full jitter: uniform in [1, window] where
       window = backoff_ms * 2^(attempt-1), capped. The shift is clamped so
       a huge retry budget cannot overflow the window computation. *)
    let expo = retry.backoff_ms * (1 lsl min (max 0 (attempt - 1)) 20) in
    let window = max 1 (min (max 1 retry.backoff_max_ms) expo) in
    let rng = Xorshift.create (mix_int retry.seed (mix_int doc_id attempt)) in
    1 + Xorshift.int rng window
  end

type config = {
  domains : int;
  retry : retry;
  queue_capacity : int;
  quarantine : string option;
  shed : bool;
  shard : int option;
}

let default_config =
  {
    domains = max 1 (Domain.recommended_domain_count () - 1);
    retry = default_retry;
    queue_capacity = 64;
    quarantine = None;
    shed = false;
    shard = None;
  }

module Quarantine = struct
  type record = {
    doc_id : int;
    id : string option;
    shard : int option;
    attempts : int;
    error : string;
    sim : Sim.t;
    q : int;
    pruning : Types.pruning;
    budget : Budget.spec;
    fault : Fault.config option;
    gen : int;
        (* dictionary generation serving when the failure happened; replay
           refuses a mismatched generation (the text would extract against
           a different dictionary and not reproduce) *)
    text : string;
  }

  let num i = Json.Num (float_of_int i)

  let opt_num = function Some i -> num i | None -> Json.Null

  let to_json r =
    Json.to_string
      (Json.Obj
         ([
            ("doc", num r.doc_id);
            ("id", match r.id with Some s -> Json.Str s | None -> Json.Null);
          ]
         @ (* only cluster shards stamp their id; single-pool records keep
              the pre-cluster shape byte-for-byte *)
         (match r.shard with Some s -> [ ("shard", num s) ] | None -> [])
         @ [
           ("attempts", num r.attempts);
           ("error", Json.Str r.error);
           ("sim", Json.Str (Sim.to_spec r.sim));
           ("q", num r.q);
           ("pruning", Json.Str (Types.pruning_name r.pruning));
           ( "budget",
             Json.Obj
               [
                 ("timeout_ms", opt_num r.budget.Budget.timeout_ms);
                 ("max_bytes", opt_num r.budget.Budget.max_bytes);
                 ("max_candidates", opt_num r.budget.Budget.max_candidates);
               ] );
           ( "fault",
             match r.fault with
             | None -> Json.Null
             | Some { Fault.seed; rates } ->
                 Json.Obj
                   [
                     ("seed", num seed);
                     ( "rates",
                       Json.Obj (List.map (fun (s, p) -> (s, Json.Num p)) rates)
                     );
                   ] );
           ("text", Json.Str r.text);
           ("gen", num r.gen);
         ]))

  let of_json line =
    match Json.of_string line with
    | Error e -> Error e
    | Ok j -> (
        let field name conv =
          match Option.bind (Json.member name j) conv with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "missing or bad field %S" name)
        in
        let ( let* ) = Result.bind in
        let* doc_id = field "doc" Json.to_int in
        let id =
          match Json.member "id" j with
          | Some (Json.Str s) -> Some s
          | _ -> None
        in
        let shard = Option.bind (Json.member "shard" j) Json.to_int in
        let* attempts = field "attempts" Json.to_int in
        let* error = field "error" Json.to_str in
        let* sim_spec = field "sim" Json.to_str in
        let* sim = Sim.of_spec sim_spec in
        let* q = field "q" Json.to_int in
        let* pruning_name = field "pruning" Json.to_str in
        let* pruning =
          match
            List.find_opt
              (fun p -> Types.pruning_name p = pruning_name)
              Types.all_prunings
          with
          | Some p -> Ok p
          | None -> Error (Printf.sprintf "unknown pruning %S" pruning_name)
        in
        let opt_int obj name =
          Option.bind (Json.member name obj) Json.to_int
        in
        let budget =
          match Json.member "budget" j with
          | Some (Json.Obj _ as b) ->
              {
                Budget.timeout_ms = opt_int b "timeout_ms";
                max_bytes = opt_int b "max_bytes";
                max_candidates = opt_int b "max_candidates";
              }
          | _ -> Budget.spec_unlimited
        in
        let fault =
          match Json.member "fault" j with
          | Some (Json.Obj _ as f) ->
              Option.map
                (fun seed ->
                  let rates =
                    match Json.member "rates" f with
                    | Some (Json.Obj kvs) ->
                        List.filter_map
                          (fun (site, v) ->
                            Option.map (fun p -> (site, p)) (Json.to_num v))
                          kvs
                    | _ -> []
                  in
                  { Fault.seed; rates })
                (opt_int f "seed")
          | _ -> None
        in
        let* text = field "text" Json.to_str in
        (* Records from before dynamic dictionaries carry no generation:
           they were written against the only generation there was, 0. *)
        let gen =
          match Option.bind (Json.member "gen" j) Json.to_int with
          | Some g -> g
          | None -> 0
        in
        Ok
          {
            doc_id; id; shard; attempts; error; sim; q; pruning; budget; fault;
            gen; text;
          })

  (* Dead-letter sink: O_APPEND plus a single [write] per record, so the
     coordinator and N shard processes appending to the same file can never
     interleave bytes of two records. The mutex only serializes appenders
     within one process; cross-process atomicity comes from O_APPEND. *)
  type sink = { fd : Unix.file_descr; s_lock : Mutex.t }

  let open_sink path =
    {
      fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644;
      s_lock = Mutex.create ();
    }

  let append sink r =
    let line = Bytes.of_string (to_json r ^ "\n") in
    let n = Bytes.length line in
    Mutex.lock sink.s_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock sink.s_lock)
      (fun () ->
        (* A pipe-or-regular-file write of a full record is atomic under
           O_APPEND; loop only on the (theoretical) short-write case. *)
        let rec go off =
          if off < n then
            match Unix.write sink.fd line off (n - off) with
            | written -> go (off + written)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        in
        go 0)

  let close_sink sink = try Unix.close sink.fd with Unix.Unix_error _ -> ()
end

type job = {
  doc_id : int;
  id : string option;
  text : string;
  opts : Extractor.opts;
  mutable attempt : int;
  mutable sleep_ms : int;
      (* backoff carried over a death-requeue, slept by the next worker *)
  deadline_ns : int64 option;
  trace : (int * int) option;
      (* (trace id, absolute depth) the attempt spans record under *)
  on_done : outcome -> unit;
}

type t = {
  config : config;
  source : unit -> Extractor.t;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  idle : Condition.t;
  queue : job Queue.t;  (* bounded admission queue *)
  retry_q : job Queue.t;
      (* unbounded: death-requeues must never block the dying worker *)
  mutable pending : int;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  mutable restarts : int;
  quarantine_sink : Quarantine.sink option;
  generation : int Atomic.t;
      (* dictionary generation stamped into quarantine records; atomic
         because the owner bumps it on reload commits while worker domains
         read it when finalizing failures *)
}

let transient = function
  | Outcome.Injected_fault _ | Outcome.Worker_crash _ -> true
  | Outcome.Doc_too_large _ | Outcome.Budget_exhausted _
  | Outcome.Tokenize_error _ | Outcome.Corrupt_index _ | Outcome.Shed _
  | Outcome.Quarantined _ ->
      false

(* [on_done] runs outside the pool lock: it is caller code and may take
   arbitrary time; exceptions are swallowed (the outcome was delivered, and
   a callback bug must not kill a worker). *)
let complete t job out =
  (try job.on_done out with _ -> ());
  Mutex.lock t.lock;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.idle;
  Mutex.unlock t.lock

let quarantine_write t record =
  match t.quarantine_sink with
  | None -> ()
  | Some sink -> Quarantine.append sink record

let finalize_failed t job err =
  if t.quarantine_sink <> None && transient err then begin
    let attempts = job.attempt + 1 in
    let p = Extractor.problem (t.source ()) in
    quarantine_write t
      {
        Quarantine.doc_id = job.doc_id;
        id = job.id;
        shard = t.config.shard;
        attempts;
        error = Outcome.error_to_string err;
        sim = Problem.sim p;
        q = Problem.q p;
        pruning = job.opts.Extractor.pruning;
        budget = job.opts.Extractor.budget;
        fault = Fault.current ();
        gen = Atomic.get t.generation;
        text = job.text;
      };
    Metrics.incr m_docs_quarantined;
    complete t job (Outcome.Failed (Outcome.Quarantined { attempts; last = err }))
  end
  else complete t job (Outcome.Failed err)

let sleep_ms ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.)

(* One extraction attempt plus inline retries of contained transient
   failures. Exceptions escaping this function are worker deaths: the
   "supervisor_worker" fault site sits deliberately OUTSIDE the
   {!Extractor.run} containment boundary, modeling a crash of the worker
   loop itself rather than of per-document processing. *)
let rec attempt_loop t job =
  let key = fault_key ~doc_id:job.doc_id ~attempt:job.attempt in
  Fault.with_context key (fun () -> Fault.site "supervisor_worker");
  let run_span () =
    Trace.with_span "doc_attempt"
      ~attrs:
        [
          ("doc", string_of_int job.doc_id);
          ("attempt", string_of_int job.attempt);
        ]
      (fun () ->
        Extractor.run
          ~opts:{ job.opts with Extractor.doc_id = key }
          (t.source ()) (`Text job.text))
  in
  let report =
    (* The worker domain records under the submitter's trace context, so a
       shard's attempt spans carry the coordinator's trace id and nest at
       the depth its request span dictates. *)
    match job.trace with
    | Some (tid, depth) -> Trace.with_context ~trace:tid ~depth run_span
    | None -> run_span ()
  in
  match Parallel.outcome_of_report report with
  | (Outcome.Ok _ | Outcome.Degraded _) as out -> complete t job out
  | Outcome.Failed err ->
      if transient err && job.attempt < t.config.retry.retries then begin
        job.attempt <- job.attempt + 1;
        Metrics.incr m_doc_retries;
        sleep_ms
          (backoff_delay_ms t.config.retry ~doc_id:job.doc_id
             ~attempt:job.attempt);
        attempt_loop t job
      end
      else finalize_failed t job err

let process_job t job =
  sleep_ms job.sleep_ms;
  job.sleep_ms <- 0;
  match job.deadline_ns with
  | Some d when t.config.shed && Trace.now_ns () > d ->
      Metrics.incr m_docs_shed;
      complete t job (Outcome.Failed (Outcome.Shed Outcome.Deadline_expired))
  | _ -> attempt_loop t job

(* Death-requeues bypass the bounded queue (a dying worker must never
   block on admission) and are preferred by [next_job] so a crashed-on
   document is not starved behind fresh arrivals. *)
let next_job t =
  Mutex.lock t.lock;
  let rec wait () =
    if not (Queue.is_empty t.retry_q) then Some (Queue.pop t.retry_q)
    else if not (Queue.is_empty t.queue) then begin
      let j = Queue.pop t.queue in
      Condition.signal t.not_full;
      Some j
    end
    else if t.closed then None
    else begin
      Condition.wait t.not_empty t.lock;
      wait ()
    end
  in
  let j = wait () in
  Mutex.unlock t.lock;
  j

let rec worker_main t =
  match next_job t with
  | None -> ()
  | Some job -> (
      match process_job t job with
      | () -> worker_main t
      | exception e -> on_worker_death t job e)

(* The dying worker requeues (or finalizes) the document it held, then
   spawns its own replacement and exits — every submitted document still
   reaches exactly one outcome. The replacement is registered in
   [t.workers] before this domain returns, so a concurrent [shutdown]'s
   join loop cannot miss it. *)
and on_worker_death t job e =
  let err =
    match e with
    | Fault.Injected site -> Outcome.Injected_fault site
    | e -> Outcome.Worker_crash (Outcome.exn_info_of e)
  in
  Metrics.incr m_worker_restarts;
  Mutex.lock t.lock;
  t.restarts <- t.restarts + 1;
  Mutex.unlock t.lock;
  if job.attempt < t.config.retry.retries then begin
    job.attempt <- job.attempt + 1;
    job.sleep_ms <-
      backoff_delay_ms t.config.retry ~doc_id:job.doc_id ~attempt:job.attempt;
    Metrics.incr m_doc_retries;
    Mutex.lock t.lock;
    Queue.push job t.retry_q;
    Condition.signal t.not_empty;
    Mutex.unlock t.lock
  end
  else finalize_failed t job err;
  Mutex.lock t.lock;
  let respawn = (not t.closed) || t.pending > 0 in
  if respawn then t.workers <- Domain.spawn (fun () -> worker_main t) :: t.workers;
  Mutex.unlock t.lock

let create ?(config = default_config) source =
  if config.domains < 0 then
    invalid_arg "Supervisor.create: negative domain count";
  if config.queue_capacity <= 0 then
    invalid_arg "Supervisor.create: queue_capacity must be positive";
  let quarantine_sink = Option.map Quarantine.open_sink config.quarantine in
  let t =
    {
      config;
      source;
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      retry_q = Queue.create ();
      pending = 0;
      closed = false;
      workers = [];
      restarts = 0;
      quarantine_sink;
      generation = Atomic.make 0;
    }
  in
  Mutex.lock t.lock;
  for _ = 1 to config.domains do
    t.workers <- Domain.spawn (fun () -> worker_main t) :: t.workers
  done;
  Mutex.unlock t.lock;
  t

let note_generation t gen = Atomic.set t.generation gen

let submit t ?id ?opts ?deadline_ns ?trace ~doc_id text ~on_done =
  let opts = Option.value opts ~default:Extractor.default_opts in
  let deadline_ns =
    match deadline_ns with
    | Some _ as d -> d
    | None ->
        if t.config.shed then
          Budget.deadline_ns opts.Extractor.budget ~now_ns:(Trace.now_ns ())
        else None
  in
  let job =
    {
      doc_id; id; text; opts; attempt = 0; sleep_ms = 0; deadline_ns; trace;
      on_done;
    }
  in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Supervisor.submit: pool is shut down"
  end;
  if t.config.shed && Queue.length t.queue >= t.config.queue_capacity then begin
    Mutex.unlock t.lock;
    Metrics.incr m_docs_shed;
    (try on_done (Outcome.Failed (Outcome.Shed Outcome.Queue_full))
     with _ -> ());
    `Shed
  end
  else begin
    while Queue.length t.queue >= t.config.queue_capacity && not t.closed do
      Condition.wait t.not_full t.lock
    done;
    if t.closed then begin
      Mutex.unlock t.lock;
      invalid_arg "Supervisor.submit: pool is shut down"
    end;
    t.pending <- t.pending + 1;
    Queue.push job t.queue;
    Condition.signal t.not_empty;
    Mutex.unlock t.lock;
    `Queued
  end

let drain t =
  Mutex.lock t.lock;
  while t.pending > 0 do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock

let shutdown ?drain:(do_drain = true) t =
  if do_drain then drain t;
  Mutex.lock t.lock;
  t.closed <- true;
  let orphans = ref [] in
  while not (Queue.is_empty t.retry_q) do
    orphans := Queue.pop t.retry_q :: !orphans
  done;
  while not (Queue.is_empty t.queue) do
    orphans := Queue.pop t.queue :: !orphans
  done;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.lock;
  List.iter
    (fun j ->
      Metrics.incr m_docs_shed;
      complete t j (Outcome.Failed (Outcome.Shed Outcome.Shutdown)))
    (List.rev !orphans);
  (* Join every worker, looping because a dying worker may register a
     replacement while we are joining its siblings. *)
  let rec join_all () =
    Mutex.lock t.lock;
    match t.workers with
    | [] -> Mutex.unlock t.lock
    | d :: rest ->
        t.workers <- rest;
        Mutex.unlock t.lock;
        Domain.join d;
        join_all ()
  in
  join_all ();
  match t.quarantine_sink with
  | Some sink -> Quarantine.close_sink sink
  | None -> ()

let worker_restarts t =
  Mutex.lock t.lock;
  let r = t.restarts in
  Mutex.unlock t.lock;
  r

let queue_depth t =
  Mutex.lock t.lock;
  let n = Queue.length t.queue + Queue.length t.retry_q in
  Mutex.unlock t.lock;
  n

let note_queue_depth t =
  Metrics.set g_queue_depth (float_of_int (queue_depth t))

let run_batch ?(config = default_config) ?opts problem docs =
  let config = { config with domains = max 1 config.domains } in
  let t0 = Trace.now_ns () in
  let ex = Extractor.of_problem problem in
  let n = Array.length docs in
  let out = Array.make n (Outcome.Failed (Outcome.Shed Outcome.Shutdown)) in
  let t = create ~config (fun () -> ex) in
  Fun.protect
    ~finally:(fun () -> shutdown ~drain:false t)
    (fun () ->
      Array.iteri
        (fun i doc ->
          ignore
            (submit t ?opts ~doc_id:i doc ~on_done:(fun o -> out.(i) <- o)))
        docs;
      drain t);
  let summary =
    Outcome.summarize ~elapsed_ns:(Int64.sub (Trace.now_ns ()) t0) out
  in
  (out, summary)
