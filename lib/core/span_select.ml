module S = Faerie_sim
module Explain = Faerie_obs.Explain
open Types

let default_weight m =
  match m.c_score with
  | S.Verify.Score.Similarity s -> s
  | S.Verify.Score.Distance d -> 1.0 /. (1.0 +. float_of_int d)

let span_end m = m.c_start + m.c_len

(* Weighted interval scheduling: sort by end; dp.(i) = best weight using
   the first i spans; predecessor found by binary search on end <= start. *)
let select ?(weight = default_weight) ms =
  let spans =
    List.sort
      (fun a b ->
        let c = compare (span_end a) (span_end b) in
        if c <> 0 then c else compare_char_match a b)
      ms
    |> Array.of_list
  in
  let n = Array.length spans in
  if n = 0 then begin
    if Explain.armed () then Explain.record (Explain.Selection { total = 0; kept = 0 });
    []
  end
  else begin
    let w = Array.map weight spans in
    Array.iter
      (fun x -> if x < 0. then invalid_arg "Span_select.select: negative weight")
      w;
    (* pred.(i): largest j < i with span_end spans.(j) <= start of i, or -1. *)
    let pred =
      Array.init n (fun i ->
          let s = spans.(i).c_start in
          let lo = ref 0 and hi = ref i in
          (* find count of spans with end <= s among first i *)
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if span_end spans.(mid) <= s then lo := mid + 1 else hi := mid
          done;
          !lo - 1)
    in
    let dp = Array.make (n + 1) 0. in
    let take = Array.make n false in
    for i = 0 to n - 1 do
      let with_i = w.(i) +. dp.(pred.(i) + 1) in
      let without_i = dp.(i) in
      if with_i > without_i then begin
        dp.(i + 1) <- with_i;
        take.(i) <- true
      end
      else dp.(i + 1) <- without_i
    done;
    let rec walk i acc =
      if i < 0 then acc
      else if take.(i) then walk pred.(i) (spans.(i) :: acc)
      else walk (i - 1) acc
    in
    let kept = walk (n - 1) [] in
    if Explain.armed () then
      Explain.record (Explain.Selection { total = n; kept = List.length kept });
    kept
  end

let overlaps a b = a.c_start < span_end b && b.c_start < span_end a

let greedy_best ?(weight = default_weight) ms =
  let by_weight_desc =
    List.sort
      (fun a b ->
        let c = compare (weight b) (weight a) in
        if c <> 0 then c else compare_char_match a b)
      ms
  in
  let kept = ref [] in
  List.iter
    (fun m ->
      if not (List.exists (overlaps m) !kept) then kept := m :: !kept)
    by_weight_desc;
  List.sort (fun a b -> compare (a.c_start, a.c_len) (b.c_start, b.c_len)) !kept
