module Budget = Faerie_util.Budget
module Fault = Faerie_util.Fault
module Dynarray = Faerie_util.Dynarray
module Sim = Faerie_sim.Sim
module Ix = Faerie_index
module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace
module Prof = Faerie_obs.Prof
module Slowlog = Faerie_obs.Slowlog
module Sampling = Faerie_obs.Sampling
module Build_info = Faerie_obs.Build_info
module Frame = Serve_proto.Frame
module Shard = Serve_proto.Shard

let m_shard_restarts =
  Metrics.counter ~help:"shard processes restarted after a crash or deadline miss"
    "shard_restarts"

let m_shard_timeouts =
  Metrics.counter ~help:"per-shard response deadline misses" "shard_timeouts"

let m_docs_partial =
  Metrics.counter
    ~help:"documents answered with a Shard_partial degradation (some shards missing)"
    "docs_partial"

let m_quarantined_pairs =
  Metrics.counter
    ~help:"(doc, shard) pairs written off to the dead-letter file"
    "quarantined_pairs"

let g_cluster_shards =
  Metrics.gauge ~help:"configured shard processes" ~agg:`Max "cluster_shards"

(* Same name Delta registers shard-side; the coordinator counts cluster
   compactions (shards see them as Prepare/Commit, never Delta.compact). *)
let m_compactions = Metrics.counter "compactions"

type config = {
  shards : int;
  pool : Supervisor.config;
  retry : Supervisor.retry;
  shard_timeout_ms : int option;
  pruning : Types.pruning;
  budget : Budget.spec;
  snapshot_dir : string option;
  slow_stages : bool;
      (* arm each shard's slowlog stage scratch so Result frames carry a
         per-stage wall breakdown; off by default because the extra
         "stages" field changes result-frame bytes (and with them the
         fault schedules keyed off frame contents) *)
}

let default_config =
  {
    shards = 2;
    pool = { Supervisor.default_config with domains = 1 };
    retry = Supervisor.default_retry;
    shard_timeout_ms = None;
    pruning = Types.Binary_window;
    budget = Budget.spec_unlimited;
    snapshot_dir = None;
    slow_stages = false;
  }

(* How long to wait for a freshly spawned shard's Ready frame (it has to
   load its index snapshot first), and for prepare/commit/bye handshakes. *)
let handshake_timeout_ms = 60_000

let spawn_attempts = 3

(* One journaled mutation routed to a shard since the last snapshot
   generation. Adds remember the global id the coordinator assigned, so a
   journal replay into a freshly respawned shard can re-pair the shard's
   deterministic local ids with the global ones. *)
type jentry = J_add of { raw : string; global : int } | J_remove of string

type slot = {
  sid : int;
  up_gauge : Metrics.gauge;
  mutable pid : int;
  mutable wfd : Unix.file_descr;  (* coordinator -> shard *)
  mutable rd : Frame.reader;  (* shard -> coordinator *)
  mutable range : Shard_plan.range;
  mutable snapshot : string;
  mutable up : bool;
  mutable restarts : int;  (* times this slot's process was respawned *)
  mutable offset_ns : int64;
      (* coordinator clock minus shard clock, measured at the Ready
         handshake; re-bases shard span timestamps for trace grafting *)
  mutable bye : (int * int) option;  (* worker restarts, quarantined (from Bye) *)
  addmap : (int, int) Hashtbl.t;
      (* shard-local added-entity id -> global id; rebuilt by journal
         replay on every respawn, cleared at each snapshot generation *)
  mutable journal : jentry list;
      (* mutations routed to this shard since the serving generation's
         snapshot, newest first; replayed into a respawned shard so a
         crash loses no mutation *)
}

type totals = {
  shard_restarts : int;
  shard_timeouts : int;
  docs_partial : int;
  quarantined_pairs : int;
  worker_restarts : int;
  shard_quarantined : int;
}

type t = {
  config : config;
  sim : Sim.t;
  q : int;
  load : unit -> string list;
  dir : string;
  own_dir : bool;
  sink : Supervisor.Quarantine.sink option;
  slots : slot array;
  mutable generation : int;
  mutable restarts : int;
  mutable timeouts : int;
  mutable partials : int;
  mutable qpairs : int;
  mutable closed : bool;
  (* ---- dynamic-dictionary bookkeeping (authoritative, coordinator-side;
     shards mirror it through routed frames + journal replay) ---- *)
  mutable ents : string Dynarray.t;  (* global entity id -> raw *)
  by_raw : (string, int) Hashtbl.t;  (* live raw -> global id *)
  dead_ids : (int, unit) Hashtbl.t;  (* tombstoned global ids *)
  mutable base_top : int;
      (* ids below this are range-partitioned (snapshot entities); ids at
         or above round-robin via Shard_plan.owner_dyn *)
  mutable pending_muts : int;  (* mutations since the serving snapshot *)
  mutable last_compact_ns : int64;
      (* when the serving snapshot generation was adopted *)
}

let generation t = t.generation

let span_compare (a : Types.char_match) (b : Types.char_match) =
  match compare a.Types.c_start b.Types.c_start with
  | 0 -> (
      match compare a.Types.c_len b.Types.c_len with
      | 0 -> compare a.Types.c_entity b.Types.c_entity
      | c -> c)
  | c -> c

let deadline_in_ms ms =
  Int64.add (Trace.now_ns ()) (Int64.of_int (ms * 1_000_000))

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

(* ---- shard process main (runs in the forked child) ---- *)

let shard_main ~(config : config) ~sid ~gen0 ~sim ~snapshot ~rfd ~wfd =
  (* The coordinator owns SIGHUP-driven reloads and terminal lifecycle;
     a shard must not die to either signal mid-frame. *)
  (try Sys.set_signal Sys.sighup Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (* Fork hygiene. The child inherits the coordinator's metric values (a
     Stats_reply would re-count them and the cluster merge would double),
     any injected test clock (shard spans must carry real timestamps the
     coordinator re-bases against the Ready offset), buffered coordinator
     spans, and a possibly armed --stats-interval-s SIGALRM timer. Zero
     all four before serving. *)
  (try Sys.set_signal Sys.sigalrm Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (try
     ignore
       (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.; it_value = 0. })
   with Unix.Unix_error _ -> ());
  Metrics.reset ();
  Trace.reset ();
  Trace.set_clock None;
  (* Re-establish process-identity metrics the reset just zeroed (the
     revision is memoized pre-fork, so this never shells out), and arm
     the per-domain stage scratch when the coordinator wants stage
     breakdowns in Result frames. *)
  Build_info.note ();
  if config.slow_stages then Slowlog.arm_stages ();
  (* Each snapshot load wraps the frozen index in a Delta so routed
     dict_add/dict_remove frames can mutate this shard's slice online.
     Delta.view is copy-on-write, so worker domains keep extracting
     against the extractor they grabbed while we publish a new one. *)
  let load path =
    let _, index = Ix.Codec.load path in
    let delta = Ix.Delta.create index in
    let ex = Extractor.of_problem (Problem.of_index ~sim (Ix.Delta.view delta)) in
    (delta, ex)
  in
  let delta0, ex0 = load snapshot in
  let delta_ref = ref delta0 in
  let ex_ref = Atomic.make ex0 in
  let gen_ref = ref gen0 in
  let pending = ref None in
  let pool =
    Supervisor.create
      ~config:{ config.pool with Supervisor.shard = Some sid }
      (fun () -> Atomic.get ex_ref)
  in
  Supervisor.note_generation pool gen0;
  let wlock = Mutex.create () in
  let send reply =
    Mutex.lock wlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wlock)
      (fun () -> Frame.write wfd (Shard.reply_to_string reply))
  in
  send (Shard.Ready { shard = sid; gen = gen0; now_ns = Trace.now_ns () });
  let rd = Frame.reader rfd in
  let rec loop () =
    match Frame.read rd with
    | `Eof ->
        (* Coordinator is gone (crash or non-handshake teardown): stop
           without draining so we never block on a dead parent. *)
        Supervisor.shutdown ~drain:false pool
    | `Timeout -> loop ()
    | `Corrupt msg -> failwith ("shard frame stream corrupt: " ^ msg)
    | `Frame payload -> (
        match Shard.msg_of_string payload with
        | Error e ->
            send (Shard.Refused { error = Serve_proto.parse_error_to_string e });
            loop ()
        | Ok (Shard.Doc { doc; attempt; timeout_ms; text; trace }) ->
            let key = Supervisor.shard_fault_key ~doc_id:doc ~shard:sid ~attempt in
            (* Deliberately outside any containment: an injection here is a
               shard-process crash (the exception unwinds to the fork
               wrapper, which exits the process abnormally). *)
            Fault.with_context key (fun () -> Fault.site "shard_frame");
            (* A traced doc frame is the coordinator telling us to record:
               the recording flag is process-local and this child may have
               been forked before tracing was enabled over there. Selective
               mode keeps the buffer from accumulating spans of the
               untraced (unsampled) documents between traced ones. *)
            if trace <> None && not (Trace.enabled ()) then begin
              Trace.enable ();
              Trace.set_selective true
            end;
            let budget =
              {
                config.budget with
                Budget.timeout_ms =
                  (match timeout_ms with
                  | Some _ as o -> o
                  | None -> config.budget.Budget.timeout_ms);
              }
            in
            let opts =
              { Extractor.default_opts with pruning = config.pruning; budget }
            in
            ignore
              (Supervisor.submit pool ~opts ~doc_id:key ?trace text
                 ~on_done:(fun outcome ->
                   (* The coordinator keeps at most one doc in flight per
                      shard, so draining here cannot steal spans of a
                      concurrent request; the trace-id filter drops spans
                      of unrelated shard-local activity. *)
                   let spans =
                     match trace with
                     | Some (tid, _) ->
                         List.filter
                           (fun s -> s.Trace.trace = tid)
                           (Trace.drain ())
                     | None -> []
                   in
                   (* The completion callback runs on the worker domain
                      that extracted, so the sealed stage scratch read
                      here is this document's. *)
                   let stages =
                     if not config.slow_stages then []
                     else
                       match Slowlog.last_doc () with
                       | Some d ->
                           List.init Slowlog.n_stages (fun i ->
                               (Slowlog.stage_name i, d.Slowlog.stages_ns.(i)))
                       | None -> []
                   in
                   try
                     send
                       (Shard.Result
                          { doc; gen = !gen_ref; outcome; spans; stages })
                   with _ -> ()));
            loop ()
        | Ok (Shard.Prepare { gen; path }) ->
            (match load path with
            | delta, ex ->
                pending := Some (gen, delta, ex);
                send (Shard.Prepared { gen })
            | exception e ->
                let error =
                  match e with
                  | Ix.Codec.Corrupt m -> "corrupt index: " ^ m
                  | Ix.Codec.Truncated { at; len } ->
                      Printf.sprintf "truncated index (byte %d of %d)" at len
                  | Sys_error m -> m
                  | e -> Printexc.to_string e
                in
                send (Shard.Prepare_failed { gen; error }));
            loop ()
        | Ok (Shard.Commit { gen }) ->
            (match !pending with
            | Some (g, delta, ex) when g = gen ->
                delta_ref := delta;
                Atomic.set ex_ref ex;
                gen_ref := gen;
                Supervisor.note_generation pool gen;
                pending := None;
                send (Shard.Committed { gen })
            | _ ->
                send
                  (Shard.Refused
                     {
                       error =
                         Printf.sprintf
                           "commit of generation %d without a matching prepare"
                           gen;
                     }));
            loop ()
        | Ok (Shard.Abort { gen }) ->
            pending := None;
            send (Shard.Aborted { gen });
            loop ()
        | Ok (Shard.Dict_add { raw }) ->
            let delta = !delta_ref in
            let entity, applied =
              match Ix.Delta.add delta raw with
              | Ix.Delta.Added id -> (id, true)
              | Ix.Delta.Exists id -> (id, false)
            in
            if applied then
              Atomic.set ex_ref
                (Extractor.of_problem
                   (Problem.of_index ~sim (Ix.Delta.view delta)));
            send (Shard.Mutated { gen = !gen_ref; entity; applied });
            loop ()
        | Ok (Shard.Dict_remove { raw }) ->
            let delta = !delta_ref in
            let entity, applied =
              match Ix.Delta.remove delta raw with
              | Ix.Delta.Removed id -> (id, true)
              | Ix.Delta.Absent -> (-1, false)
            in
            if applied then
              Atomic.set ex_ref
                (Extractor.of_problem
                   (Problem.of_index ~sim (Ix.Delta.view delta)));
            send (Shard.Mutated { gen = !gen_ref; entity; applied });
            loop ()
        | Ok Shard.Stats_req ->
            (* Same crash-boundary convention as shard_frame: an injection
               here kills the shard process mid-stats, which the
               coordinator must surface as a flagged partial snapshot —
               never a hang, never a poisoned merge. *)
            Fault.with_context sid (fun () -> Fault.site "shard_stats");
            Prof.note_rss ();
            Supervisor.note_queue_depth pool;
            send (Shard.Stats_reply { shard = sid; snapshot = Metrics.snapshot () });
            loop ()
        | Ok Shard.Shutdown ->
            Supervisor.shutdown pool;
            let quarantined =
              Metrics.counter_value (Metrics.snapshot ()) "docs_quarantined"
            in
            send
              (Shard.Bye
                 { restarts = Supervisor.worker_restarts pool; quarantined }))
  in
  loop ()

(* ---- coordinator ---- *)

(* Fork a shard process over two fresh pipe pairs. The child wraps
   [shard_main] so that NO exception — injected shard_frame faults
   included — can unwind into the parent's OCaml state: any escape turns
   into an abnormal [Unix._exit 2], which the coordinator observes as EOF
   on the response pipe. Must only be called while the coordinator is the
   sole live domain of its process (forking with live worker domains is
   undefined in OCaml 5; shard pools spawn their domains post-fork). *)
let spawn_shard t slot =
  let req_r, req_w = Unix.pipe () in
  let rsp_r, rsp_w = Unix.pipe () in
  let inherited =
    Array.fold_left
      (fun acc s ->
        if s.sid <> slot.sid && s.up then s.wfd :: Frame.reader_fd s.rd :: acc
        else acc)
      [] t.slots
  in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code =
        try
          Unix.close req_w;
          Unix.close rsp_r;
          (* Other shards' pipe ends: holding them open would keep a dead
             sibling's pipes from ever reporting EOF. *)
          List.iter close_quietly inherited;
          shard_main ~config:t.config ~sid:slot.sid ~gen0:t.generation
            ~sim:t.sim ~snapshot:slot.snapshot ~rfd:req_r ~wfd:rsp_w;
          0
        with e ->
          (try
             Printf.eprintf "faerie: shard %d: fatal: %s\n%!" slot.sid
               (Printexc.to_string e)
           with _ -> ());
          2
      in
      Unix._exit code
  | pid ->
      Unix.close req_r;
      Unix.close rsp_w;
      slot.pid <- pid;
      slot.wfd <- req_w;
      slot.rd <- Frame.reader rsp_r;
      slot.up <- true;
      slot.bye <- None

let await_ready t slot =
  match
    Frame.read ~deadline_ns:(deadline_in_ms handshake_timeout_ms) slot.rd
  with
  | `Frame p -> (
      match Shard.reply_of_string p with
      | Ok (Shard.Ready { shard; gen; now_ns }) ->
          shard = slot.sid
          && gen = t.generation
          &&
          ((* The shard stamped its (real) clock into Ready; subtracting
              it from our receive-time clock estimates the per-shard
              offset used to re-base its span timestamps. Includes the
              pipe latency — the lo-clamp in [Trace.graft] absorbs that
              residual. *)
           slot.offset_ns <- Int64.sub (Trace.now_ns ()) now_ns;
           true)
      | Ok _ | Error _ -> false)
  | `Eof | `Timeout | `Corrupt _ -> false

(* Wait for one handshake reply on a slot, tolerating stray Result frames
   (there should be none — handshakes never run with documents in flight —
   but a late frame must not desynchronize the handshake). *)
let await_handshake slot ~deadline =
  let rec go () =
    match Frame.read ~deadline_ns:deadline slot.rd with
    | `Frame p -> (
        match Shard.reply_of_string p with
        | Ok (Shard.Result _) -> go ()
        | Ok reply -> `Reply reply
        | Error _ -> `Dead)
    | `Eof | `Corrupt _ -> `Dead
    | `Timeout -> `Dead
  in
  go ()

(* Re-route every journaled mutation into a freshly (re)spawned shard, in
   original arrival order, rebuilding the local->global add map from the
   replies. The shard's Delta assigns added-entity ids deterministically
   (arrival order over the snapshot base), so a full-journal replay
   reproduces exactly the ids the previous process had — a shard crash
   loses no mutation and changes no extraction result. An empty journal
   sends no frames, keeping the spawn byte-stream identical to a cluster
   that never mutated. *)
let replay_journal slot =
  Hashtbl.reset slot.addmap;
  List.for_all
    (fun entry ->
      let msg, global =
        match entry with
        | J_add { raw; global } -> (Shard.Dict_add { raw }, Some global)
        | J_remove raw -> (Shard.Dict_remove { raw }, None)
      in
      match Frame.write slot.wfd (Shard.msg_to_string msg) with
      | exception (Unix.Unix_error _ | Sys_error _) -> false
      | () -> (
          match
            await_handshake slot ~deadline:(deadline_in_ms handshake_timeout_ms)
          with
          | `Reply (Shard.Mutated { entity; applied; _ }) ->
              (match global with
              | Some g when applied -> Hashtbl.replace slot.addmap entity g
              | _ -> ());
              true
          | `Reply _ | `Dead -> false))
    (List.rev slot.journal)

let kill_slot _t slot =
  if slot.up then begin
    close_quietly slot.wfd;
    close_quietly (Frame.reader_fd slot.rd);
    (try Unix.kill slot.pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (waitpid_retry slot.pid) with Unix.Unix_error _ -> ());
    slot.up <- false;
    Metrics.set slot.up_gauge 0.
  end

(* Bring a shard (back) up from [slot.snapshot] at the current generation.
   Returns [false] — and leaves the slot down — once [spawn_attempts]
   consecutive spawns fail to reach Ready: a shard whose snapshot cannot be
   served anymore degrades the cluster (Shard_partial answers) instead of
   wedging the coordinator in a respawn loop. *)
let start_slot t slot =
  let rec go k =
    if k > spawn_attempts then false
    else begin
      spawn_shard t slot;
      if await_ready t slot && replay_journal slot then begin
        Metrics.set slot.up_gauge 1.;
        true
      end
      else begin
        kill_slot t slot;
        go (k + 1)
      end
    end
  in
  let ok = go 1 in
  if not ok then
    Printf.eprintf
      "faerie: cluster: shard %d failed to start after %d attempts; serving \
       degraded\n\
       %!"
      slot.sid spawn_attempts;
  ok

let restart_slot t slot ~attempt =
  kill_slot t slot;
  t.restarts <- t.restarts + 1;
  slot.restarts <- slot.restarts + 1;
  Metrics.incr m_shard_restarts;
  Printf.eprintf "faerie: cluster: shard %d down, restarting\n%!" slot.sid;
  (* Same capped full-jitter schedule the in-process supervisor uses for
     worker respawns, keyed off the shard id so concurrent shard deaths
     do not thundering-herd their restarts. *)
  let delay =
    Supervisor.backoff_delay_ms t.config.retry ~doc_id:(1_000_003 + slot.sid)
      ~attempt:(max 1 attempt)
  in
  if delay > 0 then Unix.sleepf (float_of_int delay /. 1000.);
  start_slot t slot

let create ?(config = default_config) ~sim ~q load =
  if config.shards <= 0 then
    invalid_arg "Cluster.create: shards must be positive";
  let entities = Array.of_list (load ()) in
  let dir, own_dir =
    match config.snapshot_dir with
    | Some d ->
        if not (Sys.file_exists d) then Unix.mkdir d 0o755;
        (d, false)
    | None ->
        let d = Filename.temp_file "faerie-cluster" ".shards" in
        Sys.remove d;
        Unix.mkdir d 0o700;
        (d, true)
  in
  let plan =
    Shard_plan.write_snapshots ~dir ~gen:0 ~sim ~q ~shards:config.shards
      entities
  in
  let sink =
    Option.map Supervisor.Quarantine.open_sink config.pool.Supervisor.quarantine
  in
  let slots =
    Array.map
      (fun (sp : Shard_plan.shard_snapshot) ->
        {
          sid = sp.Shard_plan.shard;
          up_gauge =
            Metrics.indexed_gauge ~help:"shard process liveness (1 = up)"
              ~agg:`Max ~label:"shard" "shard_up" sp.Shard_plan.shard;
          pid = -1;
          wfd = Unix.stdin;
          rd = Frame.reader Unix.stdin;
          range = sp.Shard_plan.range;
          snapshot = sp.Shard_plan.path;
          up = false;
          restarts = 0;
          offset_ns = 0L;
          bye = None;
          addmap = Hashtbl.create 16;
          journal = [];
        })
      plan
  in
  let by_raw = Hashtbl.create (max 16 (Array.length entities)) in
  Array.iteri (fun i raw -> Hashtbl.replace by_raw raw i) entities;
  let t =
    {
      config;
      sim;
      q;
      load;
      dir;
      own_dir;
      sink;
      slots;
      generation = 0;
      restarts = 0;
      timeouts = 0;
      partials = 0;
      qpairs = 0;
      closed = false;
      ents = Dynarray.of_array entities;
      by_raw;
      dead_ids = Hashtbl.create 16;
      base_top = Array.length entities;
      pending_muts = 0;
      last_compact_ns = Trace.now_ns ();
    }
  in
  Metrics.set_max g_cluster_shards (float_of_int config.shards);
  Array.iter
    (fun slot ->
      if not (start_slot t slot) then begin
        Array.iter (kill_slot t) t.slots;
        failwith (Printf.sprintf "Cluster.create: shard %d failed to start" slot.sid)
      end)
    t.slots;
  t

(* ---- submit: fan out, supervise, merge ---- *)

type shard_state =
  | Waiting of { attempt : int; deadline : int64 option }
  | Settled of Parallel.outcome  (* entity ids already remapped to global *)
  | Lost of Outcome.error

let shard_down_error sid =
  Outcome.Worker_crash
    {
      Outcome.exn_name = "Shard_down";
      message = Printf.sprintf "shard %d is not running" sid;
      backtrace = "";
    }

let shard_exit_error sid =
  Outcome.Worker_crash
    {
      Outcome.exn_name = "Shard_exit";
      message = Printf.sprintf "shard %d process died mid-request" sid;
      backtrace = "";
    }

let shard_timeout_error sid ms =
  Outcome.Worker_crash
    {
      Outcome.exn_name = "Shard_timeout";
      message = Printf.sprintf "shard %d missed its %d ms deadline" sid ms;
      backtrace = "";
    }

let submit t ?id ?timeout_ms ?stages_out ~doc text =
  if t.closed then invalid_arg "Cluster.submit: cluster is shut down";
  let run_fanout () =
  let n = Array.length t.slots in
  let states = Array.make n (Lost (shard_down_error 0)) in
  (* Request-scoped trace context shipped on every doc frame: the trace id
     is the arrival ordinal shifted off 0 (= untraced), the depth is where
     a child of the enclosing cluster_doc span sits. [req_t0] floors the
     grafted shard subtrees so residual clock skew cannot make them start
     before the request span that contains them. When tracing is off this
     is [None] and doc frames are byte-identical to the untraced protocol
     (fault schedules hash frame contents downstream, so this must hold).
     Armed head sampling narrows tracing further to the sampled ordinals —
     the decision is pure in (seed, ordinal), so shard count cannot change
     which documents get traced. *)
  let trace_ctx =
    if
      Trace.enabled ()
      && ((not (Sampling.armed ())) || Sampling.decide doc)
    then Some (doc + 1, Trace.current_depth ())
    else None
  in
  (* Per-stage wall breakdown across the fan-out: shards run concurrently,
     so element-wise max is the critical-path view — the stage time the
     slowest shard spent, which is what a slow merged request inherits. *)
  let stage_acc : (string * float) list ref = ref [] in
  let note_stages stages =
    List.iter
      (fun (name, v) ->
        stage_acc :=
          match List.assoc_opt name !stage_acc with
          | Some v0 when v0 >= v -> !stage_acc
          | Some _ ->
              (name, v) :: List.remove_assoc name !stage_acc
          | None -> !stage_acc @ [ (name, v) ])
      stages
  in
  let req_t0 = if trace_ctx <> None then Some (Trace.now_ns ()) else None in
  let fresh_deadline () =
    Option.map (fun ms -> deadline_in_ms ms) t.config.shard_timeout_ms
  in
  let send_doc slot ~attempt =
    match
      Frame.write slot.wfd
        (Shard.msg_to_string
           (Shard.Doc { doc; attempt; timeout_ms; text; trace = trace_ctx }))
    with
    | () -> true
    | exception (Unix.Unix_error _ | Sys_error _) -> false
  in
  let request_budget =
    {
      t.config.budget with
      Budget.timeout_ms =
        (match timeout_ms with
        | Some _ as o -> o
        | None -> t.config.budget.Budget.timeout_ms);
    }
  in
  let quarantine_pair slot ~attempts err =
    match t.sink with
    | None -> err
    | Some sink ->
        Supervisor.Quarantine.append sink
          {
            (* The salted attempt-0 context key, so a replay probing the
               shard_frame site under this very id re-fires the recorded
               fault schedule. *)
            Supervisor.Quarantine.doc_id =
              Supervisor.shard_fault_key ~doc_id:doc ~shard:slot.sid ~attempt:0;
            id;
            shard = Some slot.sid;
            attempts;
            error = Outcome.error_to_string err;
            sim = t.sim;
            q = t.q;
            pruning = t.config.pruning;
            budget = request_budget;
            fault = Fault.current ();
            gen = t.generation;
            text;
          };
        t.qpairs <- t.qpairs + 1;
        Metrics.incr m_quarantined_pairs;
        Outcome.Quarantined { attempts; last = err }
  in
  (* A shard failed to answer (death, timeout, torn frame): restart it and
     either retry the document against the replacement or write the
     (doc, shard) pair off to the dead-letter file. *)
  let fail_slot i err =
    let slot = t.slots.(i) in
    match states.(i) with
    | Settled _ | Lost _ -> ()
    | Waiting { attempt; _ } ->
        let alive = restart_slot t slot ~attempt:(attempt + 1) in
        if
          alive
          && attempt < t.config.retry.retries
          && send_doc slot ~attempt:(attempt + 1)
        then
          states.(i) <- Waiting { attempt = attempt + 1; deadline = fresh_deadline () }
        else
          states.(i) <- Lost (quarantine_pair slot ~attempts:(attempt + 1) err)
  in
  (* Pull every complete frame currently buffered/readable on a shard's
     pipe; a short deadline bounds the wait for the tail of a frame whose
     header already arrived. *)
  let drain_slot i slot =
    match Frame.read ~deadline_ns:(deadline_in_ms 50) slot.rd with
    | `Timeout -> ()
    | `Eof -> fail_slot i (shard_exit_error slot.sid)
    | `Corrupt msg ->
        fail_slot i
          (Outcome.Worker_crash
             {
               Outcome.exn_name = "Shard_corrupt_stream";
               message = msg;
               backtrace = "";
             })
    | `Frame p -> (
        match Shard.reply_of_string p with
        | Ok (Shard.Result { doc = d; gen = _; outcome; spans; stages })
          when d = doc -> (
            match states.(i) with
            | Waiting _ ->
                Trace.graft ~offset_ns:slot.offset_ns ?lo_ns:req_t0 spans;
                note_stages stages;
                (* Shard-local entity ids below the range width are
                   snapshot entities (offset remap, as ever); ids past it
                   are Delta-added and translate through the journal's
                   local->global add map. *)
                let remap ms =
                  if Hashtbl.length slot.addmap = 0 then
                    Shard_plan.remap_matches ~range:slot.range ms
                  else
                    let w = Shard_plan.width slot.range in
                    List.map
                      (fun (m : Types.char_match) ->
                        let local = m.Types.c_entity in
                        let global =
                          if local < w then local + slot.range.Shard_plan.lo
                          else
                            match Hashtbl.find_opt slot.addmap local with
                            | Some g -> g
                            | None -> local
                        in
                        { m with Types.c_entity = global })
                      ms
                in
                let out =
                  match outcome with
                  | Outcome.Ok ms -> Outcome.Ok (remap ms)
                  | Outcome.Degraded (ms, why) ->
                      Outcome.Degraded (remap ms, why)
                  | Outcome.Failed _ as f -> f
                in
                states.(i) <- Settled out
            | Settled _ | Lost _ -> ())
        | Ok (Shard.Refused { error }) ->
            fail_slot i
              (Outcome.Worker_crash
                 {
                   Outcome.exn_name = "Shard_refused";
                   message = error;
                   backtrace = "";
                 })
        | Ok _ -> ()  (* stray handshake frame: ignore, deadline will cover *)
        | Error e ->
            fail_slot i
              (Outcome.Worker_crash
                 {
                   Outcome.exn_name = "Shard_bad_frame";
                   message = Serve_proto.parse_error_to_string e;
                   backtrace = "";
                 }))
  in
  Array.iteri
    (fun i slot ->
      if not slot.up then states.(i) <- Lost (shard_down_error slot.sid)
      else if send_doc slot ~attempt:0 then
        states.(i) <- Waiting { attempt = 0; deadline = fresh_deadline () }
      else begin
        states.(i) <- Waiting { attempt = 0; deadline = None };
        fail_slot i (shard_exit_error slot.sid)
      end)
    t.slots;
  let waiting_idxs () =
    let acc = ref [] in
    Array.iteri
      (fun i st -> match st with Waiting _ -> acc := i :: !acc | _ -> ())
      states;
    List.rev !acc
  in
  let rec pump () =
    match waiting_idxs () with
    | [] -> ()
    | waiting ->
        let now = Trace.now_ns () in
        let expired =
          List.filter
            (fun i ->
              match states.(i) with
              | Waiting { deadline = Some d; _ } -> d <= now
              | _ -> false)
            waiting
        in
        if expired <> [] then begin
          List.iter
            (fun i ->
              t.timeouts <- t.timeouts + 1;
              Metrics.incr m_shard_timeouts;
              fail_slot i
                (shard_timeout_error t.slots.(i).sid
                   (Option.value t.config.shard_timeout_ms ~default:0)))
            expired;
          pump ()
        end
        else begin
          let fds = List.map (fun i -> Frame.reader_fd t.slots.(i).rd) waiting in
          let timeout =
            List.fold_left
              (fun acc i ->
                match states.(i) with
                | Waiting { deadline = Some d; _ } ->
                    let s = Int64.to_float (Int64.sub d now) /. 1e9 in
                    if acc < 0. then s else Float.min acc s
                | _ -> acc)
              (-1.) waiting
          in
          match Unix.select fds [] [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
          | [], _, _ -> pump ()
          | readable, _, _ ->
              List.iter
                (fun i ->
                  let slot = t.slots.(i) in
                  match states.(i) with
                  | Waiting _ when List.memq (Frame.reader_fd slot.rd) readable
                    ->
                      drain_slot i slot
                  | _ -> ())
                waiting;
              pump ()
        end
  in
  pump ();
  (match stages_out with Some r -> r := !stage_acc | None -> ());
  (* Merge in shard order: concatenate usable match sets (entity ranges are
     disjoint, so no dedup is needed), sort by span for a deterministic,
     shard-count-independent ordering, and descend the degradation ladder:
     all usable -> Ok / first per-shard degradation; any shard missing ->
     Shard_partial; nothing usable -> the lowest shard's error. *)
  let usable = ref [] in
  let first_deg = ref None in
  let missing = ref [] in
  let errors = ref [] in
  Array.iteri
    (fun i st ->
      match st with
      | Settled (Outcome.Ok ms) -> usable := ms :: !usable
      | Settled (Outcome.Degraded (ms, why)) ->
          usable := ms :: !usable;
          if !first_deg = None then first_deg := Some why
      | Settled (Outcome.Failed e) | Lost e ->
          missing := i :: !missing;
          errors := e :: !errors
      | Waiting _ -> assert false)
    states;
  if !usable = [] then
    Outcome.Failed (match List.rev !errors with e :: _ -> e | [] -> assert false)
  else begin
    let ms = List.sort span_compare (List.concat (List.rev !usable)) in
    match List.rev !missing with
    | [] -> (
        match !first_deg with
        | Some why -> Outcome.Degraded (ms, why)
        | None -> Outcome.Ok ms)
    | missing ->
        t.partials <- t.partials + 1;
        Metrics.incr m_docs_partial;
        Outcome.Degraded (ms, Outcome.Shard_partial { n_shards = n; missing })
  end
  in
  Trace.with_span "cluster_doc"
    ~attrs:[ ("doc", string_of_int doc) ]
    run_fanout

(* ---- two-phase snapshot swap (reload & compaction) ---- *)

(* Rebuild the coordinator's dynamic-dictionary bookkeeping around a fresh
   entity array: the snapshot generation just adopted IS those entities,
   so journals, add maps and tombstones all reset. Runs at the commit
   point, before the Commit fan-out, so a shard dying during the fan-out
   restarts from the new snapshot with an empty journal. *)
let reset_dyn t entities =
  t.ents <- Dynarray.of_array entities;
  Hashtbl.reset t.by_raw;
  Array.iteri (fun i raw -> Hashtbl.replace t.by_raw raw i) entities;
  Hashtbl.reset t.dead_ids;
  t.base_top <- Array.length entities;
  t.pending_muts <- 0;
  t.last_compact_ns <- Trace.now_ns ();
  Array.iter
    (fun slot ->
      Hashtbl.reset slot.addmap;
      slot.journal <- [])
    t.slots

(* Drive the two-phase swap to a snapshot generation built from
   [entities]. [before_commit] runs after every shard has prepared and
   before the cluster adopts the new generation — it is compaction's
   compact_commit crash site; an injected fault there takes the abort
   path, exactly like a prepare failure: the old generation keeps
   serving and journaled mutations survive for replay. *)
let two_phase t ~entities ~before_commit =
  let gen' = t.generation + 1 in
  match
    Shard_plan.write_snapshots ~dir:t.dir ~gen:gen' ~sim:t.sim ~q:t.q
      ~shards:(Array.length t.slots) entities
  with
  | exception e -> Error ("snapshot build failed: " ^ Printexc.to_string e)
  | plan ->
      let n = Array.length t.slots in
      let cleanup_gen gen =
        Array.iter
          (fun slot ->
            try Sys.remove (Shard_plan.snapshot_path ~dir:t.dir ~gen ~shard:slot.sid)
            with Sys_error _ -> ())
          t.slots
      in
      (* Phase 1: every live shard loads the new snapshot and holds it
         pending. Any refusal/death aborts the whole generation. *)
      let prepared = Array.make n false in
      let prep_failed = ref [] in
      Array.iteri
        (fun i slot ->
          if slot.up then begin
            match
              Frame.write slot.wfd
                (Shard.msg_to_string
                   (Shard.Prepare
                      { gen = gen'; path = plan.(i).Shard_plan.path }))
            with
            | () -> ()
            | exception (Unix.Unix_error _ | Sys_error _) ->
                prep_failed := (i, "shard died before prepare") :: !prep_failed
          end)
        t.slots;
      Array.iteri
        (fun i slot ->
          if slot.up && not (List.mem_assoc i !prep_failed) then
            match
              await_handshake slot
                ~deadline:(deadline_in_ms handshake_timeout_ms)
            with
            | `Reply (Shard.Prepared { gen }) when gen = gen' ->
                prepared.(i) <- true
            | `Reply (Shard.Prepare_failed { error; _ }) ->
                prep_failed := (i, error) :: !prep_failed
            | `Reply _ ->
                prep_failed := (i, "unexpected prepare reply") :: !prep_failed
            | `Dead ->
                prep_failed := (i, "shard died during prepare") :: !prep_failed)
        t.slots;
      (* Abort: shards that prepared drop the pending snapshot; shards
         that died restart on the OLD generation (journal replay restores
         any pending mutations into the replacement process). *)
      let abort err =
        Array.iteri
          (fun i slot ->
            if prepared.(i) && slot.up then begin
              (try
                 Frame.write slot.wfd
                   (Shard.msg_to_string (Shard.Abort { gen = gen' }))
               with Unix.Unix_error _ | Sys_error _ -> ());
              match
                await_handshake slot
                  ~deadline:(deadline_in_ms handshake_timeout_ms)
              with
              | `Reply (Shard.Aborted _) -> ()
              | `Reply _ | `Dead -> ignore (restart_slot t slot ~attempt:1)
            end)
          t.slots;
        Array.iter
          (fun slot ->
            if slot.up = false then ignore (restart_slot t slot ~attempt:1))
          t.slots;
        cleanup_gen gen';
        Error err
      in
      if !prep_failed <> [] then
        let i, msg = List.hd (List.rev !prep_failed) in
        abort (Printf.sprintf "prepare failed on shard %d: %s" i msg)
      else begin
        match before_commit gen' with
        | exception Fault.Injected site ->
            abort (Printf.sprintf "injected fault at %s" site)
        | () ->
            (* Commit point: from here the cluster IS generation [gen'] —
               slots record the new snapshot/range first, so a shard dying
               anywhere in the commit fan-out restarts from the NEW files. *)
            t.generation <- gen';
            Array.iteri
              (fun i slot ->
                slot.range <- plan.(i).Shard_plan.range;
                slot.snapshot <- plan.(i).Shard_plan.path)
              t.slots;
            reset_dyn t entities;
            Array.iteri
              (fun _i slot ->
                if slot.up then begin
                  match
                    Frame.write slot.wfd
                      (Shard.msg_to_string (Shard.Commit { gen = gen' }))
                  with
                  | () -> (
                      match
                        await_handshake slot
                          ~deadline:(deadline_in_ms handshake_timeout_ms)
                      with
                      | `Reply (Shard.Committed { gen }) when gen = gen' -> ()
                      | `Reply _ | `Dead ->
                          ignore (restart_slot t slot ~attempt:1))
                  | exception (Unix.Unix_error _ | Sys_error _) ->
                      ignore (restart_slot t slot ~attempt:1)
                end
                else
                  (* A previously lost shard gets revived on the new
                     generation — the swap is also the recovery path. *)
                  ignore (restart_slot t slot ~attempt:1))
              t.slots;
            cleanup_gen (gen' - 1);
            Ok gen'
      end

let reload t =
  if t.closed then invalid_arg "Cluster.reload: cluster is shut down";
  match Array.of_list (t.load ()) with
  | exception e -> Error ("reload: " ^ Printexc.to_string e)
  | entities -> (
      match two_phase t ~entities ~before_commit:(fun _ -> ()) with
      | Ok _ as ok -> ok
      | Error e -> Error ("reload: " ^ e))

(* ---- online mutation & compaction ---- *)

let owner_of t g = Shard_plan.owner_dyn (Array.map (fun s -> s.range) t.slots) g

(* Journal first, then route. A slot that is down (or dies while we talk
   to it) still journals the mutation: journal replay applies it when the
   slot revives, so routing failures degrade durability to "applies on
   restart", never to "lost". *)
let route_mutation t slot msg entry =
  slot.journal <- entry :: slot.journal;
  t.pending_muts <- t.pending_muts + 1;
  if slot.up then
    match Frame.write slot.wfd (Shard.msg_to_string msg) with
    | exception (Unix.Unix_error _ | Sys_error _) ->
        ignore (restart_slot t slot ~attempt:1)
    | () -> (
        match
          await_handshake slot ~deadline:(deadline_in_ms handshake_timeout_ms)
        with
        | `Reply (Shard.Mutated { entity; applied; _ }) -> (
            match entry with
            | J_add { global; _ } when applied ->
                Hashtbl.replace slot.addmap entity global
            | _ -> ())
        | `Reply _ | `Dead -> ignore (restart_slot t slot ~attempt:1))

let dict_add t raw =
  if t.closed then invalid_arg "Cluster.dict_add: cluster is shut down";
  match Hashtbl.find_opt t.by_raw raw with
  | Some g -> `Exists g
  | None ->
      let g = Dynarray.length t.ents in
      Dynarray.push t.ents raw;
      Hashtbl.replace t.by_raw raw g;
      let slot = t.slots.(owner_of t g) in
      route_mutation t slot (Shard.Dict_add { raw }) (J_add { raw; global = g });
      `Added g

let dict_remove t raw =
  if t.closed then invalid_arg "Cluster.dict_remove: cluster is shut down";
  match Hashtbl.find_opt t.by_raw raw with
  | None -> `Absent
  | Some g ->
      Hashtbl.remove t.by_raw raw;
      Hashtbl.replace t.dead_ids g ();
      let slot = t.slots.(owner_of t g) in
      route_mutation t slot (Shard.Dict_remove { raw }) (J_remove raw);
      `Removed g

let delta_entities t = t.pending_muts
let live_count t = Dynarray.length t.ents - Hashtbl.length t.dead_ids

let entity_raw t g =
  if g < 0 || g >= Dynarray.length t.ents || Hashtbl.mem t.dead_ids g then None
  else Some (Dynarray.get t.ents g)

let live_entities t =
  let acc = ref [] in
  Dynarray.iteri
    (fun i raw -> if not (Hashtbl.mem t.dead_ids i) then acc := raw :: !acc)
    t.ents;
  Array.of_list (List.rev !acc)

let compact t =
  if t.closed then invalid_arg "Cluster.compact: cluster is shut down";
  let folded = t.pending_muts in
  let entities = live_entities t in
  match
    (* Context = the generation being built, so a schedule can target one
       specific compaction. compact_save models dying while building the
       new snapshots (nothing changed yet); compact_commit models dying
       after prepare, on the brink of adoption (two_phase aborts). *)
    Fault.with_context (t.generation + 1) (fun () ->
        Fault.site "compact_save";
        two_phase t ~entities ~before_commit:(fun _gen ->
            Fault.site "compact_commit"))
  with
  | exception Fault.Injected site ->
      Error (Printf.sprintf "injected fault at %s" site)
  | Error _ as e -> e
  | Ok gen ->
      Metrics.incr m_compactions;
      Ok (gen, folded)

(* ---- shutdown / stats ---- *)

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun slot ->
        if slot.up then begin
          (try Frame.write slot.wfd (Shard.msg_to_string Shard.Shutdown)
           with Unix.Unix_error _ | Sys_error _ -> ());
          let deadline = deadline_in_ms handshake_timeout_ms in
          let rec drain () =
            match Frame.read ~deadline_ns:deadline slot.rd with
            | `Frame p -> (
                match Shard.reply_of_string p with
                | Ok (Shard.Bye { restarts; quarantined }) ->
                    slot.bye <- Some (restarts, quarantined)
                | Ok _ -> drain ()
                | Error _ -> ())
            | `Eof | `Timeout | `Corrupt _ -> ()
          in
          drain ();
          kill_slot t slot
        end)
      t.slots;
    if t.own_dir then begin
      Array.iter
        (fun slot -> try Sys.remove slot.snapshot with Sys_error _ -> ())
        t.slots;
      try Unix.rmdir t.dir with Unix.Unix_error _ -> ()
    end;
    match t.sink with
    | Some sink -> Supervisor.Quarantine.close_sink sink
    | None -> ()
  end

let totals t =
  let worker_restarts, shard_quarantined =
    Array.fold_left
      (fun (r, q) slot ->
        match slot.bye with Some (br, bq) -> (r + br, q + bq) | None -> (r, q))
      (0, 0) t.slots
  in
  {
    shard_restarts = t.restarts;
    shard_timeouts = t.timeouts;
    docs_partial = t.partials;
    quarantined_pairs = t.qpairs;
    worker_restarts;
    shard_quarantined;
  }

(* Pull every live shard's metrics snapshot and merge it with the
   coordinator's own registry. One shared absolute deadline bounds the
   whole fan-out ([--shard-timeout-ms], falling back to the handshake
   timeout), so a wedged shard costs at most one deadline, not one per
   shard. A shard that dies mid-stats (EOF — e.g. an injected shard_stats
   fault) is restarted and reported as [None]; a shard that merely times
   out is reported [None] without a restart (it may still be answering a
   long document). Partial results are the contract: the merge flags
   missing shards, it never hangs and never fails the op. *)
let stats t =
  if t.closed then invalid_arg "Cluster.stats: cluster is shut down";
  let deadline =
    deadline_in_ms
      (Option.value t.config.shard_timeout_ms ~default:handshake_timeout_ms)
  in
  let sent =
    Array.map
      (fun slot ->
        slot.up
        &&
        match Frame.write slot.wfd (Shard.msg_to_string Shard.Stats_req) with
        | () -> true
        | exception (Unix.Unix_error _ | Sys_error _) ->
            ignore (restart_slot t slot ~attempt:1);
            false)
      t.slots
  in
  let per_shard =
    Array.to_list
      (Array.mapi
         (fun i slot ->
           if not sent.(i) then (slot.sid, None)
           else
             let rec await () =
               match Frame.read ~deadline_ns:deadline slot.rd with
               | `Frame p -> (
                   match Shard.reply_of_string p with
                   | Ok (Shard.Stats_reply { shard = _; snapshot }) ->
                       (slot.sid, Some snapshot)
                   | Ok _ -> await ()  (* stray frame: keep waiting *)
                   | Error _ -> (slot.sid, None))
               | `Timeout -> (slot.sid, None)
               | `Eof | `Corrupt _ ->
                   ignore (restart_slot t slot ~attempt:1);
                   (slot.sid, None)
             in
             await ())
         t.slots)
  in
  let merged =
    Metrics.merge_snapshots
      (Metrics.snapshot () :: List.filter_map snd per_shard)
  in
  (merged, per_shard)

let health t =
  let shards =
    Array.to_list
      (Array.map
         (fun slot ->
           {
             Serve_proto.h_shard = slot.sid;
             h_up = slot.up;
             h_gen = t.generation;
             h_restarts = slot.restarts;
             (* The coordinator keeps at most one document in flight per
                shard, so the shard-side pool queue is empty whenever we
                can be asked — report the coordinator-known 0 rather than
                paying a frame round-trip. *)
             h_queue_depth = 0;
             (* Journal length, not shard-side Delta.pending: the journal
                is the authoritative record of what this shard's overlay
                holds (or will hold after replay if it is mid-restart). *)
             h_delta = List.length slot.journal;
             h_compact_age_s =
               Some
                 (Int64.to_float (Int64.sub (Trace.now_ns ()) t.last_compact_ns)
                 /. 1e9);
           })
         t.slots)
  in
  let status =
    if List.for_all (fun h -> h.Serve_proto.h_up) shards then "ok"
    else "degraded"
  in
  (status, shards)

let run_batch ?(config = default_config) ~sim ~q ~entities docs =
  let t = create ~config ~sim ~q (fun () -> entities) in
  let out =
    Fun.protect
      ~finally:(fun () -> shutdown t)
      (fun () -> Array.mapi (fun i doc -> submit t ~doc:i doc) docs)
  in
  (out, Outcome.summarize out, totals t)
