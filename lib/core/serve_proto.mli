(** NDJSON wire protocol of [faerie serve].

    One request per line on stdin, one response per line on stdout. A
    request is a JSON object: [{"text": "..."}], optionally with an
    ["id"] string (echoed back) and a ["timeout_ms"] number (per-request
    deadline override). Responses carry a stable [ord] (arrival ordinal),
    the echoed id, the index generation that served the request, an
    outcome tag ({!Outcome.class_name}), and — for usable outcomes — the
    matches as entity-id/offset/length triples with scores. Entity ids,
    not entity strings, so a response is meaningful against whichever
    snapshot generation it names even across hot reloads.

    Decoding is fault-isolated: the ["serve_decode"] {!Faerie_util.Fault}
    site fires inside {!parse_request}, and both injected faults and
    malformed JSON come back as [Error] — a poison request line yields an
    error response, never a dead server. *)

type request = {
  id : string option;  (** echoed into the response *)
  text : string;
  timeout_ms : int option;  (** per-request deadline override *)
}

val parse_request : ord:int -> string -> (request, string) result
(** Parse one NDJSON request line. [ord] is the arrival ordinal and keys
    the fault context for the ["serve_decode"] site. Never raises. *)

val error_json : ord:int -> string -> string
(** Response line for an undecodable request:
    [{"doc":ord,"outcome":"error","error":...}]. *)

val response_json :
  ord:int -> id:string option -> gen:int -> Parallel.outcome -> string
(** Response line for a completed document. Shape:
    [{"doc":ord,"id":...,"gen":G,"outcome":TAG,"matches":[...]}] with
    ["matches"] present for [ok]/[degraded] (each match
    [{"e":entity,"s":start,"l":len,"score":...}]), ["error"] present
    otherwise, and ["degraded"] carrying the reason when applicable. *)

val summary_json : reloads:int -> Outcome.summary -> string
(** Final stderr line: {!Outcome.summary_to_json} extended with the
    hot-reload count. *)
