(** Wire protocols of [faerie serve]: the public NDJSON request/response
    format, and the internal length-prefixed frames a {!Cluster}
    coordinator exchanges with its shard processes.

    {1 NDJSON client protocol}

    One request per line on stdin, one response per line on stdout. A
    request is a JSON object: [{"text": "..."}], optionally with an
    ["id"] string (echoed back), a ["timeout_ms"] number (per-request
    deadline override) and a ["v"] protocol version (rejected with a
    structured error when it does not match {!version}; omitted means
    "whatever the server speaks", for pre-versioning clients). Responses
    carry a stable [ord] (arrival ordinal), ["v"], the echoed id, the
    index generation that served the request, an outcome tag
    ({!Outcome.class_name}), and — for usable outcomes — the matches as
    entity-id/offset/length triples with scores. Entity ids, not entity
    strings, so a response is meaningful against whichever snapshot
    generation it names even across hot reloads.

    Decoding is fault-isolated: the ["serve_decode"] {!Faerie_util.Fault}
    site fires inside {!parse_request}, and both injected faults and
    malformed JSON come back as [Error] — a poison request line yields an
    error response, never a dead server. *)

val version : int
(** The protocol version this build speaks (in both the NDJSON protocol's
    ["v"] field and every cluster frame). Currently [1]. *)

type request = {
  id : string option;  (** echoed into the response *)
  text : string;
  timeout_ms : int option;  (** per-request deadline override *)
}

type parse_error =
  | Malformed of string  (** bad JSON, missing fields, injected decode fault *)
  | Version_mismatch of { got : int }
      (** well-formed request speaking a protocol we do not *)

val parse_error_to_string : parse_error -> string

val parse_request : ord:int -> string -> (request, parse_error) result
(** Parse one NDJSON request line. [ord] is the arrival ordinal and keys
    the fault context for the ["serve_decode"] site. Never raises. *)

val error_json : ord:int -> parse_error -> string
(** Response line for an undecodable request:
    [{"doc":ord,"v":1,"outcome":"error","error":...}], plus
    ["got"]/["want"] fields on a version mismatch so clients can
    negotiate instead of pattern-matching the message. *)

val response_json :
  ord:int -> id:string option -> gen:int -> Parallel.outcome -> string
(** Response line for a completed document. Shape:
    [{"doc":ord,"v":1,"id":...,"gen":G,"outcome":TAG,"matches":[...]}]
    with ["matches"] present for [ok]/[degraded] (each match
    [{"e":entity,"s":start,"l":len,"score":...}]), ["error"] present
    otherwise, and ["degraded"] carrying the reason when applicable. *)

val summary_json :
  ?metrics:Faerie_obs.Metrics.snapshot ->
  ?slo:string ->
  reloads:int ->
  Outcome.summary ->
  string
(** Final stderr line: {!Outcome.summary_to_json} extended with the
    hot-reload count, and — when [metrics] is given — a trailing
    ["metrics"] object in the {!snapshot_json} display schema so smoke
    jobs can assert counters straight off the summary. [slo] is a
    pre-rendered {!Faerie_obs.Slo.to_json} assessment spliced in as an
    ["slo"] object. *)

val cluster_summary_json :
  ?metrics:Faerie_obs.Metrics.snapshot ->
  ?slo:string ->
  reloads:int ->
  shards:int ->
  shard_restarts:int ->
  shard_timeouts:int ->
  docs_partial:int ->
  quarantined_pairs:int ->
  Outcome.summary ->
  string
(** Final stderr line of a [--shards N] server: {!summary_json} further
    extended with cluster accounting (shard processes restarted, per-shard
    deadline misses, documents that degraded to
    {!Outcome.degradation.Shard_partial}, and (doc, shard) pairs written
    to the dead-letter file). [metrics] as in {!summary_json} (there it is
    the cluster-merged snapshot). *)

(** {1 Metrics snapshot codec}

    Two JSON renderings of a {!Faerie_obs.Metrics.snapshot}. The wire pair
    ({!snapshot_to_json} / {!snapshot_of_json}) is full fidelity — gauges
    keep their agg mode and Prometheus label, so the coordinator can
    {!Faerie_obs.Metrics.merge_snapshots} shard snapshots without any
    access to the shards' registries. The display form ({!snapshot_json})
    is the locked admin/summary schema:
    {v
    {"counters":{N:V,...},"gauges":{N:V,...},
     "histograms":{N:{"upper":[...],"counts":[...],"sum":S,"count":C},...}}
    v} *)

val snapshot_to_json : Faerie_obs.Metrics.snapshot -> Faerie_util.Json.t

val snapshot_of_json :
  Faerie_util.Json.t -> Faerie_obs.Metrics.snapshot option

val snapshot_json : Faerie_obs.Metrics.snapshot -> Faerie_util.Json.t

(** {1 Trace span codec}

    Lossless round-trip of {!Faerie_obs.Trace.span} for shard replies.
    Nanosecond [int64] fields travel as JSON {e strings}: wall-clock
    timestamps (~1.7e18) exceed the 2^53 exact-integer range of the JSON
    number's IEEE double. *)

val span_to_json : Faerie_obs.Trace.span -> Faerie_util.Json.t

val span_of_json : Faerie_util.Json.t -> Faerie_obs.Trace.span option

(** {1 Admin plane}

    Admin operations share the request NDJSON stream: a line whose JSON
    has an ["op"] field is an admin op, never a document. *)

type admin =
  | Stats
  | Health
  | Slowlog_dump
  | Dict_add of string  (** [{"op":"dict_add","entity":RAW}] *)
  | Dict_remove of string  (** [{"op":"dict_remove","entity":RAW}] *)
  | Compact  (** [{"op":"compact"}] *)

val parse_admin : string -> (admin, parse_error) result option
(** [None] when the line is not an admin op (not JSON, or no ["op"]
    field) — hand it to {!parse_request}, which owns the doc ordinal and
    the fault-injection site, so admin traffic never perturbs fault
    schedules. [Some (Error _)] on an unknown op, a [dict_*] op missing
    its ["entity"] string, or version mismatch. *)

val stats_response_json :
  ?missing:int list ->
  format:[ `Jsonl | `Prometheus ] ->
  Faerie_obs.Metrics.snapshot ->
  string
(** Response line for [{"op":"stats"}]. [`Jsonl] embeds the merged
    snapshot as a ["metrics"] object ({!snapshot_json} schema);
    [`Prometheus] embeds the text exposition as a ["prometheus"] string.
    A non-empty [missing] (shards that produced no snapshot before the
    deadline) adds ["partial":true] and ["missing_shards"]. *)

type shard_health = {
  h_shard : int;
  h_up : bool;  (** a live pipe to the shard process exists right now *)
  h_gen : int;  (** index generation the shard last acknowledged *)
  h_restarts : int;  (** times the coordinator respawned this shard *)
  h_queue_depth : int;  (** documents queued in the worker pool *)
  h_delta : int;
      (** pending overlay mutations on this shard ([delta_entities]) *)
  h_compact_age_s : float option;
      (** seconds since this shard's snapshot was last folded (process
          start counts as generation 0's fold); rendered as an appended
          ["compact_age_s"] field when present — the per-shard object's
          field prefix through ["queue_depth"] stays locked, new fields
          are append-only *)
}

val health_response_json :
  ?uptime_s:float ->
  ?max_rss_bytes:float ->
  ?slo:string ->
  status:string ->
  shard_health list ->
  string
(** Response line for [{"op":"health"}]:
    [{"v":1,"op":"health","status":S,...,"shards":[...]}] with [status]
    ["ok"|"degraded"|"slo_burn"]. [uptime_s] and [max_rss_bytes] (peak
    RSS, maxed across shard processes) add same-named numeric fields;
    [slo] is a pre-rendered {!Faerie_obs.Slo.to_json} assessment spliced
    in as an ["slo"] object. Single-process serving reports itself as
    one pseudo-shard. *)

val dict_response_json :
  op:string -> applied:bool -> entity:int -> entities:int -> gen:int -> string
(** Success line for [{"op":"dict_add"|"dict_remove"}]: [applied] is false
    for idempotent no-ops (adding a live raw, removing an absent one),
    [entity] the id the mutation resolved to (-1 when none), [entities]
    the live count after the op, [gen] the serving snapshot generation the
    overlay rides on. *)

val compact_response_json : gen:int -> folded:int -> entities:int -> string
(** Success line for [{"op":"compact"}]: the overlay ([folded] pending
    mutations) was folded into a durable generation-[gen] snapshot of
    [entities] live entities and the WAL truncated. *)

val admin_error_json : op:string -> string -> string
(** Failure line for an admin op (WAL append rejected, compaction aborted,
    mutations not armed): [{"v":1,"op":OP,"outcome":"error","error":MSG}];
    the dictionary is untouched. *)

val slowlog_response_json : total:int -> string list -> string
(** Response line for [{"op":"slowlog"}]:
    [{"v":1,"op":"slowlog","total":N,"records":[...]}] where each record
    is a pre-rendered {!Slowrec.to_json} line (slowest first) and
    [total] counts every capture since startup, including records the
    bounded ring has since evicted. *)

(** {1 Slowlog records}

    The self-contained repro format of the slow-query log — the
    {!Faerie_core.Supervisor.Quarantine} record shape extended with the
    observation that made the request interesting (wall time, outcome
    class, per-stage breakdown, sampling trace id) and discriminated by
    a ["kind":"slowlog"] field so [fuzz --replay] can tell the two
    record kinds apart in one NDJSON stream: quarantine records
    reproduce iff the document fails again, slowlog records reproduce
    iff the outcome class matches. *)

module Slowrec : sig
  type t = {
    doc_id : int;
        (** the fault-context key the run used (serve ordinal in single
            mode, shard-salted key in cluster mode) *)
    id : string option;  (** client-provided request id, if any *)
    trace : int;  (** sampling trace id; [0] = unsampled *)
    gen : int;  (** snapshot generation that served the request *)
    wall_ms : float;
    outcome : string;  (** {!Outcome.class_name}: ok/degraded/failed *)
    stages_ms : (string * float) list;
        (** per-stage wall breakdown; [[]] when stage brackets were not
            armed in the serving process *)
    sim : Faerie_sim.Sim.t;
    q : int;
    pruning : Types.pruning;
    budget : Faerie_util.Budget.spec;
    fault : Faerie_util.Fault.config option;
    text : string;
  }

  val to_json : t -> string
  (** One NDJSON line (no trailing newline). *)

  val of_json : string -> (t, string) result
  (** Rejects lines whose ["kind"] is not ["slowlog"] — including
      quarantine records, which have no ["kind"] — with a descriptive
      error, so replay dispatch can fall through. *)
end

(** {1 Structured outcome codec}

    Lossless JSON round-trip of {!Parallel.outcome} for cluster frames:
    unlike the display strings in the client protocol, every error and
    degradation variant is tagged, and scores distinguish
    [Similarity]/[Distance] (as [{"s":f}] / [{"d":n}]). The [_of_json]
    side returns [None] on any malformed value — the coordinator treats
    that as a shard failure, never a crash. *)

val match_to_json : Types.char_match -> Faerie_util.Json.t

val match_of_json : Faerie_util.Json.t -> Types.char_match option

val error_to_json : Outcome.error -> Faerie_util.Json.t

val error_of_json : Faerie_util.Json.t -> Outcome.error option

val degradation_to_json : Outcome.degradation -> Faerie_util.Json.t

val degradation_of_json : Faerie_util.Json.t -> Outcome.degradation option

val outcome_to_json : Parallel.outcome -> Faerie_util.Json.t

val outcome_of_json : Faerie_util.Json.t -> Parallel.outcome option

(** {1 Length-prefixed frames}

    Transport for coordinator <-> shard pipes: a 4-byte big-endian length
    header followed by that many payload bytes. Writes emit the whole
    frame through blocking [write(2)] with [EINTR] retry; reads are
    incremental — a {!Frame.reader} buffers partial arrivals across calls,
    so a frame split by pipe scheduling is reassembled and a frame is
    delivered either whole or not at all (a shard killed mid-write yields
    [`Eof] at the torn boundary, never a half-frame). *)

module Frame : sig
  val max_len : int
  (** Refuse frames over 64 MiB: a corrupt header must not allocate
      unbounded memory. *)

  val write : Unix.file_descr -> string -> unit
  (** Write one frame. @raise Invalid_argument over {!max_len}.
      @raise Unix.Unix_error as [write(2)] does (e.g. [EPIPE]). *)

  type reader

  val reader : Unix.file_descr -> reader

  val reader_fd : reader -> Unix.file_descr
  (** For [select]-based readiness polling across several readers. *)

  val read :
    ?deadline_ns:int64 ->
    reader ->
    [ `Frame of string | `Eof | `Timeout | `Corrupt of string ]
  (** Next complete frame. Blocks until a frame, end-of-stream, or the
      absolute [deadline_ns] (monotonic, {!Faerie_obs.Trace.now_ns} base);
      without a deadline it blocks indefinitely. [`Timeout] leaves any
      partial frame buffered for a later call. [`Corrupt] reports an
      implausible length header (desynchronized stream). *)
end

(** {1 Coordinator <-> shard messages}

    JSON payloads carried inside {!Frame}s. Every frame embeds ["v"]
    ({!version}) and decoding rejects a mismatch as
    [Version_mismatch] — a structured refusal, not a parse failure. *)

module Shard : sig
  type msg =
    | Doc of {
        doc : int;
        attempt : int;
        timeout_ms : int option;
        text : string;
        trace : (int * int) option;
            (** [(trace id, absolute depth)] the shard's span subtree
                records under via {!Faerie_obs.Trace.with_context};
                [None] (field absent on the wire) when tracing is off, so
                doc frames are byte-identical to the untraced protocol *)
      }
        (** extract [text]; [attempt] re-keys the fault context so a
            coordinator retry does not deterministically re-fire the fault
            that killed the previous attempt *)
    | Prepare of { gen : int; path : string }
        (** phase 1 of reload: load the generation-[gen] snapshot at
            [path], hold it pending, do not serve from it yet *)
    | Commit of { gen : int }  (** phase 2: swap the pending snapshot in *)
    | Abort of { gen : int }  (** drop the pending snapshot *)
    | Dict_add of { raw : string }
        (** apply one dictionary add to the shard's delta overlay;
            answered with {!reply.Mutated} *)
    | Dict_remove of { raw : string }
    | Stats_req
        (** pull the shard's full metrics snapshot; answered with
            {!reply.Stats_reply} *)
    | Shutdown

  type reply =
    | Ready of { shard : int; gen : int; now_ns : int64 }
        (** sent once at startup; [now_ns] is the shard clock at send
            time, which the coordinator subtracts from its own receive
            time to estimate a per-shard clock offset for trace
            re-basing *)
    | Result of {
        doc : int;
        gen : int;
        outcome : Parallel.outcome;
        spans : Faerie_obs.Trace.span list;
            (** the shard-side span subtree of this document's trace
                (empty — field absent — when tracing is off) *)
        stages : (string * float) list;
            (** per-stage wall breakdown [(name, ns)] from the shard's
                slowlog stage brackets (empty — field absent — when stage
                timing is off) *)
      }
    | Prepared of { gen : int }
    | Prepare_failed of { gen : int; error : string }
    | Committed of { gen : int }
    | Aborted of { gen : int }
    | Refused of { error : string }
        (** structured protocol-level rejection (version mismatch,
            commit without prepare); the coordinator treats it as a shard
            fault *)
    | Mutated of { gen : int; entity : int; applied : bool }
        (** outcome of a [Dict_add]/[Dict_remove]: [entity] is the
            {e shard-local} id the mutation resolved to (-1 when none,
            e.g. removing an absent raw) — the coordinator owns the
            local→global id mapping; [applied] is false for idempotent
            no-ops *)
    | Stats_reply of { shard : int; snapshot : Faerie_obs.Metrics.snapshot }
    | Bye of { restarts : int; quarantined : int }
        (** final stats on clean shutdown: worker-domain restarts and
            quarantined documents inside this shard's pool *)

  val msg_to_string : msg -> string

  val msg_of_string : string -> (msg, parse_error) result

  val reply_to_string : reply -> string

  val reply_of_string : string -> (reply, parse_error) result
end
