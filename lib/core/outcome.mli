(** Structured per-document extraction outcomes.

    The pipeline boundary ({!Parallel}) never lets an exception cross a
    document: every document maps to exactly one outcome —

    - [Ok matches]: full, exact result set;
    - [Degraded (matches, why)]: a sound but possibly partial (budget
      exhaustion) or memory-bounded (oversize chunking) result, with the
      reason attached — partial work is reported, never silently dropped;
    - [Failed error]: no usable result; the error taxonomy says why.

    A batch of outcomes folds into a {!summary} for reporting and exit
    policy. *)

type exn_info = { exn_name : string; message : string; backtrace : string }
(** Printable capture of an unexpected exception (the exception itself is
    not kept: outcomes may cross domain boundaries and be persisted). *)

val exn_info_of : ?backtrace:string -> exn -> exn_info

type error =
  | Doc_too_large of { bytes : int; limit : int }
      (** document over the byte limit and oversize policy is [`Reject] *)
  | Budget_exhausted of Faerie_util.Budget.exhaustion
      (** a budget tripped at a point where no partial results exist *)
  | Tokenize_error of string  (** document tokenization rejected the input *)
  | Corrupt_index of string  (** {!Faerie_index.Codec.Corrupt} at load *)
  | Injected_fault of string  (** a {!Faerie_util.Fault} site fired *)
  | Worker_crash of exn_info  (** any other exception, contained *)

type degradation =
  | Oversize_chunked of { bytes : int; limit : int }
      (** document exceeded [max_bytes]; processed via bounded-memory
          {!Chunked} extraction (results complete, peak memory bounded) *)
  | Partial of Faerie_util.Budget.exhaustion
      (** a budget tripped mid-filter; results found before the trip are
          verified and reported (always a subset of the full result set) *)

type 'a t = Ok of 'a | Degraded of 'a * degradation | Failed of error

val is_ok : 'a t -> bool

val is_failed : 'a t -> bool

val matches : 'a t -> 'a option
(** The carried value, for both [Ok] and [Degraded]. *)

val error_to_string : error -> string

val degradation_to_string : degradation -> string

val pp_error : Format.formatter -> error -> unit

type summary = {
  n_docs : int;
  n_ok : int;
  n_degraded : int;
  n_failed : int;
  failures : (int * error) list;  (** document index, error — input order *)
  elapsed_ns : int64;  (** batch wall time; [0L] when the caller did not time *)
}

val summarize : ?elapsed_ns:int64 -> 'a t array -> summary
(** [elapsed_ns] (default [0L]) stamps the batch wall time into the
    summary; {!Parallel.extract_all_outcomes} passes the measured value. *)

val pp_summary : Format.formatter -> summary -> unit
