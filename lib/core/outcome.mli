(** Structured per-document extraction outcomes.

    The pipeline boundary ({!Parallel}) never lets an exception cross a
    document: every document maps to exactly one outcome —

    - [Ok matches]: full, exact result set;
    - [Degraded (matches, why)]: a sound but possibly partial (budget
      exhaustion) or memory-bounded (oversize chunking) result, with the
      reason attached — partial work is reported, never silently dropped;
    - [Failed error]: no usable result; the error taxonomy says why.

    The serving layer ({!Supervisor}) adds two terminal refusals on top of
    the [Failed] taxonomy: [Shed] (the document was never started — admission
    control rejected it) and [Quarantined] (every retry attempt failed and
    the document was written to the dead-letter file). {!classify} splits the
    five classes apart for accounting.

    A batch of outcomes folds into a {!summary} for reporting and exit
    policy. *)

type exn_info = { exn_name : string; message : string; backtrace : string }
(** Printable capture of an unexpected exception (the exception itself is
    not kept: outcomes may cross domain boundaries and be persisted). *)

val exn_info_of : ?backtrace:string -> exn -> exn_info

type shed_cause =
  | Deadline_expired
      (** the document's admission deadline passed while it queued; running
          it could only produce an over-deadline answer *)
  | Queue_full  (** bounded admission queue at capacity, shedding enabled *)
  | Shutdown  (** still queued when a non-draining shutdown was requested *)

val shed_cause_to_string : shed_cause -> string

type error =
  | Doc_too_large of { bytes : int; limit : int }
      (** document over the byte limit and oversize policy is [`Reject] *)
  | Budget_exhausted of Faerie_util.Budget.exhaustion
      (** a budget tripped at a point where no partial results exist *)
  | Tokenize_error of string  (** document tokenization rejected the input *)
  | Corrupt_index of string  (** {!Faerie_index.Codec.Corrupt} at load *)
  | Injected_fault of string  (** a {!Faerie_util.Fault} site fired *)
  | Worker_crash of exn_info  (** any other exception, contained *)
  | Shed of shed_cause  (** refused by admission control, never started *)
  | Quarantined of { attempts : int; last : error }
      (** all [attempts] tries failed; the last error is kept and the
          document went to the dead-letter file *)

type degradation =
  | Oversize_chunked of { bytes : int; limit : int }
      (** document exceeded [max_bytes]; processed via bounded-memory
          {!Chunked} extraction (results complete, peak memory bounded) *)
  | Partial of Faerie_util.Budget.exhaustion
      (** a budget tripped mid-filter; results found before the trip are
          verified and reported (always a subset of the full result set) *)
  | Shard_partial of { n_shards : int; missing : int list }
      (** a cluster merge ({!Cluster}) where the listed shards produced no
          usable result after retries; the matches are complete for every
          other shard's entity range and sound, but entities owned by the
          missing shards may be absent *)

type 'a t = Ok of 'a | Degraded of 'a * degradation | Failed of error

val is_ok : 'a t -> bool

val is_failed : 'a t -> bool

val matches : 'a t -> 'a option
(** The carried value, for both [Ok] and [Degraded]. *)

val error_to_string : error -> string

val degradation_to_string : degradation -> string

val pp_error : Format.formatter -> error -> unit

type cls = [ `Ok | `Degraded | `Failed | `Shed | `Quarantined ]
(** The five accounting classes. [Shed] and [Quarantined] are carried as
    [Failed] constructors but counted apart: a shed document was never
    attempted and a quarantined one has a repro on disk, so neither should
    trip "extraction is broken" alerting the way a plain failure does. *)

val classify : 'a t -> cls

val class_name : cls -> string
(** ["ok"], ["degraded"], ["failed"], ["shed"], ["quarantined"] — the
    wire-format outcome tag used by [faerie serve] responses. *)

type summary = {
  n_docs : int;
  n_ok : int;
  n_degraded : int;
  n_failed : int;
      (** plain failures only — excludes shed and quarantined documents *)
  n_shed : int;
  n_quarantined : int;
  failures : (int * error) list;
      (** document index, error — input order. Plain failures only; shed and
          quarantined documents are counted in their own fields, not listed
          here. *)
  elapsed_ns : int64;  (** batch wall time; [0L] when the caller did not time *)
}

val summarize : ?elapsed_ns:int64 -> 'a t array -> summary
(** [elapsed_ns] (default [0L]) stamps the batch wall time into the
    summary; {!Parallel.extract_all_outcomes} passes the measured value. *)

val pp_summary : Format.formatter -> summary -> unit

val summary_to_json : summary -> string
(** One-line JSON object
    [{"docs":..,"ok":..,"degraded":..,"failed":..,"shed":..,"quarantined":..,"elapsed_ns":..}]
    — the final stderr line of [faerie serve]. *)
