module Tk = Faerie_tokenize
module S = Faerie_sim
module Ix = Faerie_index
module Heaps = Faerie_heaps
module Fault = Faerie_util.Fault
module Budget = Faerie_util.Budget
module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace
module Prof = Faerie_obs.Prof
module Explain = Faerie_obs.Explain
module Slowlog = Faerie_obs.Slowlog
open Types

type t = { problem : Problem.t }

type result = {
  entity_id : int;
  entity : string;
  start_char : int;
  len_chars : int;
  matched_text : string;
  score : S.Verify.Score.t;
}

let g_dict_entities =
  Metrics.gauge ~help:"entities in the most recently built dictionary"
    "dict_entities"

let g_index_postings =
  Metrics.gauge ~help:"total postings in the most recently built index"
    "index_postings"

let m_docs = Metrics.counter ~help:"documents processed by Extractor.run" "docs_processed"

let m_docs_ok = Metrics.counter ~help:"documents with a full result set" "docs_ok"

let m_docs_degraded =
  Metrics.counter ~help:"documents with a degraded (partial/chunked) result"
    "docs_degraded"

let m_docs_failed =
  Metrics.counter ~help:"documents that failed outright" "docs_failed"

let m_doc_wall =
  Metrics.histogram ~help:"per-document wall time (ns) in Extractor.run"
    ~buckets:[| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10 |] "doc_wall_ns"

let note_index problem =
  let index = Problem.index problem in
  let dict = Ix.Inverted_index.dictionary index in
  Metrics.set g_dict_entities
    (float_of_int (Array.length (Ix.Dictionary.entities dict)));
  Metrics.set g_index_postings
    (float_of_int (Ix.Inverted_index.n_postings index))

let create ~sim ?q ?mode entities =
  let problem = Problem.create ~sim ?q ?mode entities in
  note_index problem;
  { problem }

let of_problem problem =
  note_index problem;
  { problem }

let problem t = t.problem

let tokenize t raw = Problem.tokenize_document t.problem raw

let to_result t doc (cm : char_match) =
  let e = Ix.Dictionary.entity (Problem.dictionary t.problem) cm.c_entity in
  let text = Tk.Document.text doc in
  {
    entity_id = cm.c_entity;
    entity = e.Ix.Entity.raw;
    start_char = cm.c_start;
    len_chars = cm.c_len;
    matched_text = String.sub text cm.c_start cm.c_len;
    score = cm.c_score;
  }

let char_match_of_token_match doc (m : token_match) =
  let c_start, c_len =
    Tk.Document.char_extent doc ~start:m.m_start ~len:m.m_len
  in
  { c_entity = m.m_entity; c_start; c_len; c_score = m.m_score }

let sort_results rs =
  List.sort
    (fun a b ->
      let c = compare a.start_char b.start_char in
      if c <> 0 then c
      else
        let c = compare a.len_chars b.len_chars in
        if c <> 0 then c else compare a.entity_id b.entity_id)
    rs

let results_of_char_matches t doc ms = sort_results (List.map (to_result t doc) ms)

(* Render char matches against the raw (untokenized) text — the chunked
   path never holds a whole-document [Document.t]. Normalization is
   length-preserving, so match offsets index straight into it. *)
let results_of_text t text ms =
  let dict = Problem.dictionary t.problem in
  let text = Tk.Tokenizer.normalize text in
  sort_results
    (List.map
       (fun (cm : char_match) ->
         let e = Ix.Dictionary.entity dict cm.c_entity in
         {
           entity_id = cm.c_entity;
           entity = e.Ix.Entity.raw;
           start_char = cm.c_start;
           len_chars = cm.c_len;
           matched_text = String.sub text cm.c_start cm.c_len;
           score = cm.c_score;
         })
       ms)

(* ---- the unified entry point ---- *)

type opts = {
  pruning : Types.pruning;
  budget : Budget.spec;
  oversize : [ `Chunk | `Reject ];
  merger : Heaps.Multiway.merger;
  verifier : S.Verify.verifier;
  metrics : bool;
  explain : Explain.t option;
  doc_id : int;
}

type input = [ `Text of string | `Doc of Tk.Document.t ]

type report = {
  outcome : result list Outcome.t;
  stats : Types.stats;
  elapsed_ns : int64;
}

let default_opts =
  {
    pruning = Binary_window;
    budget = Budget.spec_unlimited;
    oversize = `Chunk;
    merger = Heaps.Multiway.Binary_heap;
    verifier = S.Verify.Auto;
    metrics = true;
    explain = None;
    doc_id = 0;
  }

exception Tokenize_exn of string

let tokenize_checked problem text =
  try Problem.tokenize_document problem text with
  | (Fault.Injected _ | Budget.Exhausted _) as e -> raise e
  | Invalid_argument msg | Failure msg -> raise (Tokenize_exn msg)

(* Filter + verify + fallback on one tokenized document — shared by the
   legacy wrappers (exceptions propagate) and [run] (which contains them). *)
let extract_matches ?merger ?verifier ~pruning ~budget t doc =
  let r =
    Single_heap.run_budgeted ?merger ?verifier ~pruning ~budget t.problem doc
  in
  let main = List.map (char_match_of_token_match doc) r.Single_heap.matches in
  let fallback = Fallback.run ?verifier t.problem doc in
  let all = List.sort_uniq compare_char_match (List.rev_append fallback main) in
  (all, r.Single_heap.stats, r.Single_heap.exhausted)

let extract ?(pruning = Binary_window) t raw =
  let doc = tokenize t raw in
  let all, _, _ = extract_matches ~pruning ~budget:Budget.unlimited t doc in
  results_of_char_matches t doc all

(* Slice an oversize document into bounded pieces for chunked extraction. *)
let pieces_of_string text piece_len =
  let n = String.length text in
  let rec at i () =
    if i >= n then Seq.Nil
    else
      let len = min piece_len (n - i) in
      Seq.Cons (String.sub text i len, at (i + len))
  in
  at 0

let run_contained opts t input =
  let stats = new_stats () in
  let outcome =
    Fault.with_context opts.doc_id @@ fun () ->
    try
      let oversize_route =
        match (input, opts.budget.Budget.max_bytes) with
        | `Text text, Some limit when String.length text > limit ->
            Some (text, limit)
        | (`Text _ | `Doc _), _ -> None
      in
      match oversize_route with
      | Some (text, limit) -> (
          match opts.oversize with
          | `Reject ->
              Outcome.Failed
                (Outcome.Doc_too_large { bytes = String.length text; limit })
          | `Chunk ->
              (* Degrade to bounded-memory streaming extraction: results are
                 still complete, but peak memory is capped near [limit]. *)
              let ms =
                Chunked.extract_seq ~pruning:opts.pruning
                  ~min_buffer_chars:limit t.problem
                  (pieces_of_string text (max 1 (min limit 65536)))
              in
              Outcome.Degraded
                ( results_of_text t text ms,
                  Outcome.Oversize_chunked { bytes = String.length text; limit }
                ))
      | None ->
          let b = Budget.start opts.budget in
          let doc =
            match input with
            | `Doc doc -> doc
            | `Text text -> tokenize_checked t.problem text
          in
          let all, st, exhausted =
            extract_matches ~merger:opts.merger ~verifier:opts.verifier
              ~pruning:opts.pruning ~budget:b t doc
          in
          blit_stats ~src:st ~dst:stats;
          let results = results_of_char_matches t doc all in
          (match exhausted with
          | None -> Outcome.Ok results
          | Some e -> Outcome.Degraded (results, Outcome.Partial e))
    with
    | Fault.Injected site -> Outcome.Failed (Outcome.Injected_fault site)
    | Budget.Exhausted e -> Outcome.Failed (Outcome.Budget_exhausted e)
    | Tokenize_exn msg -> Outcome.Failed (Outcome.Tokenize_error msg)
    | Ix.Codec.Corrupt msg -> Outcome.Failed (Outcome.Corrupt_index msg)
    | exn ->
        let backtrace = Printexc.get_backtrace () in
        Outcome.Failed
          (Outcome.Worker_crash (Outcome.exn_info_of ~backtrace exn))
  in
  (outcome, stats)

let run ?(opts = default_opts) t input =
  let body () =
    Prof.with_doc @@ fun () ->
    (* One atomic load per facility on the disabled path: slowlog is
       checked once here (the stage brackets re-check inside
       Prof.with_stage), sampling never reaches this layer (the serve
       loop decides per ordinal and arms a Trace context). *)
    let slow = Slowlog.armed () in
    if slow then Slowlog.doc_begin ();
    let t0 = Trace.now_ns () in
    let outcome, stats =
      Trace.with_span "extract_doc" (fun () -> run_contained opts t input)
    in
    let elapsed_ns = Int64.sub (Trace.now_ns ()) t0 in
    let trace = Trace.current_trace () in
    Metrics.incr m_docs;
    (if trace = 0 then Metrics.observe m_doc_wall (Int64.to_float elapsed_ns)
     else Metrics.observe_ex m_doc_wall (Int64.to_float elapsed_ns) ~trace);
    if slow then
      Slowlog.doc_end ~wall_ns:(Int64.to_float elapsed_ns) ~trace;
    Metrics.incr
      (match outcome with
      | Outcome.Ok _ -> m_docs_ok
      | Outcome.Degraded _ -> m_docs_degraded
      | Outcome.Failed _ -> m_docs_failed);
    { outcome; stats; elapsed_ns }
  in
  let body () =
    if opts.metrics then body () else Metrics.with_suppressed body
  in
  match opts.explain with
  | None -> body ()
  | Some sink ->
      Explain.with_sink sink (fun () ->
          Explain.emit sink (Explain.Doc { doc_id = opts.doc_id });
          body ())

let result_to_string t r =
  ignore t;
  Format.asprintf "[%d,%d) %S ~ e%d=%S (%a)" r.start_char
    (r.start_char + r.len_chars) r.matched_text r.entity_id r.entity
    S.Verify.Score.pp r.score
