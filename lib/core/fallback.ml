module Tk = Faerie_tokenize
module S = Faerie_sim
module Ix = Faerie_index
open Types

let char_length_bounds sim ~e_chars =
  let e = float_of_int e_chars in
  match sim with
  | S.Sim.Edit_distance tau -> (max 1 (e_chars - tau), e_chars + tau)
  | S.Sim.Edit_similarity d ->
      ( max 1 (int_of_float (Float.ceil ((e *. d) -. 1e-9))),
        int_of_float (Float.floor ((e /. d) +. 1e-9)) )
  | S.Sim.Jaccard _ | S.Sim.Cosine _ | S.Sim.Dice _ ->
      invalid_arg "Fallback.char_length_bounds: token-based function"

let m_fallback_verify =
  Faerie_obs.Metrics.counter
    ~help:"scored substrings on the exhaustive fallback path"
    "fallback_verify_calls"

let run ?verifier problem doc =
  match Problem.fallback_entities problem with
  | [] -> []
  | fallback ->
      Faerie_obs.Trace.with_span "fallback" @@ fun () ->
      let sim = Problem.sim problem in
      let text = Tk.Document.text doc in
      let n = String.length text in
      let dict = Problem.dictionary problem in
      let acc = ref [] in
      let scored = ref 0 in
      Fun.protect ~finally:(fun () ->
          Faerie_obs.Metrics.add m_fallback_verify !scored)
      @@ fun () ->
      List.iter
        (fun id ->
          let e = Ix.Dictionary.entity dict id in
          let e_str = e.Ix.Entity.text in
          let lo, hi = char_length_bounds sim ~e_chars:(String.length e_str) in
          for len = lo to min hi n do
            for start = 0 to n - len do
              scored := !scored + 1;
              let score =
                S.Verify.char_score_slice ?verifier sim ~e_str ~text ~off:start
                  ~len
              in
              if S.Verify.Score.passes sim score then
                acc :=
                  { c_entity = id; c_start = start; c_len = len; c_score = score }
                  :: !acc
            done
          done)
        fallback;
      List.sort_uniq compare_char_match !acc
