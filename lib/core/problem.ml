module Tk = Faerie_tokenize
module S = Faerie_sim
module Ix = Faerie_index

type path = Indexed | Fallback | Impossible

type entity_info = {
  e_len : int;
  lower : int;
  upper : int;
  tl : int;
  gap : int;
  path : path;
}

type t = {
  sim : S.Sim.t;
  q : int;
  dict : Ix.Dictionary.t;
  index : Ix.Inverted_index.t;
  infos : entity_info array;
  global_lower : int;
  global_upper : int;
}

let classify ~e_len ~lower ~upper ~tl =
  if upper < lower then Impossible
  else if tl = max_int then Impossible
  else if e_len = 0 || tl <= 0 then Fallback
  else Indexed

let entity_info sim ~q ~lazy_bound e =
  let e_len = Ix.Entity.n_tokens e in
  if e_len = 0 then
    (* No tokens at all: thresholds are meaningless. Word mode: an empty
       token set can never reach a positive similarity, so it is
       Impossible; gram mode: the string is shorter than q and must be
       handled by the fallback scan. *)
    let path = if S.Sim.char_based sim then Fallback else Impossible in
    { e_len; lower = 1; upper = 0; tl = 0; gap = -1; path }
  else begin
    let lower, upper = S.Thresholds.substring_bounds sim ~q ~e_len in
    let exact_tl = S.Thresholds.lazy_overlap sim ~q ~e_len in
    let gap = S.Thresholds.bucket_gap sim ~q ~e_len in
    let path = classify ~e_len ~lower ~upper ~tl:exact_tl in
    (* The [`Paper] ablation uses the paper's closed-form Tl for pruning
       strength but keeps path classification (hence completeness) from
       the exact bound; any Tl <= exact minimum of T is sound, so clamping
       at 1 on the indexed path preserves correctness. *)
    let tl =
      match lazy_bound with
      | `Exact -> exact_tl
      | `Paper ->
          if path = Indexed then
            max 1 (S.Thresholds.lazy_overlap_paper sim ~q ~e_len)
          else exact_tl
    in
    { e_len; lower; upper; tl; gap; path }
  end

let check_mode sim mode =
  match (mode, S.Sim.char_based sim) with
  | Tk.Document.Word, true ->
      invalid_arg "Problem: edit distance/similarity requires gram mode"
  | (Tk.Document.Word | Tk.Document.Gram _), _ -> ()

let assemble ~sim ~q ~lazy_bound dict index =
  let infos =
    Array.map (entity_info sim ~q ~lazy_bound) (Ix.Dictionary.entities dict)
  in
  (* A delta-overlay view tombstones removed entities: force them off every
     path (heap candidates can't arise — their postings are filtered — but
     the fallback scan iterates infos directly). *)
  if Ix.Inverted_index.is_overlay index then
    Array.iteri
      (fun id i ->
        if i.path <> Impossible && not (Ix.Inverted_index.entity_live index id)
        then infos.(id) <- { i with path = Impossible })
      infos;
  let global_lower, global_upper =
    Array.fold_left
      (fun (lo, hi) i ->
        match i.path with
        | Indexed -> (min lo i.lower, max hi i.upper)
        | Fallback | Impossible -> (lo, hi))
      (max_int, 0) infos
  in
  { sim; q; dict; index; infos; global_lower; global_upper }

let create ~sim ?(q = 2) ?mode ?(lazy_bound = `Exact) raw_entities =
  S.Sim.validate sim;
  if q <= 0 then invalid_arg "Problem.create: q must be positive";
  let mode =
    match mode with
    | Some m ->
        check_mode sim m;
        m
    | None ->
        if S.Sim.char_based sim then Tk.Document.Gram q else Tk.Document.Word
  in
  let q = match mode with Tk.Document.Gram qq -> qq | Tk.Document.Word -> q in
  let dict = Ix.Dictionary.create ~mode raw_entities in
  let index = Ix.Inverted_index.build dict in
  assemble ~sim ~q ~lazy_bound dict index

let of_index ~sim ?(lazy_bound = `Exact) index =
  S.Sim.validate sim;
  let dict = Ix.Inverted_index.dictionary index in
  let mode = Ix.Dictionary.mode dict in
  check_mode sim mode;
  let q = match mode with Tk.Document.Gram qq -> qq | Tk.Document.Word -> 1 in
  assemble ~sim ~q ~lazy_bound dict index

let sim t = t.sim

let q t = t.q

let dictionary t = t.dict

let index t = t.index

let info t id =
  if id < 0 || id >= Array.length t.infos then
    invalid_arg (Printf.sprintf "Problem.info: unknown entity id %d" id);
  t.infos.(id)

let global_lower t = t.global_lower

let global_upper t = t.global_upper

let fallback_entities t =
  let acc = ref [] in
  Array.iteri
    (fun id i -> if i.path = Fallback then acc := id :: !acc)
    t.infos;
  List.rev !acc

let overlap_t t ~e_len ~s_len = S.Thresholds.overlap t.sim ~q:t.q ~e_len ~s_len

let tokenize_document t raw = Ix.Dictionary.tokenize_document t.dict raw

let m_verify_calls =
  Faerie_obs.Metrics.counter
    ~help:"candidate verifications on the indexed path" "verify_calls"

let verify_span ?verifier t doc ~entity ~start ~len =
  Faerie_obs.Metrics.incr m_verify_calls;
  let e = Ix.Dictionary.entity t.dict entity in
  if S.Sim.char_based t.sim then begin
    (* Score the document slice in place — no substring allocation. *)
    let off, char_len = Tk.Document.char_extent doc ~start ~len in
    S.Verify.char_score_slice ?verifier t.sim ~e_str:e.Ix.Entity.text
      ~text:(Tk.Document.text doc) ~off ~len:char_len
  end
  else
    S.Verify.token_score t.sim ~e_tokens:e.Ix.Entity.sorted_tokens
      ~s_tokens:(Tk.Document.token_multiset doc ~start ~len)

let verify_candidate ?verifier t doc (c : Types.candidate) =
  verify_span ?verifier t doc ~entity:c.Types.entity ~start:c.Types.start
    ~len:c.Types.len
