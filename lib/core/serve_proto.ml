module Fault = Faerie_util.Fault
module Json = Faerie_util.Json
module Budget = Faerie_util.Budget
module Score = Faerie_sim.Verify.Score
module Trace = Faerie_obs.Trace

let version = 1

type request = { id : string option; text : string; timeout_ms : int option }

type parse_error = Malformed of string | Version_mismatch of { got : int }

let parse_error_to_string = function
  | Malformed msg -> msg
  | Version_mismatch { got } ->
      Printf.sprintf "unsupported protocol version %d (supported: %d)" got
        version

let num i = Json.Num (float_of_int i)

(* A ["v"] field, when present, must match [version] exactly; requests
   without one are accepted for compatibility with pre-cluster clients. *)
let check_version j =
  match Json.member "v" j with
  | None -> Ok ()
  | Some v -> (
      match Json.to_int v with
      | Some got when got = version -> Ok ()
      | Some got -> Error (Version_mismatch { got })
      | None -> Error (Malformed {|non-integer "v" field|}))

let parse_request ~ord line =
  match
    Fault.with_context ord (fun () ->
        Fault.site "serve_decode";
        Json.of_string line)
  with
  | exception Fault.Injected site ->
      Error (Malformed (Printf.sprintf "injected fault at site %S" site))
  | Error e -> Error (Malformed (Printf.sprintf "bad JSON: %s" e))
  | Ok j -> (
      match check_version j with
      | Error e -> Error e
      | Ok () -> (
          match Option.bind (Json.member "text" j) Json.to_str with
          | None -> Error (Malformed {|missing or non-string "text" field|})
          | Some text ->
              let id =
                match Json.member "id" j with
                | Some (Json.Str s) -> Some s
                | _ -> None
              in
              let timeout_ms =
                Option.bind (Json.member "timeout_ms" j) Json.to_int
              in
              Ok { id; text; timeout_ms }))

let error_json ~ord err =
  let extra =
    match err with
    | Malformed _ -> []
    | Version_mismatch { got } -> [ ("got", num got); ("want", num version) ]
  in
  Json.to_string
    (Json.Obj
       ([
          ("doc", num ord);
          ("v", num version);
          ("outcome", Json.Str "error");
          ("error", Json.Str (parse_error_to_string err));
        ]
       @ extra))

let score_json = function
  | Score.Similarity f -> Json.Num f
  | Score.Distance d -> num d

let match_json (m : Types.char_match) =
  Json.Obj
    [
      ("e", num m.Types.c_entity);
      ("s", num m.Types.c_start);
      ("l", num m.Types.c_len);
      ("score", score_json m.Types.c_score);
    ]

let response_json ~ord ~id ~gen (out : Parallel.outcome) =
  let matches ms = ("matches", Json.List (List.map match_json ms)) in
  let fields =
    [ ("doc", num ord); ("v", num version) ]
    @ (match id with Some s -> [ ("id", Json.Str s) ] | None -> [])
    @ [
        ("gen", num gen);
        ("outcome", Json.Str (Outcome.class_name (Outcome.classify out)));
      ]
    @
    match out with
    | Outcome.Ok ms -> [ matches ms ]
    | Outcome.Degraded (ms, why) ->
        [
          ("degraded", Json.Str (Outcome.degradation_to_string why)); matches ms;
        ]
    | Outcome.Failed err ->
        [ ("error", Json.Str (Outcome.error_to_string err)) ]
  in
  Json.to_string (Json.Obj fields)

let summary_json ~reloads s =
  let base = Outcome.summary_to_json s in
  (* [summary_to_json] always ends in '}'; splice the reload count in. *)
  Printf.sprintf "%s,\"reloads\":%d}"
    (String.sub base 0 (String.length base - 1))
    reloads

let cluster_summary_json ~reloads ~shards ~shard_restarts ~shard_timeouts
    ~docs_partial ~quarantined_pairs s =
  let base = Outcome.summary_to_json s in
  Printf.sprintf
    "%s,\"reloads\":%d,\"shards\":%d,\"shard_restarts\":%d,\"shard_timeouts\":%d,\"docs_partial\":%d,\"quarantined_pairs\":%d}"
    (String.sub base 0 (String.length base - 1))
    reloads shards shard_restarts shard_timeouts docs_partial quarantined_pairs

(* ---- structured outcome codec (cluster internal frames) ---- *)

(* The client-facing response renders scores/errors as display strings; the
   coordinator however must reconstruct the exact [Parallel.outcome] a shard
   produced, so these codecs tag every variant. A [Score.Similarity 2.0]
   and [Score.Distance 2] would be indistinguishable as a bare JSON
   number — hence the {"s":f} / {"d":n} tagging. *)

let score_to_json = function
  | Score.Similarity f -> Json.Obj [ ("s", Json.Num f) ]
  | Score.Distance d -> Json.Obj [ ("d", num d) ]

let score_of_json j =
  match (Json.member "s" j, Json.member "d" j) with
  | Some s, _ -> Option.map (fun f -> Score.Similarity f) (Json.to_num s)
  | _, Some d -> Option.map (fun n -> Score.Distance n) (Json.to_int d)
  | None, None -> None

let match_to_json (m : Types.char_match) =
  Json.Obj
    [
      ("e", num m.Types.c_entity);
      ("s", num m.Types.c_start);
      ("l", num m.Types.c_len);
      ("score", score_to_json m.Types.c_score);
    ]

let match_of_json j =
  let int name = Option.bind (Json.member name j) Json.to_int in
  match
    (int "e", int "s", int "l", Option.bind (Json.member "score" j) score_of_json)
  with
  | Some e, Some s, Some l, Some score ->
      Some
        { Types.c_entity = e; c_start = s; c_len = l; c_score = score }
  | _ -> None

let exhaustion_to_tag = function
  | Budget.Deadline -> "deadline"
  | Budget.Bytes -> "bytes"
  | Budget.Candidates -> "candidates"

let exhaustion_of_tag = function
  | "deadline" -> Some Budget.Deadline
  | "bytes" -> Some Budget.Bytes
  | "candidates" -> Some Budget.Candidates
  | _ -> None

let shed_cause_to_tag = function
  | Outcome.Deadline_expired -> "deadline"
  | Outcome.Queue_full -> "queue"
  | Outcome.Shutdown -> "shutdown"

let shed_cause_of_tag = function
  | "deadline" -> Some Outcome.Deadline_expired
  | "queue" -> Some Outcome.Queue_full
  | "shutdown" -> Some Outcome.Shutdown
  | _ -> None

let rec error_to_json (e : Outcome.error) =
  let tag t rest = Json.Obj (("t", Json.Str t) :: rest) in
  match e with
  | Outcome.Doc_too_large { bytes; limit } ->
      tag "doc_too_large" [ ("bytes", num bytes); ("limit", num limit) ]
  | Outcome.Budget_exhausted x ->
      tag "budget" [ ("which", Json.Str (exhaustion_to_tag x)) ]
  | Outcome.Tokenize_error msg -> tag "tokenize" [ ("msg", Json.Str msg) ]
  | Outcome.Corrupt_index msg -> tag "corrupt_index" [ ("msg", Json.Str msg) ]
  | Outcome.Injected_fault site -> tag "injected" [ ("site", Json.Str site) ]
  | Outcome.Worker_crash { exn_name; message; backtrace } ->
      tag "crash"
        [
          ("exn", Json.Str exn_name);
          ("msg", Json.Str message);
          ("bt", Json.Str backtrace);
        ]
  | Outcome.Shed cause ->
      tag "shed" [ ("cause", Json.Str (shed_cause_to_tag cause)) ]
  | Outcome.Quarantined { attempts; last } ->
      tag "quarantined" [ ("attempts", num attempts); ("last", error_to_json last) ]

let rec error_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_str in
  let int name = Option.bind (Json.member name j) Json.to_int in
  match str "t" with
  | Some "doc_too_large" -> (
      match (int "bytes", int "limit") with
      | Some bytes, Some limit -> Some (Outcome.Doc_too_large { bytes; limit })
      | _ -> None)
  | Some "budget" ->
      Option.map
        (fun x -> Outcome.Budget_exhausted x)
        (Option.bind (str "which") exhaustion_of_tag)
  | Some "tokenize" -> Option.map (fun m -> Outcome.Tokenize_error m) (str "msg")
  | Some "corrupt_index" ->
      Option.map (fun m -> Outcome.Corrupt_index m) (str "msg")
  | Some "injected" -> Option.map (fun s -> Outcome.Injected_fault s) (str "site")
  | Some "crash" -> (
      match (str "exn", str "msg") with
      | Some exn_name, Some message ->
          Some
            (Outcome.Worker_crash
               {
                 exn_name;
                 message;
                 backtrace = Option.value (str "bt") ~default:"";
               })
      | _ -> None)
  | Some "shed" ->
      Option.map
        (fun c -> Outcome.Shed c)
        (Option.bind (str "cause") shed_cause_of_tag)
  | Some "quarantined" -> (
      match (int "attempts", Option.bind (Json.member "last" j) error_of_json)
      with
      | Some attempts, Some last ->
          Some (Outcome.Quarantined { attempts; last })
      | _ -> None)
  | _ -> None

let degradation_to_json (d : Outcome.degradation) =
  let tag t rest = Json.Obj (("t", Json.Str t) :: rest) in
  match d with
  | Outcome.Oversize_chunked { bytes; limit } ->
      tag "oversize" [ ("bytes", num bytes); ("limit", num limit) ]
  | Outcome.Partial x ->
      tag "partial" [ ("which", Json.Str (exhaustion_to_tag x)) ]
  | Outcome.Shard_partial { n_shards; missing } ->
      tag "shard_partial"
        [ ("shards", num n_shards); ("missing", Json.List (List.map num missing)) ]

let degradation_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_str in
  let int name = Option.bind (Json.member name j) Json.to_int in
  match str "t" with
  | Some "oversize" -> (
      match (int "bytes", int "limit") with
      | Some bytes, Some limit ->
          Some (Outcome.Oversize_chunked { bytes; limit })
      | _ -> None)
  | Some "partial" ->
      Option.map
        (fun x -> Outcome.Partial x)
        (Option.bind (str "which") exhaustion_of_tag)
  | Some "shard_partial" -> (
      match (int "shards", Json.member "missing" j) with
      | Some n_shards, Some (Json.List ms) ->
          let missing = List.filter_map Json.to_int ms in
          if List.length missing = List.length ms then
            Some (Outcome.Shard_partial { n_shards; missing })
          else None
      | _ -> None)
  | _ -> None

let all_some xs =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Some x :: rest -> go (x :: acc) rest
    | None :: _ -> None
  in
  go [] xs

let outcome_to_json (o : Parallel.outcome) =
  let matches ms = ("matches", Json.List (List.map match_to_json ms)) in
  match o with
  | Outcome.Ok ms -> Json.Obj [ ("cls", Json.Str "ok"); matches ms ]
  | Outcome.Degraded (ms, why) ->
      Json.Obj
        [
          ("cls", Json.Str "degraded");
          ("why", degradation_to_json why);
          matches ms;
        ]
  | Outcome.Failed err ->
      Json.Obj [ ("cls", Json.Str "failed"); ("error", error_to_json err) ]

let outcome_of_json j : Parallel.outcome option =
  let matches () =
    match Json.member "matches" j with
    | Some (Json.List ms) -> all_some (List.map match_of_json ms)
    | _ -> None
  in
  match Option.bind (Json.member "cls" j) Json.to_str with
  | Some "ok" -> Option.map (fun ms -> Outcome.Ok ms) (matches ())
  | Some "degraded" -> (
      match (matches (), Option.bind (Json.member "why" j) degradation_of_json)
      with
      | Some ms, Some why -> Some (Outcome.Degraded (ms, why))
      | _ -> None)
  | Some "failed" ->
      Option.map
        (fun e -> Outcome.Failed e)
        (Option.bind (Json.member "error" j) error_of_json)
  | _ -> None

(* ---- length-prefixed frames ---- *)

module Frame = struct
  let max_len = 1 lsl 26

  let rec write_all fd buf off len =
    if len > 0 then
      match Unix.write fd buf off len with
      | n -> write_all fd buf (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf off len

  let write fd payload =
    let n = String.length payload in
    if n > max_len then
      invalid_arg (Printf.sprintf "Serve_proto.Frame.write: %d-byte frame" n);
    let buf = Bytes.create (4 + n) in
    Bytes.set_int32_be buf 0 (Int32.of_int n);
    Bytes.blit_string payload 0 buf 4 n;
    write_all fd buf 0 (4 + n)

  type reader = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

  let reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536 }

  let reader_fd r = r.fd

  (* Extract one complete frame from the buffered bytes, if present. *)
  let take r =
    let b = Buffer.contents r.buf in
    if String.length b < 4 then None
    else
      let len = Int32.to_int (String.get_int32_be b 0) in
      if len < 0 || len > max_len then Some (Error len)
      else if String.length b < 4 + len then None
      else begin
        let payload = String.sub b 4 len in
        Buffer.clear r.buf;
        Buffer.add_substring r.buf b (4 + len) (String.length b - 4 - len);
        Some (Ok payload)
      end

  let read ?deadline_ns r =
    let rec loop () =
      match take r with
      | Some (Ok payload) -> `Frame payload
      | Some (Error len) ->
          `Corrupt (Printf.sprintf "bad frame length %d" len)
      | None -> (
          let timeout =
            match deadline_ns with
            | None -> -1.
            | Some d ->
                Int64.to_float (Int64.sub d (Trace.now_ns ())) /. 1e9
          in
          if deadline_ns <> None && timeout <= 0. then `Timeout
          else
            match Unix.select [ r.fd ] [] [] timeout with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
            | [], _, _ -> if deadline_ns = None then loop () else `Timeout
            | _ -> (
                match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
                | 0 -> `Eof
                | n ->
                    Buffer.add_subbytes r.buf r.chunk 0 n;
                    loop ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
                | exception
                    Unix.Unix_error
                      ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                    `Eof))
    in
    loop ()
end

(* ---- coordinator <-> shard messages ---- *)

module Shard = struct
  type msg =
    | Doc of { doc : int; attempt : int; timeout_ms : int option; text : string }
    | Prepare of { gen : int; path : string }
    | Commit of { gen : int }
    | Abort of { gen : int }
    | Shutdown

  type reply =
    | Ready of { shard : int; gen : int }
    | Result of { doc : int; gen : int; outcome : Parallel.outcome }
    | Prepared of { gen : int }
    | Prepare_failed of { gen : int; error : string }
    | Committed of { gen : int }
    | Aborted of { gen : int }
    | Refused of { error : string }
    | Bye of { restarts : int; quarantined : int }

  let obj op fields = Json.Obj (("v", num version) :: ("op", Json.Str op) :: fields)

  let msg_to_string m =
    Json.to_string
      (match m with
      | Doc { doc; attempt; timeout_ms; text } ->
          obj "doc"
            ([ ("doc", num doc); ("attempt", num attempt) ]
            @ (match timeout_ms with
              | Some t -> [ ("timeout_ms", num t) ]
              | None -> [])
            @ [ ("text", Json.Str text) ])
      | Prepare { gen; path } ->
          obj "prepare" [ ("gen", num gen); ("path", Json.Str path) ]
      | Commit { gen } -> obj "commit" [ ("gen", num gen) ]
      | Abort { gen } -> obj "abort" [ ("gen", num gen) ]
      | Shutdown -> obj "shutdown" [])

  let reply_to_string r =
    Json.to_string
      (match r with
      | Ready { shard; gen } ->
          obj "ready" [ ("shard", num shard); ("gen", num gen) ]
      | Result { doc; gen; outcome } ->
          obj "result"
            [ ("doc", num doc); ("gen", num gen); ("out", outcome_to_json outcome) ]
      | Prepared { gen } -> obj "prepared" [ ("gen", num gen) ]
      | Prepare_failed { gen; error } ->
          obj "prepare_failed" [ ("gen", num gen); ("error", Json.Str error) ]
      | Committed { gen } -> obj "committed" [ ("gen", num gen) ]
      | Aborted { gen } -> obj "aborted" [ ("gen", num gen) ]
      | Refused { error } -> obj "refused" [ ("error", Json.Str error) ]
      | Bye { restarts; quarantined } ->
          obj "bye" [ ("restarts", num restarts); ("quarantined", num quarantined) ])

  let decode line =
    match Json.of_string line with
    | Error e -> Error (Malformed (Printf.sprintf "bad frame JSON: %s" e))
    | Ok j -> (
        (* Frames always carry ["v"]: a missing field is a framing bug, not
           an old client, so unlike requests it is rejected. *)
        match Option.bind (Json.member "v" j) Json.to_int with
        | None -> Error (Malformed {|frame without integer "v" field|})
        | Some got when got <> version -> Error (Version_mismatch { got })
        | Some _ -> (
            match Option.bind (Json.member "op" j) Json.to_str with
            | None -> Error (Malformed {|frame without "op" field|})
            | Some op -> Ok (op, j)))

  let msg_of_string line =
    match decode line with
    | Error e -> Error e
    | Ok (op, j) -> (
        let int name = Option.bind (Json.member name j) Json.to_int in
        let str name = Option.bind (Json.member name j) Json.to_str in
        let bad () =
          Error (Malformed (Printf.sprintf "bad %S frame: %s" op line))
        in
        match op with
        | "doc" -> (
            match (int "doc", int "attempt", str "text") with
            | Some doc, Some attempt, Some text ->
                Ok (Doc { doc; attempt; timeout_ms = int "timeout_ms"; text })
            | _ -> bad ())
        | "prepare" -> (
            match (int "gen", str "path") with
            | Some gen, Some path -> Ok (Prepare { gen; path })
            | _ -> bad ())
        | "commit" -> (
            match int "gen" with Some gen -> Ok (Commit { gen }) | None -> bad ())
        | "abort" -> (
            match int "gen" with Some gen -> Ok (Abort { gen }) | None -> bad ())
        | "shutdown" -> Ok Shutdown
        | _ -> Error (Malformed (Printf.sprintf "unknown frame op %S" op)))

  let reply_of_string line =
    match decode line with
    | Error e -> Error e
    | Ok (op, j) -> (
        let int name = Option.bind (Json.member name j) Json.to_int in
        let str name = Option.bind (Json.member name j) Json.to_str in
        let bad () =
          Error (Malformed (Printf.sprintf "bad %S frame: %s" op line))
        in
        match op with
        | "ready" -> (
            match (int "shard", int "gen") with
            | Some shard, Some gen -> Ok (Ready { shard; gen })
            | _ -> bad ())
        | "result" -> (
            match
              ( int "doc",
                int "gen",
                Option.bind (Json.member "out" j) outcome_of_json )
            with
            | Some doc, Some gen, Some outcome ->
                Ok (Result { doc; gen; outcome })
            | _ -> bad ())
        | "prepared" -> (
            match int "gen" with
            | Some gen -> Ok (Prepared { gen })
            | None -> bad ())
        | "prepare_failed" -> (
            match (int "gen", str "error") with
            | Some gen, Some error -> Ok (Prepare_failed { gen; error })
            | _ -> bad ())
        | "committed" -> (
            match int "gen" with
            | Some gen -> Ok (Committed { gen })
            | None -> bad ())
        | "aborted" -> (
            match int "gen" with
            | Some gen -> Ok (Aborted { gen })
            | None -> bad ())
        | "refused" -> (
            match str "error" with
            | Some error -> Ok (Refused { error })
            | None -> bad ())
        | "bye" -> (
            match (int "restarts", int "quarantined") with
            | Some restarts, Some quarantined ->
                Ok (Bye { restarts; quarantined })
            | _ -> bad ())
        | _ -> Error (Malformed (Printf.sprintf "unknown frame op %S" op)))
end
