module Fault = Faerie_util.Fault
module Json = Faerie_util.Json
module Score = Faerie_sim.Verify.Score

type request = { id : string option; text : string; timeout_ms : int option }

let parse_request ~ord line =
  match
    Fault.with_context ord (fun () ->
        Fault.site "serve_decode";
        Json.of_string line)
  with
  | exception Fault.Injected site ->
      Error (Printf.sprintf "injected fault at site %S" site)
  | Error e -> Error (Printf.sprintf "bad JSON: %s" e)
  | Ok j -> (
      match Option.bind (Json.member "text" j) Json.to_str with
      | None -> Error {|missing or non-string "text" field|}
      | Some text ->
          let id =
            match Json.member "id" j with
            | Some (Json.Str s) -> Some s
            | _ -> None
          in
          let timeout_ms = Option.bind (Json.member "timeout_ms" j) Json.to_int in
          Ok { id; text; timeout_ms })

let num i = Json.Num (float_of_int i)

let error_json ~ord msg =
  Json.to_string
    (Json.Obj
       [ ("doc", num ord); ("outcome", Json.Str "error"); ("error", Json.Str msg) ])

let score_json = function
  | Score.Similarity f -> Json.Num f
  | Score.Distance d -> num d

let match_json (m : Types.char_match) =
  Json.Obj
    [
      ("e", num m.Types.c_entity);
      ("s", num m.Types.c_start);
      ("l", num m.Types.c_len);
      ("score", score_json m.Types.c_score);
    ]

let response_json ~ord ~id ~gen (out : Parallel.outcome) =
  let matches ms = ("matches", Json.List (List.map match_json ms)) in
  let fields =
    [ ("doc", num ord) ]
    @ (match id with Some s -> [ ("id", Json.Str s) ] | None -> [])
    @ [
        ("gen", num gen);
        ("outcome", Json.Str (Outcome.class_name (Outcome.classify out)));
      ]
    @
    match out with
    | Outcome.Ok ms -> [ matches ms ]
    | Outcome.Degraded (ms, why) ->
        [
          ("degraded", Json.Str (Outcome.degradation_to_string why)); matches ms;
        ]
    | Outcome.Failed err ->
        [ ("error", Json.Str (Outcome.error_to_string err)) ]
  in
  Json.to_string (Json.Obj fields)

let summary_json ~reloads s =
  let base = Outcome.summary_to_json s in
  (* [summary_to_json] always ends in '}'; splice the reload count in. *)
  Printf.sprintf "%s,\"reloads\":%d}"
    (String.sub base 0 (String.length base - 1))
    reloads
