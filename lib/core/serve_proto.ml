module Fault = Faerie_util.Fault
module Json = Faerie_util.Json
module Budget = Faerie_util.Budget
module Score = Faerie_sim.Verify.Score
module Sim = Faerie_sim.Sim
module Trace = Faerie_obs.Trace
module Metrics = Faerie_obs.Metrics

let version = 1

type request = { id : string option; text : string; timeout_ms : int option }

type parse_error = Malformed of string | Version_mismatch of { got : int }

let parse_error_to_string = function
  | Malformed msg -> msg
  | Version_mismatch { got } ->
      Printf.sprintf "unsupported protocol version %d (supported: %d)" got
        version

let num i = Json.Num (float_of_int i)

(* A ["v"] field, when present, must match [version] exactly; requests
   without one are accepted for compatibility with pre-cluster clients. *)
let check_version j =
  match Json.member "v" j with
  | None -> Ok ()
  | Some v -> (
      match Json.to_int v with
      | Some got when got = version -> Ok ()
      | Some got -> Error (Version_mismatch { got })
      | None -> Error (Malformed {|non-integer "v" field|}))

let parse_request ~ord line =
  match
    Fault.with_context ord (fun () ->
        Fault.site "serve_decode";
        Json.of_string line)
  with
  | exception Fault.Injected site ->
      Error (Malformed (Printf.sprintf "injected fault at site %S" site))
  | Error e -> Error (Malformed (Printf.sprintf "bad JSON: %s" e))
  | Ok j -> (
      match check_version j with
      | Error e -> Error e
      | Ok () -> (
          match Option.bind (Json.member "text" j) Json.to_str with
          | None -> Error (Malformed {|missing or non-string "text" field|})
          | Some text ->
              let id =
                match Json.member "id" j with
                | Some (Json.Str s) -> Some s
                | _ -> None
              in
              let timeout_ms =
                Option.bind (Json.member "timeout_ms" j) Json.to_int
              in
              Ok { id; text; timeout_ms }))

let error_json ~ord err =
  let extra =
    match err with
    | Malformed _ -> []
    | Version_mismatch { got } -> [ ("got", num got); ("want", num version) ]
  in
  Json.to_string
    (Json.Obj
       ([
          ("doc", num ord);
          ("v", num version);
          ("outcome", Json.Str "error");
          ("error", Json.Str (parse_error_to_string err));
        ]
       @ extra))

let score_json = function
  | Score.Similarity f -> Json.Num f
  | Score.Distance d -> num d

let match_json (m : Types.char_match) =
  Json.Obj
    [
      ("e", num m.Types.c_entity);
      ("s", num m.Types.c_start);
      ("l", num m.Types.c_len);
      ("score", score_json m.Types.c_score);
    ]

let response_json ~ord ~id ~gen (out : Parallel.outcome) =
  let matches ms = ("matches", Json.List (List.map match_json ms)) in
  let fields =
    [ ("doc", num ord); ("v", num version) ]
    @ (match id with Some s -> [ ("id", Json.Str s) ] | None -> [])
    @ [
        ("gen", num gen);
        ("outcome", Json.Str (Outcome.class_name (Outcome.classify out)));
      ]
    @
    match out with
    | Outcome.Ok ms -> [ matches ms ]
    | Outcome.Degraded (ms, why) ->
        [
          ("degraded", Json.Str (Outcome.degradation_to_string why)); matches ms;
        ]
    | Outcome.Failed err ->
        [ ("error", Json.Str (Outcome.error_to_string err)) ]
  in
  Json.to_string (Json.Obj fields)

(* ---- structured outcome codec (cluster internal frames) ---- *)

(* The client-facing response renders scores/errors as display strings; the
   coordinator however must reconstruct the exact [Parallel.outcome] a shard
   produced, so these codecs tag every variant. A [Score.Similarity 2.0]
   and [Score.Distance 2] would be indistinguishable as a bare JSON
   number — hence the {"s":f} / {"d":n} tagging. *)

let score_to_json = function
  | Score.Similarity f -> Json.Obj [ ("s", Json.Num f) ]
  | Score.Distance d -> Json.Obj [ ("d", num d) ]

let score_of_json j =
  match (Json.member "s" j, Json.member "d" j) with
  | Some s, _ -> Option.map (fun f -> Score.Similarity f) (Json.to_num s)
  | _, Some d -> Option.map (fun n -> Score.Distance n) (Json.to_int d)
  | None, None -> None

let match_to_json (m : Types.char_match) =
  Json.Obj
    [
      ("e", num m.Types.c_entity);
      ("s", num m.Types.c_start);
      ("l", num m.Types.c_len);
      ("score", score_to_json m.Types.c_score);
    ]

let match_of_json j =
  let int name = Option.bind (Json.member name j) Json.to_int in
  match
    (int "e", int "s", int "l", Option.bind (Json.member "score" j) score_of_json)
  with
  | Some e, Some s, Some l, Some score ->
      Some
        { Types.c_entity = e; c_start = s; c_len = l; c_score = score }
  | _ -> None

let exhaustion_to_tag = function
  | Budget.Deadline -> "deadline"
  | Budget.Bytes -> "bytes"
  | Budget.Candidates -> "candidates"

let exhaustion_of_tag = function
  | "deadline" -> Some Budget.Deadline
  | "bytes" -> Some Budget.Bytes
  | "candidates" -> Some Budget.Candidates
  | _ -> None

let shed_cause_to_tag = function
  | Outcome.Deadline_expired -> "deadline"
  | Outcome.Queue_full -> "queue"
  | Outcome.Shutdown -> "shutdown"

let shed_cause_of_tag = function
  | "deadline" -> Some Outcome.Deadline_expired
  | "queue" -> Some Outcome.Queue_full
  | "shutdown" -> Some Outcome.Shutdown
  | _ -> None

let rec error_to_json (e : Outcome.error) =
  let tag t rest = Json.Obj (("t", Json.Str t) :: rest) in
  match e with
  | Outcome.Doc_too_large { bytes; limit } ->
      tag "doc_too_large" [ ("bytes", num bytes); ("limit", num limit) ]
  | Outcome.Budget_exhausted x ->
      tag "budget" [ ("which", Json.Str (exhaustion_to_tag x)) ]
  | Outcome.Tokenize_error msg -> tag "tokenize" [ ("msg", Json.Str msg) ]
  | Outcome.Corrupt_index msg -> tag "corrupt_index" [ ("msg", Json.Str msg) ]
  | Outcome.Injected_fault site -> tag "injected" [ ("site", Json.Str site) ]
  | Outcome.Worker_crash { exn_name; message; backtrace } ->
      tag "crash"
        [
          ("exn", Json.Str exn_name);
          ("msg", Json.Str message);
          ("bt", Json.Str backtrace);
        ]
  | Outcome.Shed cause ->
      tag "shed" [ ("cause", Json.Str (shed_cause_to_tag cause)) ]
  | Outcome.Quarantined { attempts; last } ->
      tag "quarantined" [ ("attempts", num attempts); ("last", error_to_json last) ]

let rec error_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_str in
  let int name = Option.bind (Json.member name j) Json.to_int in
  match str "t" with
  | Some "doc_too_large" -> (
      match (int "bytes", int "limit") with
      | Some bytes, Some limit -> Some (Outcome.Doc_too_large { bytes; limit })
      | _ -> None)
  | Some "budget" ->
      Option.map
        (fun x -> Outcome.Budget_exhausted x)
        (Option.bind (str "which") exhaustion_of_tag)
  | Some "tokenize" -> Option.map (fun m -> Outcome.Tokenize_error m) (str "msg")
  | Some "corrupt_index" ->
      Option.map (fun m -> Outcome.Corrupt_index m) (str "msg")
  | Some "injected" -> Option.map (fun s -> Outcome.Injected_fault s) (str "site")
  | Some "crash" -> (
      match (str "exn", str "msg") with
      | Some exn_name, Some message ->
          Some
            (Outcome.Worker_crash
               {
                 exn_name;
                 message;
                 backtrace = Option.value (str "bt") ~default:"";
               })
      | _ -> None)
  | Some "shed" ->
      Option.map
        (fun c -> Outcome.Shed c)
        (Option.bind (str "cause") shed_cause_of_tag)
  | Some "quarantined" -> (
      match (int "attempts", Option.bind (Json.member "last" j) error_of_json)
      with
      | Some attempts, Some last ->
          Some (Outcome.Quarantined { attempts; last })
      | _ -> None)
  | _ -> None

let degradation_to_json (d : Outcome.degradation) =
  let tag t rest = Json.Obj (("t", Json.Str t) :: rest) in
  match d with
  | Outcome.Oversize_chunked { bytes; limit } ->
      tag "oversize" [ ("bytes", num bytes); ("limit", num limit) ]
  | Outcome.Partial x ->
      tag "partial" [ ("which", Json.Str (exhaustion_to_tag x)) ]
  | Outcome.Shard_partial { n_shards; missing } ->
      tag "shard_partial"
        [ ("shards", num n_shards); ("missing", Json.List (List.map num missing)) ]

let degradation_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_str in
  let int name = Option.bind (Json.member name j) Json.to_int in
  match str "t" with
  | Some "oversize" -> (
      match (int "bytes", int "limit") with
      | Some bytes, Some limit ->
          Some (Outcome.Oversize_chunked { bytes; limit })
      | _ -> None)
  | Some "partial" ->
      Option.map
        (fun x -> Outcome.Partial x)
        (Option.bind (str "which") exhaustion_of_tag)
  | Some "shard_partial" -> (
      match (int "shards", Json.member "missing" j) with
      | Some n_shards, Some (Json.List ms) ->
          let missing = List.filter_map Json.to_int ms in
          if List.length missing = List.length ms then
            Some (Outcome.Shard_partial { n_shards; missing })
          else None
      | _ -> None)
  | _ -> None

let all_some xs =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Some x :: rest -> go (x :: acc) rest
    | None :: _ -> None
  in
  go [] xs

let outcome_to_json (o : Parallel.outcome) =
  let matches ms = ("matches", Json.List (List.map match_to_json ms)) in
  match o with
  | Outcome.Ok ms -> Json.Obj [ ("cls", Json.Str "ok"); matches ms ]
  | Outcome.Degraded (ms, why) ->
      Json.Obj
        [
          ("cls", Json.Str "degraded");
          ("why", degradation_to_json why);
          matches ms;
        ]
  | Outcome.Failed err ->
      Json.Obj [ ("cls", Json.Str "failed"); ("error", error_to_json err) ]

let outcome_of_json j : Parallel.outcome option =
  let matches () =
    match Json.member "matches" j with
    | Some (Json.List ms) -> all_some (List.map match_of_json ms)
    | _ -> None
  in
  match Option.bind (Json.member "cls" j) Json.to_str with
  | Some "ok" -> Option.map (fun ms -> Outcome.Ok ms) (matches ())
  | Some "degraded" -> (
      match (matches (), Option.bind (Json.member "why" j) degradation_of_json)
      with
      | Some ms, Some why -> Some (Outcome.Degraded (ms, why))
      | _ -> None)
  | Some "failed" ->
      Option.map
        (fun e -> Outcome.Failed e)
        (Option.bind (Json.member "error" j) error_of_json)
  | _ -> None

(* ---- metrics snapshot codec ---- *)

(* Two renderings of a snapshot. The {e wire} form ([snapshot_to_json] /
   [snapshot_of_json]) is full fidelity — gauge agg modes and labels ride
   along so the coordinator can [Metrics.merge_snapshots] shard snapshots
   without access to the shards' registries. The {e display} form
   ([snapshot_json]) keys plain name→value objects for the admin plane and
   the stderr summary, where [jq '.metrics.counters.X'] must work. *)

let snapshot_to_json (s : Metrics.snapshot) =
  let counters = List.map (fun (n, v) -> (n, num v)) s.Metrics.counters in
  let gauge (n, (g : Metrics.gauge_snapshot)) =
    let fields =
      [
        ("v", Json.Num g.value);
        ("agg", Json.Str (match g.agg with `Sum -> "sum" | `Max -> "max"));
      ]
      @
      match g.label with
      | None -> []
      | Some (family, key, value) ->
          [
            ( "label",
              Json.List [ Json.Str family; Json.Str key; Json.Str value ] );
          ]
    in
    (n, Json.Obj fields)
  in
  let hist (n, (h : Metrics.histogram_snapshot)) =
    ( n,
      Json.Obj
        ([
           ( "upper",
             Json.List (Array.to_list (Array.map (fun f -> Json.Num f) h.upper))
           );
           ("counts", Json.List (Array.to_list (Array.map num h.counts)));
           ("sum", Json.Num h.sum);
           ("count", num h.count);
         ]
        @
        (* absent (not null) when no exemplar: histograms without traced
           observations keep the pre-exemplar frame bytes, which fault
           schedules hash *)
        match h.exemplars with
        | [||] -> []
        | ex ->
            [
              ( "ex",
                Json.List
                  (Array.to_list
                     (Array.map
                        (fun (t, v) ->
                          Json.List [ num t; Json.Num v ])
                        ex)) );
            ]) )
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj (List.map gauge s.Metrics.gauges));
      ("histograms", Json.Obj (List.map hist s.Metrics.histograms));
    ]

let snapshot_of_json j : Metrics.snapshot option =
  let section name =
    match Json.member name j with Some (Json.Obj kvs) -> Some kvs | _ -> None
  in
  let counter (n, v) = Option.map (fun i -> (n, i)) (Json.to_int v) in
  let gauge (n, gj) =
    let value = Option.bind (Json.member "v" gj) Json.to_num in
    let agg =
      match Option.bind (Json.member "agg" gj) Json.to_str with
      | Some "sum" -> Some `Sum
      | Some "max" -> Some `Max
      | _ -> None
    in
    let label =
      match Json.member "label" gj with
      | None -> Some None
      | Some (Json.List [ Json.Str f; Json.Str k; Json.Str v ]) ->
          Some (Some (f, k, v))
      | Some _ -> None
    in
    match (value, agg, label) with
    | Some value, Some agg, Some label ->
        Some (n, { Metrics.value; agg; label })
    | _ -> None
  in
  let hist (n, hj) =
    let floats name =
      match Json.member name hj with
      | Some (Json.List l) ->
          Option.map Array.of_list (all_some (List.map Json.to_num l))
      | _ -> None
    in
    let ints name =
      match Json.member name hj with
      | Some (Json.List l) ->
          Option.map Array.of_list (all_some (List.map Json.to_int l))
      | _ -> None
    in
    let exemplars =
      match Json.member "ex" hj with
      | None -> Some [||]
      | Some (Json.List cells) ->
          Option.map Array.of_list
            (all_some
               (List.map
                  (function
                    | Json.List [ t; v ] -> (
                        match (Json.to_int t, Json.to_num v) with
                        | Some t, Some v -> Some (t, v)
                        | _ -> None)
                    | _ -> None)
                  cells))
      | Some _ -> None
    in
    match
      ( floats "upper",
        ints "counts",
        Option.bind (Json.member "sum" hj) Json.to_num,
        Option.bind (Json.member "count" hj) Json.to_int,
        exemplars )
    with
    | Some upper, Some counts, Some sum, Some count, Some exemplars ->
        Some (n, { Metrics.upper; counts; sum; count; exemplars })
    | _ -> None
  in
  match (section "counters", section "gauges", section "histograms") with
  | Some cs, Some gs, Some hs -> (
      match
        ( all_some (List.map counter cs),
          all_some (List.map gauge gs),
          all_some (List.map hist hs) )
      with
      | Some counters, Some gauges, Some histograms ->
          Some { Metrics.counters; gauges; histograms }
      | _ -> None)
  | _ -> None

let snapshot_json (s : Metrics.snapshot) =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, num v)) s.Metrics.counters) );
      ( "gauges",
        Json.Obj
          (List.map
             (fun (n, (g : Metrics.gauge_snapshot)) -> (n, Json.Num g.value))
             s.Metrics.gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, (h : Metrics.histogram_snapshot)) ->
               ( n,
                 Json.Obj
                   ([
                      ( "upper",
                        Json.List
                          (Array.to_list
                             (Array.map (fun f -> Json.Num f) h.upper)) );
                      ( "counts",
                        Json.List (Array.to_list (Array.map num h.counts)) );
                      ("sum", Json.Num h.sum);
                      ("count", num h.count);
                    ]
                   @
                   (* jq-friendly: .histograms.doc_wall_ns.exemplars[]
                      links a bucket to the trace id of its slowest
                      observation; absent when none *)
                   let cells = ref [] in
                   Array.iteri
                     (fun i (t, v) ->
                       if t <> 0 then
                         cells :=
                           Json.Obj
                             [
                               ("i", num i); ("trace", num t); ("value", Json.Num v);
                             ]
                           :: !cells)
                     h.exemplars;
                   match List.rev !cells with
                   | [] -> []
                   | cells -> [ ("exemplars", Json.List cells) ]) ))
             s.Metrics.histograms) );
    ]

(* ---- serve stderr summaries ---- *)

let metrics_suffix = function
  | None -> ""
  | Some m ->
      Printf.sprintf ",\"metrics\":%s" (Json.to_string (snapshot_json m))

(* [slo], when given, is a pre-rendered JSON object (Slo.to_json output —
   lib/obs renders its own JSON, this layer just splices it). *)
let slo_suffix = function
  | None -> ""
  | Some slo -> Printf.sprintf ",\"slo\":%s" slo

let summary_json ?metrics ?slo ~reloads s =
  let base = Outcome.summary_to_json s in
  (* [summary_to_json] always ends in '}'; splice the reload count in. *)
  Printf.sprintf "%s,\"reloads\":%d%s%s}"
    (String.sub base 0 (String.length base - 1))
    reloads (slo_suffix slo) (metrics_suffix metrics)

let cluster_summary_json ?metrics ?slo ~reloads ~shards ~shard_restarts
    ~shard_timeouts ~docs_partial ~quarantined_pairs s =
  let base = Outcome.summary_to_json s in
  Printf.sprintf
    "%s,\"reloads\":%d,\"shards\":%d,\"shard_restarts\":%d,\"shard_timeouts\":%d,\"docs_partial\":%d,\"quarantined_pairs\":%d%s%s}"
    (String.sub base 0 (String.length base - 1))
    reloads shards shard_restarts shard_timeouts docs_partial quarantined_pairs
    (slo_suffix slo) (metrics_suffix metrics)

(* ---- trace span codec (cluster internal frames) ---- *)

(* Nanosecond timestamps (~1.7e18 for a wall clock) exceed the 2^53
   integer range of an IEEE double, so int64 fields travel as JSON
   strings — a [Json.Num] round-trip would silently round them. *)

let span_to_json (s : Trace.span) =
  Json.Obj
    [
      ("n", Json.Str s.Trace.name);
      ("t0", Json.Str (Int64.to_string s.Trace.start_ns));
      ("dur", Json.Str (Int64.to_string s.Trace.dur_ns));
      ("d", num s.Trace.depth);
      ("dom", num s.Trace.domain);
      ("tr", num s.Trace.trace);
      ("ok", Json.Bool s.Trace.ok);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.Trace.attrs));
    ]

let span_of_json j : Trace.span option =
  let i64 name =
    match Json.member name j with
    | Some (Json.Str s) -> Int64.of_string_opt s
    | _ -> None
  in
  let int name = Option.bind (Json.member name j) Json.to_int in
  let attrs =
    match Json.member "attrs" j with
    | Some (Json.Obj kvs) ->
        all_some
          (List.map
             (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
             kvs)
    | _ -> None
  in
  match
    ( Option.bind (Json.member "n" j) Json.to_str,
      i64 "t0",
      i64 "dur",
      int "d",
      int "dom",
      int "tr",
      Option.bind (Json.member "ok" j) Json.to_bool,
      attrs )
  with
  | Some name, Some start_ns, Some dur_ns, Some depth, Some domain, Some trace,
    Some ok, Some attrs ->
      Some { Trace.name; start_ns; dur_ns; depth; domain; trace; ok; attrs }
  | _ -> None

(* ---- admin plane ---- *)

type admin =
  | Stats
  | Health
  | Slowlog_dump
  | Dict_add of string
  | Dict_remove of string
  | Compact

(* Admin lines share the request NDJSON stream; [parse_admin] peeks at the
   line before {!parse_request} runs. [None] means "not an admin line" —
   hand it to the request parser (which owns the fault-injection site and
   the doc ordinal, so admin probing never perturbs fault schedules). *)
let parse_admin line =
  match Json.of_string line with
  | Error _ -> None
  | Ok j -> (
      match Option.bind (Json.member "op" j) Json.to_str with
      | None -> None
      | Some op -> (
          match check_version j with
          | Error e -> Some (Error e)
          | Ok () -> (
              match op with
              | "stats" -> Some (Ok Stats)
              | "health" -> Some (Ok Health)
              | "slowlog" -> Some (Ok Slowlog_dump)
              | "compact" -> Some (Ok Compact)
              | "dict_add" | "dict_remove" -> (
                  match Option.bind (Json.member "entity" j) Json.to_str with
                  | Some raw ->
                      Some
                        (Ok
                           (if op = "dict_add" then Dict_add raw
                            else Dict_remove raw))
                  | None ->
                      Some
                        (Error
                           (Malformed
                              (Printf.sprintf
                                 "%s: missing string field \"entity\"" op))))
              | _ ->
                  Some
                    (Error
                       (Malformed (Printf.sprintf "unknown admin op %S" op))))))

let stats_response_json ?(missing = []) ~format snap =
  let fields =
    [ ("v", num version); ("op", Json.Str "stats") ]
    @ (match missing with
      | [] -> []
      | ms ->
          [
            ("partial", Json.Bool true);
            ("missing_shards", Json.List (List.map num ms));
          ])
    @
    match format with
    | `Jsonl -> [ ("metrics", snapshot_json snap) ]
    | `Prometheus ->
        [ ("prometheus", Json.Str (Metrics.render_prometheus snap)) ]
  in
  Json.to_string (Json.Obj fields)

type shard_health = {
  h_shard : int;
  h_up : bool;
  h_gen : int;
  h_restarts : int;
  h_queue_depth : int;
  h_delta : int;  (* pending overlay mutations (delta_entities) *)
  h_compact_age_s : float option;
      (* seconds since the serving snapshot was last folded (start or
         last compaction); None when the serving process predates the
         mutation subsystem or the shard is down *)
}

(* [slo] is a pre-rendered JSON object (Slo.to_json); [uptime_s] /
   [max_rss_bytes] describe the serving process (rss is the max across
   the process and the last merged shard snapshot in cluster mode). *)
let health_response_json ?uptime_s ?max_rss_bytes ?slo ~status shards =
  let base =
    Json.to_string
      (Json.Obj
         ([
            ("v", num version);
            ("op", Json.Str "health");
            ("status", Json.Str status);
            ( "shards",
              Json.List
                (List.map
                   (fun h ->
                     Json.Obj
                       ([
                          ("shard", num h.h_shard);
                          ("up", Json.Bool h.h_up);
                          ("gen", num h.h_gen);
                          ("restarts", num h.h_restarts);
                          ("queue_depth", num h.h_queue_depth);
                          (* append-only past this point (locked prefix) *)
                          ("delta", num h.h_delta);
                        ]
                       @
                       match h.h_compact_age_s with
                       | Some a -> [ ("compact_age_s", Json.Num a) ]
                       | None -> []))
                   shards) );
          ]
         @ (match uptime_s with
           | Some u -> [ ("uptime_s", Json.Num u) ]
           | None -> [])
         @
         match max_rss_bytes with
         | Some r -> [ ("max_rss_bytes", Json.Num r) ]
         | None -> []))
  in
  match slo with
  | None -> base
  | Some slo ->
      Printf.sprintf "%s,\"slo\":%s}"
        (String.sub base 0 (String.length base - 1))
        slo

(* [records] are pre-rendered Slowrec lines (each a complete JSON
   object), slowest first; [total] counts captures since arming,
   including entries since evicted from the ring. *)
let slowlog_response_json ~total records =
  Printf.sprintf "{\"v\":%d,\"op\":\"slowlog\",\"total\":%d,\"records\":[%s]}"
    version total
    (String.concat "," records)

(* ---- dictionary-mutation admin responses ---- *)

(* [applied] distinguishes a mutation that changed the dictionary from an
   idempotent no-op (adding a live raw, removing an absent one) — WAL
   replay after a crash leans on that distinction. [entity] is the id the
   mutation resolved to (-1 when none, e.g. removing an absent raw);
   [entities] is the live count after the op; [gen] names the serving
   snapshot generation the overlay rides on. *)
let dict_response_json ~op ~applied ~entity ~entities ~gen =
  Json.to_string
    (Json.Obj
       [
         ("v", num version);
         ("op", Json.Str op);
         ("outcome", Json.Str "ok");
         ("applied", Json.Bool applied);
         ("entity", num entity);
         ("entities", num entities);
         ("gen", num gen);
       ])

let compact_response_json ~gen ~folded ~entities =
  Json.to_string
    (Json.Obj
       [
         ("v", num version);
         ("op", Json.Str "compact");
         ("outcome", Json.Str "ok");
         ("gen", num gen);
         ("folded", num folded);
         ("entities", num entities);
       ])

(* Admin-op failure (WAL append rejected, compaction aborted, mutations
   not armed): the op echoes back with an error, the dictionary is
   untouched. *)
let admin_error_json ~op error =
  Json.to_string
    (Json.Obj
       [
         ("v", num version);
         ("op", Json.Str op);
         ("outcome", Json.Str "error");
         ("error", Json.Str error);
       ])

(* ---- slowlog records ---- *)

(* A slowlog record is a self-contained repro in the Quarantine record
   tradition: everything needed to re-run the document — text, spec,
   opts, fault campaign, fault key — plus the observation that made it
   interesting (wall time, outcome class, per-stage breakdown, trace
   id). The ["kind":"slowlog"] discriminator lets [fuzz --replay]
   dispatch: quarantine records reproduce iff the document fails again,
   slowlog records reproduce iff the outcome {e class} matches (most
   slow requests succeeded — that's the point). *)
module Slowrec = struct
  type t = {
    doc_id : int;
        (* the fault-context key the run used: the serve ordinal in
           single mode, the shard-salted key in cluster mode *)
    id : string option;
    trace : int;  (* sampling trace id; 0 = unsampled *)
    gen : int;  (* snapshot generation that served the request *)
    wall_ms : float;
    outcome : string;  (* Outcome.class_name: ok | degraded | failed *)
    stages_ms : (string * float) list;
        (* per-stage wall breakdown; [] when the stage brackets were not
           armed in the serving process (e.g. a coordinator-side record
           for an unsampled cluster request) *)
    sim : Sim.t;
    q : int;
    pruning : Types.pruning;
    budget : Budget.spec;
    fault : Fault.config option;
    text : string;
  }

  let opt_num = function Some i -> num i | None -> Json.Null

  let to_json r =
    Json.to_string
      (Json.Obj
         ([
            ("kind", Json.Str "slowlog");
            ("doc", num r.doc_id);
            ("id", match r.id with Some s -> Json.Str s | None -> Json.Null);
            ("trace", num r.trace);
            ("gen", num r.gen);
            ("wall_ms", Json.Num r.wall_ms);
            ("outcome", Json.Str r.outcome);
            ( "stages_ms",
              Json.Obj (List.map (fun (n, v) -> (n, Json.Num v)) r.stages_ms) );
            ("sim", Json.Str (Sim.to_spec r.sim));
            ("q", num r.q);
            ("pruning", Json.Str (Types.pruning_name r.pruning));
            ( "budget",
              Json.Obj
                [
                  ("timeout_ms", opt_num r.budget.Budget.timeout_ms);
                  ("max_bytes", opt_num r.budget.Budget.max_bytes);
                  ("max_candidates", opt_num r.budget.Budget.max_candidates);
                ] );
            ( "fault",
              match r.fault with
              | None -> Json.Null
              | Some { Fault.seed; rates } ->
                  Json.Obj
                    [
                      ("seed", num seed);
                      ( "rates",
                        Json.Obj
                          (List.map (fun (s, p) -> (s, Json.Num p)) rates) );
                    ] );
            ("text", Json.Str r.text);
          ]))

  let of_json line =
    match Json.of_string line with
    | Error e -> Error e
    | Ok j -> (
        let field name conv =
          match Option.bind (Json.member name j) conv with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "missing or bad field %S" name)
        in
        let ( let* ) = Result.bind in
        let* kind = field "kind" Json.to_str in
        if kind <> "slowlog" then
          Error (Printf.sprintf "not a slowlog record (kind %S)" kind)
        else
          let* doc_id = field "doc" Json.to_int in
          let id =
            match Json.member "id" j with Some (Json.Str s) -> Some s | _ -> None
          in
          let* trace = field "trace" Json.to_int in
          let* gen = field "gen" Json.to_int in
          let* wall_ms = field "wall_ms" Json.to_num in
          let* outcome = field "outcome" Json.to_str in
          let stages_ms =
            match Json.member "stages_ms" j with
            | Some (Json.Obj kvs) ->
                List.filter_map
                  (fun (n, v) -> Option.map (fun f -> (n, f)) (Json.to_num v))
                  kvs
            | _ -> []
          in
          let* sim_spec = field "sim" Json.to_str in
          let* sim = Sim.of_spec sim_spec in
          let* q = field "q" Json.to_int in
          let* pruning_name = field "pruning" Json.to_str in
          let* pruning =
            match
              List.find_opt
                (fun p -> Types.pruning_name p = pruning_name)
                Types.all_prunings
            with
            | Some p -> Ok p
            | None -> Error (Printf.sprintf "unknown pruning %S" pruning_name)
          in
          let opt_int obj name = Option.bind (Json.member name obj) Json.to_int in
          let budget =
            match Json.member "budget" j with
            | Some (Json.Obj _ as b) ->
                {
                  Budget.timeout_ms = opt_int b "timeout_ms";
                  max_bytes = opt_int b "max_bytes";
                  max_candidates = opt_int b "max_candidates";
                }
            | _ -> Budget.spec_unlimited
          in
          let fault =
            match Json.member "fault" j with
            | Some (Json.Obj _ as f) ->
                Option.map
                  (fun seed ->
                    let rates =
                      match Json.member "rates" f with
                      | Some (Json.Obj kvs) ->
                          List.filter_map
                            (fun (site, v) ->
                              Option.map (fun p -> (site, p)) (Json.to_num v))
                            kvs
                      | _ -> []
                    in
                    { Fault.seed; rates })
                  (opt_int f "seed")
            | _ -> None
          in
          let* text = field "text" Json.to_str in
          Ok
            {
              doc_id; id; trace; gen; wall_ms; outcome; stages_ms; sim; q;
              pruning; budget; fault; text;
            })
end

(* ---- length-prefixed frames ---- *)

module Frame = struct
  let max_len = 1 lsl 26

  let rec write_all fd buf off len =
    if len > 0 then
      match Unix.write fd buf off len with
      | n -> write_all fd buf (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf off len

  let write fd payload =
    let n = String.length payload in
    if n > max_len then
      invalid_arg (Printf.sprintf "Serve_proto.Frame.write: %d-byte frame" n);
    let buf = Bytes.create (4 + n) in
    Bytes.set_int32_be buf 0 (Int32.of_int n);
    Bytes.blit_string payload 0 buf 4 n;
    write_all fd buf 0 (4 + n)

  type reader = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

  let reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536 }

  let reader_fd r = r.fd

  (* Extract one complete frame from the buffered bytes, if present. *)
  let take r =
    let b = Buffer.contents r.buf in
    if String.length b < 4 then None
    else
      let len = Int32.to_int (String.get_int32_be b 0) in
      if len < 0 || len > max_len then Some (Error len)
      else if String.length b < 4 + len then None
      else begin
        let payload = String.sub b 4 len in
        Buffer.clear r.buf;
        Buffer.add_substring r.buf b (4 + len) (String.length b - 4 - len);
        Some (Ok payload)
      end

  let read ?deadline_ns r =
    let rec loop () =
      match take r with
      | Some (Ok payload) -> `Frame payload
      | Some (Error len) ->
          `Corrupt (Printf.sprintf "bad frame length %d" len)
      | None -> (
          let timeout =
            match deadline_ns with
            | None -> -1.
            | Some d ->
                Int64.to_float (Int64.sub d (Trace.now_ns ())) /. 1e9
          in
          if deadline_ns <> None && timeout <= 0. then `Timeout
          else
            match Unix.select [ r.fd ] [] [] timeout with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
            | [], _, _ -> if deadline_ns = None then loop () else `Timeout
            | _ -> (
                match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
                | 0 -> `Eof
                | n ->
                    Buffer.add_subbytes r.buf r.chunk 0 n;
                    loop ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
                | exception
                    Unix.Unix_error
                      ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                    `Eof))
    in
    loop ()
end

(* ---- coordinator <-> shard messages ---- *)

module Shard = struct
  type msg =
    | Doc of {
        doc : int;
        attempt : int;
        timeout_ms : int option;
        text : string;
        trace : (int * int) option;
            (* (trace id, absolute depth) the shard's subtree records
               under; [None] when tracing is off, so doc frames — and the
               fault schedules keyed off their bytes — are unchanged. *)
      }
    | Prepare of { gen : int; path : string }
    | Commit of { gen : int }
    | Abort of { gen : int }
    | Dict_add of { raw : string }
    | Dict_remove of { raw : string }
    | Stats_req
    | Shutdown

  type reply =
    | Ready of { shard : int; gen : int; now_ns : int64 }
    | Result of {
        doc : int;
        gen : int;
        outcome : Parallel.outcome;
        spans : Trace.span list;
        stages : (string * float) list;
            (* per-stage wall breakdown (name, ns) from the shard's
               slowlog stage brackets; [] when stage timing is off, so
               result frame bytes — and the fault schedules keyed off
               them — are unchanged. *)
      }
    | Prepared of { gen : int }
    | Prepare_failed of { gen : int; error : string }
    | Committed of { gen : int }
    | Aborted of { gen : int }
    | Refused of { error : string }
    | Mutated of { gen : int; entity : int; applied : bool }
        (* outcome of a Dict_add/Dict_remove: [entity] is the shard-local
           id the mutation resolved to (-1 when none), [applied] false for
           idempotent no-ops *)
    | Stats_reply of { shard : int; snapshot : Metrics.snapshot }
    | Bye of { restarts : int; quarantined : int }

  let obj op fields = Json.Obj (("v", num version) :: ("op", Json.Str op) :: fields)

  let msg_to_string m =
    Json.to_string
      (match m with
      | Doc { doc; attempt; timeout_ms; text; trace } ->
          obj "doc"
            ([ ("doc", num doc); ("attempt", num attempt) ]
            @ (match timeout_ms with
              | Some t -> [ ("timeout_ms", num t) ]
              | None -> [])
            @ (match trace with
              | Some (tid, depth) ->
                  [ ("trace", num tid); ("tdepth", num depth) ]
              | None -> [])
            @ [ ("text", Json.Str text) ])
      | Prepare { gen; path } ->
          obj "prepare" [ ("gen", num gen); ("path", Json.Str path) ]
      | Commit { gen } -> obj "commit" [ ("gen", num gen) ]
      | Abort { gen } -> obj "abort" [ ("gen", num gen) ]
      | Dict_add { raw } -> obj "dict_add" [ ("entity", Json.Str raw) ]
      | Dict_remove { raw } -> obj "dict_remove" [ ("entity", Json.Str raw) ]
      | Stats_req -> obj "stats" []
      | Shutdown -> obj "shutdown" [])

  let reply_to_string r =
    Json.to_string
      (match r with
      | Ready { shard; gen; now_ns } ->
          obj "ready"
            [
              ("shard", num shard);
              ("gen", num gen);
              ("now", Json.Str (Int64.to_string now_ns));
            ]
      | Result { doc; gen; outcome; spans; stages } ->
          obj "result"
            ([ ("doc", num doc); ("gen", num gen) ]
            @ (match spans with
              | [] -> []
              | _ -> [ ("spans", Json.List (List.map span_to_json spans)) ])
            @ (match stages with
              | [] -> []
              | _ ->
                  [
                    ( "stages",
                      Json.Obj
                        (List.map (fun (n, v) -> (n, Json.Num v)) stages) );
                  ])
            @ [ ("out", outcome_to_json outcome) ])
      | Prepared { gen } -> obj "prepared" [ ("gen", num gen) ]
      | Prepare_failed { gen; error } ->
          obj "prepare_failed" [ ("gen", num gen); ("error", Json.Str error) ]
      | Committed { gen } -> obj "committed" [ ("gen", num gen) ]
      | Aborted { gen } -> obj "aborted" [ ("gen", num gen) ]
      | Refused { error } -> obj "refused" [ ("error", Json.Str error) ]
      | Mutated { gen; entity; applied } ->
          obj "mutated"
            [
              ("gen", num gen);
              ("entity", num entity);
              ("applied", Json.Bool applied);
            ]
      | Stats_reply { shard; snapshot } ->
          obj "stats"
            [ ("shard", num shard); ("snapshot", snapshot_to_json snapshot) ]
      | Bye { restarts; quarantined } ->
          obj "bye" [ ("restarts", num restarts); ("quarantined", num quarantined) ])

  let decode line =
    match Json.of_string line with
    | Error e -> Error (Malformed (Printf.sprintf "bad frame JSON: %s" e))
    | Ok j -> (
        (* Frames always carry ["v"]: a missing field is a framing bug, not
           an old client, so unlike requests it is rejected. *)
        match Option.bind (Json.member "v" j) Json.to_int with
        | None -> Error (Malformed {|frame without integer "v" field|})
        | Some got when got <> version -> Error (Version_mismatch { got })
        | Some _ -> (
            match Option.bind (Json.member "op" j) Json.to_str with
            | None -> Error (Malformed {|frame without "op" field|})
            | Some op -> Ok (op, j)))

  let msg_of_string line =
    match decode line with
    | Error e -> Error e
    | Ok (op, j) -> (
        let int name = Option.bind (Json.member name j) Json.to_int in
        let str name = Option.bind (Json.member name j) Json.to_str in
        let bad () =
          Error (Malformed (Printf.sprintf "bad %S frame: %s" op line))
        in
        match op with
        | "doc" -> (
            match (int "doc", int "attempt", str "text") with
            | Some doc, Some attempt, Some text ->
                let trace =
                  match (int "trace", int "tdepth") with
                  | Some tid, Some depth -> Some (tid, depth)
                  | _ -> None
                in
                Ok
                  (Doc
                     { doc; attempt; timeout_ms = int "timeout_ms"; text; trace })
            | _ -> bad ())
        | "prepare" -> (
            match (int "gen", str "path") with
            | Some gen, Some path -> Ok (Prepare { gen; path })
            | _ -> bad ())
        | "commit" -> (
            match int "gen" with Some gen -> Ok (Commit { gen }) | None -> bad ())
        | "abort" -> (
            match int "gen" with Some gen -> Ok (Abort { gen }) | None -> bad ())
        | "dict_add" -> (
            match str "entity" with
            | Some raw -> Ok (Dict_add { raw })
            | None -> bad ())
        | "dict_remove" -> (
            match str "entity" with
            | Some raw -> Ok (Dict_remove { raw })
            | None -> bad ())
        | "stats" -> Ok Stats_req
        | "shutdown" -> Ok Shutdown
        | _ -> Error (Malformed (Printf.sprintf "unknown frame op %S" op)))

  let reply_of_string line =
    match decode line with
    | Error e -> Error e
    | Ok (op, j) -> (
        let int name = Option.bind (Json.member name j) Json.to_int in
        let str name = Option.bind (Json.member name j) Json.to_str in
        let bad () =
          Error (Malformed (Printf.sprintf "bad %S frame: %s" op line))
        in
        match op with
        | "ready" -> (
            let now =
              match Json.member "now" j with
              | Some (Json.Str s) -> Int64.of_string_opt s
              | _ -> None
            in
            match (int "shard", int "gen", now) with
            | Some shard, Some gen, Some now_ns ->
                Ok (Ready { shard; gen; now_ns })
            | _ -> bad ())
        | "result" -> (
            let spans =
              match Json.member "spans" j with
              | None -> Some []
              | Some (Json.List ss) -> all_some (List.map span_of_json ss)
              | Some _ -> None
            in
            let stages =
              match Json.member "stages" j with
              | Some (Json.Obj kvs) ->
                  List.filter_map
                    (fun (n, v) ->
                      Option.map (fun f -> (n, f)) (Json.to_num v))
                    kvs
              | _ -> []
            in
            match
              ( int "doc",
                int "gen",
                spans,
                Option.bind (Json.member "out" j) outcome_of_json )
            with
            | Some doc, Some gen, Some spans, Some outcome ->
                Ok (Result { doc; gen; outcome; spans; stages })
            | _ -> bad ())
        | "prepared" -> (
            match int "gen" with
            | Some gen -> Ok (Prepared { gen })
            | None -> bad ())
        | "prepare_failed" -> (
            match (int "gen", str "error") with
            | Some gen, Some error -> Ok (Prepare_failed { gen; error })
            | _ -> bad ())
        | "committed" -> (
            match int "gen" with
            | Some gen -> Ok (Committed { gen })
            | None -> bad ())
        | "aborted" -> (
            match int "gen" with
            | Some gen -> Ok (Aborted { gen })
            | None -> bad ())
        | "refused" -> (
            match str "error" with
            | Some error -> Ok (Refused { error })
            | None -> bad ())
        | "mutated" -> (
            match
              ( int "gen",
                int "entity",
                Option.bind (Json.member "applied" j) Json.to_bool )
            with
            | Some gen, Some entity, Some applied ->
                Ok (Mutated { gen; entity; applied })
            | _ -> bad ())
        | "stats" -> (
            match
              ( int "shard",
                Option.bind (Json.member "snapshot" j) snapshot_of_json )
            with
            | Some shard, Some snapshot -> Ok (Stats_reply { shard; snapshot })
            | _ -> bad ())
        | "bye" -> (
            match (int "restarts", int "quarantined") with
            | Some restarts, Some quarantined ->
                Ok (Bye { restarts; quarantined })
            | _ -> bad ())
        | _ -> Error (Malformed (Printf.sprintf "unknown frame op %S" op)))
end
