(** Candidate-window search over a position list (Section 4.2,
    Algorithm 1).

    A window [Pe\[i..j\]] (indices into the ascending position list) is
    {e valid} when it holds at least [Tl] elements, and a {e possible
    candidate window} when additionally its token span
    [p_j - p_i + 1 <= upper]. The search walks window starts left to right;
    [binary shift] skips runs of starts whose minimal window overflows the
    span bound, and [binary span] extends a surviving start to the last
    position still inside the bound. *)

val iter_windows :
  ?n:int ->
  positions:int array ->
  tl:int ->
  upper:int ->
  f:(first:int -> last:int -> unit) ->
  unit ->
  unit
(** [iter_windows ~positions ~tl ~upper ~f ()] calls [f ~first ~last] for every
    window start [first] such that [Pe\[first .. first + tl - 1\]] fits in a
    token span of at most [upper], with [last] the largest index satisfying
    [p_last - p_first + 1 <= upper] (the binary-span extent). Starts are
    visited in ascending order. Requires [tl >= 1].

    Completeness: any substring [s] with [|s| <= upper] containing at least
    [Tl] positions has its first contained position at some emitted
    [first].

    [?n] restricts the search to the prefix [positions.(0 .. n-1)] — the
    hot path hands in an oversized reusable buffer and the live length. *)

val iter_windows_linear :
  ?n:int ->
  positions:int array ->
  tl:int ->
  upper:int ->
  f:(first:int -> last:int -> unit) ->
  unit ->
  unit
(** The plain span-and-shift search (Section 4.2's first method): every
    window start is visited and spans extend one element at a time. Emits
    exactly the same windows as {!iter_windows}; kept as the ablation
    baseline for the binary-search variant (bench section [ablations]). *)

val binary_shift :
  ?n:int -> positions:int array -> tl:int -> upper:int -> int -> int
(** [binary_shift ~positions ~tl ~upper i] is the smallest window start
    [i' >= i] whose minimal window fits the span bound, or
    [Array.length positions] when none exists. Exposed for testing; assumes
    the minimal window at [i] itself overflows or [i] is already feasible. *)

val binary_span : ?n:int -> positions:int array -> upper:int -> int -> int
(** [binary_span ~positions ~upper i] is the largest index [x >= i] with
    [p_x - p_i + 1 <= upper]. Exposed for testing. *)
