(** Fault-isolated, budget-aware parallel extraction over a document
    collection (OCaml 5 domains).

    A {!Problem.t} is immutable once built — the inverted index, thresholds
    and interner are only read during extraction — so one problem can be
    shared by several domains, each stealing documents off a shared
    counter. Speedup is near-linear in cores for document-heavy workloads
    (the paper's setting: 1k–10k documents per dictionary).

    The pipeline boundary is {!extract_one_outcome}: no exception raised
    while processing one document (a crash in tokenization, merging or
    verification, an injected {!Faerie_util.Fault} or a tripped
    {!Faerie_util.Budget}) ever escapes — each maps to a structured
    {!Outcome.t} for exactly that document, and every other document in
    the batch is unaffected. Spawned domains are always joined, even when
    a worker raises. *)

type outcome = Types.char_match list Outcome.t

val outcome_of_report : Extractor.report -> outcome
(** Project an {!Extractor.report} down to its outcome, discarding stats.
    Shared with {!Supervisor}, which re-runs [Extractor.run] per retry
    attempt and needs the same projection. *)

val extract_one_outcome :
  ?pruning:Types.pruning ->
  ?budget:Faerie_util.Budget.spec ->
  ?oversize:[ `Chunk | `Reject ] ->
  ?stats:Types.stats ->
  doc_id:int ->
  Problem.t ->
  string ->
  outcome
(** [extract_one_outcome ~doc_id problem text] extracts one document inside
    a fault/budget containment boundary. [doc_id] keys the
    {!Faerie_util.Fault} context (and should be the document's batch
    index, so fault campaigns are deterministic under work stealing).

    Budget semantics: a document larger than [budget.max_bytes] is routed
    by [oversize] — [`Chunk] (default) degrades to bounded-memory
    {!Chunked} extraction and returns [Degraded (ms, Oversize_chunked _)]
    with the complete result set; [`Reject] returns
    [Failed (Doc_too_large _)]. A deadline or candidate budget tripping
    mid-filter returns [Degraded (ms, Partial _)] where [ms] are the
    matches verified before the trip — a subset of the full result set.

    [stats] (optional) receives the filter statistics of the run. *)

val extract_all_outcomes :
  ?pruning:Types.pruning ->
  ?domains:int ->
  ?budget:Faerie_util.Budget.spec ->
  ?oversize:[ `Chunk | `Reject ] ->
  Problem.t ->
  string array ->
  outcome array * Outcome.summary
(** [extract_all_outcomes problem docs] runs {!extract_one_outcome} over
    every document (in parallel when [domains > 1]) and returns
    per-document outcomes in input order plus a batch summary. Guarantees:
    every spawned domain is joined before returning, even if a worker
    raises; one document's failure never perturbs another document's
    result (outcomes for fault-free documents are identical to a run with
    no faults or budgets at all). [domains] defaults to
    [Domain.recommended_domain_count ()], capped by the number of
    documents; [1] means fully sequential (no domain is spawned). *)

val extract_all :
  ?pruning:Types.pruning ->
  ?domains:int ->
  Problem.t ->
  string array ->
  Types.char_match list array
(** [extract_all problem docs] — the historical unlimited-budget API:
    per-document matches in character coordinates, in input order,
    identical to running {!Single_heap.run} + {!Fallback.run} sequentially
    (the test suite asserts this). Implemented over
    {!extract_all_outcomes}; if a document fails outright (impossible
    without fault injection short of a genuine crash), raises [Failure]
    with the contained error's description. *)
