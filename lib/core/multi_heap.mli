(** The multi-heap filtering algorithm (Section 3.2) — the paper's own
    baseline.

    For every valid substring [D\[a, l\]] (all starts [a], all lengths
    [⊥E <= l <= ⌈E]) a fresh min-heap is built over the inverted lists of
    its [l] tokens and merged to count each entity's occurrences. Every
    inverted list is thus scanned once per substring containing its token
    — the redundant work the single-heap method eliminates (Fig. 13). *)

type algorithm =
  | Heap_count
      (** plain heap merge counting every entity (the paper's §3.2) *)
  | Merge_skip
      (** MergeSkip (Li, Lu & Lu, ICDE'08) with the per-length minimum
          overlap threshold; skipped entities are provably non-candidates *)
  | Divide_skip  (** DivideSkip, same guarantee *)

val run :
  ?algorithm:algorithm ->
  ?verifier:Faerie_sim.Verify.verifier ->
  Problem.t ->
  Faerie_tokenize.Document.t ->
  Types.token_match list * Types.stats
(** Verified matches (same contract as {!Single_heap.run}: deduplicated,
    sorted, {!Problem.Indexed} entities only) plus statistics. All
    algorithms return identical matches; with the skip algorithms the
    [candidates] statistic counts only the entities whose occurrence count
    reached the per-length minimum threshold (the others are skipped
    without being materialized). *)

val candidates :
  ?algorithm:algorithm ->
  Problem.t ->
  Faerie_tokenize.Document.t ->
  Types.candidate list * Types.stats
(** Filter-only variant, for testing against {!Single_heap.candidates}. *)
