(** Sharded multi-process serving cluster: a coordinator that partitions
    the dictionary by entity-id range ({!Shard_plan}), forks one OS
    process per shard — each running the supervised worker pool
    ({!Supervisor}) over its slice — and fans every document out to all
    shards, merging the per-shard match sets into one response.

    Process isolation is the point: a shard crash (bug, injected
    ["shard_frame"] fault, OOM kill) is a retryable event scoped to one
    slice of the dictionary, not an outage. The coordinator extends the
    supervisor's {b exactly-one-outcome} guarantee across the fan-out:

    - a shard that dies or misses its per-shard deadline is killed and
      respawned under the same capped full-jitter backoff schedule the
      in-process supervisor uses ({!Supervisor.backoff_delay_ms});
    - the in-flight document is retried against the replacement with a
      re-keyed fault context (so a deterministic injected crash does not
      re-fire forever);
    - a (doc, shard) pair that exhausts its retries is appended to the
      dead-letter NDJSON file as a self-contained replayable
      {!Supervisor.Quarantine.record} (with the [shard] field set), and
      the merged response {e degrades} to
      [Degraded (Shard_partial ...)] instead of failing the request;
    - only when no shard produced a usable result does the document fail.

    Transport is length-prefixed {!Serve_proto.Frame}s over [Unix.pipe]
    pairs; a shard killed mid-write yields a clean EOF at the torn frame
    boundary — never a torn or duplicated response. Hot reload is
    generation-consistent via two-phase commit: every shard loads the new
    snapshot ([Prepare]), and only after {e all} acks does the
    coordinator bump the cluster generation and [Commit]; any failure
    aborts the whole generation and keeps serving the old one, so two
    shards never serve different generations of the dictionary to one
    document.

    Forking requires the coordinator to be the {e only} live domain in
    its process (OCaml 5 restriction); worker domains exist only inside
    shard children, spawned after the fork. *)

type config = {
  shards : int;  (** shard process count, [>= 1] *)
  pool : Supervisor.config;
      (** per-shard worker pool; [pool.quarantine] names the shared
          dead-letter file that shards and the coordinator all append to
          (safe: single-[write] O_APPEND records), and [pool.shard] is
          overridden per shard *)
  retry : Supervisor.retry;
      (** coordinator policy: per-document cross-shard retries and the
          shard respawn backoff schedule *)
  shard_timeout_ms : int option;
      (** per-(doc, shard) response deadline; a miss kills and restarts
          the shard. [None] waits indefinitely (trust the per-document
          budget inside the shard). *)
  pruning : Types.pruning;
  budget : Faerie_util.Budget.spec;  (** base per-document budget *)
  snapshot_dir : string option;
      (** where per-shard index snapshots live; [None] uses a private
          temp directory removed on shutdown *)
  slow_stages : bool;
      (** arm each shard's {!Faerie_obs.Slowlog} stage scratch so Result
          frames carry a per-stage wall breakdown (serve's slow-query
          log). Off by default: the added frame field changes result
          frame bytes, and with them the fault schedules keyed off frame
          contents. *)
}

val default_config : config
(** 2 shards, single-domain pools, {!Supervisor.default_retry}, no shard
    deadline, binary-window pruning, unlimited budget, temp snapshots. *)

type t

val create :
  ?config:config -> sim:Faerie_sim.Sim.t -> q:int -> (unit -> string list) -> t
(** [create ~sim ~q load] calls [load ()] for the dictionary, writes the
    generation-0 shard snapshots and forks the shard processes, waiting
    for each shard's Ready. [load] is called again on every {!reload}.
    @raise Invalid_argument on [shards <= 0].
    @raise Failure when a shard cannot be started at all. *)

val generation : t -> int
(** Current cluster-wide index generation — the one every shard has
    committed. *)

val submit :
  t ->
  ?id:string ->
  ?timeout_ms:int ->
  ?stages_out:(string * float) list ref ->
  doc:int ->
  string ->
  Parallel.outcome
(** Fan one document to every shard and merge. Blocks until the merged
    outcome is settled (every shard answered, was retried, or was written
    off). [doc] is the arrival ordinal: it keys per-shard fault contexts
    ({!Supervisor.shard_fault_key}) and backoff jitter. [id] is stamped
    into quarantine records. [timeout_ms] overrides the per-document
    budget inside shards. When [config.slow_stages] is on, [stages_out]
    receives the element-wise {e max} across shards of the per-stage
    wall breakdowns from the Result frames (the critical-path view — the
    fan-out's wall time follows its slowest shard).

    Merge semantics: usable match sets concatenate (entity ranges are
    disjoint) and sort by (start, length, entity) — byte-identical
    regardless of shard count; all shards usable and clean -> [Ok]; all
    usable but some degraded -> [Degraded] with the lowest shard's
    reason; some shards missing after retries ->
    [Degraded (_, Shard_partial)]; no usable shard -> [Failed] with the
    lowest shard's error.

    @raise Invalid_argument after {!shutdown}. *)

val reload : t -> (int, string) result
(** Two-phase, generation-consistent reload: rebuild shard snapshots from
    [load ()], [Prepare] on every live shard, and only once all ack,
    commit the new generation (also reviving any shard that was down).
    On any prepare failure the generation is aborted — pending snapshots
    dropped, files removed, old generation keeps serving — and the error
    is returned. [Ok gen] returns the new generation. *)

(** {1 Online mutation}

    The coordinator owns the authoritative dynamic dictionary: every
    accepted mutation is journaled per owning shard {e before} it is
    routed, and a shard that crashes is replayed its journal (in original
    order) on respawn — so a mutation, once accepted, survives any shard
    death. Added entities get fresh global ids past the partitioned id
    space and round-robin over shards ({!Shard_plan.owner_dyn}); matches
    they produce are translated back through the per-shard add map, so
    {!submit} responses are indistinguishable from a dictionary that
    always contained them. Journals, add maps and tombstones reset at
    every committed snapshot generation ({!reload} or {!compact}), whose
    entity array subsumes them. *)

val dict_add : t -> string -> [ `Added of int | `Exists of int ]
(** Add one raw entity. [`Added id] is its fresh global id; [`Exists id]
    means the raw is already live (no-op, nothing journaled).
    @raise Invalid_argument after {!shutdown}. *)

val dict_remove : t -> string -> [ `Removed of int | `Absent ]
(** Tombstone one raw entity (snapshot-born or dynamically added).
    [`Absent] means no live entity has this raw (no-op, nothing
    journaled). The raw can be re-added later under a fresh id.
    @raise Invalid_argument after {!shutdown}. *)

val compact : t -> (int * int, string) result
(** Fold every pending mutation into a fresh snapshot generation via the
    same two-phase Prepare/Commit swap as {!reload}. [Ok (gen, folded)]
    returns the committed generation and how many mutations it absorbed.
    Crash-safe at both injected fault sites: ["compact_save"] (dies while
    building the new snapshots — nothing has changed) and
    ["compact_commit"] (dies after every shard prepared — the swap
    aborts); either way the old generation keeps serving and the journals
    keep their mutations. Fault context is the generation being built.
    @raise Invalid_argument after {!shutdown}. *)

val delta_entities : t -> int
(** Mutations pending since the serving snapshot generation (what
    {!compact} would fold). *)

val live_count : t -> int
(** Live dictionary size: snapshot entities minus tombstones plus
    dynamic adds. *)

val entity_raw : t -> int -> string option
(** The raw string behind a global entity id, [None] if out of range or
    tombstoned. Resolves both snapshot and dynamically added ids —
    useful for mapping {!submit} match ids back to entities. *)

val shutdown : t -> unit
(** Graceful teardown: each shard drains its pool, reports its Bye stats
    and exits; stragglers are killed. Temp snapshot dirs are removed.
    Idempotent. *)

type totals = {
  shard_restarts : int;  (** shard processes killed and respawned *)
  shard_timeouts : int;  (** per-shard deadline misses *)
  docs_partial : int;  (** documents answered [Shard_partial] *)
  quarantined_pairs : int;
      (** (doc, shard) pairs the coordinator dead-lettered *)
  worker_restarts : int;
      (** worker-domain respawns inside shard pools (summed from Byes;
          complete only after {!shutdown}) *)
  shard_quarantined : int;
      (** documents quarantined inside shard pools (summed from Byes) —
          best-effort: an incarnation killed after appending its
          dead-letter record but before its Bye leaves a durable,
          replayable line this count never sees *)
}

val totals : t -> totals

val stats :
  t ->
  Faerie_obs.Metrics.snapshot
  * (int * Faerie_obs.Metrics.snapshot option) list
(** Pull every live shard's full metrics snapshot ({!Serve_proto.Shard}
    [Stats_req]/[Stats_reply] frames) and merge them — together with the
    coordinator's own registry — via
    {!Faerie_obs.Metrics.merge_snapshots}. Returns the merged snapshot and
    the per-shard pulls in shard order; [None] marks a shard that was
    down, died mid-stats (it is restarted, like any mid-request death) or
    missed the deadline (not restarted — it may be busy). One shared
    absolute deadline ([shard_timeout_ms], else the handshake timeout)
    bounds the whole fan-out: a partial merge is returned, the call never
    hangs and never raises on shard failure.
    @raise Invalid_argument after {!shutdown}. *)

val health : t -> string * Serve_proto.shard_health list
(** Coordinator-local liveness view, no shard round-trips: per shard
    up/generation/restart-count (queue depth is always 0 here — the
    coordinator keeps at most one document in flight per shard), journal
    length ([h_delta] — pending mutations owned by that shard) and the
    age of the serving snapshot generation ([h_compact_age_s]), plus the
    overall status: ["ok"] when every shard is up, ["degraded"]
    otherwise. *)

val run_batch :
  ?config:config ->
  sim:Faerie_sim.Sim.t ->
  q:int ->
  entities:string list ->
  string array ->
  Parallel.outcome array * Outcome.summary * totals
(** One-shot batch through a fresh cluster ([doc] = array index): create,
    submit sequentially, shut down (always, even on exceptions), and
    return outcomes in input order with the summary and cluster totals.
    The fuzz shard-kill campaign drives this to assert the zero-lost-
    documents invariant. *)
