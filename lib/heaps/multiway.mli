(** Multiway merge of the document's inverted lists — the "single heap" of
    the paper (Section 3.3).

    One cursor per document token position sits on that position's inverted
    list (entity ids, sorted ascending). A merge engine over the cursors,
    ordered by (entity id, position), streams out every (entity, position)
    occurrence in ascending entity order; consecutive occurrences of one
    entity therefore form its complete position list, sorted by position —
    each inverted list is scanned exactly once.

    The lists arrive pre-decoded in one flat buffer (see
    {!Faerie_index.Inverted_index.decode_document}): position [i]'s list is
    [buf[offs.(i) .. offs.(i) + lens.(i))]. The merge itself allocates only
    its cursor/heap state and one positions scratch array per run.

    Two merge engines are provided (the paper draws its heap as a loser
    tree, footnote 3): a binary {!Int_heap} (default) and a
    {!Loser_tree} tournament. They produce identical streams; the
    [ablations] benchmark compares their cost. *)

type merger =
  | Binary_heap  (** {!Int_heap} of encoded keys (default) *)
  | Tournament_tree  (** {!Loser_tree} with one leaf per non-empty list *)

val iter_entity_positions :
  ?merger:merger ->
  n_positions:int ->
  buf:int array ->
  offs:int array ->
  lens:int array ->
  f:(entity:int -> positions:int array -> n:int -> unit) ->
  unit ->
  unit
(** [iter_entity_positions ~n_positions ~buf ~offs ~lens ~f ()] calls
    [f ~entity ~positions ~n] once per distinct entity id occurring in any
    of the lists, in ascending entity order, with [positions.(0 .. n-1)]
    the ascending document positions whose list contains the entity (slots
    at [n] and beyond are garbage). The [positions] buffer is reused across
    calls — callers must copy the prefix if they retain it. *)

val heap_stats : n_positions:int -> length_at:(int -> int) -> int * int
(** [(live_cursors, total_postings)] — the number of non-empty inverted
    lists (merge width) and the total number of postings the merge will
    stream ([N] in the paper's complexity table). Used by the index-size
    report (Table 5's "Heap+Array" row). *)
