module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace

type merger = Binary_heap | Tournament_tree

let m_pops = Metrics.counter ~help:"keys popped from the merge frontier" "heap_pops"

let m_advances =
  Metrics.counter ~help:"inverted-list cursor advances during merge"
    "heap_list_advances"

let m_runs = Metrics.counter ~help:"multiway merge runs" "heap_merge_runs"

let m_runs_binary =
  Metrics.counter ~help:"merge runs using the binary heap" "heap_merge_runs_binary"

let m_runs_tournament =
  Metrics.counter ~help:"merge runs using the tournament tree"
    "heap_merge_runs_tournament"

(* Number of bits needed to address [n] positions. *)
let rec bits_for n acc = if n <= 1 then acc else bits_for ((n + 1) / 2) (acc + 1)

(* Per-domain merge scratch, reused across runs: the position-group buffer
   handed to [f], the per-list cursors, and the binary heap. Grown to the
   largest [n_positions] seen on the domain; a steady-state merge allocates
   none of its working set. *)
type scratch = {
  mutable positions : int array;
  mutable cursor : int array;
  heap : Int_heap.t;
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { positions = [||]; cursor = [||]; heap = Int_heap.create () })

let rec round_up cap n = if cap >= n then cap else round_up (2 * max cap 16) n

let scratch_for n_positions =
  let sc = Domain.DLS.get scratch_key in
  if Array.length sc.positions < n_positions then begin
    let cap = round_up (Array.length sc.positions) n_positions in
    sc.positions <- Array.make cap 0;
    sc.cursor <- Array.make cap 0
  end;
  Int_heap.clear sc.heap;
  sc

(* Both engines stream keys [(entity lsl shift) lor position] in ascending
   order: native int order = lexicographic (entity, position) order. The
   consumer groups runs of equal entity into position lists, written into a
   domain-lifetime scratch array (a group holds at most one entry per
   document position, so [n_positions] bounds it). [f] must not retain
   [positions] past its return. *)

let consume ~positions ~shift ~mask ~next ~f =
  let n = ref 0 in
  let current = ref (-1) in
  let flush () = if !current >= 0 && !n > 0 then f ~entity:!current ~positions ~n:!n in
  let rec loop () =
    match next () with
    | -1 -> ()
    | key ->
        let entity = key lsr shift and pos = key land mask in
        if entity <> !current then begin
          flush ();
          current := entity;
          n := 0
        end;
        Array.unsafe_set positions !n pos;
        incr n;
        loop ()
  in
  loop ();
  flush ()

let run_binary_heap ~pops ~advances ~n_positions ~buf ~offs ~lens ~shift ~mask ~f =
  let sc = scratch_for n_positions in
  let heap = sc.heap and cursor = sc.cursor in
  for pos = 0 to n_positions - 1 do
    cursor.(pos) <- 0;
    if lens.(pos) > 0 then
      Int_heap.push heap ((buf.(offs.(pos)) lsl shift) lor pos)
  done;
  let next () =
    if Int_heap.is_empty heap then -1
    else begin
      let key = Int_heap.peek_exn heap in
      let pos = key land mask in
      let i = cursor.(pos) + 1 in
      pops := !pops + 1;
      if i < lens.(pos) then begin
        cursor.(pos) <- i;
        advances := !advances + 1;
        Int_heap.replace_top heap ((buf.(offs.(pos) + i) lsl shift) lor pos)
      end
      else ignore (Int_heap.pop_exn heap);
      key
    end
  in
  consume ~positions:sc.positions ~shift ~mask ~next ~f

let run_tournament ~pops ~advances ~n_positions ~buf ~offs ~lens ~shift ~mask ~f =
  (* One tournament leaf per non-empty list. *)
  let leaves = ref [] in
  for pos = n_positions - 1 downto 0 do
    if lens.(pos) > 0 then leaves := pos :: !leaves
  done;
  match !leaves with
  | [] -> ()
  | leaves ->
      let leaf_pos = Array.of_list leaves in
      let k = Array.length leaf_pos in
      let cursor = Array.make k 0 in
      let keys =
        Array.init k (fun j ->
            (buf.(offs.(leaf_pos.(j))) lsl shift) lor leaf_pos.(j))
      in
      let tree = Loser_tree.create ~keys in
      let next () =
        if Loser_tree.exhausted tree then -1
        else begin
          let j = Loser_tree.winner tree in
          let key = keys.(j) in
          let pos = leaf_pos.(j) in
          let i = cursor.(j) + 1 in
          pops := !pops + 1;
          if i < lens.(pos) then begin
            cursor.(j) <- i;
            advances := !advances + 1;
            keys.(j) <- (buf.(offs.(pos) + i) lsl shift) lor pos
          end
          else keys.(j) <- max_int;
          Loser_tree.replay tree;
          key
        end
      in
      let sc = scratch_for n_positions in
      consume ~positions:sc.positions ~shift ~mask ~next ~f

let iter_entity_positions ?(merger = Binary_heap) ~n_positions ~buf ~offs ~lens
    ~f () =
  Faerie_util.Fault.site "heap_merge";
  if n_positions > 0 then begin
    let shift = max 1 (bits_for n_positions 0) in
    let mask = (1 lsl shift) - 1 in
    Metrics.incr m_runs;
    Metrics.incr
      (match merger with
      | Binary_heap -> m_runs_binary
      | Tournament_tree -> m_runs_tournament);
    (* Accumulate locally and flush once per run; [f] can abort the merge
       mid-stream (budget exhaustion), so flush under protection. *)
    let pops = ref 0 and advances = ref 0 in
    Fun.protect
      ~finally:(fun () ->
        Metrics.add m_pops !pops;
        Metrics.add m_advances !advances)
      (fun () ->
        Trace.with_span "heap_merge" (fun () ->
            match merger with
            | Binary_heap ->
                run_binary_heap ~pops ~advances ~n_positions ~buf ~offs ~lens
                  ~shift ~mask ~f
            | Tournament_tree ->
                run_tournament ~pops ~advances ~n_positions ~buf ~offs ~lens
                  ~shift ~mask ~f))
  end

let heap_stats ~n_positions ~length_at =
  let live = ref 0 and total = ref 0 in
  for pos = 0 to n_positions - 1 do
    let len = length_at pos in
    if len > 0 then begin
      incr live;
      total := !total + len
    end
  done;
  (!live, !total)
