module Dynarray = Faerie_util.Dynarray
module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace
module Prof = Faerie_obs.Prof

type merger = Binary_heap | Tournament_tree

let m_pops = Metrics.counter ~help:"keys popped from the merge frontier" "heap_pops"

let m_advances =
  Metrics.counter ~help:"inverted-list cursor advances during merge"
    "heap_list_advances"

let m_runs = Metrics.counter ~help:"multiway merge runs" "heap_merge_runs"

let m_runs_binary =
  Metrics.counter ~help:"merge runs using the binary heap" "heap_merge_runs_binary"

let m_runs_tournament =
  Metrics.counter ~help:"merge runs using the tournament tree"
    "heap_merge_runs_tournament"

(* Number of bits needed to address [n] positions. *)
let rec bits_for n acc = if n <= 1 then acc else bits_for ((n + 1) / 2) (acc + 1)

(* Both engines stream keys [(entity lsl shift) lor position] in ascending
   order: native int order = lexicographic (entity, position) order. The
   consumer groups runs of equal entity into position lists. *)

let consume ~shift ~mask ~next ~f =
  let positions = Dynarray.create () in
  let current = ref (-1) in
  let flush () =
    if !current >= 0 && not (Dynarray.is_empty positions) then
      f ~entity:!current ~positions
  in
  let rec loop () =
    match next () with
    | -1 -> ()
    | key ->
        let entity = key lsr shift and pos = key land mask in
        if entity <> !current then begin
          flush ();
          current := entity;
          Dynarray.clear positions
        end;
        Dynarray.push positions pos;
        loop ()
  in
  loop ();
  flush ()

let run_binary_heap ~pops ~advances ~n_positions ~lists ~shift ~mask ~f =
  let heap = Int_heap.create ~capacity:n_positions () in
  let cursor = Array.make n_positions 0 in
  for pos = 0 to n_positions - 1 do
    let l = lists.(pos) in
    if Array.length l > 0 then Int_heap.push heap ((l.(0) lsl shift) lor pos)
  done;
  let next () =
    if Int_heap.is_empty heap then -1
    else begin
      let key = Int_heap.peek_exn heap in
      let pos = key land mask in
      let l = lists.(pos) in
      let i = cursor.(pos) + 1 in
      pops := !pops + 1;
      if i < Array.length l then begin
        cursor.(pos) <- i;
        advances := !advances + 1;
        Int_heap.replace_top heap ((l.(i) lsl shift) lor pos)
      end
      else ignore (Int_heap.pop_exn heap);
      key
    end
  in
  consume ~shift ~mask ~next ~f

let run_tournament ~pops ~advances ~n_positions ~lists ~shift ~mask ~f =
  (* One tournament leaf per non-empty list. *)
  let leaves = ref [] in
  for pos = n_positions - 1 downto 0 do
    if Array.length lists.(pos) > 0 then leaves := pos :: !leaves
  done;
  match !leaves with
  | [] -> ()
  | leaves ->
      let leaf_pos = Array.of_list leaves in
      let k = Array.length leaf_pos in
      let cursor = Array.make k 0 in
      let keys =
        Array.init k (fun j -> (lists.(leaf_pos.(j)).(0) lsl shift) lor leaf_pos.(j))
      in
      let tree = Loser_tree.create ~keys in
      let next () =
        if Loser_tree.exhausted tree then -1
        else begin
          let j = Loser_tree.winner tree in
          let key = keys.(j) in
          let l = lists.(leaf_pos.(j)) in
          let i = cursor.(j) + 1 in
          pops := !pops + 1;
          if i < Array.length l then begin
            cursor.(j) <- i;
            advances := !advances + 1;
            keys.(j) <- (l.(i) lsl shift) lor leaf_pos.(j)
          end
          else keys.(j) <- max_int;
          Loser_tree.replay tree;
          key
        end
      in
      consume ~shift ~mask ~next ~f

let iter_entity_positions ?(merger = Binary_heap) ~n_positions ~list_at ~f () =
  Faerie_util.Fault.site "heap_merge";
  if n_positions > 0 then begin
    let shift = max 1 (bits_for n_positions 0) in
    let mask = (1 lsl shift) - 1 in
    (* Materialize the lists once: [list_at] may recompute (token lookup +
       postings fetch) and the merge revisits each list per posting. *)
    let lists = Array.init n_positions list_at in
    Metrics.incr m_runs;
    Metrics.incr
      (match merger with
      | Binary_heap -> m_runs_binary
      | Tournament_tree -> m_runs_tournament);
    (* Accumulate locally and flush once per run; [f] can abort the merge
       mid-stream (budget exhaustion), so flush under protection. *)
    let pops = ref 0 and advances = ref 0 in
    Fun.protect
      ~finally:(fun () ->
        Metrics.add m_pops !pops;
        Metrics.add m_advances !advances)
      (fun () ->
        Prof.with_stage Prof.Heap_merge (fun () ->
            Trace.with_span "heap_merge" (fun () ->
                match merger with
                | Binary_heap ->
                    run_binary_heap ~pops ~advances ~n_positions ~lists ~shift
                      ~mask ~f
                | Tournament_tree ->
                    run_tournament ~pops ~advances ~n_positions ~lists ~shift
                      ~mask ~f)))
  end

let heap_stats ~n_positions ~list_at =
  let live = ref 0 and total = ref 0 in
  for pos = 0 to n_positions - 1 do
    let l = list_at pos in
    if Array.length l > 0 then begin
      incr live;
      total := !total + Array.length l
    end
  done;
  (!live, !total)
