(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the synthetic corpora, plus a Bechamel micro
   suite for the core operations.

   Usage:
     dune exec bench/main.exe                 # all sections
     dune exec bench/main.exe fig14 fig16     # selected sections
     FAERIE_SCALE=0.2 dune exec bench/main.exe  # scale workloads up/down

   Absolute times are machine- and substrate-dependent; what must match the
   paper is the *shape* of every series (who wins, by what order of
   magnitude, and how it trends with the threshold/dictionary size).
   EXPERIMENTS.md records the comparison. *)

module Sim = Faerie_sim.Sim
module Corpus = Faerie_datagen.Corpus
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Single_heap = Core.Single_heap
module Multi_heap = Core.Multi_heap
module Fallback = Core.Fallback
module Ix = Faerie_index
module Ngpp = Faerie_baselines.Ngpp
module Ish = Faerie_baselines.Ish
module Bytesize = Faerie_util.Bytesize
module W = Workloads
module H = Harness

(* ------------------------------------------------------------------ *)
(* Runners                                                             *)
(* ------------------------------------------------------------------ *)

type run_result = { matches : int; candidates : int; seconds : float }

(* --verifier=ENGINE: edit-distance verification engine for the faerie
   runners (auto | myers | banded); the paper exhibits stay on auto. *)
let verifier_ref = ref Faerie_sim.Verify.Auto

let run_single ?pruning problem docs =
  let matches = ref 0 and candidates = ref 0 in
  let seconds =
    H.timed (fun () ->
        Array.iter
          (fun text ->
            let doc = Problem.tokenize_document problem text in
            let ms, (st : Types.stats) =
              Single_heap.run ?pruning ~verifier:!verifier_ref problem doc
            in
            let fb = Fallback.run ~verifier:!verifier_ref problem doc in
            matches := !matches + List.length ms + List.length fb;
            candidates := !candidates + st.Types.candidates)
          docs)
  in
  { matches = !matches; candidates = !candidates; seconds }

let run_multi problem docs =
  let matches = ref 0 and candidates = ref 0 in
  let seconds =
    H.timed (fun () ->
        Array.iter
          (fun text ->
            let doc = Problem.tokenize_document problem text in
            let ms, (st : Types.stats) = Multi_heap.run problem doc in
            matches := !matches + List.length ms;
            candidates := !candidates + st.Types.candidates)
          docs)
  in
  { matches = !matches; candidates = !candidates; seconds }

let run_ngpp ngpp docs =
  let matches = ref 0 in
  let seconds =
    H.timed (fun () ->
        Array.iter
          (fun text -> matches := !matches + List.length (Ngpp.extract ngpp text))
          docs)
  in
  { matches = !matches; candidates = 0; seconds }

let run_ish problem docs =
  let ish = Ish.build problem in
  let matches = ref 0 in
  let seconds =
    H.timed (fun () ->
        Array.iter
          (fun text ->
            let doc = Problem.tokenize_document problem text in
            matches := !matches + List.length (Ish.extract ish doc))
          docs)
  in
  { matches = !matches; candidates = Ish.candidates_checked ish; seconds }

(* ------------------------------------------------------------------ *)
(* Table 4: dataset statistics                                          *)
(* ------------------------------------------------------------------ *)

let table4 () =
  H.section ~exhibit:"Table 4" ~title:"dataset statistics (synthetic corpora)";
  let row name corpus =
    let s = Corpus.stats (Lazy.force corpus) in
    [
      [ name ^ " Dict"; string_of_int s.Corpus.n_entities;
        H.fmt_float s.Corpus.avg_entity_chars; H.fmt_float s.Corpus.avg_entity_tokens ];
      [ name ^ " Docs"; string_of_int s.Corpus.n_documents;
        H.fmt_float s.Corpus.avg_document_chars; H.fmt_float s.Corpus.avg_document_tokens ];
    ]
  in
  H.table ~csv:"table4_datasets" ~x_label:"Dataset"
    ~columns:[ "Cardinality"; "avg len"; "avg tokens" ]
    ~rows:(row "DBLP" W.dblp @ row "PubMed" W.pubmed @ row "WebPage" W.webpage)
    ()

(* ------------------------------------------------------------------ *)
(* Fig 13: multi-heap vs single-heap                                    *)
(* ------------------------------------------------------------------ *)

let fig13_panel ~name ~csv ~x_label ~settings ~docs ~mk_problem =
  H.subsection name;
  let rows =
    List.map
      (fun (label, setting) ->
        let problem = mk_problem setting in
        let multi = run_multi problem docs in
        let single = run_single ~pruning:Types.No_prune problem docs in
        [ label; H.fmt_time multi.seconds; H.fmt_time single.seconds;
          string_of_int single.matches ])
      settings
  in
  H.table ~csv ~x_label ~columns:[ "Multi-Heap"; "Single-Heap"; "matches" ] ~rows ()

let fig13 () =
  H.section ~exhibit:"Fig 13" ~title:"multi-heap vs single-heap (no pruning)";
  let dblp = Lazy.force W.dblp in
  fig13_panel ~name:"(a) ed on DBLP" ~csv:"fig13a_ed_dblp" ~x_label:"tau"
    ~settings:(List.map (fun t -> (string_of_int t, t)) [ 0; 1; 2; 3 ])
    ~docs:(W.doc_texts dblp 2)
    ~mk_problem:(fun tau ->
      let q = W.q_for_ed_dblp tau in
      let sim = Sim.Edit_distance tau in
      Problem.create ~sim ~q (W.indexed_subset ~sim ~q (W.entities dblp)));
  let webpage = Lazy.force W.webpage in
  fig13_panel ~name:"(b) jac on WebPage" ~csv:"fig13b_jac_webpage" ~x_label:"delta"
    ~settings:(List.map (fun d -> (string_of_float d, d)) [ 1.0; 0.95; 0.9; 0.85 ])
    ~docs:(W.doc_texts webpage 1)
    ~mk_problem:(fun d -> Problem.create ~sim:(Sim.Jaccard d) (W.entities webpage));
  let pubmed = Lazy.force W.pubmed in
  fig13_panel ~name:"(c) eds on PubMed" ~csv:"fig13c_eds_pubmed" ~x_label:"delta"
    ~settings:(List.map (fun d -> (string_of_float d, d)) [ 1.0; 0.95; 0.9; 0.85 ])
    ~docs:(W.doc_texts ~from:1 pubmed 1)
    ~mk_problem:(fun d ->
      let q = W.q_for_eds_pubmed d in
      let sim = Sim.Edit_similarity d in
      Problem.create ~sim ~q (W.indexed_subset ~sim ~q (W.entities pubmed)))

(* ------------------------------------------------------------------ *)
(* Fig 14 + Fig 15: pruning techniques (candidates, then time)          *)
(* ------------------------------------------------------------------ *)

let fig14_15_panel ~name ~csv ~x_label ~settings ~docs ~mk_problem =
  H.subsection name;
  let results =
    List.map
      (fun (label, setting) ->
        let problem = mk_problem setting in
        ( label,
          List.map (fun p -> run_single ~pruning:p problem docs) Types.all_prunings ))
      settings
  in
  print_endline "candidates (Fig 14):";
  H.table ~csv:("fig14" ^ csv) ~x_label ~columns:[ "None"; "Lazy"; "Bucket"; "Binary" ]
    ~rows:
      (List.map
         (fun (label, rs) -> label :: List.map (fun r -> H.fmt_count r.candidates) rs)
         results)
    ();
  print_endline "elapsed time (Fig 15):";
  H.table ~csv:("fig15" ^ csv) ~x_label ~columns:[ "None"; "Lazy"; "Bucket"; "Binary" ]
    ~rows:
      (List.map
         (fun (label, rs) -> label :: List.map (fun r -> H.fmt_time r.seconds) rs)
         results)
    ()

let fig14_15 () =
  H.section ~exhibit:"Fig 14 + Fig 15"
    ~title:"pruning techniques: candidates and elapsed time";
  let dblp = Lazy.force W.dblp in
  fig14_15_panel ~name:"(a) ed on DBLP" ~csv:"a_ed_dblp" ~x_label:"tau"
    ~settings:(List.map (fun t -> (string_of_int t, t)) [ 0; 1; 2; 3 ])
    ~docs:(W.doc_texts dblp 50)
    ~mk_problem:(fun tau ->
      let q = W.q_for_ed_dblp tau in
      let sim = Sim.Edit_distance tau in
      Problem.create ~sim ~q (W.indexed_subset ~sim ~q (W.entities dblp)));
  let webpage = Lazy.force W.webpage in
  fig14_15_panel ~name:"(b) jac on WebPage" ~csv:"b_jac_webpage" ~x_label:"delta"
    ~settings:(List.map (fun d -> (string_of_float d, d)) [ 1.0; 0.95; 0.9; 0.85 ])
    ~docs:(W.doc_texts webpage 3)
    ~mk_problem:(fun d -> Problem.create ~sim:(Sim.Jaccard d) (W.entities webpage));
  let pubmed = Lazy.force W.pubmed in
  fig14_15_panel ~name:"(c) eds on PubMed" ~csv:"c_eds_pubmed" ~x_label:"delta"
    ~settings:(List.map (fun d -> (string_of_float d, d)) [ 1.0; 0.95; 0.9; 0.85 ])
    ~docs:(W.doc_texts pubmed 10)
    ~mk_problem:(fun d ->
      let q = W.q_for_eds_pubmed d in
      let sim = Sim.Edit_similarity d in
      Problem.create ~sim ~q (W.indexed_subset ~sim ~q (W.entities pubmed)))

(* ------------------------------------------------------------------ *)
(* Fig 16: comparison with NGPP and ISH                                 *)
(* ------------------------------------------------------------------ *)

let fig16 () =
  H.section ~exhibit:"Fig 16" ~title:"Faerie vs state-of-the-art (NGPP, ISH)";
  let dblp = Lazy.force W.dblp in
  H.subsection "(a) ed on DBLP: NGPP vs Faerie";
  let docs = W.doc_texts dblp 50 in
  H.table ~csv:"fig16a_ngpp_dblp" ~x_label:"tau" ~columns:[ "NGPP"; "Faerie"; "matches" ]
    ~rows:
      (List.map
         (fun tau ->
           let q = W.q_for_ed_dblp tau in
           let sim = Sim.Edit_distance tau in
           let ents = W.indexed_subset ~sim ~q (W.entities dblp) in
           let problem = Problem.create ~sim ~q ents in
           let ngpp = Ngpp.build ~tau ents in
           let n = run_ngpp ngpp docs in
           let f = run_single problem docs in
           [ string_of_int tau; H.fmt_time n.seconds; H.fmt_time f.seconds;
             string_of_int f.matches ])
         [ 0; 1; 2; 3; 4 ])
    ();
  let webpage = Lazy.force W.webpage in
  H.subsection "(b) jac on WebPage: ISH vs Faerie";
  let docs = W.doc_texts webpage 3 in
  H.table ~csv:"fig16b_ish_webpage" ~x_label:"delta" ~columns:[ "ISH"; "Faerie"; "matches" ]
    ~rows:
      (List.map
         (fun d ->
           let problem = Problem.create ~sim:(Sim.Jaccard d) (W.entities webpage) in
           let i = run_ish problem docs in
           let f = run_single problem docs in
           [ string_of_float d; H.fmt_time i.seconds; H.fmt_time f.seconds;
             string_of_int f.matches ])
         [ 1.0; 0.95; 0.9; 0.85; 0.8 ])
    ();
  let pubmed = Lazy.force W.pubmed in
  H.subsection "(c) eds on PubMed: ISH vs Faerie";
  (* One document, and delta stops at 0.85: ISH is already ~2 orders of
     magnitude slower there (the paper's Fig 16c shows the same gap, with
     ISH at ~1000s by delta = 0.9 on its testbed). *)
  let docs = W.doc_texts ~from:1 pubmed 1 in
  H.table ~csv:"fig16c_ish_pubmed" ~x_label:"delta" ~columns:[ "ISH"; "Faerie"; "matches" ]
    ~rows:
      (List.map
         (fun d ->
           let q = W.q_for_eds_pubmed d in
           let sim = Sim.Edit_similarity d in
           let ents = W.indexed_subset ~sim ~q (W.entities pubmed) in
           let problem = Problem.create ~sim ~q ents in
           let i = run_ish problem docs in
           let f = run_single problem docs in
           [ string_of_float d; H.fmt_time i.seconds; H.fmt_time f.seconds;
             string_of_int f.matches ])
         [ 1.0; 0.95; 0.9; 0.85 ])
    ()

(* ------------------------------------------------------------------ *)
(* Index sizes (Section 6.3 text)                                       *)
(* ------------------------------------------------------------------ *)

let index_sizes () =
  H.section ~exhibit:"Section 6.3" ~title:"index sizes: Faerie vs NGPP vs ISH";
  let dblp = Lazy.force W.dblp in
  let ents = W.entities dblp in
  H.subsection "DBLP, edit distance tau = 3";
  let ngpp = Ngpp.build ~tau:3 ents in
  Printf.printf "NGPP (tau=3):            %s  (%d neighborhood entries)\n"
    (Bytesize.to_string (Ngpp.index_bytes ngpp))
    (Ngpp.n_neighborhood_entries ngpp);
  List.iter
    (fun q ->
      let problem = Problem.create ~sim:(Sim.Edit_distance 3) ~q ents in
      Printf.printf "Faerie inverted index (q=%d): %s\n" q
        (Bytesize.to_string (Ix.Inverted_index.heap_bytes (Problem.index problem))))
    [ 2; 4; 5 ];
  let webpage = Lazy.force W.webpage in
  H.subsection "WebPage, jaccard delta = 0.9";
  let problem = Problem.create ~sim:(Sim.Jaccard 0.9) (W.entities webpage) in
  let ish = Ish.build problem in
  Printf.printf "ISH signature lists:     %s\n" (Bytesize.to_string (Ish.index_bytes ish));
  Printf.printf "Faerie inverted index:   %s\n%!"
    (Bytesize.to_string (Ix.Inverted_index.heap_bytes (Problem.index problem)))

(* ------------------------------------------------------------------ *)
(* Fig 17: scalability with dictionary size                             *)
(* ------------------------------------------------------------------ *)

let fractions = [ 0.2; 0.4; 0.6; 0.8; 1.0 ]

let fig17_panel ~name ~csv ~series ~docs ~mk_problem ~all_entities =
  H.subsection name;
  H.table ~csv ~x_label:"entities"
    ~columns:(List.map fst series)
    ~rows:
      (List.map
         (fun frac ->
           let ents = W.take_fraction frac all_entities in
           string_of_int (List.length ents)
           :: List.map
                (fun (_, setting) ->
                  let problem = mk_problem setting ents in
                  H.fmt_time (run_single problem docs).seconds)
                series)
         fractions)
    ()

let fig17 () =
  H.section ~exhibit:"Fig 17" ~title:"scalability with dictionary size";
  let dblp = Lazy.force W.dblp in
  fig17_panel ~name:"(a) ed on DBLP" ~csv:"fig17a_ed_dblp"
    ~series:(List.map (fun t -> ("tau=" ^ string_of_int t, t)) [ 0; 1; 2; 3 ])
    ~docs:(W.doc_texts dblp 40) ~all_entities:(W.entities dblp)
    ~mk_problem:(fun tau ents ->
      let q = W.q_for_ed_dblp tau in
      let sim = Sim.Edit_distance tau in
      Problem.create ~sim ~q (W.indexed_subset ~sim ~q ents));
  let webpage = Lazy.force W.webpage in
  let deltas = [ 0.85; 0.9; 0.95; 1.0 ] in
  fig17_panel ~name:"(b) jac on WebPage" ~csv:"fig17b_jac_webpage"
    ~series:(List.map (fun d -> ("d=" ^ string_of_float d, d)) deltas)
    ~docs:(W.doc_texts webpage 2) ~all_entities:(W.entities webpage)
    ~mk_problem:(fun d ents -> Problem.create ~sim:(Sim.Jaccard d) ents);
  let pubmed = Lazy.force W.pubmed in
  let pubmed_docs = W.doc_texts pubmed 10 in
  fig17_panel ~name:"(c) eds on PubMed" ~csv:"fig17c_eds_pubmed"
    ~series:(List.map (fun d -> ("d=" ^ string_of_float d, d)) deltas)
    ~docs:pubmed_docs ~all_entities:(W.entities pubmed)
    ~mk_problem:(fun d ents ->
      let q = W.q_for_eds_pubmed d in
      let sim = Sim.Edit_similarity d in
      Problem.create ~sim ~q (W.indexed_subset ~sim ~q ents));
  (* The paper runs dice and cosine on PubMed over q-grams. *)
  fig17_panel ~name:"(d) dice on PubMed (4-grams)" ~csv:"fig17d_dice_pubmed"
    ~series:(List.map (fun d -> ("d=" ^ string_of_float d, d)) deltas)
    ~docs:pubmed_docs ~all_entities:(W.entities pubmed)
    ~mk_problem:(fun d ents ->
      Problem.create ~sim:(Sim.Dice d) ~mode:(Faerie_tokenize.Document.Gram 4) ents);
  fig17_panel ~name:"(e) cos on PubMed (4-grams)" ~csv:"fig17e_cos_pubmed"
    ~series:(List.map (fun d -> ("d=" ^ string_of_float d, d)) deltas)
    ~docs:pubmed_docs ~all_entities:(W.entities pubmed)
    ~mk_problem:(fun d ents ->
      Problem.create ~sim:(Sim.Cosine d) ~mode:(Faerie_tokenize.Document.Gram 4) ents)

(* ------------------------------------------------------------------ *)
(* Table 5: index size scaling                                          *)
(* ------------------------------------------------------------------ *)

(* The paper's "Heap+Array" row: the single heap holds one cursor per
   document token plus the reusable position buffer — independent of the
   dictionary size. *)
let heap_array_bytes problem text =
  let doc = Problem.tokenize_document problem text in
  let tokens = Faerie_tokenize.Document.tokens doc in
  let n = Array.length tokens in
  let index = Problem.index problem in
  let live, _ =
    Faerie_heaps.Multiway.heap_stats ~n_positions:n
      ~length_at:(fun pos ->
        Ix.Inverted_index.Postings.length
          (Ix.Inverted_index.postings index tokens.(pos)))
  in
  (* heap slots + cursor records (4 words each) + position buffer *)
  Bytesize.bytes_of_words ((live * 5) + n)

let table5 () =
  H.section ~exhibit:"Table 5" ~title:"index size scaling with dictionary size";
  let panel ~name ~csv ~corpus ~mk_problem =
    H.subsection name;
    let corpus = Lazy.force corpus in
    let all = W.entities corpus in
    let doc0 = corpus.Corpus.documents.(0).Corpus.text in
    H.table ~csv ~x_label:"entities"
      ~columns:[ "InvertedIndex"; "Heap+Array" ]
      ~rows:
        (List.map
           (fun frac ->
             let ents = W.take_fraction frac all in
             let problem = mk_problem ents in
             [ string_of_int (List.length ents);
               Bytesize.to_string
                 (Ix.Inverted_index.heap_bytes (Problem.index problem));
               Bytesize.to_string (heap_array_bytes problem doc0) ])
           fractions)
      ()
  in
  panel ~name:"(a) DBLP (ed, q=5)" ~csv:"table5a_dblp" ~corpus:W.dblp
    ~mk_problem:(fun ents -> Problem.create ~sim:(Sim.Edit_distance 0) ~q:5 ents);
  panel ~name:"(b) WebPage (jac, word tokens)" ~csv:"table5b_webpage" ~corpus:W.webpage
    ~mk_problem:(fun ents -> Problem.create ~sim:(Sim.Jaccard 0.9) ents);
  panel ~name:"(c) PubMed (eds, q=7)" ~csv:"table5c_pubmed" ~corpus:W.pubmed
    ~mk_problem:(fun ents -> Problem.create ~sim:(Sim.Edit_similarity 0.9) ~q:7 ents)

(* ------------------------------------------------------------------ *)
(* Ablations: design choices DESIGN.md calls out                        *)
(* ------------------------------------------------------------------ *)

let ablations () =
  H.section ~exhibit:"ablations"
    ~title:"design-choice ablations (merge engine, window search, lazy bound)";
  let dblp = Lazy.force W.dblp in
  let docs = W.doc_texts dblp 50 in
  let q = W.q_for_ed_dblp 2 in
  let sim = Sim.Edit_distance 2 in
  let problem = Problem.create ~sim ~q (W.indexed_subset ~sim ~q (W.entities dblp)) in

  H.subsection "merge engine: binary int-heap vs loser (tournament) tree";
  let run_with merger =
    H.timed (fun () ->
        Array.iter
          (fun text ->
            let doc = Problem.tokenize_document problem text in
            ignore (Single_heap.run ~merger problem doc))
          docs)
  in
  H.table ~csv:"ablation_merge_engine" ~x_label:"workload"
    ~columns:[ "Int_heap"; "Loser_tree" ]
    ~rows:
      [
        [ "ed dblp tau=2";
          H.fmt_time (run_with Faerie_heaps.Multiway.Binary_heap);
          H.fmt_time (run_with Faerie_heaps.Multiway.Tournament_tree) ];
      ]
    ();

  H.subsection "window search: binary span/shift vs linear span/shift";
  (* Collect every (position list, Tl, upper) an extraction visits, then
     time the two searches over the collection. Short lists favour the
     linear scan; the binary variant pays off on long position lists (the
     webpage workload, where common title tokens occur all over a page). *)
  let collect_cases problem docs =
    let cases = ref [] in
    let index = Problem.index problem in
    let ws = Ix.Inverted_index.Workspace.create () in
    Array.iter
      (fun text ->
        let doc = Problem.tokenize_document problem text in
        let buf, offs, lens = Ix.Inverted_index.decode_document index ws doc in
        Faerie_heaps.Multiway.iter_entity_positions
          ~n_positions:(Faerie_tokenize.Document.n_tokens doc)
          ~buf ~offs ~lens
          ~f:(fun ~entity ~positions ~n ->
            let info = Problem.info problem entity in
            if info.Problem.path = Problem.Indexed && n >= info.Problem.tl then
              cases :=
                (Array.sub positions 0 n, info.Problem.tl, info.Problem.upper)
                :: !cases)
          ())
      docs;
    Array.of_list !cases
  in
  let webpage = Lazy.force W.webpage in
  let wproblem = Problem.create ~sim:(Sim.Jaccard 0.85) (W.entities webpage) in
  let workloads =
    [ ("ed dblp tau=2", collect_cases problem docs);
      ("jac webpage d=.85", collect_cases wproblem (W.doc_texts webpage 3)) ]
  in
  let time_search search cases =
    H.timed (fun () ->
        for _ = 1 to 20 do
          Array.iter
            (fun (positions, tl, upper) ->
              search ~positions ~tl ~upper ~f:(fun ~first:_ ~last:_ -> ()))
            cases
        done)
  in
  H.table ~csv:"ablation_window_search" ~x_label:"workload"
    ~columns:[ "lists"; "avg len"; "binary"; "linear" ]
    ~rows:
      (List.map
         (fun (label, cases) ->
           let total =
             Array.fold_left (fun acc (p, _, _) -> acc + Array.length p) 0 cases
           in
           [ label; string_of_int (Array.length cases);
             H.fmt_float (float_of_int total /. float_of_int (max 1 (Array.length cases)));
             H.fmt_time
               (time_search
                  (fun ~positions ~tl ~upper ~f ->
                    Core.Windows.iter_windows ~positions ~tl ~upper ~f ())
                  cases);
             H.fmt_time
               (time_search
                  (fun ~positions ~tl ~upper ~f ->
                    Core.Windows.iter_windows_linear ~positions ~tl ~upper ~f ())
                  cases) ])
         workloads)
    ();

  H.subsection "multi-heap inner merge: heap count vs MergeSkip vs DivideSkip";
  let mh_docs = W.doc_texts dblp 2 in
  H.table ~csv:"ablation_tmerge" ~x_label:"algorithm" ~columns:[ "time"; "candidates" ]
    ~rows:
      (List.map
         (fun (label, algorithm) ->
           let matches = ref 0 and cands = ref 0 in
           let dt =
             H.timed (fun () ->
                 Array.iter
                   (fun text ->
                     let doc = Problem.tokenize_document problem text in
                     let ms, (st : Types.stats) =
                       Multi_heap.run ~algorithm problem doc
                     in
                     matches := !matches + List.length ms;
                     cands := !cands + st.Types.candidates)
                   mh_docs)
           in
           [ label; H.fmt_time dt; H.fmt_count !cands ])
         [ ("heap count", Multi_heap.Heap_count);
           ("MergeSkip", Multi_heap.Merge_skip);
           ("DivideSkip", Multi_heap.Divide_skip) ])
    ();

  H.subsection "lazy-count bound: exact minimum vs paper closed form";
  let pubmed = Lazy.force W.pubmed in
  let pdocs = W.doc_texts pubmed 5 in
  let d = 0.85 in
  let qp = W.q_for_eds_pubmed d in
  let simp = Sim.Edit_similarity d in
  let ents = W.indexed_subset ~sim:simp ~q:qp (W.entities pubmed) in
  H.table ~csv:"ablation_lazy_bound" ~x_label:"Tl bound"
    ~columns:[ "candidates"; "time"; "matches" ]
    ~rows:
      (List.map
         (fun (label, lazy_bound) ->
           let problem = Problem.create ~sim:simp ~q:qp ~lazy_bound ents in
           let r = run_single problem pdocs in
           [ label; H.fmt_count r.candidates; H.fmt_time r.seconds;
             string_of_int r.matches ])
         [ ("exact min", `Exact); ("paper form", `Paper) ])
    ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro suite                                                 *)
(* ------------------------------------------------------------------ *)

let micro () =
  H.section ~exhibit:"micro" ~title:"Bechamel micro-benchmarks of core operations";
  let open Bechamel in
  let open Toolkit in
  let dblp = Lazy.force W.dblp in
  let entities = W.take_fraction 0.2 (W.entities dblp) in
  let doc_text = dblp.Corpus.documents.(0).Corpus.text in
  let ed_problem = Problem.create ~sim:(Sim.Edit_distance 2) ~q:3 entities in
  let jac_problem = Problem.create ~sim:(Sim.Jaccard 0.8) entities in
  let interner = Faerie_tokenize.Interner.create () in
  ignore (Faerie_tokenize.Tokenizer.qgrams_intern interner ~q:3 doc_text);
  let positions = Array.init 200 (fun i -> i * 3) in
  let tests =
    Test.make_grouped ~name:"faerie"
      [
        Test.make ~name:"min_heap/push_pop_1k"
          (Staged.stage (fun () ->
               let h = Faerie_heaps.Min_heap.create ~cmp:compare () in
               for i = 0 to 999 do
                 Faerie_heaps.Min_heap.push h ((i * 7919) mod 1000)
               done;
               while not (Faerie_heaps.Min_heap.is_empty h) do
                 ignore (Faerie_heaps.Min_heap.pop_exn h)
               done));
        Test.make ~name:"tokenize/qgrams_doc"
          (Staged.stage (fun () ->
               ignore (Faerie_tokenize.Tokenizer.qgrams_lookup interner ~q:3 doc_text)));
        Test.make ~name:"tokenize/words_doc"
          (Staged.stage (fun () ->
               ignore (Faerie_tokenize.Tokenizer.word_offsets doc_text)));
        Test.make ~name:"edit_distance/banded_tau2"
          (Staged.stage (fun () ->
               ignore
                 (Faerie_sim.Edit_distance.distance_upto_banded ~cap:2
                    "approximate membership" "aproximate membershp")));
        Test.make ~name:"edit_distance/myers_tau2"
          (Staged.stage (fun () ->
               ignore
                 (Faerie_sim.Edit_distance.distance_upto_myers ~cap:2
                    "approximate membership" "aproximate membershp")));
        Test.make ~name:"windows/binary_span_shift"
          (Staged.stage (fun () ->
               Core.Windows.iter_windows ~positions ~tl:4 ~upper:12
                 ~f:(fun ~first:_ ~last:_ -> ()) ()));
        Test.make ~name:"extract/ed_one_doc"
          (Staged.stage (fun () ->
               let doc = Problem.tokenize_document ed_problem doc_text in
               ignore (Single_heap.run ed_problem doc)));
        Test.make ~name:"extract/jac_one_doc"
          (Staged.stage (fun () ->
               let doc = Problem.tokenize_document jac_problem doc_text in
               ignore (Single_heap.run jac_problem doc)));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl [] in
      List.iter
        (fun (name, v) ->
          match Analyze.OLS.estimates v with
          | Some [ est ] ->
              if est > 1e6 then Printf.printf "%-40s %10.3f ms/run\n" name (est /. 1e6)
              else Printf.printf "%-40s %10.0f ns/run\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        (List.sort compare rows))
    merged;
  flush stdout

(* ------------------------------------------------------------------ *)
(* Smoke workload (fixed size, CI regression gate)                      *)
(* ------------------------------------------------------------------ *)

(* Deliberately independent of FAERIE_SCALE: the CI gate compares its
   wall time against a checked-in baseline, so the workload must be the
   same on every run. Uses Extractor.run so the doc_wall_ns histogram
   (and hence the snapshot's latency percentiles) is populated. *)
let smoke () =
  H.section ~exhibit:"smoke" ~title:"fixed-size smoke workload (CI gate)";
  let corpus = Corpus.dblp ~seed:7 ~n_entities:400 ~n_documents:30 () in
  let sim = Sim.Edit_distance 2 in
  let q = 4 in
  let ents =
    W.indexed_subset ~sim ~q (Array.to_list corpus.Corpus.entities)
  in
  let extractor = Core.Extractor.of_problem (Problem.create ~sim ~q ents) in
  let matches = ref 0 and failed = ref 0 in
  Array.iteri
    (fun i (d : Corpus.document) ->
      let opts =
        { Core.Extractor.default_opts with doc_id = i; verifier = !verifier_ref }
      in
      let report = Core.Extractor.run ~opts extractor (`Text d.Corpus.text) in
      match report.Core.Extractor.outcome with
      | Core.Outcome.Ok rs | Core.Outcome.Degraded (rs, _) ->
          matches := !matches + List.length rs
      | Core.Outcome.Failed _ -> incr failed)
    corpus.Corpus.documents;
  Printf.printf "smoke: %d matches, %d failures over %d documents\n%!" !matches
    !failed
    (Array.length corpus.Corpus.documents)

(* Like smoke, but an order of magnitude more text (>= 50k document
   tokens): big enough that steady-state throughput and allocation rates
   dominate any per-section warmup, so the tokens_per_s /
   gc.words_per_token gate in CI measures the hot path. *)
let large () =
  H.section ~exhibit:"large"
    ~title:"fixed-size large workload (throughput/allocation gate)";
  let corpus = Corpus.dblp ~seed:11 ~n_entities:800 ~n_documents:600 () in
  let sim = Sim.Edit_distance 2 in
  let q = 4 in
  let ents = W.indexed_subset ~sim ~q (Array.to_list corpus.Corpus.entities) in
  let extractor = Core.Extractor.of_problem (Problem.create ~sim ~q ents) in
  let matches = ref 0 and failed = ref 0 and tokens = ref 0 in
  Array.iteri
    (fun i (d : Corpus.document) ->
      let opts =
        { Core.Extractor.default_opts with doc_id = i; verifier = !verifier_ref }
      in
      let doc = Core.Extractor.tokenize extractor d.Corpus.text in
      tokens := !tokens + Faerie_tokenize.Document.n_tokens doc;
      let report = Core.Extractor.run ~opts extractor (`Doc doc) in
      match report.Core.Extractor.outcome with
      | Core.Outcome.Ok rs | Core.Outcome.Degraded (rs, _) ->
          matches := !matches + List.length rs
      | Core.Outcome.Failed _ -> incr failed)
    corpus.Corpus.documents;
  Printf.printf "large: %d matches, %d failures over %d documents, %d tokens\n%!"
    !matches !failed
    (Array.length corpus.Corpus.documents)
    !tokens

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table4", table4); ("fig13", fig13); ("fig14", fig14_15);
    ("fig15", fig14_15); ("fig16", fig16); ("index_sizes", index_sizes);
    ("fig17", fig17); ("table5", table5); ("ablations", ablations);
    ("micro", micro); ("smoke", smoke); ("large", large);
  ]

let default_order =
  [ "table4"; "fig13"; "fig14"; "fig16"; "index_sizes"; "fig17"; "table5";
    "ablations"; "micro" ]

module Perf = Faerie_obs.Perf

let run_section name f =
  let dt = H.timed f in
  Printf.printf "\n[section %s finished in %s]\n%!" name (H.fmt_time dt);
  dt

let () =
  (* GC/allocation telemetry rides along for every section: exhibits that
     route through Extractor.run (smoke) get per-doc gc blocks in the
     --json snapshot; Prof's overhead is two Gc.quick_stat calls per
     instrumented stage, noise at bench granularity. *)
  Faerie_obs.Prof.enable ();
  Printf.printf "Faerie benchmark harness (FAERIE_SCALE=%g, %d entities)\n"
    W.scale W.n_entities;
  (* --json[=FILE]: after the selected sections, write one machine-readable
     faerie-bench-v2 snapshot (per-exhibit wall time, throughput, pipeline
     counters, latency/allocation percentiles, gc telemetry). Counters are
     attributed per section by resetting the registry before each one. *)
  let json_out = ref None in
  let names =
    List.filter
      (fun a ->
        if a = "--json" then begin
          json_out := Some "BENCH_faerie.json";
          false
        end
        else if String.length a > 7 && String.sub a 0 7 = "--json=" then begin
          json_out := Some (String.sub a 7 (String.length a - 7));
          false
        end
        else if String.length a > 11 && String.sub a 0 11 = "--verifier=" then begin
          let name = String.sub a 11 (String.length a - 11) in
          (match Faerie_sim.Verify.verifier_of_string name with
          | Some v -> verifier_ref := v
          | None ->
              Printf.eprintf "unknown verifier %S (auto | myers | banded)\n"
                name);
          false
        end
        else true)
      (List.tl (Array.to_list Sys.argv))
  in
  let requested = match names with [] -> default_order | names -> names in
  let exhibits = ref [] in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
          if !json_out = None then ignore (run_section name f)
          else begin
            Faerie_obs.Metrics.reset ();
            let dt = run_section name f in
            let snap = Faerie_obs.Metrics.snapshot () in
            exhibits :=
              Perf.exhibit_of_snapshot ~name ~wall_s:dt snap :: !exhibits
          end
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat ", " (List.map fst sections)))
    requested;
  match !json_out with
  | None -> ()
  | Some path ->
      let bench =
        {
          Perf.schema = Perf.schema_version;
          git_rev = H.git_rev ();
          scale = W.scale;
          ocaml = Sys.ocaml_version;
          exhibits = List.rev !exhibits;
        }
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Perf.bench_to_json bench));
      Printf.printf "\nwrote %s (%d exhibits)\n%!" path
        (List.length bench.Perf.exhibits)
