(* Timing and table-rendering helpers for the benchmark harness. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let timed f = snd (time f)

let section ~exhibit ~title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s — %s\n" exhibit title;
  Printf.printf "================================================================\n%!"

let subsection name = Printf.printf "\n--- %s ---\n%!" name

(* When FAERIE_CSV_DIR is set, every named table is also written there as a
   CSV file, ready for plotting. *)
let csv_dir = Sys.getenv_opt "FAERIE_CSV_DIR"

(* Recursive and race-tolerant: a nested FAERIE_CSV_DIR (out/csv) needs
   its parents, and a concurrent creator winning the race is success, not
   an error. [Sys.mkdir] surfaces EEXIST as Sys_error. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_csv name ~header ~rows =
  match csv_dir with
  | None -> ()
  | Some dir ->
      mkdir_p dir;
      let oc = open_out (Filename.concat dir (name ^ ".csv")) in
      let quote cell =
        if String.exists (fun c -> c = ',' || c = '"') cell then
          "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
        else cell
      in
      let line cells = output_string oc (String.concat "," (List.map quote cells) ^ "\n") in
      line header;
      List.iter line rows;
      close_out oc;
      (* One metrics snapshot per exported table, then a reset: each
         <name>.metrics.jsonl attributes pipeline counters (candidates,
         heap pops, verify calls, ...) to exactly the exhibit that produced
         them. *)
      let oc = open_out (Filename.concat dir (name ^ ".metrics.jsonl")) in
      output_string oc (Faerie_obs.Metrics.to_jsonl ());
      close_out oc;
      Faerie_obs.Metrics.reset ()

(* Render one table: first column = x label, then one column per series.
   Column widths adapt to the longest cell. [csv] names the exported file
   when FAERIE_CSV_DIR is set. *)
let table ?csv ~x_label ~columns ~rows () =
  Option.iter (fun name -> write_csv name ~header:(x_label :: columns) ~rows) csv;
  let header = x_label :: columns in
  let widths =
    List.mapi
      (fun i h ->
        let cell_max =
          List.fold_left
            (fun acc row ->
              match List.nth_opt row i with
              | Some c -> max acc (String.length c)
              | None -> acc)
            (String.length h) rows
        in
        max 12 (cell_max + 2))
      header
  in
  let print_cells cells =
    List.iter2 (fun w c -> Printf.printf "%-*s" w c) widths cells;
    print_newline ()
  in
  print_cells header;
  List.iter print_cells rows;
  flush stdout

let git_rev = Faerie_obs.Build_info.rev

let fmt_time s =
  if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.1fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

let fmt_count n =
  if n < 10_000 then string_of_int n
  else if n < 10_000_000 then Printf.sprintf "%.1fK" (float_of_int n /. 1e3)
  else Printf.sprintf "%.1fM" (float_of_int n /. 1e6)

let fmt_float x = Printf.sprintf "%.2f" x
