lib/sim/sim.mli: Format
