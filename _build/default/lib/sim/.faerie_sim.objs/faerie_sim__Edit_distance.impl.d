lib/sim/edit_distance.ml: Array String
