lib/sim/sim.ml: Format Printf
