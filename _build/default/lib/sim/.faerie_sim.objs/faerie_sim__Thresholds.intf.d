lib/sim/thresholds.mli: Sim
