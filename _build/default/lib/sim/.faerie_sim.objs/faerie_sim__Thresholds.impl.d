lib/sim/thresholds.ml: Float Sim
