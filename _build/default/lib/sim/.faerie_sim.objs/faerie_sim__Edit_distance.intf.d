lib/sim/edit_distance.mli:
