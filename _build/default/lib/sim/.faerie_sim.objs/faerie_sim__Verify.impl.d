lib/sim/verify.ml: Array Edit_distance Faerie_tokenize Float Format Sim Stdlib String
