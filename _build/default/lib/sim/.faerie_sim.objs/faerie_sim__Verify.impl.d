lib/sim/verify.ml: Array Edit_distance Faerie_tokenize Faerie_util Float Format Sim Stdlib String
