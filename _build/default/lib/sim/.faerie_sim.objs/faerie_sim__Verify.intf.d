lib/sim/verify.mli: Format Sim
