type t =
  | Jaccard of float
  | Cosine of float
  | Dice of float
  | Edit_distance of int
  | Edit_similarity of float

let validate = function
  | Jaccard d | Cosine d | Dice d | Edit_similarity d ->
      if not (d > 0. && d <= 1.) then
        invalid_arg
          (Printf.sprintf "Sim.validate: delta %g outside (0, 1]" d)
  | Edit_distance tau ->
      if tau < 0 then
        invalid_arg (Printf.sprintf "Sim.validate: tau %d negative" tau)

let char_based = function
  | Edit_distance _ | Edit_similarity _ -> true
  | Jaccard _ | Cosine _ | Dice _ -> false

let name = function
  | Jaccard _ -> "jac"
  | Cosine _ -> "cos"
  | Dice _ -> "dice"
  | Edit_distance _ -> "ed"
  | Edit_similarity _ -> "eds"

let pp ppf = function
  | Jaccard d -> Format.fprintf ppf "jac(delta=%g)" d
  | Cosine d -> Format.fprintf ppf "cos(delta=%g)" d
  | Dice d -> Format.fprintf ppf "dice(delta=%g)" d
  | Edit_distance tau -> Format.fprintf ppf "ed(tau=%d)" tau
  | Edit_similarity d -> Format.fprintf ppf "eds(delta=%g)" d

let to_string t = Format.asprintf "%a" pp t
