(** Levenshtein edit distance: full DP, threshold-banded DP, and the derived
    edit similarity. Used by the verify step and by the NGPP baseline. *)

val distance : string -> string -> int
(** Classic two-row dynamic program, O(|r| * |s|) time, O(min) space. *)

val within : string -> string -> int -> bool
(** [within r s tau] iff [distance r s <= tau], via a banded DP that visits
    only the diagonal band of width [2*tau+1] and exits early when every
    band cell exceeds [tau]. O((|r|+|s|) * tau) time. *)

val distance_upto : cap:int -> string -> string -> int option
(** [distance_upto ~cap r s] is [Some d] with [d = distance r s] when
    [d <= cap], [None] otherwise; banded like {!within}. *)

val similarity : string -> string -> float
(** [1 - distance r s / max(len r, len s)]; by convention [1.0] when both
    strings are empty. *)
