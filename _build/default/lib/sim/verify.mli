(** Exact verification of candidate pairs (the "verify" half of
    filter-and-verify). *)

module Score : sig
  type t =
    | Similarity of float  (** jaccard / cosine / dice / edit similarity *)
    | Distance of int  (** edit distance *)

  val passes : Sim.t -> t -> bool
  (** Does the measured score satisfy the threshold? Similarities compare
      with a [1e-9] tolerance so that exact rational ties (e.g. [delta = 1]
      with identical strings) always pass. *)

  val pp : Format.formatter -> t -> unit

  val compare : t -> t -> int
  (** Orders better scores first: higher similarity, lower distance. *)
end

val token_score : Sim.t -> e_tokens:int array -> s_tokens:int array -> Score.t
(** Exact token-based similarity of two sorted token multisets.
    Occurrences of {!Faerie_tokenize.Span.missing} in [s_tokens] count
    toward [|s|] but never toward the overlap.

    @raise Invalid_argument when applied to a character-based function. *)

val char_score : Sim.t -> e_str:string -> s_str:string -> Score.t
(** Exact character-based score, computed with a banded DP capped at the
    largest edit distance that could still pass (a failing pair reports the
    cap + 1, enough to decide {!Score.passes}).

    @raise Invalid_argument when applied to a token-based function. *)

val check :
  Sim.t ->
  e_tokens:int array ->
  e_str:string ->
  s_tokens:int array ->
  s_str:string ->
  Score.t
(** Dispatch on the function kind. *)
