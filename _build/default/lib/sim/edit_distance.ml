let distance r s =
  let m = String.length r and n = String.length s in
  if m = 0 then n
  else if n = 0 then m
  else begin
    (* Keep the shorter string on the column axis. *)
    let r, s, m, n = if m <= n then (r, s, m, n) else (s, r, n, m) in
    let prev = Array.init (m + 1) (fun i -> i) in
    let curr = Array.make (m + 1) 0 in
    for j = 1 to n do
      curr.(0) <- j;
      let sj = s.[j - 1] in
      for i = 1 to m do
        let cost = if r.[i - 1] = sj then 0 else 1 in
        curr.(i) <-
          min (min (prev.(i) + 1) (curr.(i - 1) + 1)) (prev.(i - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let infinity_cost = max_int / 2

let distance_upto ~cap r s =
  if cap < 0 then None
  else begin
    let m = String.length r and n = String.length s in
    if abs (m - n) > cap then None
    else if m = 0 then (if n <= cap then Some n else None)
    else if n = 0 then (if m <= cap then Some m else None)
    else begin
      let r, s, m, n = if m <= n then (r, s, m, n) else (s, r, n, m) in
      (* Band: for row j (over s), only columns i with |i - j| <= cap can end
         below cap. prev.(i) = D(i, j-1); cells outside band = infinity. *)
      let prev = Array.make (m + 1) infinity_cost in
      let curr = Array.make (m + 1) infinity_cost in
      for i = 0 to min m cap do
        prev.(i) <- i
      done;
      let result = ref (if n = 0 then Some m else None) in
      (try
         for j = 1 to n do
           let lo = max 0 (j - cap) and hi = min m (j + cap) in
           let row_min = ref infinity_cost in
           for i = lo to hi do
             let v =
               if i = 0 then j
               else begin
                 let cost = if r.[i - 1] = s.[j - 1] then 0 else 1 in
                 let best = prev.(i - 1) + cost in
                 let best =
                   if i - 1 >= lo then min best (curr.(i - 1) + 1) else best
                 in
                 let best = if i <= j + cap - 1 then min best (prev.(i) + 1) else best in
                 best
               end
             in
             curr.(i) <- v;
             if v < !row_min then row_min := v
           done;
           if !row_min > cap then raise Exit;
           (* Reset prev outside next band, then swap rows. *)
           Array.blit curr 0 prev 0 (m + 1);
           Array.fill curr 0 (m + 1) infinity_cost;
           if lo > 0 then prev.(lo - 1) <- infinity_cost
         done;
         if prev.(m) <= cap then result := Some prev.(m)
       with Exit -> result := None);
      !result
    end
  end

let within r s tau = distance_upto ~cap:tau r s <> None

let similarity r s =
  let m = max (String.length r) (String.length s) in
  if m = 0 then 1.0
  else 1.0 -. (float_of_int (distance r s) /. float_of_int m)
