(* Epsilon slack: lower bounds round down a hair before ceiling, upper
   bounds round up a hair before flooring, so float noise can only loosen a
   bound (completeness is never at risk; verification restores precision). *)
let eps = 1e-9

let ceil_lo x = int_of_float (Float.ceil (x -. eps))

let floor_hi x = int_of_float (Float.floor (x +. eps))

let overlap sim ~q ~e_len ~s_len =
  let e = float_of_int e_len and s = float_of_int s_len in
  match sim with
  | Sim.Jaccard d -> ceil_lo ((e +. s) *. d /. (1. +. d))
  | Sim.Cosine d -> ceil_lo (sqrt (e *. s) *. d)
  | Sim.Dice d -> ceil_lo ((e +. s) *. d /. 2.)
  | Sim.Edit_distance tau -> max e_len s_len - (tau * q)
  | Sim.Edit_similarity d ->
      let m = float_of_int (max e_len s_len) in
      ceil_lo (m -. ((m +. float_of_int q -. 1.) *. (1. -. d) *. float_of_int q))

let substring_bounds sim ~q ~e_len =
  let e = float_of_int e_len in
  let lower, upper =
    match sim with
    | Sim.Jaccard d -> (ceil_lo (e *. d), floor_hi (e /. d))
    | Sim.Cosine d -> (ceil_lo (e *. d *. d), floor_hi (e /. (d *. d)))
    | Sim.Dice d -> (ceil_lo (e *. d /. (2. -. d)), floor_hi (e *. (2. -. d) /. d))
    | Sim.Edit_distance tau -> (e_len - tau, e_len + tau)
    | Sim.Edit_similarity d ->
        let len = e +. float_of_int q -. 1. in
        ( ceil_lo ((len *. d) -. (float_of_int q -. 1.)),
          floor_hi ((len /. d) -. (float_of_int q -. 1.)) )
  in
  (max 1 lower, upper)

let lazy_overlap sim ~q ~e_len =
  let lower, upper = substring_bounds sim ~q ~e_len in
  if upper < lower then max_int (* nothing can match; filter everything *)
  else begin
    let best = ref max_int in
    for s_len = lower to upper do
      let t = overlap sim ~q ~e_len ~s_len in
      if t < !best then best := t
    done;
    !best
  end

let lazy_overlap_paper sim ~q ~e_len =
  let e = float_of_int e_len in
  match sim with
  | Sim.Jaccard d -> ceil_lo (e *. d)
  | Sim.Cosine d -> ceil_lo (e *. d *. d)
  | Sim.Dice d -> ceil_lo (e *. d /. (2. -. d))
  | Sim.Edit_distance tau -> e_len - (tau * q)
  | Sim.Edit_similarity d ->
      let len = e +. float_of_int q -. 1. in
      ceil_lo (e -. (len *. (1. -. d) /. d *. float_of_int q))

let bucket_gap sim ~q ~e_len =
  let _, upper = substring_bounds sim ~q ~e_len in
  let tl = lazy_overlap sim ~q ~e_len in
  let generic = if tl = max_int then -1 else upper - tl in
  match sim with
  | Sim.Edit_distance tau -> min generic (tau * q)
  | Sim.Edit_similarity d ->
      let len = float_of_int e_len +. float_of_int q -. 1. in
      min generic (floor_hi (len /. d *. (1. -. d) *. float_of_int q))
  | Sim.Jaccard _ | Sim.Cosine _ | Sim.Dice _ -> generic

let window_span_upper sim ~q ~e_len ~wlen =
  let _, upper = substring_bounds sim ~q ~e_len in
  let w = float_of_int (min e_len wlen) in
  match sim with
  | Sim.Jaccard d -> min upper (floor_hi (w /. d))
  | Sim.Cosine d -> min upper (floor_hi (w /. (d *. d)))
  | Sim.Dice d -> min upper (floor_hi (w *. (2. -. d) /. d))
  | Sim.Edit_distance _ | Sim.Edit_similarity _ -> upper
