(** The unified filtering thresholds of the paper (Lemmas 1–3).

    Everywhere below [e_len] and [s_len] are *token counts*: word tokens for
    jaccard/cosine/dice, q-grams for edit distance/similarity (for a string
    of [c] characters, [e_len = c - q + 1]). [q] is only consulted by the
    character-based functions.

    All fractional bounds are computed in floating point with a small
    epsilon slack applied in the direction that can only *loosen* a bound,
    so rounding can never prune a true result; the verify step restores
    exactness. *)

val overlap : Sim.t -> q:int -> e_len:int -> s_len:int -> int
(** Lemma 1: the overlap threshold [T]. If entity [e] and substring [s] are
    similar then [|e ∩ s| >= T]. May be [<= 0], in which case the overlap
    filter is vacuous for this pair (the caller must treat every valid
    substring as a candidate). *)

val substring_bounds : Sim.t -> q:int -> e_len:int -> int * int
(** Lemma 2: [(lower, upper)] bounds on the token count of any substring
    similar to an entity with [e_len] tokens. [lower] is clamped to [>= 1].
    [upper < lower] means no substring can match (e.g. an entity shorter
    than the edit budget can destroy). *)

val lazy_overlap : Sim.t -> q:int -> e_len:int -> int
(** The lazy-count threshold [Tl]: a lower bound of [overlap] over all
    valid substring lengths, i.e. [min over s_len in substring_bounds] of
    [overlap]. Computed exactly by scanning the (small) length range, hence
    always [<=] the paper's closed form {!lazy_overlap_paper} never looser.
    If an entity's heap occurrence count is below [Tl] it cannot match any
    substring (Lemma 3). May be [<= 0] (vacuous filter). *)

val lazy_overlap_paper : Sim.t -> q:int -> e_len:int -> int
(** The closed-form [Tl] from Section 4.1 of the paper, kept for reference
    and cross-checked against {!lazy_overlap} in the test suite. *)

val bucket_gap : Sim.t -> q:int -> e_len:int -> int
(** Bucket-count pruning (Section 4.1): two neighbouring positions
    [p_i, p_{i+1}] of an entity's position list can belong to the same
    bucket only if [p_{i+1} - p_i - 1 <= bucket_gap]; a larger gap implies
    enough mismatched tokens to rule out any substring containing both.
    This is the tighter of the generic bound [upper - Tl] and the
    function-specific bounds the paper derives (e.g. [tau * q] for edit
    distance). *)

val window_span_upper : Sim.t -> q:int -> e_len:int -> wlen:int -> int
(** Upper bound on the token span [p_j - p_i + 1] of a candidate window
    containing [wlen] positions (Section 4.1's tightened candidate-window
    condition for the token-based functions; equals the Lemma 2 upper bound
    for the character-based ones). *)
