type t = { token : int; start_pos : int; len : int }

let missing = -1

let pp ppf t =
  Format.fprintf ppf "{token=%d; start=%d; len=%d}" t.token t.start_pos t.len
