lib/tokenize/span.ml: Format
