lib/tokenize/token_ops.ml: Array List Span
