lib/tokenize/document.mli: Interner Span
