lib/tokenize/tokenizer.mli: Interner Span
