lib/tokenize/tokenizer.ml: Array Interner List Span String
