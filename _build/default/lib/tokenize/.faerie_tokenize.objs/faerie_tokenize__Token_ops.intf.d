lib/tokenize/token_ops.mli: Span
