lib/tokenize/document.ml: Array Printf Span String Tokenizer
