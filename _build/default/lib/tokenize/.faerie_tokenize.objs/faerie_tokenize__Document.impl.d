lib/tokenize/document.ml: Array Faerie_util Printf Span String Tokenizer
