lib/tokenize/interner.mli:
