lib/tokenize/span.mli: Format
