lib/tokenize/interner.ml: Faerie_util Hashtbl Printf
