module Dynarray = Faerie_util.Dynarray
module Bytesize = Faerie_util.Bytesize

type t = {
  table : (string, int) Hashtbl.t;
  strings : string Dynarray.t;
}

let create ?(initial_capacity = 1024) () =
  { table = Hashtbl.create initial_capacity; strings = Dynarray.create () }

let intern t s =
  match Hashtbl.find_opt t.table s with
  | Some id -> id
  | None ->
      let id = Dynarray.length t.strings in
      Hashtbl.add t.table s id;
      Dynarray.push t.strings s;
      id

let find_opt t s = Hashtbl.find_opt t.table s

let to_string t id =
  if id < 0 || id >= Dynarray.length t.strings then
    invalid_arg (Printf.sprintf "Interner.to_string: unknown id %d" id);
  Dynarray.get t.strings id

let size t = Dynarray.length t.strings

let heap_bytes t =
  let string_bytes =
    Dynarray.fold_left (fun acc s -> acc + Bytesize.string_bytes s) 0 t.strings
  in
  (* Hashtbl: roughly 3 words per binding plus the bucket array; the pointer
     array in [strings] adds one word per entry. *)
  let n = size t in
  string_bytes + Bytesize.bytes_of_words ((3 * n) + n + (2 * n))
