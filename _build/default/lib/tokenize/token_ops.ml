let sorted_of_spans spans =
  let ids = Array.map (fun s -> s.Span.token) spans in
  Array.sort compare ids;
  ids

let multiset_overlap a b =
  let na = Array.length a and nb = Array.length b in
  let rec loop i j acc =
    if i >= na || j >= nb then acc
    else if a.(i) = Span.missing then loop (i + 1) j acc
    else if b.(j) = Span.missing then loop i (j + 1) acc
    else if a.(i) = b.(j) then loop (i + 1) (j + 1) (acc + 1)
    else if a.(i) < b.(j) then loop (i + 1) j acc
    else loop i (j + 1) acc
  in
  loop 0 0 0

let distinct a =
  let a = Array.copy a in
  Array.sort compare a;
  let out = ref [] in
  Array.iter
    (fun x ->
      if x <> Span.missing then
        match !out with
        | y :: _ when y = x -> ()
        | _ -> out := x :: !out)
    a;
  Array.of_list (List.rev !out)
