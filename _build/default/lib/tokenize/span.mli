(** A token occurrence inside a piece of text: interned id plus character
    extent in the (normalized) source string. *)

type t = {
  token : int;  (** interned token id, or {!missing} for unknown tokens *)
  start_pos : int;  (** 0-based character offset of the first character *)
  len : int;  (** length in characters *)
}

val missing : int
(** Sentinel id used for document tokens that do not occur in any dictionary
    entity (their inverted lists are empty, but they still occupy a position
    so substring token counts stay correct). *)

val pp : Format.formatter -> t -> unit
