(** Operations on sorted token-id multisets. *)

val sorted_of_spans : Span.t array -> int array
(** Token ids of the spans, sorted ascending (multiset representation). *)

val multiset_overlap : int array -> int array -> int
(** [multiset_overlap a b] is [|a ∩ b|] as multisets, both arrays sorted
    ascending. Occurrences of {!Span.missing} never match anything (an
    unknown document token cannot equal a dictionary token). *)

val distinct : int array -> int array
(** Sorted distinct values, dropping {!Span.missing}. *)
