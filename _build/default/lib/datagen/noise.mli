(** Controlled corruption of planted entity mentions. *)

val perturb_chars : Faerie_util.Xorshift.t -> edits:int -> string -> string
(** Apply exactly [edits] random single-character operations (insert,
    delete, substitute), so the result is within edit distance [edits] of
    the input. Deletions are skipped on an empty string. Inserted /
    substituted characters are lowercase letters. *)

val drop_tokens : Faerie_util.Xorshift.t -> drops:int -> string -> string
(** Remove [drops] random whitespace-separated tokens (never all of
    them). The surviving tokens keep their order, so the result's token
    multiset is a sub-multiset of the input's. *)

val swap_adjacent_tokens : Faerie_util.Xorshift.t -> string -> string
(** Swap one random adjacent token pair (token-multiset preserving — a
    similarity-1 rewrite for the token-based functions). *)
