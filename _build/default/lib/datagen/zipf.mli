(** Zipfian sampling over a finite rank space.

    Real corpora have heavily skewed token frequencies, and inverted-list
    skew is exactly what stresses the filtering algorithms (a handful of
    very long lists dominate the merge). The synthetic corpora therefore
    draw vocabulary by Zipf rank rather than uniformly.

    Sampling inverts the cumulative distribution with binary search over a
    precomputed table: O(n) setup, O(log n) per sample, exact (no
    rejection). *)

type t

val create : ?exponent:float -> n:int -> unit -> t
(** Distribution over ranks [0 .. n-1] with
    [P(rank = k) proportional to 1 / (k+1)^exponent]. [exponent] defaults
    to 1.0 (classic Zipf); [0.0] degenerates to uniform.

    @raise Invalid_argument if [n <= 0] or [exponent < 0]. *)

val size : t -> int

val sample : t -> Faerie_util.Xorshift.t -> int
(** A rank in [\[0, size)]. Rank 0 is the most frequent. *)

val probability : t -> int -> float
(** [probability t k] is [P(rank = k)]; for tests. *)
