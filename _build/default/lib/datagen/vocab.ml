module Xorshift = Faerie_util.Xorshift

let stopwords =
  [|
    "the"; "of"; "and"; "a"; "to"; "in"; "is"; "for"; "on"; "with"; "as";
    "by"; "an"; "be"; "this"; "that"; "from"; "at"; "or"; "are"; "it";
    "was"; "which"; "we"; "our"; "can"; "has"; "have"; "their"; "its";
    "these"; "using"; "based"; "new"; "more"; "some"; "such"; "between";
    "over"; "under"; "into"; "than"; "also"; "both"; "each"; "other";
    "results"; "show"; "propose"; "study"; "approach"; "method"; "paper";
  |]

let onsets =
  [|
    "b"; "c"; "d"; "f"; "g"; "h"; "j"; "k"; "l"; "m"; "n"; "p"; "r"; "s";
    "t"; "v"; "w"; "z"; "ch"; "sh"; "th"; "br"; "cr"; "dr"; "st"; "tr";
    "pl"; "gr"; "sl"; "fr";
  |]

let nuclei = [| "a"; "e"; "i"; "o"; "u"; "ai"; "ea"; "ou"; "io"; "ee" |]

let codas = [| ""; ""; ""; "n"; "r"; "s"; "t"; "l"; "m"; "ng"; "rd"; "ck" |]

let syllable rng =
  Xorshift.choose rng onsets
  ^ Xorshift.choose rng nuclei
  ^ Xorshift.choose rng codas

let word rng ~min_syllables ~max_syllables =
  let n = Xorshift.int_in_range rng ~lo:min_syllables ~hi:max_syllables in
  let buf = Buffer.create 16 in
  for _ = 1 to n do
    Buffer.add_string buf (syllable rng)
  done;
  Buffer.contents buf

let capitalize s =
  if String.length s = 0 then s
  else
    String.make 1 (Char.uppercase_ascii s.[0])
    ^ String.sub s 1 (String.length s - 1)

let person_name rng =
  let given = capitalize (word rng ~min_syllables:2 ~max_syllables:3) in
  let family = capitalize (word rng ~min_syllables:2 ~max_syllables:3) in
  if Xorshift.int rng 5 = 0 then
    (* occasional middle initial, as in bibliographic data *)
    let initial = String.make 1 (Char.chr (Char.code 'A' + Xorshift.int rng 26)) in
    Printf.sprintf "%s %s %s" given initial family
  else Printf.sprintf "%s %s" given family

let tech_word_pool rng ~size =
  Array.init size (fun _ -> word rng ~min_syllables:1 ~max_syllables:4)

let pick_pool rng ~pool ~zipf =
  match zipf with
  | Some z -> pool.(Zipf.sample z rng)
  | None -> Xorshift.choose rng pool

let title rng ~pool ?zipf ~min_words ~max_words () =
  let n = Xorshift.int_in_range rng ~lo:min_words ~hi:max_words in
  let words =
    List.init n (fun i ->
        (* Mix pool words with stopwords the way titles do. *)
        if i > 0 && Xorshift.int rng 4 = 0 then Xorshift.choose rng stopwords
        else pick_pool rng ~pool ~zipf)
  in
  String.concat " " words
