lib/datagen/vocab.ml: Array Buffer Char Faerie_util List Printf String Zipf
