lib/datagen/corpus.ml: Array Buffer Faerie_util Format Hashtbl List Noise String Vocab Zipf
