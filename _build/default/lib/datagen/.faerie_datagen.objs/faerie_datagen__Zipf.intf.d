lib/datagen/zipf.mli: Faerie_util
