lib/datagen/noise.mli: Faerie_util
