lib/datagen/corpus.mli: Format
