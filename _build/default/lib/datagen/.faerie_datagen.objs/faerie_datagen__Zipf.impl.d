lib/datagen/zipf.ml: Array Faerie_util Float
