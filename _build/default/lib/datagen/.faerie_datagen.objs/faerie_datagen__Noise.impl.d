lib/datagen/noise.ml: Array Bytes Char Faerie_util List String
