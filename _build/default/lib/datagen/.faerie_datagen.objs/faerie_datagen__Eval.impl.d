lib/datagen/eval.ml: Array Corpus Faerie_core Format List
