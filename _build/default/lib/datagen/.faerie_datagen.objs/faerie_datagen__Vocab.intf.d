lib/datagen/vocab.mli: Faerie_util Zipf
