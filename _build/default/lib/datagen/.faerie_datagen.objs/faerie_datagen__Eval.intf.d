lib/datagen/eval.mli: Corpus Faerie_core Format
