(** Synthetic corpora with planted, noise-controlled entity mentions.

    Three profiles mirror the paper's datasets (Table 4): [dblp]
    (author-name entities, short paper records), [pubmed] (title entities,
    medium publication records) and [webpage] (title entities, long
    documents). Every embedded mention is recorded with its character
    extent and the exact amount of injected noise, giving the test suite
    ground truth the real corpora could never provide: a mention planted
    with [char_edits <= tau] {e must} be recovered by an edit-distance
    extraction at threshold [tau]. *)

type mention = {
  entity : int;  (** entity id (index into [entities]) *)
  char_start : int;  (** offset of the mention in the document *)
  char_len : int;
  char_edits : int;  (** character edits injected (ed to the entity <= this) *)
  token_drops : int;  (** whole tokens removed *)
}

type document = { text : string; mentions : mention list }

type t = {
  name : string;
  entities : string array;
  documents : document array;
}

type profile = {
  profile_name : string;
  n_entities : int;
  n_documents : int;
  entity_kind : [ `Person_name | `Title of int * int ];
      (** [`Title (min_words, max_words)] *)
  filler_tokens : int * int;  (** filler tokens per document (range) *)
  mentions_per_doc : int * int;
  max_char_edits : int;
  max_token_drops : int;
  pool_size : int;  (** shared vocabulary size (token overlap across entities) *)
}

val generate : ?seed:int -> profile -> t

val dblp : ?seed:int -> ?n_entities:int -> ?n_documents:int -> unit -> t
(** Author names, ≈2.8 tokens / 21 chars; records ≈17 tokens. *)

val pubmed : ?seed:int -> ?n_entities:int -> ?n_documents:int -> unit -> t
(** Paper titles, ≈7 tokens / 53 chars; records ≈34 tokens. *)

val webpage : ?seed:int -> ?n_entities:int -> ?n_documents:int -> unit -> t
(** Page titles, ≈8.5 tokens / 67 chars; long documents (≈1268 tokens). *)

type stats = {
  n_entities : int;
  avg_entity_chars : float;
  avg_entity_tokens : float;
  n_documents : int;
  avg_document_chars : float;
  avg_document_tokens : float;
}

val stats : t -> stats
(** The Table 4 statistics of a generated corpus. *)

val pp_stats : Format.formatter -> stats -> unit
