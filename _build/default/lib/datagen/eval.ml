module Types = Faerie_core.Types

type outcome = {
  planted : int;
  recovered : int;
  reported : int;
  span_hits : int;
}

let overlaps (m : Types.char_match) (p : Corpus.mention) =
  m.Types.c_start < p.Corpus.char_start + p.Corpus.char_len
  && p.Corpus.char_start < m.Types.c_start + m.Types.c_len

let evaluate ?(recoverable = fun _ -> true) ~corpus ~matches_of () =
  let planted = ref 0 and recovered = ref 0 in
  let reported = ref 0 and span_hits = ref 0 in
  Array.iteri
    (fun doc_id (d : Corpus.document) ->
      let matches = matches_of doc_id in
      reported := !reported + List.length matches;
      List.iter
        (fun (p : Corpus.mention) ->
          if recoverable p then begin
            incr planted;
            if
              List.exists
                (fun (m : Types.char_match) ->
                  m.Types.c_entity = p.Corpus.entity
                  && m.Types.c_start = p.Corpus.char_start
                  && m.Types.c_len = p.Corpus.char_len)
                matches
            then incr recovered
          end)
        d.Corpus.mentions;
      List.iter
        (fun (m : Types.char_match) ->
          if
            List.exists
              (fun (p : Corpus.mention) ->
                p.Corpus.entity = m.Types.c_entity && overlaps m p)
              d.Corpus.mentions
          then incr span_hits)
        matches)
    corpus.Corpus.documents;
  {
    planted = !planted;
    recovered = !recovered;
    reported = !reported;
    span_hits = !span_hits;
  }

let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den

let recall o = ratio o.recovered o.planted

let precision o = ratio o.span_hits o.reported

let f1 o =
  let p = precision o and r = recall o in
  if p +. r = 0. then 0. else 2. *. p *. r /. (p +. r)

let pp ppf o =
  Format.fprintf ppf
    "recall %.3f (%d/%d planted), precision %.3f (%d/%d reported), F1 %.3f"
    (recall o) o.recovered o.planted (precision o) o.span_hits o.reported (f1 o)
