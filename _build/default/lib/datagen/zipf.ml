module Xorshift = Faerie_util.Xorshift

type t = { cumulative : float array (* cumulative.(k) = P(rank <= k) *) }

let create ?(exponent = 1.0) ~n () =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if exponent < 0. then invalid_arg "Zipf.create: exponent must be >= 0";
  let weights =
    Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) exponent)
  in
  let total = Array.fold_left ( +. ) 0. weights in
  let cumulative = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun k w ->
      acc := !acc +. (w /. total);
      cumulative.(k) <- !acc)
    weights;
  cumulative.(n - 1) <- 1.0;
  { cumulative }

let size t = Array.length t.cumulative

let sample t rng =
  let u = Xorshift.float rng 1.0 in
  (* smallest k with cumulative.(k) > u *)
  let lo = ref 0 and hi = ref (Array.length t.cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let probability t k =
  if k < 0 || k >= size t then invalid_arg "Zipf.probability: rank out of range";
  if k = 0 then t.cumulative.(0) else t.cumulative.(k) -. t.cumulative.(k - 1)
