module Xorshift = Faerie_util.Xorshift

type mention = {
  entity : int;
  char_start : int;
  char_len : int;
  char_edits : int;
  token_drops : int;
}

type document = { text : string; mentions : mention list }

type t = { name : string; entities : string array; documents : document array }

type profile = {
  profile_name : string;
  n_entities : int;
  n_documents : int;
  entity_kind : [ `Person_name | `Title of int * int ];
  filler_tokens : int * int;
  mentions_per_doc : int * int;
  max_char_edits : int;
  max_token_drops : int;
  pool_size : int;
}

let generate_entities rng profile pool zipf =
  let seen = Hashtbl.create profile.n_entities in
  let fresh () =
    match profile.entity_kind with
    | `Person_name -> Vocab.person_name rng
    | `Title (min_words, max_words) ->
        Vocab.title rng ~pool ?zipf ~min_words ~max_words ()
  in
  Array.init profile.n_entities (fun _ ->
      let rec attempt k =
        let e = fresh () in
        if k > 0 && Hashtbl.mem seen e then attempt (k - 1)
        else begin
          Hashtbl.replace seen e ();
          e
        end
      in
      attempt 20)

let corrupt rng profile entity_text =
  if Xorshift.int rng 2 = 0 then (entity_text, 0, 0)
  else begin
    let drops =
      if profile.max_token_drops = 0 then 0
      else Xorshift.int rng (profile.max_token_drops + 1)
    in
    let s = Noise.drop_tokens rng ~drops entity_text in
    let drops = if String.equal s entity_text then 0 else drops in
    let edits =
      if profile.max_char_edits = 0 then 0
      else Xorshift.int rng (profile.max_char_edits + 1)
    in
    let s' = Noise.perturb_chars rng ~edits s in
    (s', edits, drops)
  end

let generate_document rng profile pool zipf entities =
  let buf = Buffer.create 1024 in
  let mentions = ref [] in
  let n_filler =
    let lo, hi = profile.filler_tokens in
    Xorshift.int_in_range rng ~lo ~hi
  in
  let n_mentions =
    let lo, hi = profile.mentions_per_doc in
    Xorshift.int_in_range rng ~lo ~hi
  in
  (* Mention insertion points among the filler stream. *)
  let slots =
    Array.init n_mentions (fun _ -> Xorshift.int rng (n_filler + 1))
  in
  Array.sort compare slots;
  let next_slot = ref 0 in
  let sep () =
    if Buffer.length buf > 0 then
      if Xorshift.int rng 12 = 0 then Buffer.add_string buf ". "
      else if Xorshift.int rng 15 = 0 then Buffer.add_string buf ", "
      else Buffer.add_char buf ' '
  in
  let add_mentions_at i =
    while !next_slot < n_mentions && slots.(!next_slot) = i do
      let entity = Xorshift.int rng (Array.length entities) in
      let text, char_edits, token_drops =
        corrupt rng profile entities.(entity)
      in
      if String.length text > 0 then begin
        sep ();
        let char_start = Buffer.length buf in
        Buffer.add_string buf text;
        mentions :=
          {
            entity;
            char_start;
            char_len = String.length text;
            char_edits;
            token_drops;
          }
          :: !mentions
      end;
      incr next_slot
    done
  in
  for i = 0 to n_filler - 1 do
    add_mentions_at i;
    sep ();
    let w =
      if Xorshift.int rng 3 = 0 then Xorshift.choose rng Vocab.stopwords
      else Vocab.pick_pool rng ~pool ~zipf:(Some zipf)
    in
    Buffer.add_string buf w
  done;
  add_mentions_at n_filler;
  Buffer.add_char buf '.';
  { text = Buffer.contents buf; mentions = List.rev !mentions }

let generate ?(seed = 42) profile =
  let rng = Xorshift.create seed in
  let pool = Vocab.tech_word_pool rng ~size:profile.pool_size in
  (* Token frequencies are Zipf-skewed like real text; the resulting
     inverted-list skew is what stresses the filtering algorithms. The
     exponent is kept below 1: these pools are far smaller than a real
     vocabulary, and classic Zipf over a small pool would put the head
     word in a fifth of all draws — a degenerate workload no real corpus
     exhibits. *)
  let zipf = Zipf.create ~exponent:0.5 ~n:profile.pool_size () in
  let entities = generate_entities rng profile pool (Some zipf) in
  let documents =
    Array.init profile.n_documents (fun _ ->
        generate_document rng profile pool zipf entities)
  in
  { name = profile.profile_name; entities; documents }

let dblp ?seed ?(n_entities = 10_000) ?(n_documents = 1_000) () =
  generate ?seed
    {
      profile_name = "dblp";
      n_entities;
      n_documents;
      entity_kind = `Person_name;
      filler_tokens = (10, 18);
      mentions_per_doc = (1, 3);
      max_char_edits = 2;
      max_token_drops = 0;
      pool_size = 2_000;
    }

let pubmed ?seed ?(n_entities = 10_000) ?(n_documents = 1_000) () =
  generate ?seed
    {
      profile_name = "pubmed";
      n_entities;
      n_documents;
      entity_kind = `Title (5, 9);
      filler_tokens = (20, 40);
      mentions_per_doc = (1, 2);
      max_char_edits = 3;
      max_token_drops = 1;
      pool_size = 8_000;
    }

let webpage ?seed ?(n_entities = 10_000) ?(n_documents = 100) () =
  generate ?seed
    {
      profile_name = "webpage";
      n_entities;
      n_documents;
      entity_kind = `Title (6, 11);
      filler_tokens = (900, 1_500);
      mentions_per_doc = (4, 12);
      max_char_edits = 2;
      max_token_drops = 2;
      pool_size = 10_000;
    }

type stats = {
  n_entities : int;
  avg_entity_chars : float;
  avg_entity_tokens : float;
  n_documents : int;
  avg_document_chars : float;
  avg_document_tokens : float;
}

let whitespace_tokens s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "") |> List.length

let avg f arr =
  if Array.length arr = 0 then 0.
  else
    Array.fold_left (fun acc x -> acc +. float_of_int (f x)) 0. arr
    /. float_of_int (Array.length arr)

let stats t =
  {
    n_entities = Array.length t.entities;
    avg_entity_chars = avg String.length t.entities;
    avg_entity_tokens = avg whitespace_tokens t.entities;
    n_documents = Array.length t.documents;
    avg_document_chars = avg (fun d -> String.length d.text) t.documents;
    avg_document_tokens = avg (fun d -> whitespace_tokens d.text) t.documents;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "entities: %d (avg %.1f chars, %.2f tokens); documents: %d (avg %.1f chars, %.1f tokens)"
    s.n_entities s.avg_entity_chars s.avg_entity_tokens s.n_documents
    s.avg_document_chars s.avg_document_tokens
