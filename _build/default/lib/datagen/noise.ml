module Xorshift = Faerie_util.Xorshift

let random_letter rng = Char.chr (Char.code 'a' + Xorshift.int rng 26)

let perturb_once rng s =
  let n = String.length s in
  match (if n = 0 then Xorshift.int rng 2 else Xorshift.int rng 3) with
  | 0 ->
      (* insert *)
      let i = Xorshift.int rng (n + 1) in
      String.sub s 0 i
      ^ String.make 1 (random_letter rng)
      ^ String.sub s i (n - i)
  | 1 ->
      (* substitute (insert again when empty) *)
      if n = 0 then String.make 1 (random_letter rng)
      else begin
        let i = Xorshift.int rng n in
        let b = Bytes.of_string s in
        Bytes.set b i (random_letter rng);
        Bytes.to_string b
      end
  | _ ->
      (* delete *)
      let i = Xorshift.int rng n in
      String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)

let perturb_chars rng ~edits s =
  let rec loop k s = if k <= 0 then s else loop (k - 1) (perturb_once rng s) in
  loop edits s

let split_tokens s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let drop_tokens rng ~drops s =
  let tokens = Array.of_list (split_tokens s) in
  let n = Array.length tokens in
  let drops = min drops (n - 1) in
  if drops <= 0 then s
  else begin
    let alive = Array.make n true in
    let dropped = ref 0 in
    while !dropped < drops do
      let i = Xorshift.int rng n in
      if alive.(i) then begin
        alive.(i) <- false;
        incr dropped
      end
    done;
    let kept = ref [] in
    for i = n - 1 downto 0 do
      if alive.(i) then kept := tokens.(i) :: !kept
    done;
    String.concat " " !kept
  end

let swap_adjacent_tokens rng s =
  let tokens = Array.of_list (split_tokens s) in
  let n = Array.length tokens in
  if n < 2 then s
  else begin
    let i = Xorshift.int rng (n - 1) in
    let tmp = tokens.(i) in
    tokens.(i) <- tokens.(i + 1);
    tokens.(i + 1) <- tmp;
    String.concat " " (Array.to_list tokens)
  end
