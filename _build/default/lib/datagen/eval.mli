(** Extraction quality against the planted ground truth.

    The synthetic corpora record every planted mention with its exact noise
    budget, enabling the measurement the paper's crawled corpora cannot
    support: recall against known mentions, and span precision after
    overlap resolution. The test suite uses {!evaluate} to assert the
    recall *guarantee* (a mention within the threshold's noise budget must
    be recovered); the examples use it for reporting. *)

type outcome = {
  planted : int;  (** recoverable planted mentions considered *)
  recovered : int;  (** of those, found with exact span and entity *)
  reported : int;  (** total matches reported over all documents *)
  span_hits : int;
      (** reported matches overlapping a planted mention of their entity *)
}

val evaluate :
  ?recoverable:(Corpus.mention -> bool) ->
  corpus:Corpus.t ->
  matches_of:(int -> Faerie_core.Types.char_match list) ->
  unit ->
  outcome
(** [evaluate ~corpus ~matches_of ()] runs [matches_of doc_id] for every
    document and scores the results. [recoverable] selects which planted
    mentions count toward recall (default: all of them) — pass e.g.
    [fun m -> m.char_edits <= tau && m.token_drops = 0] to restrict to
    mentions the threshold provably covers. *)

val recall : outcome -> float
(** [recovered / planted] (1.0 when nothing was planted). *)

val precision : outcome -> float
(** [span_hits / reported] (1.0 when nothing was reported). Meaningful on
    overlap-resolved matches ({!Faerie_core.Span_select}); raw approximate
    extraction legitimately reports near-duplicate spans. *)

val f1 : outcome -> float

val pp : Format.formatter -> outcome -> unit
