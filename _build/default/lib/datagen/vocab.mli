(** Deterministic vocabulary generation for the synthetic corpora.

    The paper evaluates on DBLP author names, PubMed titles and crawled web
    pages; those corpora are unavailable offline, so we synthesize text
    with matching shape (entity/document length statistics — see
    DESIGN.md, "Substitutions"). Words are built from syllables so that
    different words share q-grams the way natural language does, which is
    what stresses the inverted lists. *)

val stopwords : string array
(** Common English function words used as document filler. *)

val syllable : Faerie_util.Xorshift.t -> string

val word : Faerie_util.Xorshift.t -> min_syllables:int -> max_syllables:int -> string
(** A pronounceable lowercase word. *)

val person_name : Faerie_util.Xorshift.t -> string
(** "Given Family" or "Given M Family" — 2–3 tokens, ≈ 12–25 chars. *)

val tech_word_pool : Faerie_util.Xorshift.t -> size:int -> string array
(** A pool of domain words to draw titles from; sampling from a pool (as
    opposed to fresh words) makes distinct entities share tokens, as real
    titles do. *)

val pick_pool :
  Faerie_util.Xorshift.t -> pool:string array -> zipf:Zipf.t option -> string
(** Draw one pool word — Zipf-ranked (rank = array index) when a
    distribution is supplied, uniform otherwise. *)

val title :
  Faerie_util.Xorshift.t ->
  pool:string array ->
  ?zipf:Zipf.t ->
  min_words:int ->
  max_words:int ->
  unit ->
  string
(** A title drawn from the pool (Zipf-ranked when [zipf] is given, so
    titles share tokens the way real titles do). *)
