type t = {
  keys : int array;
  kp : int;  (** leaf count padded to a power of two *)
  loser : int array;  (** internal nodes 1..kp-1: losing leaf index *)
  mutable top : int;  (** current winning leaf index *)
}

let key t leaf = if leaf < Array.length t.keys then t.keys.(leaf) else max_int

let rebuild t =
  let kp = t.kp in
  (* winner.(node) for the subtree rooted at node; leaves at kp..2kp-1. *)
  let winner = Array.make (2 * kp) 0 in
  for i = 0 to kp - 1 do
    winner.(kp + i) <- i
  done;
  for node = kp - 1 downto 1 do
    let a = winner.(2 * node) and b = winner.((2 * node) + 1) in
    let w, l = if key t a <= key t b then (a, b) else (b, a) in
    winner.(node) <- w;
    t.loser.(node) <- l
  done;
  t.top <- winner.(1)

let create ~keys =
  let n = Array.length keys in
  if n = 0 then invalid_arg "Loser_tree.create: empty keys";
  let kp = ref 1 in
  while !kp < n do
    kp := !kp * 2
  done;
  let t = { keys; kp = !kp; loser = Array.make !kp 0; top = 0 } in
  rebuild t;
  t

let winner t = t.top

let replay t =
  let w = ref t.top in
  let node = ref ((t.kp + !w) / 2) in
  while !node >= 1 do
    let l = t.loser.(!node) in
    if key t l < key t !w then begin
      t.loser.(!node) <- !w;
      w := l
    end;
    node := !node / 2
  done;
  t.top <- !w

let exhausted t = key t t.top = max_int
