module Dynarray = Faerie_util.Dynarray

type 'a t = { cmp : 'a -> 'a -> int; data : 'a Dynarray.t }

let create ~cmp () = { cmp; data = Dynarray.create () }

let length t = Dynarray.length t.data

let is_empty t = length t = 0

let swap t i j =
  let tmp = Dynarray.get t.data i in
  Dynarray.set t.data i (Dynarray.get t.data j);
  Dynarray.set t.data j tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (Dynarray.get t.data i) (Dynarray.get t.data parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = length t in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && t.cmp (Dynarray.get t.data l) (Dynarray.get t.data !smallest) < 0
  then smallest := l;
  if r < n && t.cmp (Dynarray.get t.data r) (Dynarray.get t.data !smallest) < 0
  then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  Dynarray.push t.data x;
  sift_up t (length t - 1)

let peek t = if is_empty t then None else Some (Dynarray.get t.data 0)

let peek_exn t =
  if is_empty t then invalid_arg "Min_heap.peek_exn: empty heap";
  Dynarray.get t.data 0

let pop_exn t =
  if is_empty t then invalid_arg "Min_heap.pop_exn: empty heap";
  let top = Dynarray.get t.data 0 in
  let last = Dynarray.pop t.data in
  if not (is_empty t) then begin
    Dynarray.set t.data 0 last;
    sift_down t 0
  end;
  top

let pop t = if is_empty t then None else Some (pop_exn t)

let replace_top t x =
  if is_empty t then invalid_arg "Min_heap.replace_top: empty heap";
  Dynarray.set t.data 0 x;
  sift_down t 0

let clear t = Dynarray.clear t.data

let of_array ~cmp arr =
  let t = { cmp; data = Dynarray.of_array arr } in
  for i = (Array.length arr / 2) - 1 downto 0 do
    sift_down t i
  done;
  t
