lib/heaps/int_heap.ml: Array
