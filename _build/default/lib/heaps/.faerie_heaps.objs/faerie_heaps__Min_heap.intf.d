lib/heaps/min_heap.mli:
