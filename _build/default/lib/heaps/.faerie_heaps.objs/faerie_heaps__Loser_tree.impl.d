lib/heaps/loser_tree.ml: Array
