lib/heaps/multiway.mli: Faerie_util
