lib/heaps/int_heap.mli:
