lib/heaps/loser_tree.mli:
