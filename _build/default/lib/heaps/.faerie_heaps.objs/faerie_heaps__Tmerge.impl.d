lib/heaps/tmerge.ml: Array Int_heap List
