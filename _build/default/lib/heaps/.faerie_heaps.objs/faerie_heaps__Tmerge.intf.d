lib/heaps/tmerge.mli:
