lib/heaps/min_heap.ml: Array Faerie_util
