lib/heaps/multiway.ml: Array Faerie_util Int_heap Loser_tree
