(** Tournament (loser) tree over integer keys.

    The paper's figures draw the merge heap as a loser tree (footnote 3);
    this module provides that structure as an alternative merge engine to
    {!Int_heap}: a [k]-way merge step costs exactly [ceil(log2 k)]
    comparisons, against up to [2 * log2 k] for a binary heap. The
    benchmark harness ablates the two (section [ablations]).

    The caller owns a [keys] array with one slot per source; slot [i] holds
    source [i]'s current key, or [max_int] once the source is exhausted.
    After advancing the winning source (updating its slot), call {!replay}
    to restore the tournament. *)

type t

val create : keys:int array -> t
(** Build the tournament over [keys] (length >= 1). The tree reads the
    array in place — it must not be replaced, only mutated. *)

val winner : t -> int
(** Index of the source holding the minimal key. When every source is
    exhausted, the winner's key is [max_int] — test {!exhausted}. *)

val replay : t -> unit
(** Re-run the tournament along the winner's path after the winner's key
    slot changed. O(log n). *)

val exhausted : t -> bool
(** All keys are [max_int]. *)

val rebuild : t -> unit
(** Full O(n) rebuild, for when arbitrary slots changed. *)
