type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t =
  let ndata = Array.make (2 * Array.length t.data) 0 in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

(* Indices are maintained within [0, len); unsafe accesses are sound. *)

let rec sift_up data i x =
  if i = 0 then Array.unsafe_set data 0 x
  else begin
    let parent = (i - 1) / 2 in
    let p = Array.unsafe_get data parent in
    if x < p then begin
      Array.unsafe_set data i p;
      sift_up data parent x
    end
    else Array.unsafe_set data i x
  end

let rec sift_down data len i x =
  let l = (2 * i) + 1 in
  if l >= len then Array.unsafe_set data i x
  else begin
    let r = l + 1 in
    let c, cv =
      if r < len then begin
        let lv = Array.unsafe_get data l and rv = Array.unsafe_get data r in
        if rv < lv then (r, rv) else (l, lv)
      end
      else (l, Array.unsafe_get data l)
    in
    if cv < x then begin
      Array.unsafe_set data i cv;
      sift_down data len c x
    end
    else Array.unsafe_set data i x
  end

let push t x =
  if t.len >= Array.length t.data then grow t;
  t.len <- t.len + 1;
  sift_up t.data (t.len - 1) x

let peek_exn t =
  if t.len = 0 then invalid_arg "Int_heap.peek_exn: empty heap";
  Array.unsafe_get t.data 0

let pop_exn t =
  if t.len = 0 then invalid_arg "Int_heap.pop_exn: empty heap";
  let top = Array.unsafe_get t.data 0 in
  t.len <- t.len - 1;
  if t.len > 0 then sift_down t.data t.len 0 (Array.unsafe_get t.data t.len);
  top

let replace_top t x =
  if t.len = 0 then invalid_arg "Int_heap.replace_top: empty heap";
  sift_down t.data t.len 0 x

let clear t = t.len <- 0
