(** Array-based binary min-heap with a caller-supplied order. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** An empty heap ordered by [cmp] (smallest element on top). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** O(log n). *)

val peek : 'a t -> 'a option
(** The minimum, without removing it. *)

val peek_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum; O(log n). *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val replace_top : 'a t -> 'a -> unit
(** [replace_top t x] is [ignore (pop t); push t x] fused into one sift —
    the hot operation when advancing a merged cursor.

    @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** Bottom-up heapify, O(n). *)
