(** Specialized binary min-heap over plain [int] keys.

    The multiway merge pushes one key per posting — hundreds of thousands
    per document — so the generic {!Min_heap} (closure comparator, checked
    vector accesses) is too slow for it. Keys here are compared with the
    native [int] order; callers encode (entity, position) pairs as
    [(entity lsl shift) lor position], which preserves the lexicographic
    order the merge needs. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val is_empty : t -> bool

val push : t -> int -> unit

val peek_exn : t -> int
(** @raise Invalid_argument on an empty heap. *)

val pop_exn : t -> int
(** @raise Invalid_argument on an empty heap. *)

val replace_top : t -> int -> unit
(** Replace the minimum and re-sift — one sift instead of pop + push.

    @raise Invalid_argument on an empty heap. *)

val clear : t -> unit
