(** T-occurrence merge algorithms over sorted inverted lists.

    Given [k] ascending integer lists and a threshold [t], find every value
    occurring in at least [t] of them. This is the inner problem of the
    multi-heap method (one instance per substring), and the algorithms here
    are the classic ones of Li, Lu & Lu (ICDE 2008), which the paper cites
    as orthogonal heap-merge improvements (Section 4):

    - {!merge_count}: plain heap merge, visits every posting;
    - {!merge_skip}: pops [t-1] cursors at a time and jumps them forward
      with binary searches, skipping postings that cannot reach [t];
    - {!divide_skip}: puts the [l] longest lists aside, runs MergeSkip on
      the short ones with threshold [t - l], and completes candidate counts
      by binary searching the long lists.

    All three report the same (value, count) pairs; the benchmark harness
    ablates their cost inside the multi-heap baseline. *)

val merge_count : lists:int array array -> f:(int -> int -> unit) -> unit
(** [merge_count ~lists ~f] calls [f value count] for {e every} distinct
    value, in ascending order, with its exact occurrence count. *)

val merge_skip : lists:int array array -> t:int -> f:(int -> int -> unit) -> unit
(** [merge_skip ~lists ~t ~f] calls [f value count] (exact count) for every
    value occurring in at least [t] lists, ascending. [t <= 0] is treated
    as 1; values can never repeat within one list. *)

val divide_skip :
  lists:int array array -> t:int -> f:(int -> int -> unit) -> unit
(** As {!merge_skip}, splitting off long lists with the ICDE'08 heuristic
    [t / (log2 (longest) + 1)]. *)

val divide_skip_with :
  long_lists:int -> lists:int array array -> t:int -> f:(int -> int -> unit) -> unit
(** As {!divide_skip} with an explicit number of long lists (clamped to
    [0 .. t-1]). *)
