(** Multiway merge of the document's inverted lists — the "single heap" of
    the paper (Section 3.3).

    One cursor per document token position sits on that position's inverted
    list (entity ids, sorted ascending). A merge engine over the cursors,
    ordered by (entity id, position), streams out every (entity, position)
    occurrence in ascending entity order; consecutive occurrences of one
    entity therefore form its complete position list, sorted by position —
    each inverted list is scanned exactly once.

    Two merge engines are provided (the paper draws its heap as a loser
    tree, footnote 3): a binary {!Int_heap} (default) and a
    {!Loser_tree} tournament. They produce identical streams; the
    [ablations] benchmark compares their cost. *)

type merger =
  | Binary_heap  (** {!Int_heap} of encoded keys (default) *)
  | Tournament_tree  (** {!Loser_tree} with one leaf per non-empty list *)

val iter_entity_positions :
  ?merger:merger ->
  n_positions:int ->
  list_at:(int -> int array) ->
  f:(entity:int -> positions:int Faerie_util.Dynarray.t -> unit) ->
  unit ->
  unit
(** [iter_entity_positions ~n_positions ~list_at ~f ()] calls
    [f ~entity ~positions] once per distinct entity id occurring in any of
    the lists [list_at 0 .. list_at (n_positions-1)], in ascending entity
    order, with [positions] the ascending positions whose list contains the
    entity. The [positions] buffer is reused across calls — callers must
    copy it if they retain it. *)

val heap_stats :
  n_positions:int -> list_at:(int -> int array) -> int * int
(** [(live_cursors, total_postings)] — the number of non-empty inverted
    lists (merge width) and the total number of postings the merge will
    stream ([N] in the paper's complexity table). Used by the index-size
    report (Table 5's "Heap+Array" row). *)
