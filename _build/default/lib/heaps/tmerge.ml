(* Cursors are (list index, position); the heap holds keys
   [(value lsl shift) lor list_index] so the native int order sorts by
   value first — the same encoding trick as {!Multiway}. *)

let rec bits_for n acc = if n <= 1 then acc else bits_for ((n + 1) / 2) (acc + 1)

type state = {
  lists : int array array;  (** non-empty lists only *)
  cursor : int array;
  heap : Int_heap.t;
  shift : int;
  mask : int;
}

let init lists =
  let lists = Array.of_list (List.filter (fun l -> Array.length l > 0) (Array.to_list lists)) in
  let k = Array.length lists in
  let shift = max 1 (bits_for k 0) in
  let s =
    {
      lists;
      cursor = Array.make (max k 1) 0;
      heap = Int_heap.create ~capacity:(max k 1) ();
      shift;
      mask = (1 lsl shift) - 1;
    }
  in
  Array.iteri
    (fun i l -> Int_heap.push s.heap ((l.(0) lsl shift) lor i))
    lists;
  s

let value_of s key = key lsr s.shift

let list_of s key = key land s.mask

(* Push list [i]'s current element, if any. *)
let push_current s i =
  let l = s.lists.(i) in
  if s.cursor.(i) < Array.length l then
    Int_heap.push s.heap ((l.(s.cursor.(i)) lsl s.shift) lor i)

let advance_and_push s i =
  s.cursor.(i) <- s.cursor.(i) + 1;
  push_current s i

(* First index >= from with l.(index) >= v (galloping not needed; plain
   binary search). *)
let seek l ~from v =
  let lo = ref from and hi = ref (Array.length l) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if l.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let merge_count ~lists ~f =
  let s = init lists in
  let current = ref (-1) and count = ref 0 in
  let flush () = if !count > 0 then f !current !count in
  while not (Int_heap.is_empty s.heap) do
    let key = Int_heap.pop_exn s.heap in
    let v = value_of s key and i = list_of s key in
    if v <> !current then begin
      flush ();
      current := v;
      count := 0
    end;
    incr count;
    advance_and_push s i
  done;
  flush ()

let merge_skip ~lists ~t ~f =
  let t = max 1 t in
  let s = init lists in
  let popped = ref [] in
  let pop_into_scratch () =
    let key = Int_heap.pop_exn s.heap in
    popped := list_of s key :: !popped;
    key
  in
  let continue = ref true in
  while !continue && not (Int_heap.is_empty s.heap) do
    popped := [];
    let top = Int_heap.peek_exn s.heap in
    let v = value_of s top in
    (* Pop every cursor sitting on v. *)
    let n = ref 0 in
    while
      (not (Int_heap.is_empty s.heap))
      && value_of s (Int_heap.peek_exn s.heap) = v
    do
      ignore (pop_into_scratch ());
      incr n
    done;
    if !n >= t then begin
      f v !n;
      List.iter (advance_and_push s) !popped
    end
    else begin
      (* Pop until t-1 cursors are out, then jump them all to the new top:
         any value strictly below it lives on at most t-1 lists. *)
      let extra = t - 1 - !n in
      let popped_extra = ref 0 in
      while !popped_extra < extra && not (Int_heap.is_empty s.heap) do
        ignore (pop_into_scratch ());
        incr popped_extra
      done;
      if Int_heap.is_empty s.heap then
        (* Fewer than t live cursors remain: nothing can reach t. *)
        continue := false
      else begin
        let bound = value_of s (Int_heap.peek_exn s.heap) in
        List.iter
          (fun i ->
            s.cursor.(i) <- seek s.lists.(i) ~from:(s.cursor.(i)) bound;
            push_current s i)
          !popped
      end
    end
  done

let default_long_lists ~lists ~t =
  let longest =
    Array.fold_left (fun acc l -> max acc (Array.length l)) 1 lists
  in
  let log2 = log (float_of_int (max 2 longest)) /. log 2. in
  int_of_float (float_of_int t /. (log2 +. 1.))

let divide_skip_gen ~long_lists ~lists ~t ~f =
  let t = max 1 t in
  let lists =
    Array.of_list (List.filter (fun l -> Array.length l > 0) (Array.to_list lists))
  in
  let by_length_desc = Array.copy lists in
  Array.sort (fun a b -> compare (Array.length b) (Array.length a)) by_length_desc;
  let l_count =
    let raw =
      match long_lists with
      | Some l -> l
      | None -> default_long_lists ~lists ~t
    in
    max 0 (min raw (min (t - 1) (Array.length by_length_desc)))
  in
  let long = Array.sub by_length_desc 0 l_count in
  let short =
    Array.sub by_length_desc l_count (Array.length by_length_desc - l_count)
  in
  let count_in_long v =
    Array.fold_left
      (fun acc l ->
        let i = seek l ~from:0 v in
        if i < Array.length l && l.(i) = v then acc + 1 else acc)
      0 long
  in
  merge_skip ~lists:short ~t:(t - l_count) ~f:(fun v n_short ->
      let total = n_short + count_in_long v in
      if total >= t then f v total)


let divide_skip ~lists ~t ~f = divide_skip_gen ~long_lists:None ~lists ~t ~f

let divide_skip_with ~long_lists ~lists ~t ~f =
  divide_skip_gen ~long_lists:(Some long_lists) ~lists ~t ~f
