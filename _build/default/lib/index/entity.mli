(** A dictionary entity with its tokenization. *)

type t = {
  id : int;  (** dense id, the value stored in inverted lists *)
  raw : string;  (** original entity string *)
  text : string;  (** normalized entity string (used by ED verification) *)
  tokens : int array;  (** token ids in source order *)
  sorted_tokens : int array;  (** multiset view, ascending *)
  distinct_tokens : int array;  (** ascending distinct — inverted index keys *)
}

val make : id:int -> raw:string -> text:string -> spans:Faerie_tokenize.Span.t array -> t

val of_tokens : id:int -> raw:string -> text:string -> tokens:int array -> t
(** Rebuild an entity from stored token ids (the {!Codec} load path, which
    must not re-tokenize). *)

val n_tokens : t -> int
(** [|e|]: token (or gram) count, multiset cardinality. *)

val pp : Format.formatter -> t -> unit
