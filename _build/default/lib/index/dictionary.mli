(** The entity dictionary: interner + tokenized entities, in one token
    mode. *)

type t

val create : mode:Faerie_tokenize.Document.mode -> string list -> t
(** Tokenize and intern every entity. In [Gram q] mode, entities shorter
    than [q] characters produce zero grams; they are kept (so ids stay
    dense) and reported by {!untokenizable} for the caller's fallback
    path. *)

val of_stored :
  mode:Faerie_tokenize.Document.mode ->
  interner:Faerie_tokenize.Interner.t ->
  Entity.t array ->
  t
(** Reassemble a dictionary from parts restored by {!Codec} — entity ids
    must be dense and match array indices; no re-tokenization happens. *)

val mode : t -> Faerie_tokenize.Document.mode

val interner : t -> Faerie_tokenize.Interner.t

val size : t -> int
(** Number of entities. *)

val entity : t -> int -> Entity.t
(** @raise Invalid_argument on an unknown id. *)

val entities : t -> Entity.t array

val untokenizable : t -> int list
(** Ids of entities with zero tokens (possible only in [Gram q] mode). *)

val max_entity_tokens : t -> int
(** Largest [|e|] over the dictionary (0 when empty). *)

val tokenize_document : t -> string -> Faerie_tokenize.Document.t
(** Tokenize a document in this dictionary's mode, against its interner. *)
