module Tk = Faerie_tokenize

type t = {
  mode : Tk.Document.mode;
  interner : Tk.Interner.t;
  entities : Entity.t array;
  untokenizable : int list;
}

let of_stored ~mode ~interner entities =
  let untokenizable =
    Array.to_list entities
    |> List.filter (fun e -> Entity.n_tokens e = 0)
    |> List.map (fun e -> e.Entity.id)
  in
  { mode; interner; entities; untokenizable }

let create ~mode raw_entities =
  let interner = Tk.Interner.create () in
  let tokenize raw =
    match mode with
    | Tk.Document.Word -> Tk.Tokenizer.words_intern interner raw
    | Tk.Document.Gram q -> Tk.Tokenizer.qgrams_intern interner ~q raw
  in
  let entities =
    List.mapi
      (fun id raw ->
        let text = Tk.Tokenizer.normalize raw in
        Entity.make ~id ~raw ~text ~spans:(tokenize raw))
      raw_entities
  in
  let entities = Array.of_list entities in
  let untokenizable =
    Array.to_list entities
    |> List.filter (fun e -> Entity.n_tokens e = 0)
    |> List.map (fun e -> e.Entity.id)
  in
  { mode; interner; entities; untokenizable }

let mode t = t.mode

let interner t = t.interner

let size t = Array.length t.entities

let entity t id =
  if id < 0 || id >= Array.length t.entities then
    invalid_arg (Printf.sprintf "Dictionary.entity: unknown id %d" id);
  t.entities.(id)

let entities t = t.entities

let untokenizable t = t.untokenizable

let max_entity_tokens t =
  Array.fold_left (fun acc e -> max acc (Entity.n_tokens e)) 0 t.entities

let tokenize_document t raw =
  match t.mode with
  | Tk.Document.Word -> Tk.Document.of_words t.interner raw
  | Tk.Document.Gram q -> Tk.Document.of_grams t.interner ~q raw
