module Token_ops = Faerie_tokenize.Token_ops

type t = {
  id : int;
  raw : string;
  text : string;
  tokens : int array;
  sorted_tokens : int array;
  distinct_tokens : int array;
}

let of_tokens ~id ~raw ~text ~tokens =
  let sorted_tokens = Array.copy tokens in
  Array.sort compare sorted_tokens;
  { id; raw; text; tokens; sorted_tokens; distinct_tokens = Token_ops.distinct tokens }

let make ~id ~raw ~text ~spans =
  let tokens = Array.map (fun s -> s.Faerie_tokenize.Span.token) spans in
  of_tokens ~id ~raw ~text ~tokens

let n_tokens t = Array.length t.tokens

let pp ppf t = Format.fprintf ppf "e%d=%S(|e|=%d)" t.id t.raw (n_tokens t)
