lib/index/codec.mli: Dictionary Inverted_index
