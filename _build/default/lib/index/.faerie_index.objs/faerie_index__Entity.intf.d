lib/index/entity.mli: Faerie_tokenize Format
