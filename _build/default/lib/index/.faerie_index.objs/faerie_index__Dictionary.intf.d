lib/index/dictionary.mli: Entity Faerie_tokenize
