lib/index/entity.ml: Array Faerie_tokenize Format
