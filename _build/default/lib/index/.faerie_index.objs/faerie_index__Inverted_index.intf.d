lib/index/inverted_index.mli: Dictionary Faerie_tokenize
