lib/index/inverted_index.ml: Array Dictionary Entity Faerie_tokenize Faerie_util
