lib/index/dictionary.ml: Array Entity Faerie_tokenize List Printf
