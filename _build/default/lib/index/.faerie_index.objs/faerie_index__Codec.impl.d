lib/index/codec.ml: Array Buffer Dictionary Entity Faerie_tokenize Faerie_util Fun Inverted_index Printf String
