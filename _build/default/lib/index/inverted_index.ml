module Tk = Faerie_tokenize
module Dynarray = Faerie_util.Dynarray
module Bytesize = Faerie_util.Bytesize

type t = { dictionary : Dictionary.t; lists : int array array }

let empty_list = [||]

let build dictionary =
  let n_tokens = Tk.Interner.size (Dictionary.interner dictionary) in
  let acc = Array.init n_tokens (fun _ -> Dynarray.create ()) in
  Array.iter
    (fun e ->
      Array.iter
        (fun token -> Dynarray.push acc.(token) e.Entity.id)
        e.Entity.distinct_tokens)
    (Dictionary.entities dictionary);
  { dictionary; lists = Array.map Dynarray.to_array acc }

let of_stored dictionary lists = { dictionary; lists }

let dictionary t = t.dictionary

let postings t token =
  if token < 0 || token >= Array.length t.lists then empty_list
  else t.lists.(token)

let document_lists t doc pos = postings t (Tk.Document.token_id doc pos)

let n_postings t = Array.fold_left (fun acc l -> acc + Array.length l) 0 t.lists

let n_lists t =
  Array.fold_left (fun acc l -> acc + if Array.length l > 0 then 1 else 0) 0 t.lists

let heap_bytes t =
  let posting_words =
    Array.fold_left
      (fun acc l -> acc + Bytesize.words_per_int_array (Array.length l))
      0 t.lists
  in
  let directory_words = 1 + Array.length t.lists in
  Bytesize.bytes_of_words (posting_words + directory_words)
  + Tk.Interner.heap_bytes (Dictionary.interner t.dictionary)
