(** Binary serialization of a dictionary and its inverted index.

    Loading never re-tokenizes: the interner, the entities' token arrays
    and the postings lists are stored verbatim, so a saved index for a
    large dictionary opens in I/O time.

    Format (all integers LEB128 varints, {!Faerie_util.Varint}):

    {v
    "FAERIEIX" version          magic + format version (1)
    mode q                      0 = word tokens, 1 = q-grams
    n_tokens,  strings...       interner contents, in id order
    n_entities, raw + tokens... per entity: raw string + token ids
    n_lists,   count + deltas.. postings: delta-coded ascending entity ids
    checksum                    FNV-1a-style hash of everything before it
    v} *)

exception Corrupt of string
(** Raised by {!load}/{!decode} on malformed input (bad magic, version,
    truncation, checksum mismatch, inconsistent counts). *)

val encode : Dictionary.t -> Inverted_index.t -> string
(** Serialize to a byte string. *)

val decode : string -> Dictionary.t * Inverted_index.t
(** Inverse of {!encode}.

    @raise Corrupt on malformed input. *)

val save : Dictionary.t -> Inverted_index.t -> string -> unit
(** [save dict index path] writes the encoding to [path]. *)

val load : string -> Dictionary.t * Inverted_index.t
(** [load path] reads an index saved by {!save}.

    @raise Corrupt on malformed input.
    @raise Sys_error when the file cannot be read. *)
