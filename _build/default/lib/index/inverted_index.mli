(** Inverted index over the dictionary (Section 3.1): token id → ascending
    list of ids of entities containing that token. An entity appears once
    per *distinct* token it contains; document-side multiplicity is carried
    by token positions, so heap occurrence counts upper-bound the multiset
    overlap (safe for filtering). *)

type t

val build : Dictionary.t -> t
(** Lists come out sorted for free because entities are scanned in id
    order. *)

val of_stored : Dictionary.t -> int array array -> t
(** Reassemble from postings restored by {!Codec}: one ascending entity-id
    array per token id. *)

val dictionary : t -> Dictionary.t

val postings : t -> int -> int array
(** [postings t token] is the inverted list of a token id; the empty array
    for {!Faerie_tokenize.Span.missing} or any token without postings.
    The returned array is owned by the index — do not mutate. *)

val document_lists : t -> Faerie_tokenize.Document.t -> int -> int array
(** [document_lists t doc pos] is the inverted list of the token at document
    position [pos] — the [IL\[i\]] accessor both heap algorithms consume. *)

val n_postings : t -> int
(** Total posting count over all lists. *)

val n_lists : t -> int
(** Number of non-empty lists. *)

val heap_bytes : t -> int
(** Estimated resident size: postings arrays + list directory + the share
    of the interner holding the token strings (what Table 5 reports as
    "Inverted Index"). *)
