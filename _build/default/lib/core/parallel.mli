(** Parallel extraction over a document collection (OCaml 5 domains).

    A {!Problem.t} is immutable once built — the inverted index, thresholds
    and interner are only read during extraction — so one problem can be
    shared by several domains, each processing a slice of the documents.
    Speedup is near-linear in cores for document-heavy workloads (the
    paper's setting: 1k–10k documents per dictionary). *)

val extract_all :
  ?pruning:Types.pruning ->
  ?domains:int ->
  Problem.t ->
  string array ->
  Types.char_match list array
(** [extract_all problem docs] extracts every document (filter + fallback +
    verify) and returns per-document matches in character coordinates, in
    input order — identical to running {!Single_heap.run} + {!Fallback.run}
    sequentially, which the test suite asserts. [domains] defaults to
    [Domain.recommended_domain_count ()], capped by the number of
    documents; [1] means fully sequential (no domain is spawned). *)
