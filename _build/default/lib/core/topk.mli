(** Top-k extraction: the k best matches instead of all of them.

    The paper notes (Section 4.2) that "in many applications, users want to
    identify the best similar pairs"; this module keeps a bounded heap of
    the best-scoring verified matches while extraction streams, so memory
    stays O(k) however many matches the document contains. *)

val top_k :
  ?pruning:Types.pruning ->
  k:int ->
  Problem.t ->
  Faerie_tokenize.Document.t ->
  Types.char_match list
(** [top_k ~k problem doc] is the [k] best verified matches (character
    coordinates), best first. Ordering: higher similarity / lower edit
    distance first ({!Faerie_sim.Verify.Score.compare}); ties break toward
    the earlier, shorter, lower-id match, so the result is deterministic.
    Includes fallback-path entities. [k <= 0] yields the empty list. *)

val best : Problem.t -> Faerie_tokenize.Document.t -> Types.char_match option
(** [best problem doc] is [top_k ~k:1] as an option. *)
