(** Public API: approximate dictionary-based entity extraction
    (filter with Faerie, verify exactly, report character spans).

    {[
      let ex =
        Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2
          [ "surajit ch"; "chaudhuri"; "venkatesh" ]
      in
      let results = Extractor.extract ex "... surauijt chadhurisigmod" in
      List.iter (fun r -> print_endline (Extractor.result_to_string ex r)) results
    ]} *)

type t

type result = {
  entity_id : int;
  entity : string;  (** the dictionary entity (original form) *)
  start_char : int;  (** match offset in the (normalized) document *)
  len_chars : int;
  matched_text : string;  (** the matching document substring *)
  score : Faerie_sim.Verify.Score.t;
}

val create :
  sim:Faerie_sim.Sim.t ->
  ?q:int ->
  ?mode:Faerie_tokenize.Document.mode ->
  string list ->
  t
(** Build the dictionary, inverted index and per-entity thresholds once;
    reuse across documents. [q] (default 2) is the gram length for edit
    distance / edit similarity and is ignored by the token-based functions
    unless [mode] forces gram tokens for them (see {!Problem.create}).

    @raise Invalid_argument on an invalid threshold or [q <= 0]. *)

val problem : t -> Problem.t
(** The underlying problem instance (index, thresholds) — the lower-level
    entry point used by the benchmarks. *)

val of_problem : Problem.t -> t
(** Wrap an existing problem — e.g. one built from a saved index via
    {!Problem.of_index}. *)

val results_of_char_matches :
  t ->
  Faerie_tokenize.Document.t ->
  Types.char_match list ->
  result list
(** Render raw character matches (from {!Topk}, {!Span_select},
    {!Chunked}, ...) as full results, sorted by (start, length, entity).
    The document must be the one the matches were produced from. *)

val extract : ?pruning:Types.pruning -> t -> string -> result list
(** All substrings of the document approximately matching some entity,
    sorted by (start, length, entity). Complete and exact: the filter
    (at any pruning level) never loses a true match, and every reported
    pair passed exact verification. *)

val extract_document :
  ?pruning:Types.pruning ->
  t ->
  Faerie_tokenize.Document.t ->
  result list * Types.stats
(** As {!extract} on a pre-tokenized document (see {!tokenize}), also
    returning filter statistics. The document must have been tokenized by
    this extractor. *)

val tokenize : t -> string -> Faerie_tokenize.Document.t

val result_to_string : t -> result -> string
(** One-line human-readable rendering. *)
