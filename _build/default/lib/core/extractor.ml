module Tk = Faerie_tokenize
module S = Faerie_sim
module Ix = Faerie_index
open Types

type t = { problem : Problem.t }

type result = {
  entity_id : int;
  entity : string;
  start_char : int;
  len_chars : int;
  matched_text : string;
  score : S.Verify.Score.t;
}

let create ~sim ?q ?mode entities =
  { problem = Problem.create ~sim ?q ?mode entities }

let of_problem problem = { problem }

let problem t = t.problem

let tokenize t raw = Problem.tokenize_document t.problem raw

let to_result t doc (cm : char_match) =
  let e = Ix.Dictionary.entity (Problem.dictionary t.problem) cm.c_entity in
  let text = Tk.Document.text doc in
  {
    entity_id = cm.c_entity;
    entity = e.Ix.Entity.raw;
    start_char = cm.c_start;
    len_chars = cm.c_len;
    matched_text = String.sub text cm.c_start cm.c_len;
    score = cm.c_score;
  }

let char_match_of_token_match doc (m : token_match) =
  let c_start, c_len =
    Tk.Document.char_extent doc ~start:m.m_start ~len:m.m_len
  in
  { c_entity = m.m_entity; c_start; c_len; c_score = m.m_score }

let results_of_char_matches t doc ms =
  List.map (to_result t doc) ms
  |> List.sort (fun a b ->
         let c = compare a.start_char b.start_char in
         if c <> 0 then c
         else
           let c = compare a.len_chars b.len_chars in
           if c <> 0 then c else compare a.entity_id b.entity_id)

let extract_document ?pruning t doc =
  let matches, stats = Single_heap.run ?pruning t.problem doc in
  let main = List.map (char_match_of_token_match doc) matches in
  let fallback = Fallback.run t.problem doc in
  let all =
    List.sort_uniq compare_char_match (List.rev_append fallback main)
  in
  (results_of_char_matches t doc all, stats)

let extract ?pruning t raw =
  let doc = tokenize t raw in
  fst (extract_document ?pruning t doc)

let result_to_string t r =
  ignore t;
  Format.asprintf "[%d,%d) %S ~ e%d=%S (%a)" r.start_char
    (r.start_char + r.len_chars) r.matched_text r.entity_id r.entity
    S.Verify.Score.pp r.score
