module Tk = Faerie_tokenize
module S = Faerie_sim
module Heaps = Faerie_heaps
open Types

(* Total order: better scores first, then position for determinism. *)
let better_first a b =
  let c = S.Verify.Score.compare a.c_score b.c_score in
  if c <> 0 then c else compare_char_match a b

let top_k ?pruning ~k problem doc =
  if k <= 0 then []
  else begin
    (* Bounded "worst on top" heap: the root is the weakest kept match, so
       a new match only enters if it beats the root. *)
    let worst_first a b = better_first b a in
    let heap = Heaps.Min_heap.create ~cmp:worst_first () in
    let offer m =
      if Heaps.Min_heap.length heap < k then Heaps.Min_heap.push heap m
      else if better_first m (Heaps.Min_heap.peek_exn heap) < 0 then
        Heaps.Min_heap.replace_top heap m
    in
    let matches, _ = Single_heap.run ?pruning problem doc in
    List.iter
      (fun (tm : token_match) ->
        let c_start, c_len =
          Tk.Document.char_extent doc ~start:tm.m_start ~len:tm.m_len
        in
        offer { c_entity = tm.m_entity; c_start; c_len; c_score = tm.m_score })
      matches;
    List.iter offer (Fallback.run problem doc);
    let rec drain acc =
      match Heaps.Min_heap.pop heap with
      | None -> acc
      | Some m -> drain (m :: acc)
    in
    drain []
  end

let best problem doc =
  match top_k ~k:1 problem doc with [] -> None | m :: _ -> Some m
