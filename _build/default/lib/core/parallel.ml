module Tk = Faerie_tokenize
open Types

let extract_one ?pruning problem text =
  let doc = Problem.tokenize_document problem text in
  let matches, _ = Single_heap.run ?pruning problem doc in
  let main =
    List.map
      (fun (m : token_match) ->
        let c_start, c_len =
          Tk.Document.char_extent doc ~start:m.m_start ~len:m.m_len
        in
        { c_entity = m.m_entity; c_start; c_len; c_score = m.m_score })
      matches
  in
  List.sort_uniq compare_char_match (Fallback.run problem doc @ main)

let extract_all ?pruning ?domains problem docs =
  let n = Array.length docs in
  let requested =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let workers = max 1 (min requested n) in
  let results = Array.make n [] in
  if workers <= 1 || n = 0 then
    Array.iteri (fun i text -> results.(i) <- extract_one ?pruning problem text) docs
  else begin
    (* Work stealing via a shared atomic counter: documents vary wildly in
       size, so static slicing would leave domains idle. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- extract_one ?pruning problem docs.(i);
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned
  end;
  results
