module Tk = Faerie_tokenize
module Fault = Faerie_util.Fault
module Budget = Faerie_util.Budget
open Types

type outcome = char_match list Outcome.t

(* Slice an oversize document into bounded pieces for chunked extraction. *)
let pieces_of_string text piece_len =
  let n = String.length text in
  let rec at i () =
    if i >= n then Seq.Nil
    else
      let len = min piece_len (n - i) in
      Seq.Cons (String.sub text i len, at (i + len))
  in
  at 0

exception Tokenize_exn of string

let tokenize_checked problem text =
  try Problem.tokenize_document problem text with
  | (Fault.Injected _ | Budget.Exhausted _) as e -> raise e
  | Invalid_argument msg | Failure msg -> raise (Tokenize_exn msg)

let extract_one_outcome ?pruning ?(budget = Budget.spec_unlimited)
    ?(oversize = `Chunk) ?stats ~doc_id problem text : outcome =
  Fault.with_context doc_id @@ fun () ->
  try
    let bytes = String.length text in
    match budget.Budget.max_bytes with
    | Some limit when bytes > limit -> (
        match oversize with
        | `Reject -> Outcome.Failed (Outcome.Doc_too_large { bytes; limit })
        | `Chunk ->
            (* Degrade to bounded-memory streaming extraction: results are
               still complete, but peak memory is capped near [limit]. *)
            let ms =
              Chunked.extract_seq ?pruning ~min_buffer_chars:limit problem
                (pieces_of_string text (max 1 (min limit 65536)))
            in
            Outcome.Degraded (ms, Outcome.Oversize_chunked { bytes; limit }))
    | _ ->
        let b = Budget.start budget in
        let doc = tokenize_checked problem text in
        let matches, st, aborted =
          Single_heap.run_budgeted ?pruning ~budget:b problem doc
        in
        (match stats with Some dst -> blit_stats ~src:st ~dst | None -> ());
        let main =
          List.map
            (fun (m : token_match) ->
              let c_start, c_len =
                Tk.Document.char_extent doc ~start:m.m_start ~len:m.m_len
              in
              { c_entity = m.m_entity; c_start; c_len; c_score = m.m_score })
            matches
        in
        let all =
          List.sort_uniq compare_char_match (Fallback.run problem doc @ main)
        in
        (match aborted with
        | None -> Outcome.Ok all
        | Some e -> Outcome.Degraded (all, Outcome.Partial e))
  with
  | Fault.Injected site -> Outcome.Failed (Outcome.Injected_fault site)
  | Budget.Exhausted e -> Outcome.Failed (Outcome.Budget_exhausted e)
  | Tokenize_exn msg -> Outcome.Failed (Outcome.Tokenize_error msg)
  | exn ->
      let backtrace = Printexc.get_backtrace () in
      Outcome.Failed (Outcome.Worker_crash (Outcome.exn_info_of ~backtrace exn))

let extract_all_outcomes ?pruning ?domains ?budget ?oversize problem docs =
  let n = Array.length docs in
  let requested =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let workers = max 1 (min requested n) in
  let results = Array.make n (Outcome.Ok [] : outcome) in
  let process i =
    results.(i) <-
      (try
         extract_one_outcome ?pruning ?budget ?oversize ~doc_id:i problem
           docs.(i)
       with exn ->
         (* extract_one_outcome already contains everything; this is the
            last-resort belt under the braces (e.g. allocation failure while
            building the outcome itself). *)
         Outcome.Failed (Outcome.Worker_crash (Outcome.exn_info_of exn)))
  in
  if workers <= 1 || n = 0 then
    for i = 0 to n - 1 do
      process i
    done
  else begin
    (* Work stealing via a shared atomic counter: documents vary wildly in
       size, so static slicing would leave domains idle. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          process i;
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    (* Every spawned domain is joined even if the main-thread worker raises
       (it should not: [process] swallows everything) — a leaked domain
       would keep stealing work against a collection the caller believes is
       finished. A crashed domain's exception is already reflected in the
       per-document outcomes, so the join itself must not re-raise. *)
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun d -> match Domain.join d with () -> () | exception _ -> ())
          spawned)
      worker
  end;
  (results, Outcome.summarize results)

let extract_all ?pruning ?domains problem docs =
  let outcomes, _ = extract_all_outcomes ?pruning ?domains problem docs in
  Array.map
    (function
      | Outcome.Ok ms | Outcome.Degraded (ms, _) -> ms
      | Outcome.Failed err ->
          failwith ("Parallel.extract_all: " ^ Outcome.error_to_string err))
    outcomes
