lib/core/fallback.mli: Faerie_sim Faerie_tokenize Problem Types
