lib/core/problem.mli: Faerie_index Faerie_sim Faerie_tokenize Types
