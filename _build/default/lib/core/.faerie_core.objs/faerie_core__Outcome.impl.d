lib/core/outcome.ml: Array Faerie_util Format List Printexc Printf
