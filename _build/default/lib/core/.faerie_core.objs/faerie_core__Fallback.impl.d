lib/core/fallback.ml: Faerie_index Faerie_sim Faerie_tokenize Float List Problem String Types
