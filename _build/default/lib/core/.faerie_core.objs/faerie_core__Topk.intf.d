lib/core/topk.mli: Faerie_tokenize Problem Types
