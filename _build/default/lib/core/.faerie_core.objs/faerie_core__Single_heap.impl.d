lib/core/single_heap.ml: Array Counting Faerie_heaps Faerie_index Faerie_sim Faerie_tokenize Faerie_util List Position_list Problem Types Windows
