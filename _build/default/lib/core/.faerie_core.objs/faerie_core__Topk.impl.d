lib/core/topk.ml: Faerie_heaps Faerie_sim Faerie_tokenize Fallback List Single_heap Types
