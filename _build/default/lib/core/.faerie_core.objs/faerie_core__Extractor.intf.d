lib/core/extractor.mli: Faerie_sim Faerie_tokenize Problem Types
