lib/core/multi_heap.mli: Faerie_tokenize Problem Types
