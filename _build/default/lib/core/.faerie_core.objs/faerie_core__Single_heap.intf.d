lib/core/single_heap.mli: Faerie_heaps Faerie_tokenize Problem Types
