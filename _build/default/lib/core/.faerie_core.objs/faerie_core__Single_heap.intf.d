lib/core/single_heap.mli: Faerie_heaps Faerie_tokenize Faerie_util Problem Types
