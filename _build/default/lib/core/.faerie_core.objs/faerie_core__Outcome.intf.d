lib/core/outcome.mli: Faerie_util Format
