lib/core/counting.ml: Array
