lib/core/span_select.mli: Types
