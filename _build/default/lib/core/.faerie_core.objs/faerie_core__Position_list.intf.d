lib/core/position_list.mli:
