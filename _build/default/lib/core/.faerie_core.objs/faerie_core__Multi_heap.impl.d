lib/core/multi_heap.ml: Array Faerie_heaps Faerie_index Faerie_sim Faerie_tokenize Faerie_util List Problem Types
