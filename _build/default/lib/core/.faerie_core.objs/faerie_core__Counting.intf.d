lib/core/counting.mli:
