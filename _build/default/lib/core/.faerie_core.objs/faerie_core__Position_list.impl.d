lib/core/position_list.ml: Array List
