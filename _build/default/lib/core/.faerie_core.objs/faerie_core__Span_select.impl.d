lib/core/span_select.ml: Array Faerie_sim List Types
