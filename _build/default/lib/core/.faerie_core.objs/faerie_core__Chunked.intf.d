lib/core/chunked.mli: Problem Seq Types
