lib/core/windows.ml: Array
