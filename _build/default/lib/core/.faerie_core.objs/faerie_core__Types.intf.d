lib/core/types.mli: Faerie_sim Format
