lib/core/parallel.mli: Problem Types
