lib/core/parallel.mli: Faerie_util Outcome Problem Types
