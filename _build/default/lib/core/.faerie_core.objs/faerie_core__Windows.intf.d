lib/core/windows.mli:
