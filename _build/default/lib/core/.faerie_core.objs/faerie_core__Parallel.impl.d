lib/core/parallel.ml: Array Atomic Domain Faerie_tokenize Fallback List Problem Single_heap Types
