lib/core/parallel.ml: Array Atomic Chunked Domain Faerie_tokenize Faerie_util Fallback Fun List Outcome Printexc Problem Seq Single_heap String Types
