lib/core/extractor.ml: Faerie_index Faerie_sim Faerie_tokenize Fallback Format List Problem Single_heap String Types
