lib/core/types.ml: Faerie_sim Format
