lib/core/problem.ml: Array Faerie_index Faerie_sim Faerie_tokenize List Printf Types
