lib/core/chunked.ml: Buffer Faerie_index Faerie_sim Faerie_tokenize Fallback List Problem Seq Single_heap String Types
