(** Occurrence-array counting for the single-heap method (Section 3.3).

    Conceptually the paper maintains [V\[start\]\[len\]] = number of entity
    positions inside the valid substring [D\[start, len\]]. We never
    materialize the 2-D array: for one entity, one substring length and one
    slice of the position list, a two-pointer sweep emits exactly the
    non-zero entries — the quantity the paper reports as "candidates". *)

val iter_nonzero :
  positions:int array ->
  first:int ->
  last:int ->
  len:int ->
  n_tokens:int ->
  f:(start:int -> count:int -> unit) ->
  unit
(** [iter_nonzero ~positions ~first ~last ~len ~n_tokens ~f] calls
    [f ~start ~count] for every substring start [start] (with
    [start + len <= n_tokens]) whose token window
    [\[start, start + len - 1\]] contains at least one of
    [positions.(first..last)], where [count] is how many it contains.
    Starts are visited in ascending order, each exactly once. Runs in
    O(emitted + slice size). *)
