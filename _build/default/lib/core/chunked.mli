(** Streaming extraction over documents larger than memory.

    The document arrives as a sequence of text pieces; extraction runs over
    a sliding buffer. Because any match spans at most [⌈E] tokens (Lemma 2)
    — bounded characters for gram mode, bounded tokens for word mode — a
    bounded tail of each buffer is carried into the next one, and every
    match of the full concatenated document is reported exactly once, with
    global character offsets. The test suite checks chunked == whole-document
    extraction on randomly split inputs.

    Word-mode carry cuts are snapped to token starts so a token straddling
    a buffer boundary is never mis-tokenized; gram-mode carries additionally
    cover the fallback entities' maximal match length. *)

val extract :
  ?pruning:Types.pruning ->
  ?min_buffer_chars:int ->
  Problem.t ->
  feed:(unit -> string option) ->
  Types.char_match list
(** [extract problem ~feed] pulls text pieces from [feed] until it returns
    [None] and returns all matches of the concatenation, sorted, with
    offsets into the concatenation. [min_buffer_chars] (default 65536)
    controls how much text accumulates before a round of extraction — a
    trade-off between memory and redundant work on the carried tail. *)

val extract_seq :
  ?pruning:Types.pruning ->
  ?min_buffer_chars:int ->
  Problem.t ->
  string Seq.t ->
  Types.char_match list
(** [extract_seq problem pieces] — convenience wrapper over {!extract}. *)
