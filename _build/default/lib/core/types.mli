(** Shared result and statistics types for the filtering algorithms. *)

type candidate = {
  entity : int;  (** entity id *)
  start : int;  (** first token position of the substring (0-based) *)
  len : int;  (** substring token count *)
}
(** A substring–entity pair that survived filtering ([|e ∩ s| >= T]). *)

type token_match = {
  m_entity : int;
  m_start : int;  (** first token position *)
  m_len : int;  (** token count *)
  m_score : Faerie_sim.Verify.Score.t;
}
(** A verified match, still in token coordinates. *)

type pruning =
  | No_prune  (** plain single-heap counting (Section 3.3) *)
  | Lazy_count  (** + lazy-count pruning (Section 4.1) *)
  | Bucket_count  (** + bucket-count pruning (Section 4.1) *)
  | Binary_window
      (** + candidate windows found with binary span/shift (Section 4.2);
          this is the full Faerie configuration *)

val pruning_name : pruning -> string
(** ["none"], ["lazy"], ["bucket"], ["binary"]. *)

val all_prunings : pruning list
(** In increasing strength order. *)

type char_match = {
  c_entity : int;
  c_start : int;  (** first character offset *)
  c_len : int;  (** length in characters *)
  c_score : Faerie_sim.Verify.Score.t;
}
(** A verified match in character coordinates (the final result space;
    fallback-path matches are produced here directly since they may not
    align to gram positions). *)

val compare_char_match : char_match -> char_match -> int

type stats = {
  mutable entities_seen : int;
      (** distinct entities streamed off the heap *)
  mutable entities_pruned_lazy : int;
      (** entities discarded because [|Pe| < Tl] *)
  mutable buckets_pruned : int;
      (** position-list buckets discarded by bucket-count pruning *)
  mutable candidates : int;
      (** the paper's Fig. 14 metric: non-zero occurrence-array entries
          examined (pruning levels None/Lazy/Bucket), or substrings
          enumerated from candidate windows (level Binary) *)
  mutable survivors : int;  (** candidates with [count >= T], sent to verify *)
  mutable verified : int;  (** survivors that passed exact verification *)
}

val new_stats : unit -> stats

val blit_stats : src:stats -> dst:stats -> unit
(** Copy every counter of [src] into [dst] (used to surface the stats of a
    run performed behind the outcome pipeline boundary). *)

val pp_stats : Format.formatter -> stats -> unit

val compare_candidate : candidate -> candidate -> int

val compare_token_match : token_match -> token_match -> int
(** Orders by (entity, start, len); score ignored. *)
