(** Overlap resolution: pick a best non-overlapping subset of matches.

    Approximate extraction reports every qualifying substring, so one
    planted mention typically produces a cluster of overlapping near-
    duplicate spans (see the quickstart example). Downstream consumers
    (annotation, linking) usually want one span per region. This module
    solves the classic weighted interval scheduling problem over the match
    spans: the selected subset is pairwise non-overlapping and maximizes
    total weight, in O(n log n). *)

val default_weight : Types.char_match -> float
(** Similarity scores as-is; an edit distance [d] becomes [1 / (1 + d)].
    Longer spans win ties implicitly only through their score. *)

val select :
  ?weight:(Types.char_match -> float) ->
  Types.char_match list ->
  Types.char_match list
(** [select ms] is a maximum-weight pairwise non-overlapping subset of
    [ms], sorted by start offset. Two spans overlap when they share at
    least one character position; touching spans ([end = start]) do not.
    Among equal-weight optima the earlier/shorter spans are preferred
    (deterministic). Weights must be non-negative. *)

val greedy_best :
  ?weight:(Types.char_match -> float) ->
  Types.char_match list ->
  Types.char_match list
(** Greedy alternative: repeatedly keep the highest-weight remaining span
    and discard everything overlapping it. Not optimal in total weight but
    guarantees every kept span is locally the best in its region — some
    annotation pipelines prefer this behaviour. Exposed for comparison and
    tests. *)
