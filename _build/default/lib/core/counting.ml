let iter_nonzero ~positions ~first ~last ~len ~n_tokens ~f =
  if last >= first && len >= 1 && len <= n_tokens then begin
    let max_start = n_tokens - len in
    (* i: first slice index with positions.(i) >= start (window membership
       lower fringe); j: first slice index with positions.(j) > start+len-1.
       Window count = j - i. Both advance monotonically with start. *)
    let i = ref first and j = ref first in
    let start = ref (max 0 (positions.(first) - len + 1)) in
    let continue = ref true in
    while !continue && !start <= max_start do
      while !i <= last && positions.(!i) < !start do
        incr i
      done;
      while !j <= last && positions.(!j) <= !start + len - 1 do
        incr j
      done;
      let count = !j - !i in
      if count > 0 then begin
        f ~start:!start ~count;
        incr start
      end
      else if !i > last then continue := false
      else
        (* The window is empty: jump to the first start whose window can
           contain the next position. *)
        start := max (!start + 1) (positions.(!i) - len + 1)
    done
  end
