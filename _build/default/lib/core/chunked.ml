module Tk = Faerie_tokenize
module S = Faerie_sim
open Types

(* Maximal character length of any fallback-path match (gram mode only). *)
let fallback_max_chars problem =
  List.fold_left
    (fun acc id ->
      let e =
        Faerie_index.Dictionary.entity (Problem.dictionary problem) id
      in
      let _, hi =
        Fallback.char_length_bounds (Problem.sim problem)
          ~e_chars:(String.length e.Faerie_index.Entity.text)
      in
      max acc hi)
    1
    (Problem.fallback_entities problem)

let extract_buffer ?pruning problem text =
  let doc = Problem.tokenize_document problem text in
  let matches, _ = Single_heap.run ?pruning problem doc in
  let main =
    List.map
      (fun (m : token_match) ->
        let c_start, c_len =
          Tk.Document.char_extent doc ~start:m.m_start ~len:m.m_len
        in
        { c_entity = m.m_entity; c_start; c_len; c_score = m.m_score })
      matches
  in
  (doc, List.sort_uniq compare_char_match (Fallback.run problem doc @ main))

(* The carry cut: a buffer position such that
   (a) no match of the full document starts before it and extends beyond
       the current buffer, and
   (b) every match starting at or after it is found intact when the buffer
       tail from the cut onward is re-processed with the next input.
   Returns 0 when no safe cut exists yet (carry everything). *)
let carry_cut problem doc ~buffer_len ~fallback_chars =
  let upper = Problem.global_upper problem in
  let n = Tk.Document.n_tokens doc in
  (* Reserve the (possibly input-truncated) last token plus upper tokens. *)
  let cut_token = n - upper - 1 in
  if cut_token <= 0 then 0
  else begin
    let token_cut = (Tk.Document.span doc cut_token).Tk.Span.start_pos in
    match Problem.fallback_entities problem with
    | [] -> token_cut
    | _ :: _ -> max 0 (min token_cut (buffer_len - fallback_chars))
  end

let extract ?pruning ?(min_buffer_chars = 65536) problem ~feed =
  let fallback_chars = fallback_max_chars problem in
  let results = ref [] in
  let buffer = Buffer.create (min_buffer_chars + 1024) in
  let base = ref 0 in
  let eof = ref false in
  let fill () =
    while (not !eof) && Buffer.length buffer < min_buffer_chars do
      match feed () with
      | Some piece -> Buffer.add_string buffer piece
      | None -> eof := true
    done
  in
  let emit ~limit ms =
    List.iter
      (fun m ->
        if m.c_start < limit then
          results := { m with c_start = m.c_start + !base } :: !results)
      ms
  in
  fill ();
  let continue = ref true in
  while !continue do
    let text = Buffer.contents buffer in
    if !eof then begin
      if String.length text > 0 then begin
        let _, ms = extract_buffer ?pruning problem text in
        emit ~limit:max_int ms
      end;
      continue := false
    end
    else begin
      let doc, ms = extract_buffer ?pruning problem text in
      let cut =
        carry_cut problem doc ~buffer_len:(String.length text) ~fallback_chars
      in
      if cut > 0 then begin
        emit ~limit:cut ms;
        base := !base + cut;
        Buffer.clear buffer;
        Buffer.add_string buffer
          (String.sub text cut (String.length text - cut))
      end;
      (* Progress: read at least one more piece before the next round. *)
      (match feed () with
      | Some piece -> Buffer.add_string buffer piece
      | None -> eof := true);
      fill ()
    end
  done;
  List.sort_uniq compare_char_match !results

let extract_seq ?pruning ?min_buffer_chars problem pieces =
  let rest = ref pieces in
  let feed () =
    match Seq.uncons !rest with
    | Some (piece, tl) ->
        rest := tl;
        Some piece
    | None -> None
  in
  extract ?pruning ?min_buffer_chars problem ~feed
