module Tk = Faerie_tokenize
module S = Faerie_sim
module Ix = Faerie_index
module Core = Faerie_core
module Dynarray = Faerie_util.Dynarray
module Bytesize = Faerie_util.Bytesize
open Faerie_core.Types

type t = {
  problem : Core.Problem.t;
  signatures : int array array;  (** entity id -> sorted signature tokens *)
  lists : (int, int list ref) Hashtbl.t;  (** signature token -> entity ids *)
  mutable checked : int;
}

let multiplicity tokens tok =
  Array.fold_left (fun acc x -> if x = tok then acc + 1 else acc) 0 tokens

(* Signature: drop the globally most frequent distinct tokens while the
   total multiset multiplicity of dropped tokens stays below Tl; what
   remains (the rarer tokens) is the signature. A substring sharing >= Tl
   tokens with the entity must contain a signature token. *)
let signature_of ~freq (e : Ix.Entity.t) ~tl =
  let distinct = e.Ix.Entity.distinct_tokens in
  let by_freq_desc = Array.copy distinct in
  Array.sort
    (fun a b ->
      let c = compare freq.(b) freq.(a) in
      if c <> 0 then c else compare a b)
    by_freq_desc;
  let dropped_mult = ref 0 in
  let sig_tokens = ref [] in
  Array.iter
    (fun tok ->
      let m = multiplicity e.Ix.Entity.tokens tok in
      if !dropped_mult + m <= tl - 1 then dropped_mult := !dropped_mult + m
      else sig_tokens := tok :: !sig_tokens)
    by_freq_desc;
  let s = Array.of_list !sig_tokens in
  Array.sort compare s;
  s

let build problem =
  let dict = Core.Problem.dictionary problem in
  let n_tokens = Tk.Interner.size (Ix.Dictionary.interner dict) in
  let freq = Array.make (max 1 n_tokens) 0 in
  Array.iter
    (fun e ->
      Array.iter
        (fun tok -> freq.(tok) <- freq.(tok) + 1)
        e.Ix.Entity.distinct_tokens)
    (Ix.Dictionary.entities dict);
  let lists = Hashtbl.create 4096 in
  let signatures =
    Array.map
      (fun e ->
        let info = Core.Problem.info problem e.Ix.Entity.id in
        match info.Core.Problem.path with
        | Core.Problem.Indexed ->
            let s = signature_of ~freq e ~tl:info.Core.Problem.tl in
            Array.iter
              (fun tok ->
                match Hashtbl.find_opt lists tok with
                | Some l -> l := e.Ix.Entity.id :: !l
                | None -> Hashtbl.add lists tok (ref [ e.Ix.Entity.id ]))
              s;
            s
        | Core.Problem.Fallback | Core.Problem.Impossible -> [||])
      (Ix.Dictionary.entities dict)
  in
  { problem; signatures; lists; checked = 0 }

let verify_substring t doc ~entity ~start ~len =
  t.checked <- t.checked + 1;
  let c : candidate = { entity; start; len } in
  let sim = Core.Problem.sim t.problem in
  (* Count filter before the (expensive) DP for the character-based
     functions: a candidate must share at least T grams with the entity. *)
  let passes_count_filter =
    if not (S.Sim.char_based sim) then true
    else begin
      let e =
        Ix.Dictionary.entity (Core.Problem.dictionary t.problem) entity
      in
      let overlap =
        Tk.Token_ops.multiset_overlap e.Ix.Entity.sorted_tokens
          (Tk.Document.token_multiset doc ~start ~len)
      in
      overlap >= Core.Problem.overlap_t t.problem
                   ~e_len:(Ix.Entity.n_tokens e) ~s_len:len
    end
  in
  if not passes_count_filter then None
  else
  let score = Core.Problem.verify_candidate t.problem doc c in
  if S.Verify.Score.passes (Core.Problem.sim t.problem) score then begin
    let c_start, c_len = Tk.Document.char_extent doc ~start ~len in
    Some { c_entity = entity; c_start = c_start; c_len; c_score = score }
  end
  else None

let extract t doc =
  let n = Tk.Document.n_tokens doc in
  let seen = Hashtbl.create 4096 in
  let acc = ref [] in
  for pos = 0 to n - 1 do
    let tok = Tk.Document.token_id doc pos in
    if tok >= 0 then
      match Hashtbl.find_opt t.lists tok with
      | None -> ()
      | Some entities ->
          List.iter
            (fun entity ->
              let info = Core.Problem.info t.problem entity in
              let lo = info.Core.Problem.lower
              and hi = min info.Core.Problem.upper n in
              for len = lo to hi do
                for start = max 0 (pos - len + 1) to min pos (n - len) do
                  let key = (entity, start, len) in
                  if not (Hashtbl.mem seen key) then begin
                    Hashtbl.add seen key ();
                    match verify_substring t doc ~entity ~start ~len with
                    | Some m -> acc := m :: !acc
                    | None -> ()
                  end
                done
              done)
            !entities
  done;
  let fallback = Core.Fallback.run t.problem doc in
  List.sort_uniq compare_char_match (List.rev_append fallback !acc)

let candidates_checked t = t.checked

let index_bytes t =
  let bytes = ref 0 in
  Hashtbl.iter
    (fun _tok l ->
      bytes := !bytes + Bytesize.bytes_of_words (3 + (3 * List.length !l)))
    t.lists;
  !bytes

let signature t id = t.signatures.(id)
