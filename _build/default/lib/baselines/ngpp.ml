module Tk = Faerie_tokenize
module S = Faerie_sim
module Bytesize = Faerie_util.Bytesize
open Faerie_core.Types

type hit = { entity : int; offset : int }

type t = {
  tau : int;
  entities : string array;  (** normalized *)
  raw : string array;
  table : (string, hit list ref) Hashtbl.t;
  probe_lengths : int list;  (** substring lengths worth probing *)
  mutable entries : int;
}

let n_partitions tau = max 1 ((tau + 2) / 2)

let partitions ~tau s =
  let k = n_partitions tau in
  let n = String.length s in
  (* k contiguous parts, sizes as even as possible (first [n mod k] parts
     one char longer). *)
  let base = n / k and extra = n mod k in
  let rec build i off acc =
    if i >= k then List.rev acc
    else begin
      let len = base + if i < extra then 1 else 0 in
      build (i + 1) (off + len) ((off, String.sub s off len) :: acc)
    end
  in
  build 0 0 []

let one_deletions s =
  let n = String.length s in
  List.init n (fun i -> String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1))

(* Per-partition edit budget: with k = ceil((tau+1)/2) partitions the
   pigeonhole argument leaves at most floor(tau/k) <= 1 edits on some
   partition — and exactly 0 when tau = 0, where partitions must match
   exactly and no deletion neighborhood is needed. *)
let part_budget tau = if tau = 0 then 0 else 1

let neighborhood ~budget s = if budget = 0 then [ s ] else s :: one_deletions s

let add_entry t key hit =
  t.entries <- t.entries + 1;
  match Hashtbl.find_opt t.table key with
  | Some l -> l := hit :: !l
  | None -> Hashtbl.add t.table key (ref [ hit ])

let build ~tau raw_entities =
  if tau < 0 then invalid_arg "Ngpp.build: tau must be >= 0";
  let raw = Array.of_list raw_entities in
  let entities = Array.map Tk.Tokenizer.normalize raw in
  let t =
    {
      tau;
      entities;
      raw;
      table = Hashtbl.create 4096;
      probe_lengths = [];
      entries = 0;
    }
  in
  let part_lengths = Hashtbl.create 64 in
  Array.iteri
    (fun id e ->
      List.iter
        (fun (offset, part) ->
          Hashtbl.replace part_lengths (String.length part) ();
          List.iter
            (fun neighbor -> add_entry t neighbor { entity = id; offset })
            (neighborhood ~budget:(part_budget tau) part))
        (partitions ~tau e))
    entities;
  (* A document substring w' can be within ed <= 1 of a part w only when
     its length is within 1 of |w|. *)
  let lengths = Hashtbl.create 64 in
  Hashtbl.iter
    (fun len () ->
      let near =
        if part_budget tau = 0 then [ len ] else [ len - 1; len; len + 1 ]
      in
      List.iter (fun l -> if l >= 0 then Hashtbl.replace lengths l ()) near)
    part_lengths;
  let probe_lengths =
    Hashtbl.fold (fun l () acc -> l :: acc) lengths [] |> List.sort compare
  in
  { t with probe_lengths }

(* Verify every admissible substring aligned with a partition hit. *)
let verify_hit t text ~seen ~acc ~pos hit =
  let n = String.length text in
  let e = t.entities.(hit.entity) in
  let e_len = String.length e in
  let start_lo = max 0 (pos - hit.offset - t.tau) in
  let start_hi = min (n - 1) (pos - hit.offset + t.tau) in
  for start = start_lo to start_hi do
    for len = max 1 (e_len - t.tau) to min (e_len + t.tau) (n - start) do
      let key = (hit.entity, start, len) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        match
          S.Edit_distance.distance_upto ~cap:t.tau e (String.sub text start len)
        with
        | Some d ->
            acc :=
              {
                c_entity = hit.entity;
                c_start = start;
                c_len = len;
                c_score = S.Verify.Score.Distance d;
              }
              :: !acc
        | None -> ()
      end
    done
  done

let extract t raw_doc =
  let text = Tk.Tokenizer.normalize raw_doc in
  let n = String.length text in
  let seen = Hashtbl.create 4096 in
  let acc = ref [] in
  let probe pos s =
    List.iter
      (fun neighbor ->
        match Hashtbl.find_opt t.table neighbor with
        | Some hits -> List.iter (verify_hit t text ~seen ~acc ~pos) !hits
        | None -> ())
      (neighborhood ~budget:(part_budget t.tau) s)
  in
  List.iter
    (fun len ->
      if len = 0 then begin
        (* Empty partitions (entities shorter than the partition count)
           match anywhere; probe the empty string once per position. *)
        if Hashtbl.mem t.table "" then
          for pos = 0 to n do
            match Hashtbl.find_opt t.table "" with
            | Some hits -> List.iter (verify_hit t text ~seen ~acc ~pos) !hits
            | None -> ()
          done
      end
      else
        for pos = 0 to n - len do
          probe pos (String.sub text pos len)
        done)
    t.probe_lengths;
  List.sort_uniq compare_char_match !acc

let index_bytes t =
  let bytes = ref 0 in
  Hashtbl.iter
    (fun key hits ->
      bytes :=
        !bytes + Bytesize.string_bytes key
        + Bytesize.bytes_of_words (3 + (4 * List.length !hits)))
    t.table;
  !bytes

let n_neighborhood_entries t = t.entries
