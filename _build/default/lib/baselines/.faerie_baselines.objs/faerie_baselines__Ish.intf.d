lib/baselines/ish.mli: Faerie_core Faerie_tokenize
