lib/baselines/naive.mli: Faerie_core Faerie_tokenize
