lib/baselines/naive.ml: Array Faerie_core Faerie_index Faerie_sim Faerie_tokenize List String
