lib/baselines/ngpp.ml: Array Faerie_core Faerie_sim Faerie_tokenize Faerie_util Hashtbl List String
