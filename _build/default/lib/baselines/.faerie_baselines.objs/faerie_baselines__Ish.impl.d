lib/baselines/ish.ml: Array Faerie_core Faerie_index Faerie_sim Faerie_tokenize Faerie_util Hashtbl List
