lib/baselines/ngpp.mli: Faerie_core
