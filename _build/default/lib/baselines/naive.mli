(** Brute-force oracle: enumerate substrings and verify each one exactly.

    Used as the gold standard in the test suite — every filtering algorithm
    must return exactly this set — and as the "no index" reference point.
    Intended for small inputs only (quadratic in document size). *)

val extract :
  ?length_filtered:bool ->
  Faerie_core.Problem.t ->
  Faerie_tokenize.Document.t ->
  Faerie_core.Types.char_match list
(** [extract ?length_filtered problem doc] verifies:
    - token-based functions: every token substring [D\[a, l\]];
    - character-based functions: every character substring of the
      normalized text.

    With [length_filtered = false] (default) all lengths from 1 to the
    document size are tried — no lemma of the paper is assumed, so this is
    a true oracle. With [true], lengths are restricted per entity: Lemma 2
    bounds for token functions, the elementary length bounds
    (|len(s) - len(e)| <= tau, resp. delta * len <= len(s) <= len / delta)
    for character functions — still complete, but faster on larger tests. *)
