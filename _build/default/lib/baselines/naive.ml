module Tk = Faerie_tokenize
module S = Faerie_sim
module Ix = Faerie_index
module Core = Faerie_core
open Faerie_core.Types

let char_lengths ~length_filtered sim ~e_chars ~n =
  if not length_filtered then (1, n)
  else
    let lo, hi = Core.Fallback.char_length_bounds sim ~e_chars in
    (* Widen by one on both sides: the oracle must not depend on exact
       rounding of the bounds it is used to validate. *)
    (max 1 (lo - 1), min n (hi + 1))

let token_lengths ~length_filtered problem ~entity ~n =
  if not length_filtered then (1, n)
  else
    let info = Core.Problem.info problem entity in
    (max 1 (info.Core.Problem.lower - 1), min n (info.Core.Problem.upper + 1))

let extract_char ~length_filtered problem doc =
  let sim = Core.Problem.sim problem in
  let text = Tk.Document.text doc in
  let n = String.length text in
  let dict = Core.Problem.dictionary problem in
  let acc = ref [] in
  Array.iter
    (fun e ->
      let e_str = e.Ix.Entity.text in
      let lo, hi =
        char_lengths ~length_filtered sim ~e_chars:(String.length e_str) ~n
      in
      for len = lo to hi do
        for start = 0 to n - len do
          let s_str = String.sub text start len in
          let score = S.Verify.char_score sim ~e_str ~s_str in
          if S.Verify.Score.passes sim score then
            acc :=
              {
                c_entity = e.Ix.Entity.id;
                c_start = start;
                c_len = len;
                c_score = score;
              }
              :: !acc
        done
      done)
    (Ix.Dictionary.entities dict);
  !acc

let extract_token ~length_filtered problem doc =
  let sim = Core.Problem.sim problem in
  let n = Tk.Document.n_tokens doc in
  let dict = Core.Problem.dictionary problem in
  let acc = ref [] in
  Array.iter
    (fun e ->
      let lo, hi =
        token_lengths ~length_filtered problem ~entity:e.Ix.Entity.id ~n
      in
      for len = lo to hi do
        for start = 0 to n - len do
          let s_tokens = Tk.Document.token_multiset doc ~start ~len in
          let score =
            S.Verify.token_score sim ~e_tokens:e.Ix.Entity.sorted_tokens
              ~s_tokens
          in
          if S.Verify.Score.passes sim score then begin
            let c_start, c_len = Tk.Document.char_extent doc ~start ~len in
            acc :=
              {
                c_entity = e.Ix.Entity.id;
                c_start;
                c_len;
                c_score = score;
              }
              :: !acc
          end
        done
      done)
    (Ix.Dictionary.entities dict);
  !acc

let extract ?(length_filtered = false) problem doc =
  let sim = Core.Problem.sim problem in
  let matches =
    if S.Sim.char_based sim then extract_char ~length_filtered problem doc
    else extract_token ~length_filtered problem doc
  in
  List.sort_uniq compare_char_match matches
