(** NGPP — neighborhood-generation with partitioning (Wang, Xiao, Lin,
    Zhang, SIGMOD 2009), the paper's edit-distance competitor (Fig. 16a).

    Each entity is split into [k = ⌈(tau+1)/2⌉] contiguous partitions; by
    the pigeonhole principle, any string within edit distance [tau] of the
    entity contains a substring within edit distance 1 of some partition
    (aligned within [tau] of the partition's offset). "Within edit distance
    1" is detected through 1-deletion neighborhoods: the index maps every
    partition and every string obtained by deleting one character from it
    to [(entity, partition offset, partition length)]; a probe generates
    the same neighborhood of each document substring of a relevant length.
    Hits become alignment candidates verified with a banded DP.

    The index grows with [tau] (larger neighborhoods, more probe lengths) —
    the behaviour the paper contrasts with Faerie's q-gram index. *)

type t

val build : tau:int -> string list -> t
(** Index a dictionary for edit-distance threshold [tau].

    @raise Invalid_argument if [tau < 0]. *)

val extract : t -> string -> Faerie_core.Types.char_match list
(** All substrings of the (normalized) document within edit distance [tau]
    of some entity; character coordinates, sorted, deduplicated. *)

val index_bytes : t -> int
(** Estimated resident size of the neighborhood hash table. *)

val n_neighborhood_entries : t -> int

val partitions : tau:int -> string -> (int * string) list
(** [(offset, part)] partitioning used by the index; exposed for tests. *)
