(** ISH — inverted signature hashtable (after Chakrabarti, Chaudhuri,
    Ganti, Xin, SIGMOD 2008), the paper's competitor for jaccard and edit
    similarity (Fig. 16b/c).

    Reimplementation of the signature-filter idea (see DESIGN.md): each
    entity selects a signature — the smallest set of its rarest distinct
    tokens such that the total multiplicity of the unselected tokens is
    below the lazy overlap threshold [Tl]. Any substring matching the
    entity must then contain a signature token. Extraction probes every
    document token against the signature lists and verifies each spawned
    valid substring individually — per-substring membership checking with
    no computation shared across overlapping substrings, which is precisely
    the axis on which Faerie wins.

    Entities on the fallback path (vacuous filter) are handled by the same
    exhaustive scan Faerie uses, so results always equal Faerie's. *)

type t

val build : Faerie_core.Problem.t -> t
(** Derive signatures from an existing problem (reuses its tokenization and
    thresholds; the problem's inverted index is {e not} used). *)

val extract :
  t -> Faerie_tokenize.Document.t -> Faerie_core.Types.char_match list
(** Matches in character coordinates, sorted, deduplicated. The document
    must have been tokenized by the problem's dictionary
    ({!Faerie_core.Problem.tokenize_document}). *)

val candidates_checked : t -> int
(** Number of (substring, entity) verifications performed by all
    [extract] calls so far — the baseline's cost driver. *)

val index_bytes : t -> int
(** Estimated resident size of the signature lists. *)

val signature : t -> int -> int array
(** The signature token ids of one entity (sorted); exposed for tests. *)
