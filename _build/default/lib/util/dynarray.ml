type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  mutable dummy : 'a option;
      (* First pushed element, kept to fill fresh capacity; avoids requiring
         a witness value at [create] time. *)
}

let create () = { data = [||]; len = 0; dummy = None }

let make n x = { data = Array.make (max n 1) x; len = n; dummy = Some x }

let length t = t.len

let is_empty t = t.len = 0

let check t i name =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Dynarray.%s: index %d out of bounds [0,%d)" name i t.len)

let get t i =
  check t i "get";
  t.data.(i)

let set t i x =
  check t i "set";
  t.data.(i) <- x

let ensure_capacity t x =
  let cap = Array.length t.data in
  if t.len >= cap then begin
    let ncap = max 8 (2 * cap) in
    let fill = match t.dummy with Some d -> d | None -> x in
    let ndata = Array.make ncap fill in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end

let push t x =
  if t.dummy = None then t.dummy <- Some x;
  ensure_capacity t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Dynarray.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let last t =
  if t.len = 0 then invalid_arg "Dynarray.last: empty";
  t.data.(t.len - 1)

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let to_list t = Array.to_list (to_array t)

let of_array arr =
  let n = Array.length arr in
  if n = 0 then create ()
  else { data = Array.copy arr; len = n; dummy = Some arr.(0) }

let of_list l = of_array (Array.of_list l)

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
