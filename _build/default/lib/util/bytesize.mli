(** Byte-size accounting and pretty-printing.

    Table 5 of the paper reports index sizes in MB/KB; the index modules
    expose estimated in-memory footprints through these helpers. Estimates
    follow the OCaml runtime layout on 64-bit: one word per header plus one
    word per field, 8 bytes per word. *)

val words_per_int_array : int -> int
(** [words_per_int_array n] is the heap words used by an [int array] of
    length [n] (header + payload). *)

val bytes_of_words : int -> int
(** Words to bytes on a 64-bit runtime. *)

val string_bytes : string -> int
(** Heap bytes of one string (header + padded payload). *)

val pp_bytes : Format.formatter -> int -> unit
(** Render a byte count as ["512 B"], ["4.2 KB"], ["7.1 MB"], ["1.3 GB"]. *)

val to_string : int -> string
(** [to_string n] is [Format.asprintf "%a" pp_bytes n]. *)
