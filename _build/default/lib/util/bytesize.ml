let words_per_int_array n = 1 + n

let bytes_of_words w = w * 8

let string_bytes s =
  (* Header word + payload rounded up to whole words incl. terminator. *)
  let payload_words = (String.length s / 8) + 1 in
  8 * (1 + payload_words)

let pp_bytes ppf n =
  let f = float_of_int n in
  if n < 1024 then Format.fprintf ppf "%d B" n
  else if f < 1024. *. 1024. then Format.fprintf ppf "%.1f KB" (f /. 1024.)
  else if f < 1024. *. 1024. *. 1024. then
    Format.fprintf ppf "%.1f MB" (f /. (1024. *. 1024.))
  else Format.fprintf ppf "%.2f GB" (f /. (1024. *. 1024. *. 1024.))

let to_string n = Format.asprintf "%a" pp_bytes n
