(** Deterministic pseudo-random number generator (xorshift64-star).

    The data generators ({!Faerie_datagen}) and the property tests must be
    reproducible across runs and machines, so we avoid [Stdlib.Random] (whose
    default seeding is nondeterministic and whose algorithm may change across
    compiler releases) and use a tiny self-contained xorshift64* generator. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Any seed is accepted; zero is
    remapped internally since the all-zero state is a fixed point. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current state. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)]. [bound] must be
    positive.

    @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.

    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** A uniform boolean. *)

val bits64 : t -> int64
(** Next raw 64-bit output of the generator. *)

val choose : t -> 'a array -> 'a
(** [choose t arr] picks a uniform element.

    @raise Invalid_argument on an empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)
