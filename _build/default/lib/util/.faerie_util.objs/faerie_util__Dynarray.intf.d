lib/util/dynarray.mli:
