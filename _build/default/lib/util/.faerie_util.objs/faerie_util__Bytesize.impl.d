lib/util/bytesize.ml: Format String
