lib/util/budget.ml: Option Unix
