lib/util/fault.mli:
