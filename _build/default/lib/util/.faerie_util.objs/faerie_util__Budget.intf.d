lib/util/budget.mli:
