lib/util/varint.ml: Buffer Char Printf String
