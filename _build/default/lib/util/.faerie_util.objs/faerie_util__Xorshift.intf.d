lib/util/xorshift.mli:
