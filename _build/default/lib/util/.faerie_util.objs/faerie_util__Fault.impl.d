lib/util/fault.ml: Atomic Domain Fun Hashtbl Int64 List
