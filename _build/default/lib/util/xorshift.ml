type t = { mutable state : int64 }

let create seed =
  let s = Int64.of_int seed in
  (* The all-zero state is a fixed point of xorshift; remap it. *)
  let s = if Int64.equal s 0L then 0x9E3779B97F4A7C15L else s in
  { state = s }

let copy t = { state = t.state }

let bits64 t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int t bound =
  if bound <= 0 then invalid_arg "Xorshift.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Xorshift.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Xorshift.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
