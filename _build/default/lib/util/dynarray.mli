(** Growable arrays.

    OCaml 5.1's standard library does not ship [Dynarray] (it arrived in
    5.2), and the filtering algorithms build many append-only buffers
    (position lists, candidate sets), so we provide a minimal amortised-O(1)
    push vector. *)

type 'a t

val create : unit -> 'a t
(** An empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds access. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-bounds access. *)

val push : 'a t -> 'a -> unit
(** Append one element (amortised O(1)). *)

val pop : 'a t -> 'a
(** Remove and return the last element.

    @raise Invalid_argument if the vector is empty. *)

val last : 'a t -> 'a
(** @raise Invalid_argument if the vector is empty. *)

val clear : 'a t -> unit
(** Reset the length to zero. Capacity is retained so the vector can be
    reused without reallocating — the single-heap counting loop depends on
    this. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val of_array : 'a array -> 'a t

val exists : ('a -> bool) -> 'a t -> bool

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)
