exception Malformed of string

let write buf n =
  if n < 0 then invalid_arg "Varint.write: negative";
  let rec loop n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      loop (n lsr 7)
    end
  in
  loop n

let write_string buf s =
  write buf (String.length s);
  Buffer.add_string buf s

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let pos r = r.pos

let at_end r = r.pos >= String.length r.data

let read r =
  let rec loop shift acc =
    if r.pos >= String.length r.data then raise (Malformed "truncated varint");
    if shift > 62 then raise (Malformed "varint overflow");
    let b = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let read_string r =
  let n = read r in
  if r.pos + n > String.length r.data then raise (Malformed "truncated string");
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let expect r s =
  let n = String.length s in
  if r.pos + n > String.length r.data then raise (Malformed "truncated header");
  if not (String.equal (String.sub r.data r.pos n) s) then
    raise (Malformed (Printf.sprintf "expected %S" s));
  r.pos <- r.pos + n

let fnv1a s =
  (* FNV-1a with the 64-bit offset basis truncated to OCaml's 63-bit int;
     an integrity check, not a cryptographic hash. *)
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int
