(** LEB128-style variable-length integer encoding, plus length-prefixed
    strings — the building blocks of the binary index codec
    ({!Faerie_index.Codec}). Only non-negative integers are supported
    (ids, counts, deltas of sorted sequences). *)

exception Malformed of string
(** Raised by the reading functions on truncated or corrupt input. *)

val write : Buffer.t -> int -> unit
(** Append an unsigned varint (7 bits per byte, high bit = continuation).

    @raise Invalid_argument on negative input. *)

val write_string : Buffer.t -> string -> unit
(** Length-prefixed string. *)

type reader
(** A cursor over an input string. *)

val reader : string -> reader

val pos : reader -> int

val at_end : reader -> bool

val read : reader -> int
(** @raise Malformed on truncation or overlong encoding (> 63 bits). *)

val read_string : reader -> string
(** @raise Malformed on truncation. *)

val expect : reader -> string -> unit
(** [expect r s] consumes the raw bytes [s].

    @raise Malformed if the input differs. *)

val fnv1a : string -> int
(** FNV-1a hash (63-bit), used as the codec's integrity checksum. *)
