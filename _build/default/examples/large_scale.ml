(* Large-scale pipeline: index persistence, parallel extraction over a
   document collection, streaming extraction of one oversized document,
   and top-k / overlap-resolved reporting.

   Run with:  dune exec examples/large_scale.exe *)

module Sim = Faerie_sim.Sim
module Core = Faerie_core
module Problem = Core.Problem
module Extractor = Core.Extractor
module Ix = Faerie_index
module Corpus = Faerie_datagen.Corpus

let () =
  let corpus = Corpus.dblp ~seed:77 ~n_entities:5_000 ~n_documents:400 () in
  Printf.printf "== Large scale: persistence + parallelism + streaming ==\n";
  Format.printf "corpus: %a@.@." Corpus.pp_stats (Corpus.stats corpus);

  (* 1. Build the index once and persist it. *)
  let problem =
    Problem.create ~sim:(Sim.Edit_distance 2) ~q:4
      (Array.to_list corpus.Corpus.entities)
  in
  let path = Filename.temp_file "faerie_demo" ".fidx" in
  let t0 = Unix.gettimeofday () in
  Ix.Codec.save (Problem.dictionary problem) (Problem.index problem) path;
  Printf.printf "index saved to %s (%s) in %.3fs\n" path
    (Faerie_util.Bytesize.to_string (Unix.stat path).Unix.st_size)
    (Unix.gettimeofday () -. t0);

  (* 2. Reload it (no re-tokenization) and extract in parallel. *)
  let t0 = Unix.gettimeofday () in
  let _, index = Ix.Codec.load path in
  let problem = Problem.of_index ~sim:(Sim.Edit_distance 2) index in
  Printf.printf "index loaded in %.3fs\n" (Unix.gettimeofday () -. t0);
  Sys.remove path;

  let docs = Array.map (fun d -> d.Corpus.text) corpus.Corpus.documents in
  let run domains =
    let t0 = Unix.gettimeofday () in
    let per_doc = Core.Parallel.extract_all ~domains problem docs in
    let total = Array.fold_left (fun acc ms -> acc + List.length ms) 0 per_doc in
    (total, Unix.gettimeofday () -. t0)
  in
  let total1, t1 = run 1 in
  let available = Domain.recommended_domain_count () in
  let totaln, tn = run available in
  Printf.printf
    "extracted %d matches from %d documents: %.3fs on 1 domain, %.3fs on %d domains%s\n"
    total1 (Array.length docs) t1 tn available
    (if totaln = total1 then " (identical results)" else " (MISMATCH!)");

  (* 3. Stream one oversized document through a bounded buffer. *)
  let big_doc = String.concat " " (Array.to_list (Array.sub docs 0 200)) in
  let pos = ref 0 in
  let feed () =
    if !pos >= String.length big_doc then None
    else begin
      let n = min 4096 (String.length big_doc - !pos) in
      let piece = String.sub big_doc !pos n in
      pos := !pos + n;
      Some piece
    end
  in
  let t0 = Unix.gettimeofday () in
  let streamed = Core.Chunked.extract ~min_buffer_chars:16_384 problem ~feed in
  Printf.printf
    "streamed a %d-char document through a 16 KB buffer: %d matches in %.3fs\n"
    (String.length big_doc) (List.length streamed)
    (Unix.gettimeofday () -. t0);

  (* 4. Report the 3 best hits of the first document, overlap-resolved. *)
  let ex = Extractor.of_problem problem in
  let doc = Extractor.tokenize ex docs.(0) in
  let top = Core.Topk.top_k ~k:10 problem doc in
  let clean = Core.Span_select.select top in
  print_endline "\nbest non-overlapping hits in document 0:";
  List.iteri
    (fun i r ->
      if i < 3 then Printf.printf "  %s\n" (Extractor.result_to_string ex r))
    (Extractor.results_of_char_matches ex doc clean)
