(* Publications scenario (the paper's DBLP workload, Section 6): recognize
   author names in bibliographic records despite typos.

   Builds a synthetic DBLP-like corpus with planted, noise-controlled
   mentions, extracts with edit distance, and reports precision/recall
   against the planted ground truth — the measurement the real DBLP corpus
   cannot provide.

   Run with:  dune exec examples/publications.exe *)

module Sim = Faerie_sim.Sim
module Extractor = Faerie_core.Extractor
module Corpus = Faerie_datagen.Corpus

let tau = 2

let () =
  let corpus = Corpus.dblp ~seed:2026 ~n_entities:2_000 ~n_documents:200 () in
  Printf.printf "== Publications: author-name extraction (ed <= %d) ==\n" tau;
  Format.printf "corpus: %a@." Corpus.pp_stats (Corpus.stats corpus);

  let ex =
    Extractor.create ~sim:(Sim.Edit_distance tau) ~q:2
      (Array.to_list corpus.Corpus.entities)
  in

  (* Score raw extraction and overlap-resolved extraction against the
     planted ground truth. *)
  let problem = Extractor.problem ex in
  let char_matches select doc_id =
    let doc =
      Extractor.tokenize ex corpus.Corpus.documents.(doc_id).Corpus.text
    in
    let matches, _ = Faerie_core.Single_heap.run problem doc in
    let ms =
      List.map
        (fun (m : Faerie_core.Types.token_match) ->
          let c_start, c_len =
            Faerie_tokenize.Document.char_extent doc
              ~start:m.Faerie_core.Types.m_start ~len:m.Faerie_core.Types.m_len
          in
          {
            Faerie_core.Types.c_entity = m.Faerie_core.Types.m_entity;
            c_start;
            c_len;
            c_score = m.Faerie_core.Types.m_score;
          })
        matches
    in
    if select then Faerie_core.Span_select.select ms else ms
  in
  let recoverable (m : Corpus.mention) =
    m.Corpus.char_edits <= tau && m.Corpus.token_drops = 0
  in
  let raw =
    Faerie_datagen.Eval.evaluate ~recoverable ~corpus
      ~matches_of:(char_matches false) ()
  in
  let resolved =
    Faerie_datagen.Eval.evaluate ~recoverable ~corpus
      ~matches_of:(char_matches true) ()
  in
  Printf.printf "documents scanned:   %d\n" (Array.length corpus.Corpus.documents);
  Format.printf "raw extraction:      %a@." Faerie_datagen.Eval.pp raw;
  Format.printf "overlap-resolved:    %a@." Faerie_datagen.Eval.pp resolved;

  (* Show a few concrete extractions from the first document. *)
  let d = corpus.Corpus.documents.(0) in
  let results = Extractor.extract ex d.Corpus.text in
  Printf.printf "\nfirst document (%d chars), first matches:\n"
    (String.length d.Corpus.text);
  List.iteri
    (fun i r -> if i < 5 then Printf.printf "  %s\n" (Extractor.result_to_string ex r))
    results
