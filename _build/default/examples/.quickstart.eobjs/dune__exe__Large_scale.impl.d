examples/large_scale.ml: Array Domain Faerie_core Faerie_datagen Faerie_index Faerie_sim Faerie_util Filename Format List Printf String Sys Unix
