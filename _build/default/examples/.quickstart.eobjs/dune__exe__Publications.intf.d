examples/publications.mli:
