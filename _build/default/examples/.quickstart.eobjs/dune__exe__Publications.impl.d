examples/publications.ml: Array Faerie_core Faerie_datagen Faerie_sim Faerie_tokenize Format List Printf String
