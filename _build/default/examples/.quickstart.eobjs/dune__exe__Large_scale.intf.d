examples/large_scale.mli:
