examples/webpage_annotation.mli:
