examples/medline.ml: Array Faerie_core Faerie_datagen Faerie_sim Format List Printf Unix
