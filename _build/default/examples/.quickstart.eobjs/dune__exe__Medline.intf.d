examples/medline.mli:
