examples/quickstart.ml: Faerie_core Faerie_sim List Printf String
