examples/quickstart.mli:
