(* Quickstart: the paper's running example (Table 1), end to end.

   Run with:  dune exec examples/quickstart.exe *)

module Sim = Faerie_sim.Sim
module Extractor = Faerie_core.Extractor

let dictionary =
  [ "kaushik ch"; "chakrabarti"; "chaudhuri"; "venkatesh"; "surajit ch" ]

let document =
  "An Efficient Filter for Approximate Membership Checking. Venkaee shga \
   Kamunshik kabarati, Dong Xin, Surauijt ChadhuriSIGMOD"

let () =
  print_endline "== Faerie quickstart: approximate entity extraction ==";
  Printf.printf "dictionary: %s\n" (String.concat " | " dictionary);
  Printf.printf "document:   %s\n\n" document;

  (* Edit distance <= 2 over 2-grams, exactly the paper's Section 2 setup. *)
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 dictionary in
  let results = Extractor.extract ex document in
  Printf.printf "edit distance tau=2: %d approximate matches\n" (List.length results);
  List.iter (fun r -> Printf.printf "  %s\n" (Extractor.result_to_string ex r)) results;

  (* The same dictionary under edit similarity. *)
  print_newline ();
  let ex = Extractor.create ~sim:(Sim.Edit_similarity 0.8) ~q:2 dictionary in
  let results = Extractor.extract ex document in
  Printf.printf "edit similarity delta=0.8: %d matches\n" (List.length results);
  List.iter (fun r -> Printf.printf "  %s\n" (Extractor.result_to_string ex r)) results;

  (* Token-based extraction: jaccard over word tokens. *)
  print_newline ();
  let names = [ "dong xin"; "surajit chaudhuri" ] in
  let ex = Extractor.create ~sim:(Sim.Jaccard 0.5) names in
  let results = Extractor.extract ex document in
  Printf.printf "jaccard delta=0.5 over %s: %d matches\n"
    (String.concat " | " names) (List.length results);
  List.iter (fun r -> Printf.printf "  %s\n" (Extractor.result_to_string ex r)) results
