(* Robustness tests: codec corruption fuzzing (decode must fail cleanly,
   never crash, hang or over-allocate), fault-injection containment in the
   parallel pipeline (faulted documents fail in isolation, the rest are
   untouched), and budget-exhaustion degradation (partial results are a
   subset of the full result set). *)

module Sim = Faerie_sim.Sim
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Parallel = Core.Parallel
module Outcome = Core.Outcome
module Chunked = Core.Chunked
module Ix = Faerie_index
module Codec = Ix.Codec
module Xorshift = Faerie_util.Xorshift
module Fault = Faerie_util.Fault
module Budget = Faerie_util.Budget
module Varint = Faerie_util.Varint

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let paper_dict =
  [ "kaushik ch"; "chakrabarti"; "chaudhuri"; "venkatesh"; "surajit ch" ]

let paper_doc =
  "an efficient filter for approximate membership checking. venkaee shga \
   kamunshik kabarati, dong xin, surauijt chadhurisigmod."

let ed_problem () = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict

let triples ms =
  List.map
    (fun (m : Types.char_match) -> (m.Types.c_entity, m.Types.c_start, m.Types.c_len))
    ms

(* ------------------------------------------------------------------ *)
(* Codec corruption                                                    *)
(* ------------------------------------------------------------------ *)

let encoded_index () =
  let problem = ed_problem () in
  Codec.encode (Problem.dictionary problem) (Problem.index problem)

let test_codec_flip_fuzz () =
  let data = encoded_index () in
  let rng = Xorshift.create 20260806 in
  let n = String.length data in
  for _ = 1 to 250 do
    let pos = Xorshift.int rng n in
    let delta = 1 + Xorshift.int rng 255 in
    let corrupted =
      String.mapi
        (fun i c -> if i = pos then Char.chr ((Char.code c + delta) land 0xff) else c)
        data
    in
    match Codec.decode corrupted with
    | _ -> Alcotest.failf "decode accepted a corrupted byte at %d" pos
    | exception Codec.Corrupt _ -> ()
  done

let test_codec_truncation_fuzz () =
  let data = encoded_index () in
  let rng = Xorshift.create 424242 in
  for _ = 1 to 250 do
    let len = Xorshift.int rng (String.length data) in
    match Codec.decode (String.sub data 0 len) with
    | _ -> Alcotest.failf "decode accepted a %d-byte truncation" len
    | exception Codec.Corrupt _ -> ()
  done

(* An adversarial length field must be rejected up front — not by
   attempting the multi-gigabyte allocation it describes. *)
let test_codec_adversarial_counts () =
  let huge = 1 lsl 40 in
  let header mode_tag q =
    let b = Buffer.create 64 in
    Buffer.add_string b "FAERIEIX";
    Varint.write b 1;
    Varint.write b mode_tag;
    Varint.write b q;
    b
  in
  (* huge token count *)
  let b = header 1 2 in
  Varint.write b huge;
  (match Codec.decode (Buffer.contents b) with
  | _ -> Alcotest.fail "accepted huge token count"
  | exception Codec.Corrupt _ -> ());
  (* huge entity count after a small valid token section *)
  let b = header 1 2 in
  Varint.write b 1;
  Varint.write_string b "ab";
  Varint.write b huge;
  (match Codec.decode (Buffer.contents b) with
  | _ -> Alcotest.fail "accepted huge entity count"
  | exception Codec.Corrupt _ -> ());
  (* huge per-entity token count *)
  let b = header 1 2 in
  Varint.write b 1;
  Varint.write_string b "ab";
  Varint.write b 1;
  Varint.write_string b "ab";
  Varint.write b huge;
  (match Codec.decode (Buffer.contents b) with
  | _ -> Alcotest.fail "accepted huge entity token count"
  | exception Codec.Corrupt _ -> ());
  (* huge postings count *)
  let b = header 1 2 in
  Varint.write b 1;
  Varint.write_string b "ab";
  Varint.write b 1;
  Varint.write_string b "ab";
  Varint.write b 1;
  Varint.write b 0;
  Varint.write b 1;
  Varint.write b huge;
  match Codec.decode (Buffer.contents b) with
  | _ -> Alcotest.fail "accepted huge postings count"
  | exception Codec.Corrupt _ -> ()

let test_codec_roundtrip_still_ok () =
  let data = encoded_index () in
  let dict, index = Codec.decode data in
  check_int "entities survive" (List.length paper_dict) (Ix.Dictionary.size dict);
  check_bool "postings survive" true (Ix.Inverted_index.n_postings index > 0)

(* ------------------------------------------------------------------ *)
(* Fault containment in the parallel pipeline                          *)
(* ------------------------------------------------------------------ *)

let batch_docs =
  [|
    paper_doc;
    "chaudhuri and chakrabarti wrote about venkatesh";
    "surajit ch spoke; kaushik ch listened";
    "no entities here at all, just plain filler text";
    "venkaee shga kamunshik kabarati again and again";
    "an unrelated sentence about query optimization";
    "chaudhri chadhuri chakrabati misspellings everywhere";
    "the quick brown fox jumps over the lazy dog";
  |]

let test_fault_containment () =
  let problem = ed_problem () in
  Fault.disarm ();
  let clean, clean_summary =
    Parallel.extract_all_outcomes ~domains:4 problem batch_docs
  in
  check_int "clean run: no failures" 0 clean_summary.Outcome.n_failed;
  Fault.reset_counts ();
  Fault.configure
    { Fault.seed = 99; rates = [ ("tokenize", 0.4); ("heap_merge", 0.4) ] };
  let faulted, summary =
    Fun.protect ~finally:Fault.disarm (fun () ->
        Parallel.extract_all_outcomes ~domains:4 problem batch_docs)
  in
  check_int "every injected fault is one failed document"
    (Fault.injected_count ()) summary.Outcome.n_failed;
  check_bool "at least one document faulted" true (summary.Outcome.n_failed > 0);
  check_bool "at least one document survived" true (summary.Outcome.n_ok > 0);
  Array.iteri
    (fun i outcome ->
      match (outcome, clean.(i)) with
      | Outcome.Failed (Outcome.Injected_fault site), _ ->
          check_bool "fault site is a known site" true
            (List.mem site Fault.known_sites)
      | Outcome.Ok got, Outcome.Ok want ->
          check_bool
            (Printf.sprintf "fault-free doc %d identical to clean run" i)
            true (got = want)
      | _ -> Alcotest.failf "unexpected outcome shape for document %d" i)
    faulted

let test_fault_determinism () =
  let problem = ed_problem () in
  let run () =
    Fault.configure
      { Fault.seed = 7; rates = [ ("tokenize", 0.5); ("verify", 0.1) ] };
    Fun.protect ~finally:Fault.disarm (fun () ->
        let outcomes, _ =
          Parallel.extract_all_outcomes ~domains:3 problem batch_docs
        in
        Array.map
          (function
            | Outcome.Failed (Outcome.Injected_fault s) -> "fail:" ^ s
            | Outcome.Ok _ -> "ok"
            | Outcome.Degraded _ -> "degraded"
            | Outcome.Failed _ -> "fail:other")
          outcomes)
  in
  check_bool "same faults on every run (independent of scheduling)" true
    (run () = run ())

let test_faults_inert_when_disarmed () =
  Fault.disarm ();
  let problem = ed_problem () in
  let a = Parallel.extract_all ~domains:1 problem batch_docs in
  let b = Parallel.extract_all ~domains:4 problem batch_docs in
  check_bool "disarmed pipeline unchanged" true (a = b)

let test_worker_crash_contained () =
  (* A genuine crash (not an injected fault) must also be contained: an
     empty q-gram problem cannot be built, so force a crash via a fault
     site raising an unexpected exception is not possible from outside;
     instead check the boundary directly with a budget that trips during
     tokenization-adjacent accounting. Simplest real crash: feed a problem
     whose verify raises via fault injection on the "verify" site and
     confirm the error taxonomy routes it as Injected_fault, then confirm
     Worker_crash shape for a synthetic exception through exn_info_of. *)
  let info = Outcome.exn_info_of (Failure "boom") in
  check_bool "exn name captured" true (info.Outcome.exn_name = "Failure");
  check_bool "message captured" true
    (String.length info.Outcome.message > 0)

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)
(* ------------------------------------------------------------------ *)

let subset small big =
  List.for_all (fun x -> List.mem x big) small

let test_budget_candidates_degrades_to_subset () =
  let problem = ed_problem () in
  let full =
    match
      Parallel.extract_one_outcome ~doc_id:0 problem paper_doc
    with
    | Outcome.Ok ms -> ms
    | _ -> Alcotest.fail "unbudgeted run should be Ok"
  in
  check_bool "full run finds matches" true (full <> []);
  List.iter
    (fun cap ->
      let budget = { Budget.spec_unlimited with max_candidates = Some cap } in
      match Parallel.extract_one_outcome ~budget ~doc_id:0 problem paper_doc with
      | Outcome.Degraded (ms, Outcome.Partial Budget.Candidates) ->
          check_bool
            (Printf.sprintf "cap %d: degraded results are a subset" cap)
            true
            (subset (triples ms) (triples full))
      | Outcome.Ok ms ->
          (* cap not reached: must be the full result set *)
          check_bool
            (Printf.sprintf "cap %d: uncapped result identical" cap)
            true
            (triples ms = triples full)
      | _ -> Alcotest.failf "cap %d: unexpected outcome" cap)
    [ 0; 1; 5; 20; 100; 1_000_000 ]

let test_budget_oversize_chunked_complete () =
  let problem = ed_problem () in
  let full =
    match Parallel.extract_one_outcome ~doc_id:0 problem paper_doc with
    | Outcome.Ok ms -> ms
    | _ -> Alcotest.fail "unbudgeted run should be Ok"
  in
  let budget = { Budget.spec_unlimited with max_bytes = Some 40 } in
  match Parallel.extract_one_outcome ~budget ~doc_id:0 problem paper_doc with
  | Outcome.Degraded (ms, Outcome.Oversize_chunked { bytes; limit }) ->
      check_int "bytes reported" (String.length paper_doc) bytes;
      check_int "limit reported" 40 limit;
      check_bool "chunked results complete" true (triples ms = triples full)
  | _ -> Alcotest.fail "oversize document should degrade to chunked"

let test_budget_oversize_reject () =
  let problem = ed_problem () in
  let budget = { Budget.spec_unlimited with max_bytes = Some 10 } in
  match
    Parallel.extract_one_outcome ~budget ~oversize:`Reject ~doc_id:0 problem
      paper_doc
  with
  | Outcome.Failed (Outcome.Doc_too_large { limit = 10; _ }) -> ()
  | _ -> Alcotest.fail "oversize document should be rejected"

let test_budget_batch_mixed () =
  (* Budgets in a batch: capped documents degrade, trivial ones stay Ok. *)
  let problem = ed_problem () in
  let docs = [| paper_doc; "nothing to see"; paper_doc |] in
  let budget = { Budget.spec_unlimited with max_candidates = Some 3 } in
  let outcomes, summary =
    Parallel.extract_all_outcomes ~domains:2 ~budget problem docs
  in
  check_int "no failures" 0 summary.Outcome.n_failed;
  check_int "three documents" 3 summary.Outcome.n_docs;
  Array.iter
    (fun o -> check_bool "no outcome lost" true (Outcome.matches o <> None))
    outcomes

let test_budget_deadline_immediate () =
  let b =
    Budget.start { Budget.spec_unlimited with timeout_ms = Some 0 }
  in
  Unix.sleepf 0.002;
  match Budget.check_deadline b with
  | () -> Alcotest.fail "expired deadline should trip"
  | exception Budget.Exhausted Budget.Deadline ->
      check_bool "sticky" true (Budget.exhausted b = Some Budget.Deadline)

let test_budget_unlimited_never_trips () =
  let b = Budget.start Budget.spec_unlimited in
  check_bool "unlimited" true (Budget.is_unlimited b);
  for _ = 1 to 10_000 do
    Budget.charge_candidates b 1;
    Budget.tick b
  done;
  Budget.check_deadline b;
  check_bool "never tripped" true (Budget.exhausted b = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faerie_robustness"
    [
      ( "codec",
        [
          Alcotest.test_case "byte-flip fuzz" `Quick test_codec_flip_fuzz;
          Alcotest.test_case "truncation fuzz" `Quick test_codec_truncation_fuzz;
          Alcotest.test_case "adversarial counts" `Quick
            test_codec_adversarial_counts;
          Alcotest.test_case "roundtrip unaffected" `Quick
            test_codec_roundtrip_still_ok;
        ] );
      ( "faults",
        [
          Alcotest.test_case "containment" `Quick test_fault_containment;
          Alcotest.test_case "determinism" `Quick test_fault_determinism;
          Alcotest.test_case "inert when disarmed" `Quick
            test_faults_inert_when_disarmed;
          Alcotest.test_case "exn capture" `Quick test_worker_crash_contained;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "candidate cap -> subset" `Quick
            test_budget_candidates_degrades_to_subset;
          Alcotest.test_case "oversize -> chunked, complete" `Quick
            test_budget_oversize_chunked_complete;
          Alcotest.test_case "oversize -> reject" `Quick
            test_budget_oversize_reject;
          Alcotest.test_case "mixed batch" `Quick test_budget_batch_mixed;
          Alcotest.test_case "deadline trips" `Quick
            test_budget_deadline_immediate;
          Alcotest.test_case "unlimited never trips" `Quick
            test_budget_unlimited_never_trips;
        ] );
    ]
