(* Tests for Faerie_datagen — and the end-to-end recall guarantee: a mention
   planted with at most k character edits must be recovered by an
   edit-distance extraction with tau >= k. *)

module S = Faerie_sim
module Sim = S.Sim
module Core = Faerie_core
module Datagen = Faerie_datagen
module Vocab = Datagen.Vocab
module Noise = Datagen.Noise
module Corpus = Datagen.Corpus
module Xorshift = Faerie_util.Xorshift
module Tokenizer = Faerie_tokenize.Tokenizer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Vocab                                                               *)
(* ------------------------------------------------------------------ *)

let test_word_nonempty_lowercase () =
  let rng = Xorshift.create 1 in
  for _ = 1 to 100 do
    let w = Vocab.word rng ~min_syllables:1 ~max_syllables:3 in
    check_bool "nonempty" true (String.length w > 0);
    String.iter (fun c -> check_bool "lowercase" true (c >= 'a' && c <= 'z')) w
  done

let test_person_name_shape () =
  let rng = Xorshift.create 2 in
  for _ = 1 to 100 do
    let name = Vocab.person_name rng in
    let parts = String.split_on_char ' ' name in
    check_bool "2-3 parts" true (List.length parts >= 2 && List.length parts <= 3)
  done

let test_title_word_count () =
  let rng = Xorshift.create 3 in
  let pool = Vocab.tech_word_pool rng ~size:50 in
  for _ = 1 to 100 do
    let t = Vocab.title rng ~pool ~min_words:4 ~max_words:7 () in
    let n = List.length (String.split_on_char ' ' t) in
    check_bool "4-7 words" true (n >= 4 && n <= 7)
  done

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

module Zipf = Datagen.Zipf

let test_zipf_probabilities_sum_to_one () =
  let z = Zipf.create ~n:50 () in
  let total = ref 0. in
  for k = 0 to 49 do
    total := !total +. Zipf.probability z k
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !total

let test_zipf_monotone () =
  let z = Zipf.create ~n:30 () in
  for k = 0 to 28 do
    check_bool "non-increasing" true
      (Zipf.probability z k >= Zipf.probability z (k + 1) -. 1e-12)
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:100 () in
  let rng = Xorshift.create 42 in
  let hits = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Zipf.sample z rng in
    check_bool "in range" true (k >= 0 && k < 100);
    hits.(k) <- hits.(k) + 1
  done;
  (* Rank 0 has probability ~0.193 under Zipf(1, n=100) vs 0.01 uniform. *)
  check_bool "rank 0 heavily favoured" true (hits.(0) > 2_000);
  check_bool "tail rank rare" true (hits.(99) < 500)

let test_zipf_exponent_zero_uniform () =
  let z = Zipf.create ~exponent:0. ~n:10 () in
  for k = 0 to 9 do
    Alcotest.(check (float 1e-9)) "uniform" 0.1 (Zipf.probability z k)
  done

let test_zipf_invalid_args () =
  check_bool "n=0" true
    (try
       ignore (Zipf.create ~n:0 ());
       false
     with Invalid_argument _ -> true);
  check_bool "negative exponent" true
    (try
       ignore (Zipf.create ~exponent:(-1.) ~n:5 ());
       false
     with Invalid_argument _ -> true)

let test_zipf_single_rank () =
  let z = Zipf.create ~n:1 () in
  let rng = Xorshift.create 1 in
  for _ = 1 to 20 do
    check_int "always 0" 0 (Zipf.sample z rng)
  done

(* ------------------------------------------------------------------ *)
(* Noise                                                               *)
(* ------------------------------------------------------------------ *)

let prop_perturb_within_edits =
  QCheck.Test.make ~count:500 ~name:"perturb_chars stays within edit budget"
    QCheck.(pair (string_gen_of_size (QCheck.Gen.int_range 1 12) QCheck.Gen.printable) (int_bound 3))
    (fun (s, edits) ->
      let rng = Xorshift.create (Hashtbl.hash (s, edits)) in
      let s' = Noise.perturb_chars rng ~edits s in
      S.Edit_distance.distance s s' <= edits)

let test_perturb_zero_identity () =
  let rng = Xorshift.create 4 in
  Alcotest.(check string) "no edits" "hello" (Noise.perturb_chars rng ~edits:0 "hello")

let test_drop_tokens_never_empties () =
  let rng = Xorshift.create 5 in
  for _ = 1 to 50 do
    let s = Noise.drop_tokens rng ~drops:5 "a b c" in
    check_bool "at least one token" true (String.length s > 0)
  done

let test_drop_tokens_submultiset () =
  let rng = Xorshift.create 6 in
  let s = "alpha beta gamma delta" in
  let s' = Noise.drop_tokens rng ~drops:2 s in
  let toks x = String.split_on_char ' ' x |> List.filter (( <> ) "") in
  check_int "two fewer" 2 (List.length (toks s) - List.length (toks s'));
  List.iter (fun t -> check_bool "kept token from source" true (List.mem t (toks s))) (toks s')

let test_swap_preserves_multiset () =
  let rng = Xorshift.create 7 in
  let s = "one two three" in
  let s' = Noise.swap_adjacent_tokens rng s in
  let sorted x = List.sort compare (String.split_on_char ' ' x) in
  check_bool "same multiset" true (sorted s = sorted s')

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let small_dblp ?(seed = 11) () = Corpus.dblp ~seed ~n_entities:60 ~n_documents:15 ()

let test_corpus_deterministic () =
  let a = small_dblp () and b = small_dblp () in
  check_bool "same entities" true (a.Corpus.entities = b.Corpus.entities);
  check_bool "same documents" true
    (Array.for_all2
       (fun (x : Corpus.document) y -> x.Corpus.text = y.Corpus.text)
       a.Corpus.documents b.Corpus.documents)

let test_corpus_seeds_differ () =
  let a = small_dblp ~seed:1 () and b = small_dblp ~seed:2 () in
  check_bool "different" true (a.Corpus.entities <> b.Corpus.entities)

let test_mention_extents_valid () =
  let c = small_dblp () in
  Array.iter
    (fun (d : Corpus.document) ->
      List.iter
        (fun (m : Corpus.mention) ->
          check_bool "extent within doc" true
            (m.Corpus.char_start >= 0
            && m.Corpus.char_start + m.Corpus.char_len <= String.length d.Corpus.text))
        d.Corpus.mentions)
    c.Corpus.documents

let test_mention_noise_bookkeeping () =
  (* With no token drops, the planted text is within the recorded edit
     budget of the entity. *)
  let c = small_dblp () in
  Array.iter
    (fun (d : Corpus.document) ->
      List.iter
        (fun (m : Corpus.mention) ->
          if m.Corpus.token_drops = 0 then begin
            let planted =
              String.sub d.Corpus.text m.Corpus.char_start m.Corpus.char_len
            in
            let entity = c.Corpus.entities.(m.Corpus.entity) in
            check_bool "within recorded edits" true
              (S.Edit_distance.distance
                 (Tokenizer.normalize entity)
                 (Tokenizer.normalize planted)
              <= m.Corpus.char_edits)
          end)
        d.Corpus.mentions)
    c.Corpus.documents

let test_corpus_stats_shapes () =
  let c = Corpus.dblp ~seed:3 ~n_entities:300 ~n_documents:40 () in
  let s = Corpus.stats c in
  check_int "entities" 300 s.Corpus.n_entities;
  check_bool "name tokens 2-3.2" true
    (s.Corpus.avg_entity_tokens >= 2.0 && s.Corpus.avg_entity_tokens <= 3.2);
  let p = Corpus.stats (Corpus.pubmed ~seed:3 ~n_entities:200 ~n_documents:20 ()) in
  check_bool "title tokens 5-9" true
    (p.Corpus.avg_entity_tokens >= 5.0 && p.Corpus.avg_entity_tokens <= 9.0);
  let w = Corpus.stats (Corpus.webpage ~seed:3 ~n_entities:100 ~n_documents:3 ()) in
  check_bool "webpage docs are long" true (w.Corpus.avg_document_tokens > 500.)

(* ------------------------------------------------------------------ *)
(* Recall guarantee (end-to-end with the extractor)                     *)
(* ------------------------------------------------------------------ *)

let test_recall_planted_mentions_ed () =
  let c = small_dblp () in
  let ex =
    Core.Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2
      (Array.to_list c.Corpus.entities)
  in
  Array.iter
    (fun (d : Corpus.document) ->
      let results = Core.Extractor.extract ex d.Corpus.text in
      List.iter
        (fun (m : Corpus.mention) ->
          if m.Corpus.char_edits <= 2 && m.Corpus.token_drops = 0 then
            check_bool
              (Printf.sprintf "mention of e%d at %d recovered" m.Corpus.entity
                 m.Corpus.char_start)
              true
              (List.exists
                 (fun (r : Core.Extractor.result) ->
                   r.Core.Extractor.entity_id = m.Corpus.entity
                   && r.Core.Extractor.start_char = m.Corpus.char_start
                   && r.Core.Extractor.len_chars = m.Corpus.char_len)
                 results))
        d.Corpus.mentions)
    c.Corpus.documents

let test_recall_exact_mentions_jaccard_one () =
  let c = Corpus.pubmed ~seed:9 ~n_entities:40 ~n_documents:8 () in
  let ex = Core.Extractor.create ~sim:(Sim.Jaccard 1.0) (Array.to_list c.Corpus.entities) in
  Array.iter
    (fun (d : Corpus.document) ->
      let results = Core.Extractor.extract ex d.Corpus.text in
      List.iter
        (fun (m : Corpus.mention) ->
          if m.Corpus.char_edits = 0 && m.Corpus.token_drops = 0 then
            check_bool "exact mention recovered at delta=1" true
              (List.exists
                 (fun (r : Core.Extractor.result) ->
                   r.Core.Extractor.entity_id = m.Corpus.entity
                   && r.Core.Extractor.start_char = m.Corpus.char_start)
                 results))
        d.Corpus.mentions)
    c.Corpus.documents

(* ------------------------------------------------------------------ *)
(* Eval                                                                *)
(* ------------------------------------------------------------------ *)

module Eval = Datagen.Eval

let corpus_matches corpus ~sim ~q =
  let ex = Core.Extractor.create ~sim ~q (Array.to_list corpus.Corpus.entities) in
  fun doc_id ->
    let text = corpus.Corpus.documents.(doc_id).Corpus.text in
    Core.Extractor.extract ex text
    |> List.map (fun (r : Core.Extractor.result) ->
           {
             Core.Types.c_entity = r.Core.Extractor.entity_id;
             c_start = r.Core.Extractor.start_char;
             c_len = r.Core.Extractor.len_chars;
             c_score = r.Core.Extractor.score;
           })

let test_eval_full_recall_within_budget () =
  let corpus = small_dblp () in
  let matches_of = corpus_matches corpus ~sim:(Sim.Edit_distance 2) ~q:2 in
  let o =
    Eval.evaluate
      ~recoverable:(fun m -> m.Corpus.char_edits <= 2 && m.Corpus.token_drops = 0)
      ~corpus ~matches_of ()
  in
  Alcotest.(check (float 1e-9)) "guaranteed recall" 1.0 (Eval.recall o);
  check_bool "precision within [0,1]" true
    (Eval.precision o >= 0. && Eval.precision o <= 1.);
  check_bool "f1 within [0,1]" true (Eval.f1 o >= 0. && Eval.f1 o <= 1.)

let test_eval_empty_matches () =
  let corpus = small_dblp () in
  let o = Eval.evaluate ~corpus ~matches_of:(fun _ -> []) () in
  check_int "nothing recovered" 0 o.Eval.recovered;
  check_bool "planted counted" true (o.Eval.planted > 0);
  Alcotest.(check (float 1e-9)) "precision of empty is 1" 1.0 (Eval.precision o);
  Alcotest.(check (float 1e-9)) "recall 0" 0.0 (Eval.recall o)

let test_eval_recoverable_filter () =
  let corpus = small_dblp () in
  let all = Eval.evaluate ~corpus ~matches_of:(fun _ -> []) () in
  let none = Eval.evaluate ~recoverable:(fun _ -> false) ~corpus ~matches_of:(fun _ -> []) () in
  check_int "filter removes all" 0 none.Eval.planted;
  check_bool "default counts all" true (all.Eval.planted >= none.Eval.planted);
  Alcotest.(check (float 1e-9)) "vacuous recall is 1" 1.0 (Eval.recall none)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "faerie_datagen"
    [
      ( "vocab",
        [
          Alcotest.test_case "word shape" `Quick test_word_nonempty_lowercase;
          Alcotest.test_case "person name" `Quick test_person_name_shape;
          Alcotest.test_case "title words" `Quick test_title_word_count;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "sums to one" `Quick test_zipf_probabilities_sum_to_one;
          Alcotest.test_case "monotone" `Quick test_zipf_monotone;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "exponent zero" `Quick test_zipf_exponent_zero_uniform;
          Alcotest.test_case "invalid args" `Quick test_zipf_invalid_args;
          Alcotest.test_case "single rank" `Quick test_zipf_single_rank;
        ] );
      ( "noise",
        [
          Alcotest.test_case "perturb zero" `Quick test_perturb_zero_identity;
          Alcotest.test_case "drop never empties" `Quick test_drop_tokens_never_empties;
          Alcotest.test_case "drop submultiset" `Quick test_drop_tokens_submultiset;
          Alcotest.test_case "swap multiset" `Quick test_swap_preserves_multiset;
          q prop_perturb_within_edits;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_corpus_seeds_differ;
          Alcotest.test_case "mention extents" `Quick test_mention_extents_valid;
          Alcotest.test_case "noise bookkeeping" `Quick test_mention_noise_bookkeeping;
          Alcotest.test_case "stats shapes" `Quick test_corpus_stats_shapes;
        ] );
      ( "eval",
        [
          Alcotest.test_case "full recall in budget" `Quick test_eval_full_recall_within_budget;
          Alcotest.test_case "empty matches" `Quick test_eval_empty_matches;
          Alcotest.test_case "recoverable filter" `Quick test_eval_recoverable_filter;
        ] );
      ( "recall",
        [
          Alcotest.test_case "planted mentions (ed)" `Quick test_recall_planted_mentions_ed;
          Alcotest.test_case "exact mentions (jac=1)" `Quick
            test_recall_exact_mentions_jaccard_one;
        ] );
    ]
