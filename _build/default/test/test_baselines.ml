(* Tests for Faerie_baselines: the NGPP and ISH competitors must return
   exactly the same matches as the oracle / Faerie. *)

module Tk = Faerie_tokenize
module S = Faerie_sim
module Sim = S.Sim
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Naive = Faerie_baselines.Naive
module Ngpp = Faerie_baselines.Ngpp
module Ish = Faerie_baselines.Ish

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let paper_dict =
  [ "kaushik ch"; "chakrabarti"; "chaudhuri"; "venkatesh"; "surajit ch" ]

let paper_doc =
  "an efficient filter for approximate membership checking. venkaee shga \
   kamunshik kabarati, dong xin, surauijt chadhurisigmod."

let triples =
  List.map (fun (m : Types.char_match) -> (m.Types.c_entity, m.Types.c_start, m.Types.c_len))

(* ------------------------------------------------------------------ *)
(* Naive oracle sanity                                                 *)
(* ------------------------------------------------------------------ *)

let test_naive_finds_paper_pairs () =
  let problem = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let doc = Problem.tokenize_document problem paper_doc in
  let ms = Naive.extract problem doc in
  let text = Tk.Document.text doc in
  let found e s =
    List.exists
      (fun (m : Types.char_match) ->
        m.Types.c_entity = e
        && String.equal (String.sub text m.Types.c_start m.Types.c_len) s)
      ms
  in
  check_bool "venkatesh" true (found 3 "venkaee sh");
  check_bool "surajit ch" true (found 4 "surauijt ch");
  check_bool "chaudhuri" true (found 2 "chadhuri")

let test_naive_length_filter_equal () =
  let problem = Problem.create ~sim:(Sim.Edit_distance 1) ~q:2 paper_dict in
  let doc = Problem.tokenize_document problem "venkaee shga surauijt chadhuri" in
  Alcotest.(check (list (triple int int int)))
    "filtered == unfiltered"
    (triples (Naive.extract ~length_filtered:false problem doc))
    (triples (Naive.extract ~length_filtered:true problem doc))

(* ------------------------------------------------------------------ *)
(* NGPP                                                                *)
(* ------------------------------------------------------------------ *)

let test_ngpp_partitions_cover () =
  List.iter
    (fun tau ->
      let parts = Ngpp.partitions ~tau "chaudhuri" in
      let rebuilt = String.concat "" (List.map snd parts) in
      Alcotest.(check string)
        (Printf.sprintf "tau=%d concatenation" tau)
        "chaudhuri" rebuilt;
      List.iter
        (fun (off, part) ->
          Alcotest.(check string)
            "offset consistent" part
            (String.sub "chaudhuri" off (String.length part)))
        parts)
    [ 0; 1; 2; 3; 4; 5 ]

let test_ngpp_partition_count () =
  check_int "tau=0 one part" 1 (List.length (Ngpp.partitions ~tau:0 "abcdef"));
  check_int "tau=2 two parts" 2 (List.length (Ngpp.partitions ~tau:2 "abcdef"));
  check_int "tau=4 three parts" 3 (List.length (Ngpp.partitions ~tau:4 "abcdef"))

let test_ngpp_paper_example () =
  let t = Ngpp.build ~tau:2 paper_dict in
  let ms = Ngpp.extract t paper_doc in
  let text = Tk.Tokenizer.normalize paper_doc in
  let found e s =
    List.exists
      (fun (m : Types.char_match) ->
        m.Types.c_entity = e
        && String.equal (String.sub text m.Types.c_start m.Types.c_len) s)
      ms
  in
  check_bool "venkatesh" true (found 3 "venkaee sh");
  check_bool "surajit ch" true (found 4 "surauijt ch");
  check_bool "chaudhuri" true (found 2 "chadhuri")

let gen_char_string lo hi =
  QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range lo hi))

let arb_ed_instance =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 4) (gen_char_string 2 8) >>= fun entities ->
      gen_char_string 8 25 >>= fun doc ->
      int_bound 2 >>= fun tau -> return (entities, doc, tau))
  in
  QCheck.make
    ~print:(fun (es, doc, tau) ->
      Printf.sprintf "dict=[%s] doc=%S tau=%d" (String.concat "; " es) doc tau)
    gen

let prop_ngpp_equals_oracle =
  QCheck.Test.make ~count:300 ~name:"NGPP == oracle (edit distance)"
    arb_ed_instance
    (fun (entities, doc_text, tau) ->
      let problem = Problem.create ~sim:(Sim.Edit_distance tau) ~q:2 entities in
      let doc = Problem.tokenize_document problem doc_text in
      let oracle = triples (Naive.extract problem doc) in
      let ngpp = Ngpp.build ~tau entities in
      triples (Ngpp.extract ngpp doc_text) = oracle)

let test_ngpp_index_grows_with_tau () =
  let sizes =
    List.map (fun tau -> Ngpp.index_bytes (Ngpp.build ~tau paper_dict)) [ 0; 2; 4 ]
  in
  match sizes with
  | [ s0; s2; s4 ] ->
      check_bool "tau=2 > tau=0" true (s2 > s0);
      check_bool "tau=4 >= tau=2" true (s4 >= s2)
  | _ -> assert false

let test_ngpp_neighborhood_entries () =
  let t = Ngpp.build ~tau:1 [ "abc" ] in
  (* one partition "abc": itself + 3 one-deletions. *)
  check_int "entries" 4 (Ngpp.n_neighborhood_entries t)

let test_ngpp_invalid_tau () =
  check_bool "raises" true
    (try
       ignore (Ngpp.build ~tau:(-1) [ "x" ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* ISH                                                                 *)
(* ------------------------------------------------------------------ *)

let faerie_char_matches problem doc =
  let matches, _ = Core.Single_heap.run problem doc in
  let main =
    List.map
      (fun (m : Types.token_match) ->
        let c_start, c_len =
          Tk.Document.char_extent doc ~start:m.Types.m_start ~len:m.Types.m_len
        in
        { Types.c_entity = m.Types.m_entity; c_start; c_len; c_score = m.Types.m_score })
      matches
  in
  List.sort_uniq Types.compare_char_match (Core.Fallback.run problem doc @ main)

let test_ish_signatures_nonempty () =
  let problem = Problem.create ~sim:(Sim.Jaccard 0.8) [ "dong xin"; "surajit chaudhuri" ] in
  let t = Ish.build problem in
  check_bool "e0 has signature" true (Array.length (Ish.signature t 0) > 0);
  check_bool "e1 has signature" true (Array.length (Ish.signature t 1) > 0)

let test_ish_paper_eds () =
  let problem = Problem.create ~sim:(Sim.Edit_similarity 0.8) ~q:2 paper_dict in
  let t = Ish.build problem in
  let doc = Problem.tokenize_document problem paper_doc in
  Alcotest.(check (list (triple int int int)))
    "ISH == Faerie on paper example"
    (triples (faerie_char_matches problem doc))
    (triples (Ish.extract t doc))

let gen_word_string n_lo n_hi =
  QCheck.Gen.(
    list_size (int_range n_lo n_hi) (oneofl [ "aa"; "bb"; "cc"; "dd"; "ee" ])
    |> map (String.concat " "))

let arb_jac_instance =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 5) (gen_word_string 1 4) >>= fun entities ->
      gen_word_string 4 18 >>= fun doc ->
      oneofl [ 0.5; 0.8; 1.0 ] >>= fun d -> return (entities, doc, d))
  in
  QCheck.make
    ~print:(fun (es, doc, d) ->
      Printf.sprintf "dict=[%s] doc=%S delta=%g" (String.concat "; " es) doc d)
    gen

let prop_ish_equals_faerie_jaccard =
  QCheck.Test.make ~count:300 ~name:"ISH == Faerie (jaccard)"
    arb_jac_instance
    (fun (entities, doc_text, d) ->
      let problem = Problem.create ~sim:(Sim.Jaccard d) entities in
      let doc = Problem.tokenize_document problem doc_text in
      let t = Ish.build problem in
      triples (Ish.extract t doc) = triples (faerie_char_matches problem doc))

let arb_eds_instance =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 4) (gen_char_string 3 8) >>= fun entities ->
      gen_char_string 8 25 >>= fun doc ->
      oneofl [ 0.7; 0.9; 1.0 ] >>= fun d -> return (entities, doc, d))
  in
  QCheck.make
    ~print:(fun (es, doc, d) ->
      Printf.sprintf "dict=[%s] doc=%S delta=%g" (String.concat "; " es) doc d)
    gen

let prop_ish_equals_faerie_eds =
  QCheck.Test.make ~count:300 ~name:"ISH == Faerie (edit similarity)"
    arb_eds_instance
    (fun (entities, doc_text, d) ->
      let problem = Problem.create ~sim:(Sim.Edit_similarity d) ~q:2 entities in
      let doc = Problem.tokenize_document problem doc_text in
      let t = Ish.build problem in
      triples (Ish.extract t doc) = triples (faerie_char_matches problem doc))

let test_ish_counts_verifications () =
  let problem = Problem.create ~sim:(Sim.Jaccard 0.8) [ "dong xin" ] in
  let t = Ish.build problem in
  let doc = Problem.tokenize_document problem "a dong xin b" in
  ignore (Ish.extract t doc);
  check_bool "candidates checked recorded" true (Ish.candidates_checked t > 0)

let test_ish_index_bytes_positive () =
  let problem = Problem.create ~sim:(Sim.Jaccard 0.8) paper_dict in
  let t = Ish.build problem in
  check_bool "positive" true (Ish.index_bytes t > 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "faerie_baselines"
    [
      ( "naive",
        [
          Alcotest.test_case "paper pairs" `Quick test_naive_finds_paper_pairs;
          Alcotest.test_case "length filter equal" `Quick test_naive_length_filter_equal;
        ] );
      ( "ngpp",
        [
          Alcotest.test_case "partitions cover" `Quick test_ngpp_partitions_cover;
          Alcotest.test_case "partition count" `Quick test_ngpp_partition_count;
          Alcotest.test_case "paper example" `Quick test_ngpp_paper_example;
          Alcotest.test_case "index grows with tau" `Quick test_ngpp_index_grows_with_tau;
          Alcotest.test_case "neighborhood entries" `Quick test_ngpp_neighborhood_entries;
          Alcotest.test_case "invalid tau" `Quick test_ngpp_invalid_tau;
          q prop_ngpp_equals_oracle;
        ] );
      ( "ish",
        [
          Alcotest.test_case "signatures nonempty" `Quick test_ish_signatures_nonempty;
          Alcotest.test_case "paper eds" `Quick test_ish_paper_eds;
          Alcotest.test_case "counts verifications" `Quick test_ish_counts_verifications;
          Alcotest.test_case "index bytes" `Quick test_ish_index_bytes_positive;
          q prop_ish_equals_faerie_jaccard;
          q prop_ish_equals_faerie_eds;
        ] );
    ]
