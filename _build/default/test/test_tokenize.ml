(* Tests for Faerie_tokenize: interner, tokenizers, document model. *)

module Tk = Faerie_tokenize
module Interner = Tk.Interner
module Tokenizer = Tk.Tokenizer
module Document = Tk.Document
module Span = Tk.Span
module Token_ops = Tk.Token_ops

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Interner                                                            *)
(* ------------------------------------------------------------------ *)

let test_intern_dense_ids () =
  let i = Interner.create () in
  check_int "first id" 0 (Interner.intern i "alpha");
  check_int "second id" 1 (Interner.intern i "beta");
  check_int "repeat id" 0 (Interner.intern i "alpha");
  check_int "size" 2 (Interner.size i)

let test_intern_roundtrip () =
  let i = Interner.create () in
  let id = Interner.intern i "gamma" in
  check_str "roundtrip" "gamma" (Interner.to_string i id)

let test_find_opt_no_alloc () =
  let i = Interner.create () in
  ignore (Interner.intern i "x");
  check_bool "known" true (Interner.find_opt i "x" = Some 0);
  check_bool "unknown" true (Interner.find_opt i "y" = None);
  check_int "find_opt does not allocate ids" 1 (Interner.size i)

let test_to_string_unknown () =
  let i = Interner.create () in
  check_bool "raises" true
    (try
       ignore (Interner.to_string i 0);
       false
     with Invalid_argument _ -> true)

let test_heap_bytes_grows () =
  let i = Interner.create () in
  let b0 = Interner.heap_bytes i in
  for k = 0 to 99 do
    ignore (Interner.intern i (string_of_int k))
  done;
  check_bool "grows" true (Interner.heap_bytes i > b0)

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_normalize () =
  check_str "lowercase" "abc12 -x" (Tokenizer.normalize "AbC12 -X")

let test_word_offsets () =
  Alcotest.(check (list (pair int int)))
    "offsets" [ (0, 5); (6, 2); (11, 3) ]
    (Tokenizer.word_offsets "hello my...dog")

let test_word_offsets_empty () =
  Alcotest.(check (list (pair int int))) "no words" [] (Tokenizer.word_offsets " .,!")

let test_words_intern () =
  let i = Interner.create () in
  let spans = Tokenizer.words_intern i "Dong Xin, dong" in
  check_int "three words" 3 (Array.length spans);
  check_int "dong id" 0 spans.(0).Span.token;
  check_int "xin id" 1 spans.(1).Span.token;
  check_int "case-folded repeat" 0 spans.(2).Span.token

let test_words_lookup_missing () =
  let i = Interner.create () in
  ignore (Interner.intern i "known");
  let spans = Tokenizer.words_lookup i "known stranger" in
  check_int "known resolves" 0 spans.(0).Span.token;
  check_int "unknown is missing" Span.missing spans.(1).Span.token;
  check_int "interner untouched" 1 (Interner.size i)

let test_qgrams_paper_example () =
  (* 2-grams of "surajit_ch" from Section 2.2 (underscore = space). *)
  let i = Interner.create () in
  let spans = Tokenizer.qgrams_intern i ~q:2 "surajit ch" in
  check_int "9 grams" 9 (Array.length spans);
  let grams =
    Array.to_list spans
    |> List.map (fun s -> Interner.to_string i s.Span.token)
  in
  Alcotest.(check (list string))
    "grams"
    [ "su"; "ur"; "ra"; "aj"; "ji"; "it"; "t "; " c"; "ch" ]
    grams

let test_qgrams_gram_count () =
  let i = Interner.create () in
  check_int "len - q + 1" 4 (Array.length (Tokenizer.qgrams_intern i ~q:3 "abcdef"))

let test_qgrams_short_string () =
  let i = Interner.create () in
  check_int "shorter than q" 0 (Array.length (Tokenizer.qgrams_intern i ~q:5 "abc"))

let test_qgrams_invalid_q () =
  let i = Interner.create () in
  check_bool "q=0 rejected" true
    (try
       ignore (Tokenizer.qgrams_intern i ~q:0 "abc");
       false
     with Invalid_argument _ -> true)

let test_qgrams_offsets () =
  let i = Interner.create () in
  let spans = Tokenizer.qgrams_intern i ~q:2 "abc" in
  Alcotest.(check (list (pair int int)))
    "offsets" [ (0, 2); (1, 2) ]
    (Array.to_list spans |> List.map (fun s -> (s.Span.start_pos, s.Span.len)))

(* ------------------------------------------------------------------ *)
(* Document                                                            *)
(* ------------------------------------------------------------------ *)

let word_doc text =
  let i = Interner.create () in
  List.iter (fun w -> ignore (Interner.intern i w)) [ "dong"; "xin"; "chaudhuri" ];
  Document.of_words i text

let test_document_word_tokens () =
  let doc = word_doc "Dong Xin, unknown person" in
  check_int "4 tokens" 4 (Document.n_tokens doc);
  check_int "dong" 0 (Document.token_id doc 0);
  check_int "missing" Span.missing (Document.token_id doc 2)

let test_document_substring () =
  let doc = word_doc "Dong Xin, chaudhuri" in
  check_str "substring across comma" "dong xin" (Document.substring doc ~start:0 ~len:2);
  check_str "single token" "chaudhuri" (Document.substring doc ~start:2 ~len:1)

let test_document_char_extent () =
  let doc = word_doc "  Dong   Xin " in
  Alcotest.(check (pair int int)) "extent" (2, 10) (Document.char_extent doc ~start:0 ~len:2)

let test_document_bad_range () =
  let doc = word_doc "dong xin" in
  check_bool "raises" true
    (try
       ignore (Document.char_extent doc ~start:1 ~len:2);
       false
     with Invalid_argument _ -> true)

let test_document_token_multiset () =
  let doc = word_doc "xin dong xin zzz" in
  Alcotest.(check (array int))
    "sorted multiset with missing"
    [| Span.missing; 0; 1; 1 |]
    (Document.token_multiset doc ~start:0 ~len:4)

let test_document_gram_mode () =
  let i = Interner.create () in
  ignore (Tokenizer.qgrams_intern i ~q:2 "abab");
  let doc = Document.of_grams i ~q:2 "xabay" in
  check_int "grams" 4 (Document.n_tokens doc);
  check_str "gram substring" "aba" (Document.substring doc ~start:1 ~len:2)

let test_document_mode () =
  let i = Interner.create () in
  check_bool "word mode" true (Document.mode (Document.of_words i "x") = Document.Word);
  check_bool "gram mode" true
    (Document.mode (Document.of_grams i ~q:3 "xyz") = Document.Gram 3)

(* ------------------------------------------------------------------ *)
(* Token_ops                                                           *)
(* ------------------------------------------------------------------ *)

let test_multiset_overlap_basic () =
  check_int "overlap" 2 (Token_ops.multiset_overlap [| 1; 2; 2; 5 |] [| 2; 2; 3 |])

let test_multiset_overlap_missing_ignored () =
  check_int "missing never matches" 1
    (Token_ops.multiset_overlap [| Span.missing; 4 |] [| Span.missing; 4 |])

let test_multiset_overlap_empty () =
  check_int "empty" 0 (Token_ops.multiset_overlap [||] [| 1; 2 |])

let test_distinct () =
  Alcotest.(check (array int))
    "distinct drops missing and dups" [| 1; 3 |]
    (Token_ops.distinct [| 3; Span.missing; 1; 3; 1 |])

let prop_overlap_commutes =
  QCheck.Test.make ~count:300 ~name:"multiset overlap commutes"
    QCheck.(pair (list (int_bound 6)) (list (int_bound 6)))
    (fun (a, b) ->
      let arr l = Array.of_list (List.sort compare l) in
      Token_ops.multiset_overlap (arr a) (arr b)
      = Token_ops.multiset_overlap (arr b) (arr a))

let prop_overlap_bounded =
  QCheck.Test.make ~count:300 ~name:"overlap <= min length"
    QCheck.(pair (list (int_bound 6)) (list (int_bound 6)))
    (fun (a, b) ->
      let arr l = Array.of_list (List.sort compare l) in
      let o = Token_ops.multiset_overlap (arr a) (arr b) in
      o <= min (List.length a) (List.length b) && o >= 0)

(* Reference multiset intersection via sorted association counting. *)
let prop_overlap_reference =
  QCheck.Test.make ~count:300 ~name:"overlap matches counting reference"
    QCheck.(pair (list (int_bound 5)) (list (int_bound 5)))
    (fun (a, b) ->
      let counts l =
        let h = Hashtbl.create 8 in
        List.iter
          (fun x ->
            Hashtbl.replace h x (1 + Option.value ~default:0 (Hashtbl.find_opt h x)))
          l;
        h
      in
      let ca = counts a and cb = counts b in
      let expected =
        Hashtbl.fold
          (fun k v acc ->
            acc + min v (Option.value ~default:0 (Hashtbl.find_opt cb k)))
          ca 0
      in
      let arr l = Array.of_list (List.sort compare l) in
      Token_ops.multiset_overlap (arr a) (arr b) = expected)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "faerie_tokenize"
    [
      ( "interner",
        [
          Alcotest.test_case "dense ids" `Quick test_intern_dense_ids;
          Alcotest.test_case "roundtrip" `Quick test_intern_roundtrip;
          Alcotest.test_case "find_opt" `Quick test_find_opt_no_alloc;
          Alcotest.test_case "unknown id" `Quick test_to_string_unknown;
          Alcotest.test_case "heap bytes" `Quick test_heap_bytes_grows;
        ] );
      ( "tokenizer",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "word offsets" `Quick test_word_offsets;
          Alcotest.test_case "word offsets empty" `Quick test_word_offsets_empty;
          Alcotest.test_case "words intern" `Quick test_words_intern;
          Alcotest.test_case "words lookup missing" `Quick test_words_lookup_missing;
          Alcotest.test_case "qgrams paper example" `Quick test_qgrams_paper_example;
          Alcotest.test_case "qgram count" `Quick test_qgrams_gram_count;
          Alcotest.test_case "qgrams short string" `Quick test_qgrams_short_string;
          Alcotest.test_case "qgrams invalid q" `Quick test_qgrams_invalid_q;
          Alcotest.test_case "qgram offsets" `Quick test_qgrams_offsets;
        ] );
      ( "document",
        [
          Alcotest.test_case "word tokens" `Quick test_document_word_tokens;
          Alcotest.test_case "substring" `Quick test_document_substring;
          Alcotest.test_case "char extent" `Quick test_document_char_extent;
          Alcotest.test_case "bad range" `Quick test_document_bad_range;
          Alcotest.test_case "token multiset" `Quick test_document_token_multiset;
          Alcotest.test_case "gram mode" `Quick test_document_gram_mode;
          Alcotest.test_case "mode" `Quick test_document_mode;
        ] );
      ( "token_ops",
        [
          Alcotest.test_case "overlap basic" `Quick test_multiset_overlap_basic;
          Alcotest.test_case "missing ignored" `Quick test_multiset_overlap_missing_ignored;
          Alcotest.test_case "overlap empty" `Quick test_multiset_overlap_empty;
          Alcotest.test_case "distinct" `Quick test_distinct;
          q prop_overlap_commutes;
          q prop_overlap_bounded;
          q prop_overlap_reference;
        ] );
    ]
