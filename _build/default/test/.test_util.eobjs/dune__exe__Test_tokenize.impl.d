test/test_tokenize.ml: Alcotest Array Faerie_tokenize Hashtbl List Option QCheck QCheck_alcotest
