test/test_heaps.ml: Alcotest Array Faerie_heaps Faerie_util Hashtbl List Option Printf QCheck QCheck_alcotest String
