test/test_heaps.mli:
