test/test_index.ml: Alcotest Array Faerie_index Faerie_tokenize Option QCheck QCheck_alcotest
