test/test_util.ml: Alcotest Array Buffer Faerie_util Fun List QCheck QCheck_alcotest String
