test/test_robustness.ml: Alcotest Array Buffer Char Faerie_core Faerie_index Faerie_sim Faerie_util Fun List Printf String Unix
