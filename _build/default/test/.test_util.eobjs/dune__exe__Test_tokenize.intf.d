test/test_tokenize.mli:
