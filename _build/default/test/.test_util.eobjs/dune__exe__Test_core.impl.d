test/test_core.ml: Alcotest Array Faerie_baselines Faerie_core Faerie_sim Faerie_tokenize List Printf QCheck QCheck_alcotest String
