test/test_datagen.ml: Alcotest Array Faerie_core Faerie_datagen Faerie_sim Faerie_tokenize Faerie_util Hashtbl List Printf QCheck QCheck_alcotest String
