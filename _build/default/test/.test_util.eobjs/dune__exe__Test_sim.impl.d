test/test_sim.ml: Alcotest Array Faerie_sim Faerie_tokenize List QCheck QCheck_alcotest String
