(* faerie — command-line approximate dictionary-based entity extraction.

   Subcommands:
     extract   find approximate entity matches in documents
     stats     report dictionary / index statistics
     gen       generate a synthetic corpus (entities + documents)          *)

module Sim = Faerie_sim.Sim
module Extractor = Faerie_core.Extractor
module Types = Faerie_core.Types
module Problem = Faerie_core.Problem
module Ix = Faerie_index
module Corpus = Faerie_datagen.Corpus
module Bytesize = Faerie_util.Bytesize
open Cmdliner

let read_lines path =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | line -> loop (if String.trim line = "" then acc else String.trim line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  loop []

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---- shared arguments ---- *)

let sim_conv =
  let parse s =
    match String.split_on_char '=' s with
    | [ "jac"; d ] -> Ok (Sim.Jaccard (float_of_string d))
    | [ "cos"; d ] -> Ok (Sim.Cosine (float_of_string d))
    | [ "dice"; d ] -> Ok (Sim.Dice (float_of_string d))
    | [ "ed"; t ] -> Ok (Sim.Edit_distance (int_of_string t))
    | [ "eds"; d ] -> Ok (Sim.Edit_similarity (float_of_string d))
    | _ ->
        Error
          (`Msg
            "expected FUNC=THRESH with FUNC one of jac|cos|dice|eds (delta) or ed (tau)")
  in
  let print ppf sim = Format.fprintf ppf "%s" (Sim.to_string sim) in
  Arg.conv (parse, print)

let sim_arg =
  let doc =
    "Similarity function and threshold, e.g. ed=2, jac=0.8, eds=0.9."
  in
  Arg.(value & opt sim_conv (Sim.Edit_distance 2) & info [ "s"; "sim" ] ~docv:"FUNC=THRESH" ~doc)

let q_arg =
  let doc = "Gram length for edit distance / edit similarity." in
  Arg.(value & opt int 2 & info [ "q" ] ~docv:"Q" ~doc)

let dict_arg =
  let doc = "Dictionary file: one entity per line." in
  Arg.(required & opt (some file) None & info [ "d"; "dict" ] ~docv:"FILE" ~doc)

let dict_opt_arg =
  let doc = "Dictionary file: one entity per line." in
  Arg.(value & opt (some file) None & info [ "d"; "dict" ] ~docv:"FILE" ~doc)

let index_opt_arg =
  let doc = "Prebuilt binary index (see the 'index' subcommand)." in
  Arg.(value & opt (some file) None & info [ "x"; "index" ] ~docv:"FILE" ~doc)

(* Build a problem from either a dictionary file or a saved index. *)
let problem_of_source sim q dict_file index_file =
  match (dict_file, index_file) with
  | _, Some path ->
      let _, index = Ix.Codec.load path in
      Problem.of_index ~sim index
  | Some path, None -> Problem.create ~sim ~q (read_lines path)
  | None, None ->
      prerr_endline "faerie: either --dict or --index is required";
      exit 2

(* ---- extract ---- *)

let pruning_conv =
  Arg.enum
    [ ("none", Types.No_prune); ("lazy", Types.Lazy_count);
      ("bucket", Types.Bucket_count); ("binary", Types.Binary_window) ]

let extract_cmd =
  let docs_arg =
    let doc = "Document files (omit to read one document from stdin)." in
    Arg.(value & pos_all file [] & info [] ~docv:"DOC" ~doc)
  in
  let pruning_arg =
    let doc = "Pruning level: none, lazy, bucket or binary (full Faerie)." in
    Arg.(value & opt pruning_conv Types.Binary_window & info [ "pruning" ] ~doc)
  in
  let show_stats_arg =
    let doc = "Print filtering statistics to stderr." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let top_arg =
    let doc = "Report only the K best matches per document." in
    Arg.(value & opt (some int) None & info [ "top" ] ~docv:"K" ~doc)
  in
  let select_arg =
    let doc =
      "Resolve overlaps: report a maximum-score set of non-overlapping spans."
    in
    Arg.(value & flag & info [ "select" ] ~doc)
  in
  let run sim q dict_file index_file doc_files pruning show_stats top select =
    let problem = problem_of_source sim q dict_file index_file in
    let ex = Extractor.of_problem problem in
    let process name text =
      let doc = Extractor.tokenize ex text in
      let results, stats =
        match top with
        | Some k ->
            ( Extractor.results_of_char_matches ex doc
                (Faerie_core.Topk.top_k ~pruning ~k problem doc),
              Types.new_stats () )
        | None -> Extractor.extract_document ~pruning ex doc
      in
      let results =
        if not select then results
        else begin
          let as_char =
            List.map
              (fun (r : Extractor.result) ->
                {
                  Types.c_entity = r.Extractor.entity_id;
                  c_start = r.Extractor.start_char;
                  c_len = r.Extractor.len_chars;
                  c_score = r.Extractor.score;
                })
              results
          in
          Extractor.results_of_char_matches ex doc
            (Faerie_core.Span_select.select as_char)
        end
      in
      List.iter
        (fun (r : Extractor.result) ->
          Printf.printf "%s\t%d\t%d\t%s\t%s\t%s\n" name r.Extractor.start_char
            (r.Extractor.start_char + r.Extractor.len_chars)
            (Format.asprintf "%a" Faerie_sim.Verify.Score.pp r.Extractor.score)
            r.Extractor.entity r.Extractor.matched_text)
        results;
      if show_stats then
        Format.eprintf "%s: %a@." name Types.pp_stats stats
    in
    (match doc_files with
    | [] ->
        let buf = Buffer.create 4096 in
        (try
           while true do
             Buffer.add_channel buf stdin 1
           done
         with End_of_file -> ());
        process "<stdin>" (Buffer.contents buf)
    | files -> List.iter (fun f -> process f (read_file f)) files);
    0
  in
  let doc = "Extract approximate entity matches from documents." in
  Cmd.v
    (Cmd.info "extract" ~doc)
    Term.(
      const run $ sim_arg $ q_arg $ dict_opt_arg $ index_opt_arg $ docs_arg
      $ pruning_arg $ show_stats_arg $ top_arg $ select_arg)

(* ---- stats ---- *)

let stats_cmd =
  let run sim q dict_file =
    let entities = read_lines dict_file in
    let problem = Problem.create ~sim ~q entities in
    let dict = Problem.dictionary problem in
    let index = Problem.index problem in
    let n = Ix.Dictionary.size dict in
    Printf.printf "entities:        %d\n" n;
    Printf.printf "function:        %s (q=%d)\n" (Sim.to_string sim) q;
    Printf.printf "distinct tokens: %d\n"
      (Faerie_tokenize.Interner.size (Ix.Dictionary.interner dict));
    Printf.printf "postings:        %d\n" (Ix.Inverted_index.n_postings index);
    Printf.printf "non-empty lists: %d\n" (Ix.Inverted_index.n_lists index);
    Printf.printf "index size:      %s\n"
      (Bytesize.to_string (Ix.Inverted_index.heap_bytes index));
    Printf.printf "fallback path:   %d entities\n"
      (List.length (Problem.fallback_entities problem));
    Printf.printf "substring token range: [%d, %d]\n"
      (Problem.global_lower problem) (Problem.global_upper problem);
    0
  in
  let doc = "Report dictionary and inverted-index statistics." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ sim_arg $ q_arg $ dict_arg)

(* ---- index ---- *)

let index_cmd =
  let out_arg =
    let doc = "Output path for the binary index." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run sim q dict_file out =
    let problem = Problem.create ~sim ~q (read_lines dict_file) in
    Ix.Codec.save (Problem.dictionary problem) (Problem.index problem) out;
    let bytes = (Unix.stat out).Unix.st_size in
    Printf.printf "wrote %s (%s, %d entities, %d postings)\n" out
      (Bytesize.to_string bytes)
      (Ix.Dictionary.size (Problem.dictionary problem))
      (Ix.Inverted_index.n_postings (Problem.index problem));
    0
  in
  let doc =
    "Build a dictionary index and save it for later 'extract --index' runs."
  in
  Cmd.v (Cmd.info "index" ~doc) Term.(const run $ sim_arg $ q_arg $ dict_arg $ out_arg)

(* ---- gen ---- *)

let gen_cmd =
  let profile_arg =
    let doc = "Corpus profile: dblp, pubmed or webpage." in
    Arg.(value & opt (enum [ ("dblp", `Dblp); ("pubmed", `Pubmed); ("webpage", `Webpage) ]) `Dblp & info [ "profile" ] ~doc)
  in
  let n_entities_arg =
    Arg.(value & opt int 1000 & info [ "entities" ] ~docv:"N" ~doc:"Number of entities.")
  in
  let n_docs_arg =
    Arg.(value & opt int 100 & info [ "documents" ] ~docv:"N" ~doc:"Number of documents.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let out_arg =
    Arg.(value & opt string "corpus" & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run profile n_entities n_documents seed out =
    let corpus =
      match profile with
      | `Dblp -> Corpus.dblp ~seed ~n_entities ~n_documents ()
      | `Pubmed -> Corpus.pubmed ~seed ~n_entities ~n_documents ()
      | `Webpage -> Corpus.webpage ~seed ~n_entities ~n_documents ()
    in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let oc = open_out (Filename.concat out "entities.txt") in
    Array.iter (fun e -> output_string oc (e ^ "\n")) corpus.Corpus.entities;
    close_out oc;
    let docs_dir = Filename.concat out "docs" in
    if not (Sys.file_exists docs_dir) then Sys.mkdir docs_dir 0o755;
    Array.iteri
      (fun i (d : Corpus.document) ->
        let oc = open_out (Filename.concat docs_dir (Printf.sprintf "doc%04d.txt" i)) in
        output_string oc d.Corpus.text;
        close_out oc)
      corpus.Corpus.documents;
    Format.printf "wrote %s: %a@." out Corpus.pp_stats (Corpus.stats corpus);
    0
  in
  let doc = "Generate a synthetic corpus (entities.txt + docs/)." in
  Cmd.v
    (Cmd.info "gen" ~doc)
    Term.(const run $ profile_arg $ n_entities_arg $ n_docs_arg $ seed_arg $ out_arg)

let () =
  let doc = "Approximate dictionary-based entity extraction (Faerie)." in
  let info = Cmd.info "faerie" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ extract_cmd; stats_cmd; gen_cmd; index_cmd ]))
