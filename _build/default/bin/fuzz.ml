(* Differential fuzzer: random extraction instances, every algorithm must
   agree with the brute-force oracle. The qcheck suites run bounded counts
   under `dune runtest`; this binary runs open-ended campaigns.

   On any oracle disagreement or crash, a self-contained reproduction
   (seed, sim, q, entities, document) is dumped to stderr and to a file.

   Usage: dune exec bin/fuzz.exe -- [--faults] [iterations] [seed]

   With --faults, the campaign instead runs with deterministic fault
   injection armed (sites: tokenize, heap_merge, verify, codec_io) and
   asserts containment: every injected fault must surface as a structured
   Failed outcome for exactly the affected document — never a process
   crash — and fault-free documents of the same batch must produce results
   identical to a run with injection disabled.                              *)

module Sim = Faerie_sim.Sim
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Tk = Faerie_tokenize
module Naive = Faerie_baselines.Naive
module Ngpp = Faerie_baselines.Ngpp
module Ish = Faerie_baselines.Ish
module Xorshift = Faerie_util.Xorshift
module Fault = Faerie_util.Fault
module Ix = Faerie_index
module Parallel = Core.Parallel
module Outcome = Core.Outcome

let alphabet = [| 'a'; 'b'; 'c' |]

let random_string rng lo hi =
  let n = Xorshift.int_in_range rng ~lo ~hi in
  String.init n (fun _ -> Xorshift.choose rng alphabet)

let random_words rng lo hi =
  let n = Xorshift.int_in_range rng ~lo ~hi in
  List.init n (fun _ -> Xorshift.choose rng [| "aa"; "bb"; "cc"; "dd"; "ee" |])
  |> String.concat " "

type instance = {
  sim : Sim.t;
  q : int;
  entities : string list;
  document : string;
}

let random_instance rng =
  let char_based = Xorshift.bool rng in
  if char_based then begin
    let sim =
      match Xorshift.int rng 5 with
      | 0 -> Sim.Edit_distance 0
      | 1 -> Sim.Edit_distance 1
      | 2 -> Sim.Edit_distance 2
      | 3 -> Sim.Edit_similarity 0.7
      | _ -> Sim.Edit_similarity 0.9
    in
    {
      sim;
      q = Xorshift.int_in_range rng ~lo:2 ~hi:3;
      entities =
        List.init (Xorshift.int_in_range rng ~lo:1 ~hi:5) (fun _ ->
            random_string rng 1 8);
      document = random_string rng 5 40;
    }
  end
  else begin
    let d = Xorshift.choose rng [| 0.5; 0.7; 0.8; 1.0 |] in
    let sim =
      match Xorshift.int rng 3 with
      | 0 -> Sim.Jaccard d
      | 1 -> Sim.Cosine d
      | _ -> Sim.Dice d
    in
    {
      sim;
      q = 1;
      entities =
        List.init (Xorshift.int_in_range rng ~lo:1 ~hi:5) (fun _ ->
            random_words rng 1 4);
      document = random_words rng 3 20;
    }
  end

let triples ms =
  List.map
    (fun (m : Types.char_match) -> (m.Types.c_entity, m.Types.c_start, m.Types.c_len))
    ms

let faerie_matches ?pruning problem doc =
  let matches, _ = Core.Single_heap.run ?pruning problem doc in
  let main =
    List.map
      (fun (m : Types.token_match) ->
        let c_start, c_len =
          Tk.Document.char_extent doc ~start:m.Types.m_start ~len:m.Types.m_len
        in
        { Types.c_entity = m.Types.m_entity; c_start; c_len; c_score = m.Types.m_score })
      matches
  in
  List.sort_uniq Types.compare_char_match (Core.Fallback.run problem doc @ main)

let check_instance inst =
  let problem = Problem.create ~sim:inst.sim ~q:inst.q inst.entities in
  let doc = Problem.tokenize_document problem inst.document in
  let oracle = triples (Naive.extract problem doc) in
  let failures = ref [] in
  let expect name got =
    if got <> oracle then failures := name :: !failures
  in
  List.iter
    (fun pruning ->
      expect
        ("faerie/" ^ Types.pruning_name pruning)
        (triples (faerie_matches ~pruning problem doc)))
    Types.all_prunings;
  List.iter
    (fun (name, algorithm) ->
      let ms, _ = Core.Multi_heap.run ~algorithm problem doc in
      let as_char =
        List.map
          (fun (m : Types.token_match) ->
            let c_start, c_len =
              Tk.Document.char_extent doc ~start:m.Types.m_start ~len:m.Types.m_len
            in
            { Types.c_entity = m.Types.m_entity; c_start; c_len; c_score = m.Types.m_score })
          ms
      in
      let full =
        List.sort_uniq Types.compare_char_match
          (Core.Fallback.run problem doc @ as_char)
      in
      expect ("multi-heap/" ^ name) (triples full))
    [ ("heap", Core.Multi_heap.Heap_count); ("mergeskip", Core.Multi_heap.Merge_skip);
      ("divideskip", Core.Multi_heap.Divide_skip) ];
  (match inst.sim with
  | Sim.Edit_distance tau ->
      let ngpp = Ngpp.build ~tau inst.entities in
      expect "ngpp" (triples (Ngpp.extract ngpp inst.document))
  | Sim.Jaccard _ | Sim.Edit_similarity _ ->
      let ish = Ish.build problem in
      expect "ish" (triples (Ish.extract ish doc))
  | Sim.Cosine _ | Sim.Dice _ -> ());
  !failures

(* ---- reproduction dumps ---- *)

let repro_text ~seed ~iteration inst ~trouble =
  let b = Buffer.create 512 in
  Printf.bprintf b "==== FAERIE FUZZ REPRO ====\n";
  Printf.bprintf b "trouble:   %s\n" trouble;
  Printf.bprintf b "seed:      %d\n" seed;
  Printf.bprintf b "iteration: %d\n" iteration;
  Printf.bprintf b "sim:       %s\n" (Sim.to_string inst.sim);
  Printf.bprintf b "q:         %d\n" inst.q;
  Printf.bprintf b "entities:\n";
  List.iter (fun e -> Printf.bprintf b "  %S\n" e) inst.entities;
  Printf.bprintf b "document:  %S\n" inst.document;
  Printf.bprintf b "rerun:     dune exec bin/fuzz.exe -- %d %d\n" iteration seed;
  Printf.bprintf b "===========================\n";
  Buffer.contents b

let dump_repro ~seed ~iteration inst ~trouble =
  let text = repro_text ~seed ~iteration inst ~trouble in
  prerr_string text;
  flush stderr;
  try
    let path, oc =
      Filename.open_temp_file
        (Printf.sprintf "faerie-fuzz-repro-%d-%d-" seed iteration)
        ".txt"
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc text);
    Printf.eprintf "repro written to %s\n%!" path
  with Sys_error msg -> Printf.eprintf "could not write repro file: %s\n%!" msg

(* ---- differential campaign (default mode) ---- *)

let run_differential iterations seed =
  Printf.printf "fuzzing %d instances (seed %d)\n%!" iterations seed;
  let rng = Xorshift.create seed in
  let failed = ref 0 in
  for i = 1 to iterations do
    let inst = random_instance rng in
    (match check_instance inst with
    | [] -> ()
    | names ->
        incr failed;
        dump_repro ~seed ~iteration:i inst
          ~trouble:("oracle mismatch: " ^ String.concat "," names)
    | exception exn ->
        incr failed;
        dump_repro ~seed ~iteration:i inst
          ~trouble:("crash: " ^ Printexc.to_string exn));
    if i mod 500 = 0 then Printf.printf "  %d/%d ok so far\n%!" (i - !failed) i
  done;
  if !failed = 0 then
    Printf.printf "all %d instances agree with the oracle\n" iterations
  else begin
    Printf.printf "%d failing instances\n" !failed;
    exit 1
  end

(* ---- fault-injection campaign (--faults) ---- *)

let fault_rates =
  [ ("tokenize", 0.2); ("heap_merge", 0.2); ("verify", 0.03); ("codec_io", 0.3) ]

let mix_seed seed i = (seed * 0x9e3779b1) lxor (i * 0x85ebca77) land 0x3FFFFFFF

let run_fault_campaign iterations seed =
  Printf.printf "fault campaign: %d instances (seed %d), sites %s\n%!"
    iterations seed
    (String.concat "," (List.map fst fault_rates));
  let rng = Xorshift.create seed in
  let escapes = ref 0 and mismatches = ref 0 in
  let failed_docs = ref 0 and ok_docs = ref 0 in
  Fault.reset_counts ();
  for i = 1 to iterations do
    let inst = random_instance rng in
    let doc_of_kind () =
      if Faerie_sim.Sim.char_based inst.sim then random_string rng 5 40
      else random_words rng 3 20
    in
    let docs =
      Array.append [| inst.document |] (Array.init 3 (fun _ -> doc_of_kind ()))
    in
    (match Problem.create ~sim:inst.sim ~q:inst.q inst.entities with
    | problem -> (
        (* Baseline with injection disabled, then the same batch armed. *)
        Fault.disarm ();
        let baseline, _ = Parallel.extract_all_outcomes ~domains:2 problem docs in
        Fault.configure { Fault.seed = mix_seed seed i; rates = fault_rates };
        (match Parallel.extract_all_outcomes ~domains:2 problem docs with
        | outcomes, _ ->
            Array.iteri
              (fun j outcome ->
                match (outcome, baseline.(j)) with
                | Outcome.Failed (Outcome.Injected_fault _), _ ->
                    incr failed_docs
                | Outcome.Ok got, Outcome.Ok want ->
                    incr ok_docs;
                    if got <> want then begin
                      incr mismatches;
                      dump_repro ~seed ~iteration:i inst
                        ~trouble:
                          (Printf.sprintf
                             "fault isolation violated: fault-free document \
                              %d differs from injection-disabled run"
                             j)
                    end
                | _ ->
                    incr escapes;
                    dump_repro ~seed ~iteration:i inst
                      ~trouble:
                        (Printf.sprintf "unexpected outcome for document %d" j))
              outcomes
        | exception exn ->
            incr escapes;
            dump_repro ~seed ~iteration:i inst
              ~trouble:("fault escaped the pipeline: " ^ Printexc.to_string exn));
        (* Codec decode under injection must fail only as Injected/Corrupt. *)
        let data =
          Ix.Codec.encode (Problem.dictionary problem) (Problem.index problem)
        in
        (match
           Fault.with_context (1_000_000 + i) (fun () -> Ix.Codec.decode data)
         with
        | _ -> ()
        | exception Fault.Injected _ -> incr failed_docs
        | exception Ix.Codec.Corrupt _ -> ()
        | exception exn ->
            incr escapes;
            dump_repro ~seed ~iteration:i inst
              ~trouble:("codec fault escaped: " ^ Printexc.to_string exn));
        Fault.disarm ())
    | exception exn ->
        Fault.disarm ();
        incr escapes;
        dump_repro ~seed ~iteration:i inst
          ~trouble:("problem build crashed: " ^ Printexc.to_string exn));
    if i mod 500 = 0 then Printf.printf "  %d/%d instances\n%!" i iterations
  done;
  let injected = Fault.injected_count () in
  Printf.printf
    "injected %d faults: %d contained as Failed outcomes, %d fault-free \
     documents identical to the disabled run\n"
    injected !failed_docs !ok_docs;
  if injected <> !failed_docs then begin
    Printf.printf "CONTAINMENT LEAK: %d injected but %d surfaced\n" injected
      !failed_docs;
    exit 1
  end;
  if !escapes > 0 || !mismatches > 0 then begin
    Printf.printf "%d escapes, %d isolation mismatches\n" !escapes !mismatches;
    exit 1
  end;
  Printf.printf "fault containment holds on all %d instances\n" iterations

let () =
  let faults = ref false in
  let positional = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        if arg = "--faults" then faults := true
        else positional := int_of_string arg :: !positional)
    Sys.argv;
  let positional = List.rev !positional in
  let iterations = match positional with n :: _ -> n | [] -> 2_000 in
  let seed =
    match positional with
    | _ :: s :: _ -> s
    | _ -> int_of_float (Unix.gettimeofday () *. 1000.) land 0xFFFFFF
  in
  if !faults then run_fault_campaign iterations seed
  else run_differential iterations seed
