(* Differential fuzzer: random extraction instances, every algorithm must
   agree with the brute-force oracle. The qcheck suites run bounded counts
   under `dune runtest`; this binary runs open-ended campaigns.

   Usage: dune exec bin/fuzz.exe -- [iterations] [seed]                     *)

module Sim = Faerie_sim.Sim
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Tk = Faerie_tokenize
module Naive = Faerie_baselines.Naive
module Ngpp = Faerie_baselines.Ngpp
module Ish = Faerie_baselines.Ish
module Xorshift = Faerie_util.Xorshift

let alphabet = [| 'a'; 'b'; 'c' |]

let random_string rng lo hi =
  let n = Xorshift.int_in_range rng ~lo ~hi in
  String.init n (fun _ -> Xorshift.choose rng alphabet)

let random_words rng lo hi =
  let n = Xorshift.int_in_range rng ~lo ~hi in
  List.init n (fun _ -> Xorshift.choose rng [| "aa"; "bb"; "cc"; "dd"; "ee" |])
  |> String.concat " "

type instance = {
  sim : Sim.t;
  q : int;
  entities : string list;
  document : string;
}

let random_instance rng =
  let char_based = Xorshift.bool rng in
  if char_based then begin
    let sim =
      match Xorshift.int rng 5 with
      | 0 -> Sim.Edit_distance 0
      | 1 -> Sim.Edit_distance 1
      | 2 -> Sim.Edit_distance 2
      | 3 -> Sim.Edit_similarity 0.7
      | _ -> Sim.Edit_similarity 0.9
    in
    {
      sim;
      q = Xorshift.int_in_range rng ~lo:2 ~hi:3;
      entities =
        List.init (Xorshift.int_in_range rng ~lo:1 ~hi:5) (fun _ ->
            random_string rng 1 8);
      document = random_string rng 5 40;
    }
  end
  else begin
    let d = Xorshift.choose rng [| 0.5; 0.7; 0.8; 1.0 |] in
    let sim =
      match Xorshift.int rng 3 with
      | 0 -> Sim.Jaccard d
      | 1 -> Sim.Cosine d
      | _ -> Sim.Dice d
    in
    {
      sim;
      q = 1;
      entities =
        List.init (Xorshift.int_in_range rng ~lo:1 ~hi:5) (fun _ ->
            random_words rng 1 4);
      document = random_words rng 3 20;
    }
  end

let triples ms =
  List.map
    (fun (m : Types.char_match) -> (m.Types.c_entity, m.Types.c_start, m.Types.c_len))
    ms

let faerie_matches ?pruning problem doc =
  let matches, _ = Core.Single_heap.run ?pruning problem doc in
  let main =
    List.map
      (fun (m : Types.token_match) ->
        let c_start, c_len =
          Tk.Document.char_extent doc ~start:m.Types.m_start ~len:m.Types.m_len
        in
        { Types.c_entity = m.Types.m_entity; c_start; c_len; c_score = m.Types.m_score })
      matches
  in
  List.sort_uniq Types.compare_char_match (Core.Fallback.run problem doc @ main)

let check_instance inst =
  let problem = Problem.create ~sim:inst.sim ~q:inst.q inst.entities in
  let doc = Problem.tokenize_document problem inst.document in
  let oracle = triples (Naive.extract problem doc) in
  let failures = ref [] in
  let expect name got =
    if got <> oracle then failures := name :: !failures
  in
  List.iter
    (fun pruning ->
      expect
        ("faerie/" ^ Types.pruning_name pruning)
        (triples (faerie_matches ~pruning problem doc)))
    Types.all_prunings;
  List.iter
    (fun (name, algorithm) ->
      let ms, _ = Core.Multi_heap.run ~algorithm problem doc in
      let as_char =
        List.map
          (fun (m : Types.token_match) ->
            let c_start, c_len =
              Tk.Document.char_extent doc ~start:m.Types.m_start ~len:m.Types.m_len
            in
            { Types.c_entity = m.Types.m_entity; c_start; c_len; c_score = m.Types.m_score })
          ms
      in
      let full =
        List.sort_uniq Types.compare_char_match
          (Core.Fallback.run problem doc @ as_char)
      in
      expect ("multi-heap/" ^ name) (triples full))
    [ ("heap", Core.Multi_heap.Heap_count); ("mergeskip", Core.Multi_heap.Merge_skip);
      ("divideskip", Core.Multi_heap.Divide_skip) ];
  (match inst.sim with
  | Sim.Edit_distance tau ->
      let ngpp = Ngpp.build ~tau inst.entities in
      expect "ngpp" (triples (Ngpp.extract ngpp inst.document))
  | Sim.Jaccard _ | Sim.Edit_similarity _ ->
      let ish = Ish.build problem in
      expect "ish" (triples (Ish.extract ish doc))
  | Sim.Cosine _ | Sim.Dice _ -> ());
  !failures

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2_000
  in
  let seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else (int_of_float (Unix.gettimeofday () *. 1000.)) land 0xFFFFFF
  in
  Printf.printf "fuzzing %d instances (seed %d)\n%!" iterations seed;
  let rng = Xorshift.create seed in
  let failed = ref 0 in
  for i = 1 to iterations do
    let inst = random_instance rng in
    (match check_instance inst with
    | [] -> ()
    | names ->
        incr failed;
        Printf.printf
          "MISMATCH [%s] at iteration %d:\n  sim=%s q=%d\n  dict=[%s]\n  doc=%S\n%!"
          (String.concat "," names) i (Sim.to_string inst.sim) inst.q
          (String.concat "; " inst.entities)
          inst.document);
    if i mod 500 = 0 then Printf.printf "  %d/%d ok so far\n%!" (i - !failed) i
  done;
  if !failed = 0 then Printf.printf "all %d instances agree with the oracle\n" iterations
  else begin
    Printf.printf "%d mismatching instances\n" !failed;
    exit 1
  end
