bench/workloads.ml: Array Faerie_core Faerie_datagen Faerie_sim List Sys
