bench/harness.ml: Filename List Option Printf String Sys Unix
