bench/main.mli:
