(* Benchmark workloads: scaled synthetic corpora mirroring the paper's
   datasets, plus the per-threshold gram lengths (the paper tunes q per
   threshold, Section 6.2). *)

module Sim = Faerie_sim.Sim
module Corpus = Faerie_datagen.Corpus
module Problem = Faerie_core.Problem

let scale =
  match Sys.getenv_opt "FAERIE_SCALE" with
  | Some s -> (try float_of_string s with _ -> 1.0)
  | None -> 1.0

let scaled n = max 1 (int_of_float (float_of_int n *. scale))

(* Dictionary sizes default to 10k entities (the paper used 100k; run with
   FAERIE_SCALE=10 to match). *)
let n_entities = scaled 10_000

let dblp =
  lazy (Corpus.dblp ~seed:101 ~n_entities ~n_documents:(scaled 100) ())

let pubmed =
  lazy (Corpus.pubmed ~seed:102 ~n_entities ~n_documents:(scaled 50) ())

let webpage =
  lazy (Corpus.webpage ~seed:103 ~n_entities ~n_documents:(scaled 6) ())

let entities corpus = Array.to_list corpus.Corpus.entities

let doc_texts ?(from = 0) corpus n =
  let docs = corpus.Corpus.documents in
  let from = min from (max 0 (Array.length docs - 1)) in
  Array.init (min n (Array.length docs - from)) (fun i -> docs.(from + i).Corpus.text)

(* The paper chooses a larger q for smaller thresholds (Section 6.2): a
   large q keeps inverted lists short, while the filter stays non-vacuous
   only while tau * q < len(e) (resp. (1 - delta) * q < 1). *)
let q_for_ed_dblp = function
  | 0 -> 5
  | 1 -> 4
  | 2 -> 4
  | 3 -> 3
  | _ -> 3

let q_for_eds_pubmed delta =
  if delta >= 0.999 then 16
  else if delta >= 0.95 then 11
  else if delta >= 0.9 then 7
  else if delta >= 0.85 then 5
  else 4

(* Restrict a dictionary to the entities the q-gram filter covers for this
   setting (the paper's per-tau q choices enforce the same property on its
   corpora); keeps the timed loop free of the quadratic fallback path so
   the figures measure the filtering algorithms. *)
let indexed_subset ~sim ?q ?mode raw_entities =
  let problem = Problem.create ~sim ?q ?mode raw_entities in
  List.filteri
    (fun id _ -> (Problem.info problem id).Problem.path = Problem.Indexed)
    raw_entities

let take_fraction frac l =
  let n = List.length l in
  let keep = int_of_float (float_of_int n *. frac) in
  List.filteri (fun i _ -> i < keep) l
