(* Web-page annotation scenario (the paper's WebPage workload): highlight
   occurrences of known titles inside long pages with jaccard similarity,
   and show how the pruning levels behave on long documents — the setting
   where shared computation across overlapping substrings matters most.

   Run with:  dune exec examples/webpage_annotation.exe *)

module Sim = Faerie_sim.Sim
module Extractor = Faerie_core.Extractor
module Outcome = Faerie_core.Outcome
module Types = Faerie_core.Types
module Corpus = Faerie_datagen.Corpus

let () =
  let corpus = Corpus.webpage ~seed:5 ~n_entities:2_000 ~n_documents:10 () in
  print_endline "== Web-page annotation: jaccard over long documents ==";
  Format.printf "corpus: %a@.@." Corpus.pp_stats (Corpus.stats corpus);

  let ex =
    Extractor.create ~sim:(Sim.Jaccard 0.8) (Array.to_list corpus.Corpus.entities)
  in

  (* Annotate one page: extract, then resolve overlapping near-duplicate
     spans to one best span per region (weighted interval scheduling). *)
  let page = corpus.Corpus.documents.(0).Corpus.text in
  let doc = Extractor.tokenize ex page in
  let results =
    let report = Extractor.run ex (`Doc doc) in
    Option.value ~default:[] (Outcome.matches report.Extractor.outcome)
  in
  let as_char =
    List.map
      (fun (r : Extractor.result) ->
        {
          Types.c_entity = r.Extractor.entity_id;
          c_start = r.Extractor.start_char;
          c_len = r.Extractor.len_chars;
          c_score = r.Extractor.score;
        })
      results
  in
  let selected =
    Extractor.results_of_char_matches ex doc
      (Faerie_core.Span_select.select as_char)
  in
  Printf.printf "page 0: %d chars, %d raw spans, %d after overlap resolution\n"
    (String.length page) (List.length results) (List.length selected);
  List.iteri
    (fun i (r : Extractor.result) ->
      if i < 5 then
        Printf.printf "  [%d,%d) %S ~ %S\n" r.Extractor.start_char
          (r.Extractor.start_char + r.Extractor.len_chars)
          r.Extractor.matched_text r.Extractor.entity)
    selected;

  (* Pruning-level comparison on the long pages (Fig. 14/15 in miniature). *)
  print_newline ();
  print_endline "pruning level   candidates   time";
  List.iter
    (fun pruning ->
      let t0 = Unix.gettimeofday () in
      let candidates = ref 0 in
      Array.iter
        (fun (d : Corpus.document) ->
          let doc = Extractor.tokenize ex d.Corpus.text in
          let report =
            Extractor.run
              ~opts:{ Extractor.default_opts with Extractor.pruning }
              ex (`Doc doc)
          in
          candidates := !candidates + report.Extractor.stats.Types.candidates)
        corpus.Corpus.documents;
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "%-15s %-12d %.3fs\n" (Types.pruning_name pruning) !candidates dt)
    Types.all_prunings
