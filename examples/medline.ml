(* Medline scenario (the paper's PubMed workload): find paper titles cited
   inside publication records, under all three token-based similarities and
   edit similarity — demonstrating the unified framework: one index
   structure, five functions.

   Run with:  dune exec examples/medline.exe *)

module Sim = Faerie_sim.Sim
module Extractor = Faerie_core.Extractor
module Outcome = Faerie_core.Outcome
module Types = Faerie_core.Types
module Corpus = Faerie_datagen.Corpus

let () =
  let corpus = Corpus.pubmed ~seed:7 ~n_entities:1_000 ~n_documents:100 () in
  print_endline "== Medline: title extraction under the unified framework ==";
  Format.printf "corpus: %a@.@." Corpus.pp_stats (Corpus.stats corpus);

  let entities = Array.to_list corpus.Corpus.entities in
  let documents = Array.map (fun d -> d.Corpus.text) corpus.Corpus.documents in

  let run sim q =
    let ex = Extractor.create ~sim ~q entities in
    let t0 = Unix.gettimeofday () in
    let total_matches = ref 0 and total_candidates = ref 0 in
    Array.iter
      (fun text ->
        let doc = Extractor.tokenize ex text in
        let report = Extractor.run ex (`Doc doc) in
        let results =
          Option.value ~default:[] (Outcome.matches report.Extractor.outcome)
        in
        total_matches := !total_matches + List.length results;
        total_candidates :=
          !total_candidates + report.Extractor.stats.Types.candidates)
      documents;
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "%-16s matches=%-6d candidates=%-8d time=%.3fs\n"
      (Sim.to_string sim) !total_matches !total_candidates dt
  in

  (* Token-based similarities share the word-token index machinery. *)
  run (Sim.Jaccard 0.8) 1;
  run (Sim.Cosine 0.8) 1;
  run (Sim.Dice 0.8) 1;
  (* Character-based functions run over q-grams. *)
  run (Sim.Edit_similarity 0.9) 4;
  run (Sim.Edit_distance 2) 4;

  print_newline ();
  print_endline "same corpus, one extraction API, five similarity functions."
