(* faerie — command-line approximate dictionary-based entity extraction.

   Subcommands:
     extract   find approximate entity matches in documents
     explain   audit the filter cascade on one document
     flame     profile one extraction into a folded-stack flame profile
     stats     report dictionary / index statistics
     regress   compare two bench snapshots for wall-time/alloc regressions
     gen       generate a synthetic corpus (entities + documents)          *)

module Sim = Faerie_sim.Sim
module Extractor = Faerie_core.Extractor
module Types = Faerie_core.Types
module Problem = Faerie_core.Problem
module Parallel = Faerie_core.Parallel
module Outcome = Faerie_core.Outcome
module Explain = Faerie_obs.Explain
module Perf = Faerie_obs.Perf
module Ix = Faerie_index
module Corpus = Faerie_datagen.Corpus
module Bytesize = Faerie_util.Bytesize
module Budget = Faerie_util.Budget
open Cmdliner

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line ->
            loop (if String.trim line = "" then acc else String.trim line :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* '-' means stderr (match output stays on stdout). *)
let write_sink sink content =
  match sink with
  | "-" -> output_string stderr content
  | path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc content)

(* Map expected IO failures (missing file, permission denied, corrupt index)
   to clean one-line errors instead of uncaught exceptions with backtraces. *)
let guard f =
  try f () with
  | Sys_error msg ->
      Printf.eprintf "faerie: %s\n" msg;
      2
  | Ix.Codec.Corrupt msg ->
      Printf.eprintf "faerie: corrupt index: %s\n" msg;
      2

(* ---- shared arguments ---- *)

let sim_conv =
  let parse s =
    match String.split_on_char '=' s with
    | [ "jac"; d ] -> Ok (Sim.Jaccard (float_of_string d))
    | [ "cos"; d ] -> Ok (Sim.Cosine (float_of_string d))
    | [ "dice"; d ] -> Ok (Sim.Dice (float_of_string d))
    | [ "ed"; t ] -> Ok (Sim.Edit_distance (int_of_string t))
    | [ "eds"; d ] -> Ok (Sim.Edit_similarity (float_of_string d))
    | _ ->
        Error
          (`Msg
            "expected FUNC=THRESH with FUNC one of jac|cos|dice|eds (delta) or ed (tau)")
  in
  let print ppf sim = Format.fprintf ppf "%s" (Sim.to_string sim) in
  Arg.conv (parse, print)

let sim_arg =
  let doc =
    "Similarity function and threshold, e.g. ed=2, jac=0.8, eds=0.9."
  in
  Arg.(value & opt sim_conv (Sim.Edit_distance 2) & info [ "s"; "sim" ] ~docv:"FUNC=THRESH" ~doc)

let q_arg =
  let doc = "Gram length for edit distance / edit similarity." in
  Arg.(value & opt int 2 & info [ "q" ] ~docv:"Q" ~doc)

let dict_arg =
  let doc = "Dictionary file: one entity per line." in
  Arg.(required & opt (some file) None & info [ "d"; "dict" ] ~docv:"FILE" ~doc)

let dict_opt_arg =
  let doc = "Dictionary file: one entity per line." in
  Arg.(value & opt (some file) None & info [ "d"; "dict" ] ~docv:"FILE" ~doc)

let index_opt_arg =
  let doc = "Prebuilt binary index (see the 'index' subcommand)." in
  Arg.(value & opt (some file) None & info [ "x"; "index" ] ~docv:"FILE" ~doc)

(* Build a problem from either a dictionary file or a saved index. *)
let problem_of_source sim q dict_file index_file =
  match (dict_file, index_file) with
  | _, Some path ->
      let _, index = Ix.Codec.load path in
      Problem.of_index ~sim index
  | Some path, None -> Problem.create ~sim ~q (read_lines path)
  | None, None ->
      prerr_endline "faerie: either --dict or --index is required";
      exit 2

(* ---- extract ---- *)

let pruning_conv =
  Arg.enum
    [ ("none", Types.No_prune); ("lazy", Types.Lazy_count);
      ("bucket", Types.Bucket_count); ("binary", Types.Binary_window) ]

let extract_cmd =
  let docs_arg =
    let doc = "Document files (omit to read one document from stdin)." in
    Arg.(value & pos_all file [] & info [] ~docv:"DOC" ~doc)
  in
  let pruning_arg =
    let doc = "Pruning level: none, lazy, bucket or binary (full Faerie)." in
    Arg.(value & opt pruning_conv Types.Binary_window & info [ "pruning" ] ~doc)
  in
  let show_stats_arg =
    let doc = "Print filtering statistics to stderr." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let top_arg =
    let doc = "Report only the K best matches per document." in
    Arg.(value & opt (some int) None & info [ "top" ] ~docv:"K" ~doc)
  in
  let select_arg =
    let doc =
      "Resolve overlaps: report a maximum-score set of non-overlapping spans."
    in
    Arg.(value & flag & info [ "select" ] ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-document wall-clock budget in milliseconds. A document that \
       exceeds it yields the partial matches found so far, flagged degraded \
       on stderr."
    in
    Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let max_doc_bytes_arg =
    let doc =
      "Documents larger than this many bytes are processed with \
       bounded-memory chunked extraction (results complete, flagged \
       degraded on stderr)."
    in
    Arg.(
      value & opt (some int) None & info [ "max-doc-bytes" ] ~docv:"BYTES" ~doc)
  in
  let keep_going_arg =
    let doc =
      "Keep processing remaining documents after a document fails; the exit \
       status is non-zero only if every document failed."
    in
    Arg.(value & flag & info [ "k"; "keep-going" ] ~doc)
  in
  let metrics_arg =
    let doc =
      "Write a JSON-lines snapshot of the metrics registry after the run, to \
       $(docv) ('-' or no value: stderr)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let trace_arg =
    let doc =
      "Record trace spans during the run and write them as JSON lines to \
       $(docv) ('-' or no value: stderr)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_format_arg =
    let doc =
      "Format for the --metrics snapshot: jsonl (JSON lines) or prom \
       (Prometheus text exposition)."
    in
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("prom", `Prom) ]) `Jsonl
      & info [ "metrics-format" ] ~docv:"FMT" ~doc)
  in
  let explain_arg =
    let doc =
      "Audit the filter cascade: with no value (or '-') print a human \
       waterfall report to stderr after the run; with $(docv), write the \
       JSONL event dump there instead."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "explain" ] ~docv:"FILE" ~doc)
  in
  let run sim q dict_file index_file doc_files pruning show_stats top select
      timeout_ms max_doc_bytes keep_going metrics metrics_format trace explain =
    guard @@ fun () ->
    if trace <> None then Faerie_obs.Trace.enable ();
    let problem = problem_of_source sim q dict_file index_file in
    let dict = Problem.dictionary problem in
    let extractor = Extractor.of_problem problem in
    (* One sink audits the whole run; per-document [Doc] events delimit
       documents in the JSONL dump. *)
    let sink = match explain with None -> None | Some _ -> Some (Explain.create ()) in
    let budget = { Budget.spec_unlimited with timeout_ms; max_bytes = max_doc_bytes } in
    let n_docs = ref 0 and n_failed = ref 0 in
    (* Best-first ordering used by --top (same as Topk.top_k): better score
       first, ties toward the earlier, shorter, lower-id match. *)
    let best_first (a : Types.char_match) (b : Types.char_match) =
      let c = Faerie_sim.Verify.Score.compare a.Types.c_score b.Types.c_score in
      if c <> 0 then c
      else
        compare
          (a.Types.c_start, a.Types.c_len, a.Types.c_entity)
          (b.Types.c_start, b.Types.c_len, b.Types.c_entity)
    in
    let positional (a : Types.char_match) (b : Types.char_match) =
      compare
        (a.Types.c_start, a.Types.c_len, a.Types.c_entity)
        (b.Types.c_start, b.Types.c_len, b.Types.c_entity)
    in
    let take k l =
      List.filteri (fun i _ -> i < k) l
    in
    let print_matches name text ms =
      let normalized = Faerie_tokenize.Tokenizer.normalize text in
      List.iter
        (fun (m : Types.char_match) ->
          let e = Ix.Dictionary.entity dict m.Types.c_entity in
          Printf.printf "%s\t%d\t%d\t%s\t%s\t%s\n" name m.Types.c_start
            (m.Types.c_start + m.Types.c_len)
            (Format.asprintf "%a" Faerie_sim.Verify.Score.pp m.Types.c_score)
            e.Ix.Entity.raw
            (String.sub normalized m.Types.c_start m.Types.c_len))
        (List.sort positional ms)
    in
    let char_match_of_result (r : Extractor.result) =
      {
        Types.c_entity = r.Extractor.entity_id;
        c_start = r.Extractor.start_char;
        c_len = r.Extractor.len_chars;
        c_score = r.Extractor.score;
      }
    in
    (* Returns [true] when processing may continue with the next document. *)
    let process idx name text =
      incr n_docs;
      let opts =
        {
          Extractor.default_opts with
          pruning;
          budget;
          doc_id = idx;
          explain = sink;
        }
      in
      let report = Extractor.run ~opts extractor (`Text text) in
      match report.Extractor.outcome with
      | Outcome.Failed err ->
          incr n_failed;
          Printf.eprintf "faerie: %s: %s\n%!" name
            (Outcome.error_to_string err);
          keep_going
      | Outcome.Ok rs | Outcome.Degraded (rs, _) as outcome ->
          (match outcome with
          | Outcome.Degraded (_, why) ->
              Printf.eprintf "faerie: %s: %s\n%!" name
                (Outcome.degradation_to_string why)
          | _ -> ());
          let ms = List.map char_match_of_result rs in
          let ms = match top with Some k -> take k (List.sort best_first ms) | None -> ms in
          let ms = if select then Faerie_core.Span_select.select ms else ms in
          print_matches name text ms;
          if show_stats then
            Format.eprintf "%s: %a@." name Types.pp_stats
              report.Extractor.stats;
          true
    in
    (match doc_files with
    | [] ->
        let buf = Buffer.create 4096 in
        (try
           while true do
             Buffer.add_channel buf stdin 1
           done
         with End_of_file -> ());
        ignore (process 0 "<stdin>" (Buffer.contents buf))
    | files ->
        let rec loop idx = function
          | [] -> ()
          | f :: rest ->
              if process idx f (read_file f) then loop (idx + 1) rest
        in
        loop 0 files);
    (match (explain, sink) with
    | Some dest, Some s ->
        let name_of id = (Ix.Dictionary.entity dict id).Ix.Entity.raw in
        if dest = "-" then output_string stderr (Explain.render ~name_of s)
        else write_sink dest (Explain.to_jsonl s)
    | _ -> ());
    (match metrics with
    | None -> ()
    | Some dest ->
        let content =
          match metrics_format with
          | `Jsonl -> Faerie_obs.Metrics.to_jsonl ()
          | `Prom -> Faerie_obs.Metrics.to_prometheus ()
        in
        write_sink dest content);
    (match trace with
    | None -> ()
    | Some dest ->
        write_sink dest (Faerie_obs.Trace.to_jsonl (Faerie_obs.Trace.drain ())));
    if !n_failed = 0 then 0
    else if keep_going && !n_failed < !n_docs then 0
    else 1
  in
  let doc = "Extract approximate entity matches from documents." in
  Cmd.v
    (Cmd.info "extract" ~doc)
    Term.(
      const run $ sim_arg $ q_arg $ dict_opt_arg $ index_opt_arg $ docs_arg
      $ pruning_arg $ show_stats_arg $ top_arg $ select_arg $ timeout_arg
      $ max_doc_bytes_arg $ keep_going_arg $ metrics_arg $ metrics_format_arg
      $ trace_arg $ explain_arg)

(* ---- explain ---- *)

let explain_cmd =
  let dict_pos =
    let doc = "Dictionary file: one entity per line." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DICT" ~doc)
  in
  let doc_pos =
    let doc = "Document file to audit." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DOC" ~doc)
  in
  let pruning_arg =
    let doc = "Pruning level: none, lazy, bucket or binary (full Faerie)." in
    Arg.(value & opt pruning_conv Types.Binary_window & info [ "pruning" ] ~doc)
  in
  let jsonl_arg =
    let doc =
      "Dump the raw event log as JSON lines instead of the waterfall report, \
       to $(docv) ('-' or no value: stdout)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "jsonl" ] ~docv:"FILE" ~doc)
  in
  let top_arg =
    let doc = "Most-expensive entities listed in the waterfall report." in
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"K" ~doc)
  in
  let run sim q pruning dict_file doc_file jsonl top =
    guard @@ fun () ->
    let problem = Problem.create ~sim ~q (read_lines dict_file) in
    let extractor = Extractor.of_problem problem in
    let sink = Explain.create () in
    let opts = { Extractor.default_opts with pruning; explain = Some sink } in
    let report = Extractor.run ~opts extractor (`Text (read_file doc_file)) in
    (match report.Extractor.outcome with
    | Outcome.Failed err ->
        Printf.eprintf "faerie: %s\n" (Outcome.error_to_string err)
    | Outcome.Degraded (_, why) ->
        Printf.eprintf "faerie: %s\n" (Outcome.degradation_to_string why)
    | Outcome.Ok _ -> ());
    let dict = Problem.dictionary problem in
    let name_of id = (Ix.Dictionary.entity dict id).Ix.Entity.raw in
    (match jsonl with
    | Some "-" -> print_string (Explain.to_jsonl sink)
    | Some path -> write_sink path (Explain.to_jsonl sink)
    | None -> print_string (Explain.render ~top ~name_of sink));
    match report.Extractor.outcome with Outcome.Failed _ -> 1 | _ -> 0
  in
  let doc =
    "Audit the filter cascade on one document: per-filter selectivity \
     waterfall, prune reasons, verification outcomes."
  in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(
      const run $ sim_arg $ q_arg $ pruning_arg $ dict_pos $ doc_pos
      $ jsonl_arg $ top_arg)

(* ---- flame ---- *)

let flame_cmd =
  let dict_pos =
    let doc = "Dictionary file: one entity per line." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DICT" ~doc)
  in
  let doc_pos =
    let doc = "Document file to profile." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DOC" ~doc)
  in
  let pruning_arg =
    let doc = "Pruning level: none, lazy, bucket or binary (full Faerie)." in
    Arg.(value & opt pruning_conv Types.Binary_window & info [ "pruning" ] ~doc)
  in
  let folded_arg =
    let doc =
      "Write the folded-stack profile ('stack;stack SELF_NS' lines, \
       consumable by flamegraph.pl or speedscope) to $(docv) ('-': stderr)."
    in
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE" ~doc)
  in
  let top_arg =
    let doc = "Rows in the self-time table printed to stdout." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)
  in
  let run sim q pruning dict_file doc_file folded top =
    guard @@ fun () ->
    let module Trace = Faerie_obs.Trace in
    let module Prof = Faerie_obs.Prof in
    Trace.enable ();
    Prof.enable ();
    let problem = Problem.create ~sim ~q (read_lines dict_file) in
    let extractor = Extractor.of_problem problem in
    ignore (Trace.drain ());
    let opts = { Extractor.default_opts with pruning } in
    let report = Extractor.run ~opts extractor (`Text (read_file doc_file)) in
    (match report.Extractor.outcome with
    | Outcome.Failed err ->
        Printf.eprintf "faerie: %s\n" (Outcome.error_to_string err)
    | Outcome.Degraded (_, why) ->
        Printf.eprintf "faerie: %s\n" (Outcome.degradation_to_string why)
    | Outcome.Ok _ -> ());
    let frames = Prof.flame_of_spans (Trace.drain ()) in
    print_string (Prof.render_top ~top frames);
    (match folded with
    | None -> ()
    | Some dest -> write_sink dest (Prof.to_folded frames));
    match report.Extractor.outcome with Outcome.Failed _ -> 1 | _ -> 0
  in
  let doc =
    "Profile one extraction: aggregate its trace spans into a flame profile \
     (top self-time table on stdout, folded stacks via --folded)."
  in
  Cmd.v
    (Cmd.info "flame" ~doc)
    Term.(
      const run $ sim_arg $ q_arg $ pruning_arg $ dict_pos $ doc_pos
      $ folded_arg $ top_arg)

(* ---- regress ---- *)

let regress_cmd =
  let old_pos =
    let doc = "Baseline bench snapshot (BENCH_faerie.json)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc)
  in
  let new_pos =
    let doc = "Current bench snapshot to compare against the baseline." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc)
  in
  let max_ratio_arg =
    let doc =
      "Maximum tolerated wall-time ratio current/baseline per exhibit."
    in
    Arg.(value & opt float 1.5 & info [ "max-ratio" ] ~docv:"R" ~doc)
  in
  let max_alloc_ratio_arg =
    let doc =
      "Also gate allocation: maximum tolerated minor-words ratio \
       current/baseline per exhibit (requires gc blocks in the baseline's \
       exhibits; v1 baselines are exempt)."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "max-alloc-ratio" ] ~docv:"R" ~doc)
  in
  let run old_file new_file max_ratio max_alloc_ratio =
    guard @@ fun () ->
    let load path =
      match Perf.bench_of_json (read_file path) with
      | Ok b -> b
      | Error e ->
          Printf.eprintf "faerie: %s: %s\n" path e;
          exit 2
    in
    let baseline = load old_file in
    let current = load new_file in
    let c =
      Perf.compare_benches ~max_ratio ?max_alloc_ratio ~baseline ~current ()
    in
    print_string (Perf.render_comparison ~max_ratio ?max_alloc_ratio c);
    if c.Perf.any_regressed then 1 else 0
  in
  let doc =
    "Compare two bench --json snapshots; exit 1 when any exhibit's wall time \
     regressed beyond --max-ratio or its allocation beyond --max-alloc-ratio \
     (exit 2 on malformed snapshots)."
  in
  Cmd.v
    (Cmd.info "regress" ~doc)
    Term.(const run $ old_pos $ new_pos $ max_ratio_arg $ max_alloc_ratio_arg)

(* ---- stats ---- *)

let stats_cmd =
  let run sim q dict_file =
    guard @@ fun () ->
    let entities = read_lines dict_file in
    let problem = Problem.create ~sim ~q entities in
    let dict = Problem.dictionary problem in
    let index = Problem.index problem in
    let n = Ix.Dictionary.size dict in
    Printf.printf "entities:        %d\n" n;
    Printf.printf "function:        %s (q=%d)\n" (Sim.to_string sim) q;
    Printf.printf "distinct tokens: %d\n"
      (Faerie_tokenize.Interner.size (Ix.Dictionary.interner dict));
    Printf.printf "postings:        %d\n" (Ix.Inverted_index.n_postings index);
    Printf.printf "non-empty lists: %d\n" (Ix.Inverted_index.n_lists index);
    Printf.printf "index size:      %s\n"
      (Bytesize.to_string (Ix.Inverted_index.heap_bytes index));
    Printf.printf "fallback path:   %d entities\n"
      (List.length (Problem.fallback_entities problem));
    Printf.printf "substring token range: [%d, %d]\n"
      (Problem.global_lower problem) (Problem.global_upper problem);
    0
  in
  let doc = "Report dictionary and inverted-index statistics." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ sim_arg $ q_arg $ dict_arg)

(* ---- index ---- *)

let index_cmd =
  let out_arg =
    let doc = "Output path for the binary index." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run sim q dict_file out =
    guard @@ fun () ->
    let problem = Problem.create ~sim ~q (read_lines dict_file) in
    Ix.Codec.save (Problem.dictionary problem) (Problem.index problem) out;
    let bytes = (Unix.stat out).Unix.st_size in
    Printf.printf "wrote %s (%s, %d entities, %d postings)\n" out
      (Bytesize.to_string bytes)
      (Ix.Dictionary.size (Problem.dictionary problem))
      (Ix.Inverted_index.n_postings (Problem.index problem));
    0
  in
  let doc =
    "Build a dictionary index and save it for later 'extract --index' runs."
  in
  Cmd.v (Cmd.info "index" ~doc) Term.(const run $ sim_arg $ q_arg $ dict_arg $ out_arg)

(* ---- gen ---- *)

let gen_cmd =
  let profile_arg =
    let doc = "Corpus profile: dblp, pubmed or webpage." in
    Arg.(value & opt (enum [ ("dblp", `Dblp); ("pubmed", `Pubmed); ("webpage", `Webpage) ]) `Dblp & info [ "profile" ] ~doc)
  in
  let n_entities_arg =
    Arg.(value & opt int 1000 & info [ "entities" ] ~docv:"N" ~doc:"Number of entities.")
  in
  let n_docs_arg =
    Arg.(value & opt int 100 & info [ "documents" ] ~docv:"N" ~doc:"Number of documents.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let out_arg =
    Arg.(value & opt string "corpus" & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run profile n_entities n_documents seed out =
    guard @@ fun () ->
    let corpus =
      match profile with
      | `Dblp -> Corpus.dblp ~seed ~n_entities ~n_documents ()
      | `Pubmed -> Corpus.pubmed ~seed ~n_entities ~n_documents ()
      | `Webpage -> Corpus.webpage ~seed ~n_entities ~n_documents ()
    in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let write_file path f =
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)
    in
    write_file (Filename.concat out "entities.txt") (fun oc ->
        Array.iter (fun e -> output_string oc (e ^ "\n")) corpus.Corpus.entities);
    let docs_dir = Filename.concat out "docs" in
    if not (Sys.file_exists docs_dir) then Sys.mkdir docs_dir 0o755;
    Array.iteri
      (fun i (d : Corpus.document) ->
        write_file
          (Filename.concat docs_dir (Printf.sprintf "doc%04d.txt" i))
          (fun oc -> output_string oc d.Corpus.text))
      corpus.Corpus.documents;
    Format.printf "wrote %s: %a@." out Corpus.pp_stats (Corpus.stats corpus);
    0
  in
  let doc = "Generate a synthetic corpus (entities.txt + docs/)." in
  Cmd.v
    (Cmd.info "gen" ~doc)
    Term.(const run $ profile_arg $ n_entities_arg $ n_docs_arg $ seed_arg $ out_arg)

let () =
  let doc = "Approximate dictionary-based entity extraction (Faerie)." in
  let info = Cmd.info "faerie" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            extract_cmd; explain_cmd; flame_cmd; stats_cmd; regress_cmd;
            gen_cmd; index_cmd;
          ]))
