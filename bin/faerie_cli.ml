(* faerie — command-line approximate dictionary-based entity extraction.

   Subcommands:
     extract   find approximate entity matches in documents
     explain   audit the filter cascade on one document
     flame     profile one extraction into a folded-stack flame profile
     stats     report dictionary / index statistics
     regress   compare two bench snapshots for wall-time/alloc regressions
     gen       generate a synthetic corpus (entities + documents)
     index     build and save a binary index for later runs
     serve     long-running NDJSON extraction service (supervised pool)    *)

module Sim = Faerie_sim.Sim
module Extractor = Faerie_core.Extractor
module Types = Faerie_core.Types
module Problem = Faerie_core.Problem
module Parallel = Faerie_core.Parallel
module Outcome = Faerie_core.Outcome
module Explain = Faerie_obs.Explain
module Perf = Faerie_obs.Perf
module Ix = Faerie_index
module Corpus = Faerie_datagen.Corpus
module Bytesize = Faerie_util.Bytesize
module Budget = Faerie_util.Budget
open Cmdliner

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line ->
            loop (if String.trim line = "" then acc else String.trim line :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Slurp a non-seekable channel (stdin, pipes) in 64 KiB chunks. *)
let read_channel ic =
  let chunk = 65536 in
  let bytes = Bytes.create chunk in
  let buf = Buffer.create chunk in
  let rec loop () =
    match input ic bytes 0 chunk with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf bytes 0 n;
        loop ()
  in
  loop ()

(* '-' means stderr (match output stays on stdout). *)
let write_sink sink content =
  match sink with
  | "-" -> output_string stderr content
  | path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc content)

(* Map expected IO failures (missing file, permission denied, corrupt index)
   to clean one-line errors instead of uncaught exceptions with backtraces. *)
let guard f =
  try f () with
  | Sys_error msg ->
      Printf.eprintf "faerie: %s\n" msg;
      2
  | Ix.Codec.Corrupt msg ->
      Printf.eprintf "faerie: corrupt index: %s\n" msg;
      2
  | Ix.Codec.Truncated { at; len } ->
      Printf.eprintf
        "faerie: truncated index (consistent up to byte %d of %d; torn \
         write?)\n"
        at len;
      2
  | Faerie_util.Wal.Corrupt msg ->
      Printf.eprintf "faerie: corrupt wal: %s\n" msg;
      2
  | Faerie_util.Wal.Truncated { at; len } ->
      Printf.eprintf
        "faerie: truncated wal (whole records up to byte %d of %d)\n" at len;
      2

(* ---- shared arguments ---- *)

let sim_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Sim.of_spec s) in
  let print ppf sim = Format.fprintf ppf "%s" (Sim.to_string sim) in
  Arg.conv (parse, print)

let sim_arg =
  let doc =
    "Similarity function and threshold, e.g. ed=2, jac=0.8, eds=0.9."
  in
  Arg.(value & opt sim_conv (Sim.Edit_distance 2) & info [ "s"; "sim" ] ~docv:"FUNC=THRESH" ~doc)

let q_arg =
  let doc = "Gram length for edit distance / edit similarity." in
  Arg.(value & opt int 2 & info [ "q" ] ~docv:"Q" ~doc)

let dict_arg =
  let doc = "Dictionary file: one entity per line." in
  Arg.(required & opt (some file) None & info [ "d"; "dict" ] ~docv:"FILE" ~doc)

let dict_opt_arg =
  let doc = "Dictionary file: one entity per line." in
  Arg.(value & opt (some file) None & info [ "d"; "dict" ] ~docv:"FILE" ~doc)

let index_opt_arg =
  let doc = "Prebuilt binary index (see the 'index' subcommand)." in
  Arg.(value & opt (some file) None & info [ "x"; "index" ] ~docv:"FILE" ~doc)

(* Build a problem from either a dictionary file or a saved index. *)
let problem_of_source sim q dict_file index_file =
  match (dict_file, index_file) with
  | _, Some path ->
      let _, index = Ix.Codec.load path in
      Problem.of_index ~sim index
  | Some path, None -> Problem.create ~sim ~q (read_lines path)
  | None, None ->
      prerr_endline "faerie: either --dict or --index is required";
      exit 2

(* ---- extract ---- *)

let pruning_conv =
  Arg.enum
    [ ("none", Types.No_prune); ("lazy", Types.Lazy_count);
      ("bucket", Types.Bucket_count); ("binary", Types.Binary_window) ]

let verifier_conv =
  Arg.enum
    [ ("auto", Faerie_sim.Verify.Auto); ("myers", Faerie_sim.Verify.Myers);
      ("banded", Faerie_sim.Verify.Banded) ]

let extract_cmd =
  let docs_arg =
    let doc = "Document files (omit to read one document from stdin)." in
    Arg.(value & pos_all file [] & info [] ~docv:"DOC" ~doc)
  in
  let pruning_arg =
    let doc = "Pruning level: none, lazy, bucket or binary (full Faerie)." in
    Arg.(value & opt pruning_conv Types.Binary_window & info [ "pruning" ] ~doc)
  in
  let verifier_arg =
    let doc =
      "Edit-distance verification engine: auto (bit-parallel with banded \
       fallback), myers or banded."
    in
    Arg.(
      value & opt verifier_conv Faerie_sim.Verify.Auto
      & info [ "verifier" ] ~docv:"ENGINE" ~doc)
  in
  let show_stats_arg =
    let doc = "Print filtering statistics to stderr." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let top_arg =
    let doc = "Report only the K best matches per document." in
    Arg.(value & opt (some int) None & info [ "top" ] ~docv:"K" ~doc)
  in
  let select_arg =
    let doc =
      "Resolve overlaps: report a maximum-score set of non-overlapping spans."
    in
    Arg.(value & flag & info [ "select" ] ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-document wall-clock budget in milliseconds. A document that \
       exceeds it yields the partial matches found so far, flagged degraded \
       on stderr."
    in
    Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let max_doc_bytes_arg =
    let doc =
      "Documents larger than this many bytes are processed with \
       bounded-memory chunked extraction (results complete, flagged \
       degraded on stderr)."
    in
    Arg.(
      value & opt (some int) None & info [ "max-doc-bytes" ] ~docv:"BYTES" ~doc)
  in
  let keep_going_arg =
    let doc =
      "Keep processing remaining documents after a document fails; the exit \
       status is non-zero only if every document failed."
    in
    Arg.(value & flag & info [ "k"; "keep-going" ] ~doc)
  in
  let metrics_arg =
    let doc =
      "Write a JSON-lines snapshot of the metrics registry after the run, to \
       $(docv) ('-' or no value: stderr)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let trace_arg =
    let doc =
      "Record trace spans during the run and write them as JSON lines to \
       $(docv) ('-' or no value: stderr)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_format_arg =
    let doc =
      "Format for the --metrics snapshot: jsonl (JSON lines) or prom \
       (Prometheus text exposition)."
    in
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("prom", `Prom) ]) `Jsonl
      & info [ "metrics-format" ] ~docv:"FMT" ~doc)
  in
  let explain_arg =
    let doc =
      "Audit the filter cascade: with no value (or '-') print a human \
       waterfall report to stderr after the run; with $(docv), write the \
       JSONL event dump there instead."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "explain" ] ~docv:"FILE" ~doc)
  in
  let run sim q dict_file index_file doc_files pruning verifier show_stats top
      select timeout_ms max_doc_bytes keep_going metrics metrics_format trace
      explain =
    guard @@ fun () ->
    if trace <> None then Faerie_obs.Trace.enable ();
    let problem = problem_of_source sim q dict_file index_file in
    let dict = Problem.dictionary problem in
    let extractor = Extractor.of_problem problem in
    (* One sink audits the whole run; per-document [Doc] events delimit
       documents in the JSONL dump. *)
    let sink = match explain with None -> None | Some _ -> Some (Explain.create ()) in
    let budget = { Budget.spec_unlimited with timeout_ms; max_bytes = max_doc_bytes } in
    let n_docs = ref 0 and n_failed = ref 0 in
    (* Best-first ordering used by --top (same as Topk.top_k): better score
       first, ties toward the earlier, shorter, lower-id match. *)
    let best_first (a : Types.char_match) (b : Types.char_match) =
      let c = Faerie_sim.Verify.Score.compare a.Types.c_score b.Types.c_score in
      if c <> 0 then c
      else
        compare
          (a.Types.c_start, a.Types.c_len, a.Types.c_entity)
          (b.Types.c_start, b.Types.c_len, b.Types.c_entity)
    in
    let positional (a : Types.char_match) (b : Types.char_match) =
      compare
        (a.Types.c_start, a.Types.c_len, a.Types.c_entity)
        (b.Types.c_start, b.Types.c_len, b.Types.c_entity)
    in
    let take k l =
      List.filteri (fun i _ -> i < k) l
    in
    let print_matches name text ms =
      let normalized = Faerie_tokenize.Tokenizer.normalize text in
      List.iter
        (fun (m : Types.char_match) ->
          let e = Ix.Dictionary.entity dict m.Types.c_entity in
          Printf.printf "%s\t%d\t%d\t%s\t%s\t%s\n" name m.Types.c_start
            (m.Types.c_start + m.Types.c_len)
            (Format.asprintf "%a" Faerie_sim.Verify.Score.pp m.Types.c_score)
            e.Ix.Entity.raw
            (String.sub normalized m.Types.c_start m.Types.c_len))
        (List.sort positional ms)
    in
    let char_match_of_result (r : Extractor.result) =
      {
        Types.c_entity = r.Extractor.entity_id;
        c_start = r.Extractor.start_char;
        c_len = r.Extractor.len_chars;
        c_score = r.Extractor.score;
      }
    in
    (* Returns [true] when processing may continue with the next document. *)
    let process idx name text =
      incr n_docs;
      let opts =
        {
          Extractor.default_opts with
          pruning;
          verifier;
          budget;
          doc_id = idx;
          explain = sink;
        }
      in
      let report = Extractor.run ~opts extractor (`Text text) in
      match report.Extractor.outcome with
      | Outcome.Failed err ->
          incr n_failed;
          Printf.eprintf "faerie: %s: %s\n%!" name
            (Outcome.error_to_string err);
          keep_going
      | Outcome.Ok rs | Outcome.Degraded (rs, _) as outcome ->
          (match outcome with
          | Outcome.Degraded (_, why) ->
              Printf.eprintf "faerie: %s: %s\n%!" name
                (Outcome.degradation_to_string why)
          | _ -> ());
          let ms = List.map char_match_of_result rs in
          let ms = match top with Some k -> take k (List.sort best_first ms) | None -> ms in
          let ms = if select then Faerie_core.Span_select.select ms else ms in
          print_matches name text ms;
          if show_stats then
            Format.eprintf "%s: %a@." name Types.pp_stats
              report.Extractor.stats;
          true
    in
    (match doc_files with
    | [] -> ignore (process 0 "<stdin>" (read_channel stdin))
    | files ->
        let rec loop idx = function
          | [] -> ()
          | f :: rest ->
              if process idx f (read_file f) then loop (idx + 1) rest
        in
        loop 0 files);
    (match (explain, sink) with
    | Some dest, Some s ->
        let name_of id = (Ix.Dictionary.entity dict id).Ix.Entity.raw in
        if dest = "-" then output_string stderr (Explain.render ~name_of s)
        else write_sink dest (Explain.to_jsonl s)
    | _ -> ());
    (match metrics with
    | None -> ()
    | Some dest ->
        let content =
          match metrics_format with
          | `Jsonl -> Faerie_obs.Metrics.to_jsonl ()
          | `Prom -> Faerie_obs.Metrics.to_prometheus ()
        in
        write_sink dest content);
    (match trace with
    | None -> ()
    | Some dest ->
        write_sink dest (Faerie_obs.Trace.to_jsonl (Faerie_obs.Trace.drain ())));
    if !n_failed = 0 then 0
    else if keep_going && !n_failed < !n_docs then 0
    else 1
  in
  let doc = "Extract approximate entity matches from documents." in
  Cmd.v
    (Cmd.info "extract" ~doc)
    Term.(
      const run $ sim_arg $ q_arg $ dict_opt_arg $ index_opt_arg $ docs_arg
      $ pruning_arg $ verifier_arg $ show_stats_arg $ top_arg $ select_arg
      $ timeout_arg $ max_doc_bytes_arg $ keep_going_arg $ metrics_arg
      $ metrics_format_arg $ trace_arg $ explain_arg)

(* ---- explain ---- *)

let explain_cmd =
  let dict_pos =
    let doc = "Dictionary file: one entity per line." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DICT" ~doc)
  in
  let doc_pos =
    let doc = "Document file to audit." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DOC" ~doc)
  in
  let pruning_arg =
    let doc = "Pruning level: none, lazy, bucket or binary (full Faerie)." in
    Arg.(value & opt pruning_conv Types.Binary_window & info [ "pruning" ] ~doc)
  in
  let jsonl_arg =
    let doc =
      "Dump the raw event log as JSON lines instead of the waterfall report, \
       to $(docv) ('-' or no value: stdout)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "jsonl" ] ~docv:"FILE" ~doc)
  in
  let top_arg =
    let doc = "Most-expensive entities listed in the waterfall report." in
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"K" ~doc)
  in
  let run sim q pruning dict_file doc_file jsonl top =
    guard @@ fun () ->
    let problem = Problem.create ~sim ~q (read_lines dict_file) in
    let extractor = Extractor.of_problem problem in
    let sink = Explain.create () in
    let opts = { Extractor.default_opts with pruning; explain = Some sink } in
    let report = Extractor.run ~opts extractor (`Text (read_file doc_file)) in
    (match report.Extractor.outcome with
    | Outcome.Failed err ->
        Printf.eprintf "faerie: %s\n" (Outcome.error_to_string err)
    | Outcome.Degraded (_, why) ->
        Printf.eprintf "faerie: %s\n" (Outcome.degradation_to_string why)
    | Outcome.Ok _ -> ());
    let dict = Problem.dictionary problem in
    let name_of id = (Ix.Dictionary.entity dict id).Ix.Entity.raw in
    (match jsonl with
    | Some "-" -> print_string (Explain.to_jsonl sink)
    | Some path -> write_sink path (Explain.to_jsonl sink)
    | None -> print_string (Explain.render ~top ~name_of sink));
    match report.Extractor.outcome with Outcome.Failed _ -> 1 | _ -> 0
  in
  let doc =
    "Audit the filter cascade on one document: per-filter selectivity \
     waterfall, prune reasons, verification outcomes."
  in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(
      const run $ sim_arg $ q_arg $ pruning_arg $ dict_pos $ doc_pos
      $ jsonl_arg $ top_arg)

(* ---- flame ---- *)

let flame_cmd =
  let dict_pos =
    let doc = "Dictionary file: one entity per line." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DICT" ~doc)
  in
  let doc_pos =
    let doc = "Document file to profile." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DOC" ~doc)
  in
  let pruning_arg =
    let doc = "Pruning level: none, lazy, bucket or binary (full Faerie)." in
    Arg.(value & opt pruning_conv Types.Binary_window & info [ "pruning" ] ~doc)
  in
  let folded_arg =
    let doc =
      "Write the folded-stack profile ('stack;stack SELF_NS' lines, \
       consumable by flamegraph.pl or speedscope) to $(docv) ('-': stderr)."
    in
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE" ~doc)
  in
  let top_arg =
    let doc = "Rows in the self-time table printed to stdout." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)
  in
  let run sim q pruning dict_file doc_file folded top =
    guard @@ fun () ->
    let module Trace = Faerie_obs.Trace in
    let module Prof = Faerie_obs.Prof in
    Trace.enable ();
    Prof.enable ();
    let problem = Problem.create ~sim ~q (read_lines dict_file) in
    let extractor = Extractor.of_problem problem in
    ignore (Trace.drain ());
    let opts = { Extractor.default_opts with pruning } in
    let report = Extractor.run ~opts extractor (`Text (read_file doc_file)) in
    (match report.Extractor.outcome with
    | Outcome.Failed err ->
        Printf.eprintf "faerie: %s\n" (Outcome.error_to_string err)
    | Outcome.Degraded (_, why) ->
        Printf.eprintf "faerie: %s\n" (Outcome.degradation_to_string why)
    | Outcome.Ok _ -> ());
    let frames = Prof.flame_of_spans (Trace.drain ()) in
    print_string (Prof.render_top ~top frames);
    (match folded with
    | None -> ()
    | Some dest -> write_sink dest (Prof.to_folded frames));
    match report.Extractor.outcome with Outcome.Failed _ -> 1 | _ -> 0
  in
  let doc =
    "Profile one extraction: aggregate its trace spans into a flame profile \
     (top self-time table on stdout, folded stacks via --folded)."
  in
  Cmd.v
    (Cmd.info "flame" ~doc)
    Term.(
      const run $ sim_arg $ q_arg $ pruning_arg $ dict_pos $ doc_pos
      $ folded_arg $ top_arg)

(* ---- regress ---- *)

let regress_cmd =
  let old_pos =
    let doc = "Baseline bench snapshot (BENCH_faerie.json)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc)
  in
  let new_pos =
    let doc = "Current bench snapshot to compare against the baseline." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc)
  in
  let max_ratio_arg =
    let doc =
      "Maximum tolerated wall-time ratio current/baseline per exhibit."
    in
    Arg.(value & opt float 1.5 & info [ "max-ratio" ] ~docv:"R" ~doc)
  in
  let max_alloc_ratio_arg =
    let doc =
      "Also gate allocation: maximum tolerated minor-words ratio \
       current/baseline per exhibit (requires gc blocks in the baseline's \
       exhibits; v1 baselines are exempt)."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "max-alloc-ratio" ] ~docv:"R" ~doc)
  in
  let run old_file new_file max_ratio max_alloc_ratio =
    guard @@ fun () ->
    let load path =
      match Perf.bench_of_json (read_file path) with
      | Ok b -> b
      | Error e ->
          Printf.eprintf "faerie: %s: %s\n" path e;
          exit 2
    in
    let baseline = load old_file in
    let current = load new_file in
    let c =
      Perf.compare_benches ~max_ratio ?max_alloc_ratio ~baseline ~current ()
    in
    print_string (Perf.render_comparison ~max_ratio ?max_alloc_ratio c);
    if c.Perf.any_regressed then 1 else 0
  in
  let doc =
    "Compare two bench --json snapshots; exit 1 when any exhibit's wall time \
     regressed beyond --max-ratio or its allocation beyond --max-alloc-ratio \
     (exit 2 on malformed snapshots)."
  in
  Cmd.v
    (Cmd.info "regress" ~doc)
    Term.(const run $ old_pos $ new_pos $ max_ratio_arg $ max_alloc_ratio_arg)

(* ---- stats ---- *)

let stats_cmd =
  let run sim q dict_file =
    guard @@ fun () ->
    let entities = read_lines dict_file in
    let problem = Problem.create ~sim ~q entities in
    let dict = Problem.dictionary problem in
    let index = Problem.index problem in
    let n = Ix.Dictionary.size dict in
    Printf.printf "entities:        %d\n" n;
    Printf.printf "function:        %s (q=%d)\n" (Sim.to_string sim) q;
    Printf.printf "distinct tokens: %d\n"
      (Faerie_tokenize.Interner.size (Ix.Dictionary.interner dict));
    Printf.printf "postings:        %d\n" (Ix.Inverted_index.n_postings index);
    Printf.printf "non-empty lists: %d\n" (Ix.Inverted_index.n_lists index);
    Printf.printf "index size:      %s\n"
      (Bytesize.to_string (Ix.Inverted_index.heap_bytes index));
    Printf.printf "fallback path:   %d entities\n"
      (List.length (Problem.fallback_entities problem));
    Printf.printf "substring token range: [%d, %d]\n"
      (Problem.global_lower problem) (Problem.global_upper problem);
    0
  in
  let doc = "Report dictionary and inverted-index statistics." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ sim_arg $ q_arg $ dict_arg)

(* ---- index ---- *)

let index_cmd =
  let out_arg =
    let doc = "Output path for the binary index." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run sim q dict_file out =
    guard @@ fun () ->
    let problem = Problem.create ~sim ~q (read_lines dict_file) in
    Ix.Codec.save (Problem.dictionary problem) (Problem.index problem) out;
    let bytes = (Unix.stat out).Unix.st_size in
    Printf.printf "wrote %s (%s, %d entities, %d postings)\n" out
      (Bytesize.to_string bytes)
      (Ix.Dictionary.size (Problem.dictionary problem))
      (Ix.Inverted_index.n_postings (Problem.index problem));
    0
  in
  let doc =
    "Build a dictionary index and save it for later 'extract --index' runs."
  in
  Cmd.v (Cmd.info "index" ~doc) Term.(const run $ sim_arg $ q_arg $ dict_arg $ out_arg)

(* ---- serve ---- *)

module Supervisor = Faerie_core.Supervisor
module Cluster = Faerie_core.Cluster
module Serve_proto = Faerie_core.Serve_proto
module Wal = Faerie_util.Wal
module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace
module Prof = Faerie_obs.Prof
module Sampling = Faerie_obs.Sampling
module Slowlog = Faerie_obs.Slowlog
module Slo = Faerie_obs.Slo
module Build_info = Faerie_obs.Build_info

(* OCaml channels surface EINTR/EPIPE as [Sys_error] with strerror text;
   match on the message to retry interrupted reads (a SIGHUP reload must
   not end the session) and to turn a vanished client into clean
   shutdown. *)
let sys_error_mentions msg needle =
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

let is_eintr msg = sys_error_mentions msg "Interrupted"

let is_epipe msg = sys_error_mentions msg "Broken pipe"

let m_index_reloads =
  Metrics.counter ~help:"successful hot index reloads in serve mode"
    "index_reloads"

let g_index_generation =
  Metrics.gauge ~help:"current index snapshot generation in serve mode"
    ~agg:`Max "index_generation"

(* --inject SEED:site=rate[,site=rate...] — arm the deterministic fault
   registry for the whole serve session (testing hook; the serve smoke CI
   job and the quarantine tests drive it). *)
let inject_conv =
  let parse s =
    let fail () = Error (`Msg "expected SEED:site=rate[,site=rate...]") in
    match String.index_opt s ':' with
    | None -> fail ()
    | Some i -> (
        let seed_s = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt seed_s with
        | None -> fail ()
        | Some seed ->
            let rates =
              List.fold_left
                (fun acc part ->
                  match (acc, String.split_on_char '=' part) with
                  | Some acc, [ site; rate ] -> (
                      match float_of_string_opt rate with
                      | Some r -> Some ((site, r) :: acc)
                      | None -> None)
                  | _ -> None)
                (Some []) (String.split_on_char ',' rest)
            in
            (match rates with
            | Some rates ->
                Ok { Faerie_util.Fault.seed; rates = List.rev rates }
            | None -> fail ()))
  in
  let print ppf (c : Faerie_util.Fault.config) =
    Format.fprintf ppf "%d:%s" c.Faerie_util.Fault.seed
      (String.concat ","
         (List.map
            (fun (s, r) -> Printf.sprintf "%s=%g" s r)
            c.Faerie_util.Fault.rates))
  in
  Arg.conv (parse, print)

let serve_cmd =
  let pruning_arg =
    let doc = "Pruning level: none, lazy, bucket or binary (full Faerie)." in
    Arg.(value & opt pruning_conv Types.Binary_window & info [ "pruning" ] ~doc)
  in
  let domains_arg =
    let doc = "Worker domains in the supervised pool." in
    Arg.(
      value
      & opt int Supervisor.default_config.Supervisor.domains
      & info [ "domains" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc = "Max re-attempts per document after a transient failure." in
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc =
      "Base retry backoff in milliseconds (exponential with full jitter); 0 \
       disables backoff sleeps."
    in
    Arg.(value & opt int 10 & info [ "backoff-ms" ] ~docv:"MS" ~doc)
  in
  let backoff_max_arg =
    let doc = "Cap on the retry backoff window in milliseconds." in
    Arg.(value & opt int 1000 & info [ "backoff-max-ms" ] ~docv:"MS" ~doc)
  in
  let quarantine_arg =
    let doc =
      "Dead-letter NDJSON file: documents that fail every retry are appended \
       here as self-contained repros (replayable with fuzz.exe --replay)."
    in
    Arg.(
      value & opt (some string) None & info [ "quarantine" ] ~docv:"FILE" ~doc)
  in
  let shed_arg =
    let doc =
      "Enable load shedding: refuse documents when the admission queue is \
       full, and refuse queued documents whose deadline already expired, \
       instead of blocking / running them."
    in
    Arg.(value & flag & info [ "shed" ] ~doc)
  in
  let timeout_arg =
    let doc =
      "Default per-document wall-clock budget in milliseconds (a request's \
       own timeout_ms field overrides it)."
    in
    Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let max_doc_bytes_arg =
    let doc = "Chunked-extraction threshold, as in extract." in
    Arg.(
      value & opt (some int) None & info [ "max-doc-bytes" ] ~docv:"BYTES" ~doc)
  in
  let queue_arg =
    let doc = "Admission queue capacity." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let inject_arg =
    let doc =
      "Arm deterministic fault injection: SEED:site=rate[,site=rate...] \
       (sites: tokenize, heap_merge, verify, codec_io, supervisor_worker, \
       codec_rename, serve_decode, shard_frame, shard_stats, wal_append, \
       wal_replay, compact_save, compact_commit). Testing hook."
    in
    Arg.(
      value & opt (some inject_conv) None & info [ "inject" ] ~docv:"SPEC" ~doc)
  in
  let shards_arg =
    let doc =
      "Run as a sharded cluster: partition the dictionary into N contiguous \
       entity-id ranges, fork one supervised shard process per range, fan \
       each document to all shards and merge the match sets. 0 (default) \
       serves from a single in-process pool."
    in
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let shard_timeout_arg =
    let doc =
      "Per-shard response deadline in milliseconds (cluster mode): a shard \
       that misses it is killed and restarted, and the document retried. 0 \
       disables the deadline."
    in
    Arg.(
      value & opt int 0 & info [ "shard-timeout-ms" ] ~docv:"MS" ~doc)
  in
  let metrics_format_arg =
    let doc =
      "Rendering of metrics snapshots in {\"op\":\"stats\"} admin responses \
       and --stats-interval-s ticks: jsonl embeds a structured \"metrics\" \
       object, prometheus embeds the Prometheus text exposition as a \
       \"prometheus\" string."
    in
    Arg.(
      value
      & opt
          (Arg.enum
             [
               ("jsonl", `Jsonl);
               ("prometheus", `Prometheus);
               ("prom", `Prometheus);
             ])
          `Jsonl
      & info [ "metrics-format" ] ~docv:"FMT" ~doc)
  in
  let stats_interval_arg =
    let doc =
      "Emit a metrics snapshot line to stderr every N seconds (cluster mode \
       first pulls and merges every shard's registry). 0 (default) disables \
       the ticker."
    in
    Arg.(value & opt int 0 & info [ "stats-interval-s" ] ~docv:"N" ~doc)
  in
  let trace_sample_arg =
    let doc =
      "Head-sample a fraction of requests for tracing: the decision is \
       deterministic in the arrival ordinal (a 4-shard cluster samples \
       exactly the ordinals a 1-shard run would), sampled requests carry a \
       trace id (ordinal+1) into span buffers, slowlog records and metric \
       exemplars. 0 (default) disables sampling."
    in
    Arg.(
      value & opt float 0. & info [ "trace-sample-rate" ] ~docv:"RATE" ~doc)
  in
  let trace_seed_arg =
    let doc =
      "Seed for the per-ordinal sampling hash: changing it selects a \
       different (still deterministic) subset of ordinals at the same \
       --trace-sample-rate."
    in
    Arg.(value & opt int 0 & info [ "trace-seed" ] ~docv:"SEED" ~doc)
  in
  let slow_ms_arg =
    let doc =
      "Slow-query threshold in milliseconds: requests at or over it are \
       written through to the --slowlog file immediately as self-contained \
       replayable NDJSON repros (fuzz.exe --replay). Omitted, the slowlog \
       (if armed by --slowlog) keeps only the top-K ring, flushed at \
       shutdown."
    in
    Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS" ~doc)
  in
  let slowlog_file_arg =
    let doc =
      "Slow-query log NDJSON file (O_APPEND, one write per record). Arms \
       slow-query capture even without --slow-ms (ring-only, flushed at \
       shutdown)."
    in
    Arg.(
      value & opt (some string) None & info [ "slowlog" ] ~docv:"FILE" ~doc)
  in
  let slowlog_k_arg =
    let doc = "Capacity of the K-slowest capture ring." in
    Arg.(value & opt int 8 & info [ "slowlog-k" ] ~docv:"K" ~doc)
  in
  let slo_arg =
    let doc =
      "Service-level objectives, e.g. p99=50ms,avail=99.9: each stats tick \
       assesses attainment and error-budget burn rate over the window since \
       the previous tick; a burn over 1.0 degrades {\"op\":\"health\"} \
       status to slo_burn."
    in
    Arg.(value & opt (some string) None & info [ "slo" ] ~docv:"SPEC" ~doc)
  in
  let wal_arg =
    let doc =
      "Write-ahead log for online dictionary mutations: every \
       {\"op\":\"dict_add\"} / {\"op\":\"dict_remove\"} is fsynced here \
       before it is applied, and the log is replayed at startup and on \
       every reload — a crash loses no accepted mutation. \
       {\"op\":\"compact\"} folds the log into the --index snapshot and \
       truncates it."
    in
    Arg.(value & opt (some string) None & info [ "wal" ] ~docv:"FILE" ~doc)
  in
  let run sim q dict_file index_file pruning domains retries backoff_ms
      backoff_max_ms quarantine shed timeout_ms max_doc_bytes queue inject
      shards shard_timeout_ms metrics_format stats_interval_s
      trace_sample_rate trace_seed slow_ms slowlog_file slowlog_k slo_spec
      wal_file =
    guard @@ fun () ->
    (match inject with
    | Some cfg -> Faerie_util.Fault.configure cfg
    | None -> ());
    (* ---- request diagnostics (DESIGN.md §4c) ----
       Armed before any fork so shard processes inherit the memoized git
       revision and the sampling/selective-trace flags. Disabled
       facilities cost one atomic load per request. *)
    let t_start = Unix.gettimeofday () in
    Build_info.note ();
    let slo_objective =
      match slo_spec with
      | None -> Slo.none
      | Some spec -> (
          match Slo.parse spec with
          | Ok o -> o
          | Error msg ->
              Printf.eprintf "faerie: bad --slo spec: %s\n" msg;
              exit 2)
    in
    let slo_tracker = Slo.tracker () in
    let last_slo : Slo.assessment option ref = ref None in
    let assess_slo snap =
      if not (Slo.is_empty slo_objective) then
        last_slo := Some (Slo.assess slo_tracker slo_objective snap)
    in
    let slo_json () = Option.map Slo.to_json !last_slo in
    let health_status base =
      match !last_slo with
      | Some a when a.Slo.burning -> "slo_burn"
      | _ -> base
    in
    if trace_sample_rate > 0. then begin
      Sampling.configure ~seed:trace_seed trace_sample_rate;
      (* Selective recording: only spans tagged with a sampled request's
         trace id are kept, so the 99% unsampled traffic of a 1% rate
         leaves nothing in the span buffers. *)
      Trace.enable ();
      Trace.set_selective true
    end;
    let slowlog_on = slow_ms <> None || slowlog_file <> None in
    if slowlog_on then
      Slowlog.configure ~capacity:slowlog_k ?slow_ms ?path:slowlog_file ();
    (* Everything a slowlog record needs beyond the per-request outcome:
       the record is a self-contained repro in the Quarantine tradition,
       so it carries the full spec the server is running. *)
    let slowrec ~doc_id ~id ~trace ~gen ~wall_ns ~stages_ns ~budget ~text out =
      {
        Serve_proto.Slowrec.doc_id;
        id;
        trace;
        gen;
        wall_ms = wall_ns /. 1e6;
        outcome = Outcome.class_name (Outcome.classify out);
        stages_ms = List.map (fun (n, v) -> (n, v /. 1e6)) stages_ns;
        sim;
        q;
        pruning;
        budget;
        fault = Faerie_util.Fault.current ();
        text;
      }
    in
    let capture_slowrec ~wall_ns rec_ =
      if Slowlog.should_capture ~wall_ns then
        Slowlog.capture ~wall_ns (Serve_proto.Slowrec.to_json rec_)
    in
    let slowlog_response () =
      Serve_proto.slowlog_response_json ~total:(Slowlog.total ())
        (List.map snd (Slowlog.drain ()))
    in
    (* A client that disconnects mid-response must look like EOF/EPIPE on
       the stream, not kill the server with SIGPIPE. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    (* Hot reload triggers: SIGHUP (flag checked between requests) or a
       changed mtime on the --index snapshot. A failed reload (torn write,
       corruption, missing file) keeps the current generation serving. *)
    let sighup = Atomic.make false in
    (try
       ignore
         (Sys.signal Sys.sighup
            (Sys.Signal_handle (fun _ -> Atomic.set sighup true)))
     with Invalid_argument _ | Sys_error _ -> ());
    let index_mtime =
      match index_file with
      | Some p -> (
          try Some (ref (Unix.stat p).Unix.st_mtime)
          with Unix.Unix_error _ -> None)
      | None -> None
    in
    let mtime_changed () =
      match (index_file, index_mtime) with
      | Some p, Some mt -> (
          match
            (try Some (Unix.stat p).Unix.st_mtime with Unix.Unix_error _ -> None)
          with
          | Some m when m <> !mt ->
              mt := m;
              true
          | _ -> false)
      | _ -> false
    in
    (* EINTR/EPIPE-hardened NDJSON endpoints. [client_gone] flips once the
       peer closed stdout; from then on responses are dropped and the
       request loop winds down cleanly (summary still reaches stderr). *)
    let client_gone = Atomic.make false in
    let out_lock = Mutex.create () in
    let rec flush_retry () =
      try flush stdout with Sys_error m when is_eintr m -> flush_retry ()
    in
    let print_line s =
      Mutex.lock out_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock out_lock)
        (fun () ->
          if not (Atomic.get client_gone) then
            try
              print_string s;
              print_newline ();
              flush_retry ()
            with
            | Sys_error m when is_epipe m -> Atomic.set client_gone true
            | Sys_error m when is_eintr m -> (
                try flush_retry ()
                with Sys_error m when is_epipe m ->
                  Atomic.set client_gone true))
    in
    (* --stats-interval-s ticker. SIGALRM only sets a flag; the snapshot
       is emitted from the request loop (on the interrupted read, or
       between requests) because cluster mode does frame round-trips to
       pull shard registries — nothing a signal handler may do. No timer
       domain either: the cluster coordinator must stay the sole live
       domain of its process or later shard forks would be undefined. *)
    let stats_tick = Atomic.make false in
    let tick_hook = ref (fun () -> ()) in
    let maybe_tick () =
      if Atomic.exchange stats_tick false then !tick_hook ()
    in
    if stats_interval_s > 0 then begin
      (try
         ignore
           (Sys.signal Sys.sigalrm
              (Sys.Signal_handle (fun _ -> Atomic.set stats_tick true)))
       with Invalid_argument _ | Sys_error _ -> ());
      let s = float_of_int stats_interval_s in
      try
        ignore
          (Unix.setitimer Unix.ITIMER_REAL
             { Unix.it_interval = s; it_value = s })
      with Unix.Unix_error _ -> ()
    end;
    (* Requests are read from the raw fd, not a buffered channel: channel
       reads transparently restart on EINTR, which would sit on a pending
       tick until the next request arrives. Parking in select instead
       lets SIGALRM surface ticks while the server is idle. *)
    let lines_q = Queue.create () in
    let acc = Buffer.create 4096 in
    let rbuf = Bytes.create 65536 in
    let eof = ref false in
    let rec read_request_line () =
      if not (Queue.is_empty lines_q) then Some (Queue.take lines_q)
      else if !eof then None
      else begin
        maybe_tick ();
        match Unix.select [ Unix.stdin ] [] [] (-1.) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            maybe_tick ();
            read_request_line ()
        | _ -> (
            match Unix.read Unix.stdin rbuf 0 (Bytes.length rbuf) with
            | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                maybe_tick ();
                read_request_line ()
            | 0 ->
                eof := true;
                if Buffer.length acc > 0 then begin
                  let l = Buffer.contents acc in
                  Buffer.clear acc;
                  Some l
                end
                else None
            | n ->
                for i = 0 to n - 1 do
                  match Bytes.get rbuf i with
                  | '\n' ->
                      Queue.add (Buffer.contents acc) lines_q;
                      Buffer.clear acc
                  | c -> Buffer.add_char acc c
                done;
                read_request_line ())
      end
    in
    let admin_error_line e =
      let module J = Faerie_util.Json in
      J.to_string
        (J.Obj
           [
             ("v", J.Num (float_of_int Serve_proto.version));
             ("outcome", J.Str "error");
             ("error", J.Str (Serve_proto.parse_error_to_string e));
           ])
    in
    let pool_retry = { Supervisor.retries; backoff_ms; backoff_max_ms; seed = 0 } in
    (* Startup WAL recovery, shared by both modes: replay the whole-record
       prefix through [apply], repair a torn tail in place (expected crash
       debris), and return the handle for appends. A Corrupt log — bad
       checksum, not a torn tail — aborts startup via [guard]: it means
       bit rot or foreign bytes, and silently dropping records would lose
       acknowledged mutations. *)
    let wal_recover apply =
      match wal_file with
      | None -> None
      | Some path ->
          let n, tail = Wal.replay path apply in
          (match tail with
          | Wal.Clean -> ()
          | Wal.Torn { at; len } ->
              Printf.eprintf
                "faerie: serve: wal torn tail repaired (whole records up to \
                 byte %d of %d)\n\
                 %!"
                at len;
              Wal.repair path tail);
          if n > 0 then
            Printf.eprintf "faerie: serve: replayed %d wal mutation(s)\n%!" n;
          Some (Wal.openfile path)
    in
    let wal_replay_into path apply =
      let n, _tail = Wal.replay path apply in
      if n > 0 then
        Printf.eprintf "faerie: serve: re-applied %d wal mutation(s)\n%!" n
    in
    let serve_single () =
      let load_problem () = problem_of_source sim q dict_file index_file in
      (* The Delta overlay wraps the frozen index so dict_add/dict_remove
         admin ops mutate the serving dictionary online. Delta.view is
         copy-on-write, so publishing a new extractor never races the
         in-flight extractions still holding the previous one. *)
      let delta_ref = ref (Ix.Delta.create (Problem.index (load_problem ()))) in
      let apply_op d = function
        | Wal.Add raw -> ignore (Ix.Delta.add d raw : Ix.Delta.add_result)
        | Wal.Remove raw ->
            ignore (Ix.Delta.remove d raw : Ix.Delta.remove_result)
      in
      let wal = wal_recover (fun op -> apply_op !delta_ref op) in
      let ex_of_delta d =
        Extractor.of_problem (Problem.of_index ~sim (Ix.Delta.view d))
      in
      let ex_ref = Atomic.make (ex_of_delta !delta_ref) in
      let gen = Atomic.make 0 in
      let last_compact = ref (Unix.gettimeofday ()) in
      Metrics.set g_index_generation 0.;
      let reloads = ref 0 in
      let reload () =
        match
          let p = load_problem () in
          let d = Ix.Delta.create (Problem.index p) in
          (* The source snapshot predates the WAL's pending mutations;
             re-apply them so a reload never rolls back accepted writes.
             Also the recovery path after a crash between compaction's
             snapshot save and wal truncate: replay against the already-
             folded snapshot is a pure no-op (add -> Exists,
             remove -> Absent). *)
          (match wal with
          | Some w -> wal_replay_into (Wal.path w) (fun op -> apply_op d op)
          | None -> ());
          d
        with
        | d ->
            delta_ref := d;
            Atomic.set ex_ref (ex_of_delta d);
            let g = 1 + Atomic.fetch_and_add gen 1 in
            incr reloads;
            Metrics.incr m_index_reloads;
            Metrics.set g_index_generation (float_of_int g);
            Printf.eprintf "faerie: serve: reloaded index (generation %d)\n%!" g
        | exception e ->
            let msg =
              match e with
              | Ix.Codec.Corrupt m -> "corrupt index: " ^ m
              | Ix.Codec.Truncated { at; len } ->
                  Printf.sprintf "truncated index (byte %d of %d)" at len
              | Wal.Corrupt m -> "corrupt wal: " ^ m
              | Faerie_util.Fault.Injected site -> "injected fault at " ^ site
              | Sys_error m -> m
              | e -> raise e
            in
            Printf.eprintf
              "faerie: serve: reload failed, keeping generation %d: %s\n%!"
              (Atomic.get gen) msg
      in
      let maybe_reload () =
        if Atomic.exchange sighup false then reload ()
        else if mtime_changed () then reload ()
      in
      (* Durability order is the contract: WAL append (fsynced) first, and
         only then the in-memory overlay. An injected wal_append fault —
         or any append error — rejects the mutation outright, so every
         acknowledged mutation is on disk before any request can see it. *)
      let mutate op =
        let opname, wop =
          match op with
          | `Add r -> ("dict_add", Wal.Add r)
          | `Remove r -> ("dict_remove", Wal.Remove r)
        in
        match (match wal with Some w -> Wal.append w wop | None -> ()) with
        | exception Faerie_util.Fault.Injected site ->
            Serve_proto.admin_error_json ~op:opname
              (Printf.sprintf "injected fault at %s: mutation not applied"
                 site)
        | exception e ->
            Serve_proto.admin_error_json ~op:opname
              ("wal append failed: " ^ Printexc.to_string e)
        | () ->
            let d = !delta_ref in
            let applied, entity =
              match op with
              | `Add r -> (
                  match Ix.Delta.add d r with
                  | Ix.Delta.Added id -> (true, id)
                  | Ix.Delta.Exists id -> (false, id))
              | `Remove r -> (
                  match Ix.Delta.remove d r with
                  | Ix.Delta.Removed id -> (true, id)
                  | Ix.Delta.Absent -> (false, -1))
            in
            if applied then Atomic.set ex_ref (ex_of_delta d);
            Serve_proto.dict_response_json ~op:opname ~applied ~entity
              ~entities:(Ix.Delta.live_count d)
              ~gen:(Atomic.get gen)
      in
      let do_compact () =
        match index_file with
        | None ->
            Serve_proto.admin_error_json ~op:"compact"
              "compact requires --index (a durable snapshot to fold into)"
        | Some path -> (
            let d = !delta_ref in
            let folded = Ix.Delta.pending d in
            match
              Faerie_util.Fault.with_context (Atomic.get gen + 1) (fun () ->
                  (* compact_save: dies before anything durable changed. *)
                  Faerie_util.Fault.site "compact_save";
                  let p = Problem.of_index ~sim (Ix.Delta.compact d) in
                  Ix.Codec.save (Problem.dictionary p) (Problem.index p) path;
                  (* compact_commit: the folded snapshot is on disk but the
                     WAL still holds its mutations — a crash here replays
                     them idempotently against it on restart. *)
                  Faerie_util.Fault.site "compact_commit";
                  (match wal with Some w -> Wal.truncate w | None -> ());
                  p)
            with
            | exception Faerie_util.Fault.Injected site ->
                Serve_proto.admin_error_json ~op:"compact"
                  (Printf.sprintf "injected fault at %s" site)
            | exception Sys_error m ->
                Serve_proto.admin_error_json ~op:"compact" m
            | p ->
                delta_ref := Ix.Delta.create (Problem.index p);
                Atomic.set ex_ref (Extractor.of_problem p);
                let g = 1 + Atomic.fetch_and_add gen 1 in
                Metrics.set g_index_generation (float_of_int g);
                last_compact := Unix.gettimeofday ();
                (* our own save just touched --index; swallow the mtime
                   delta so the next request does not trigger a reload *)
                ignore (mtime_changed () : bool);
                Serve_proto.compact_response_json ~gen:g ~folded
                  ~entities:(Ix.Delta.live_count d))
      in
      let config =
        {
          Supervisor.domains;
          retry = pool_retry;
          queue_capacity = queue;
          quarantine;
          shed;
          shard = None;
        }
      in
      let pool = Supervisor.create ~config (fun () -> Atomic.get ex_ref) in
      tick_hook :=
        (fun () ->
          Supervisor.note_queue_depth pool;
          Prof.note_rss ();
          let snap = Metrics.snapshot () in
          assess_slo snap;
          prerr_endline
            (Serve_proto.stats_response_json ~format:metrics_format snap);
          match !last_slo with
          | Some a -> prerr_endline ("faerie: serve: " ^ Slo.render a)
          | None -> ());
      let done_lock = Mutex.create () in
      let outcomes = ref [] in
      let record out =
        Mutex.lock done_lock;
        outcomes := out :: !outcomes;
        Mutex.unlock done_lock
      in
      let ord = ref 0 in
      let continue = ref true in
      while !continue do
        match read_request_line () with
        | None -> continue := false
        | Some line ->
            maybe_reload ();
            maybe_tick ();
            if Atomic.get client_gone then continue := false
            else if String.trim line <> "" then begin
              (* Admin ops never consume a doc ordinal, so a probed server
                 keeps the exact fault schedule of an unprobed one. *)
              match Serve_proto.parse_admin line with
              | Some (Error e) -> print_line (admin_error_line e)
              | Some (Ok Serve_proto.Stats) ->
                  Supervisor.note_queue_depth pool;
                  Prof.note_rss ();
                  let snap = Metrics.snapshot () in
                  assess_slo snap;
                  print_line
                    (Serve_proto.stats_response_json ~format:metrics_format
                       snap)
              | Some (Ok Serve_proto.Health) ->
                  (* With a stats ticker armed the ticks own the SLO
                     delta windows, so health reports the cached
                     assessment — matching cluster mode, and keeping a
                     frequent liveness probe from shrinking the windows
                     to vacuous slivers. Without a ticker the probe is
                     the only assessor, so it refreshes off the local
                     registry (frame-free either way). *)
                  if stats_interval_s <= 0 then
                    assess_slo (Metrics.snapshot ());
                  print_line
                    (Serve_proto.health_response_json
                       ~uptime_s:(Unix.gettimeofday () -. t_start)
                       ~max_rss_bytes:(float_of_int (Prof.max_rss_bytes ()))
                       ?slo:(slo_json ())
                       ~status:(health_status "ok")
                       [
                         {
                           Serve_proto.h_shard = 0;
                           h_up = true;
                           h_gen = Atomic.get gen;
                           h_restarts = Supervisor.worker_restarts pool;
                           h_queue_depth = Supervisor.queue_depth pool;
                           h_delta = Ix.Delta.pending !delta_ref;
                           h_compact_age_s =
                             Some (Unix.gettimeofday () -. !last_compact);
                         };
                       ])
              | Some (Ok Serve_proto.Slowlog_dump) ->
                  print_line (slowlog_response ())
              | Some (Ok (Serve_proto.Dict_add raw)) ->
                  print_line (mutate (`Add raw))
              | Some (Ok (Serve_proto.Dict_remove raw)) ->
                  print_line (mutate (`Remove raw))
              | Some (Ok Serve_proto.Compact) -> print_line (do_compact ())
              | None -> (
                  let o = !ord in
                  incr ord;
                  match Serve_proto.parse_request ~ord:o line with
                  | Error e -> print_line (Serve_proto.error_json ~ord:o e)
                  | Ok req ->
                      let budget =
                        {
                          Budget.spec_unlimited with
                          timeout_ms =
                            (match req.Serve_proto.timeout_ms with
                            | Some _ as t -> t
                            | None -> timeout_ms);
                          max_bytes = max_doc_bytes;
                        }
                      in
                      let opts =
                        { Extractor.default_opts with pruning; budget }
                      in
                      let id = req.Serve_proto.id in
                      let tid =
                        if Sampling.decide o then Sampling.trace_id o else 0
                      in
                      let trace = if tid = 0 then None else Some (tid, 0) in
                      let text = req.Serve_proto.text in
                      ignore
                        (Supervisor.submit pool ?id ~opts ~doc_id:o ?trace
                           text ~on_done:(fun out ->
                             record out;
                             (* Runs on the worker domain that extracted,
                                so the sealed stage scratch is this
                                document's. Draining the sampled trace
                                here bounds span memory whether or not
                                the record makes the ring. *)
                             (if tid <> 0 then
                                ignore (Trace.drain_trace tid : Trace.span list));
                             (if Slowlog.armed () then
                                match Slowlog.last_doc () with
                                | Some d ->
                                    let wall_ns = d.Slowlog.wall_ns in
                                    let stages_ns =
                                      List.init Slowlog.n_stages (fun i ->
                                          ( Slowlog.stage_name i,
                                            d.Slowlog.stages_ns.(i) ))
                                    in
                                    capture_slowrec ~wall_ns
                                      (slowrec ~doc_id:o ~id ~trace:tid
                                         ~gen:(Atomic.get gen) ~wall_ns
                                         ~stages_ns ~budget ~text out)
                                | None -> ());
                             print_line
                               (Serve_proto.response_json ~ord:o ~id
                                  ~gen:(Atomic.get gen) out))))
            end
      done;
      Supervisor.shutdown pool;
      Slowlog.disarm ();
      Prof.note_rss ();
      let final = Metrics.snapshot () in
      assess_slo final;
      let summary = Outcome.summarize (Array.of_list !outcomes) in
      prerr_endline
        (Serve_proto.summary_json ~metrics:final ?slo:(slo_json ())
           ~reloads:!reloads summary);
      0
    in
    let serve_cluster () =
      let entities_of_source () =
        match (dict_file, index_file) with
        | _, Some path ->
            let dict, _ = Ix.Codec.load path in
            Array.to_list
              (Array.map
                 (fun e -> e.Ix.Entity.raw)
                 (Ix.Dictionary.entities dict))
        | Some path, None -> read_lines path
        | None, None ->
            prerr_endline "faerie: either --dict or --index is required";
            exit 2
      in
      let config =
        {
          Cluster.shards;
          pool =
            {
              Supervisor.domains;
              retry = pool_retry;
              queue_capacity = queue;
              quarantine;
              shed;
              shard = None;
            };
          retry = pool_retry;
          shard_timeout_ms =
            (if shard_timeout_ms > 0 then Some shard_timeout_ms else None);
          pruning;
          budget =
            {
              Budget.spec_unlimited with
              timeout_ms;
              max_bytes = max_doc_bytes;
            };
          snapshot_dir = None;
          slow_stages = slowlog_on;
        }
      in
      let cluster = Cluster.create ~config ~sim ~q entities_of_source in
      (* WAL replay routes each recovered mutation to its owning shard,
         exactly like a live admin op: the coordinator journals it and the
         shard applies it to its Delta overlay. *)
      let apply_op = function
        | Wal.Add raw -> ignore (Cluster.dict_add cluster raw)
        | Wal.Remove raw -> ignore (Cluster.dict_remove cluster raw)
      in
      let wal = wal_recover apply_op in
      (* Peak RSS from the last merged pull: health must stay frame-free
         (a shard stats round-trip would shift the shard_stats fault
         ordinals), so it reports the cached cluster-wide max. *)
      let merged_rss = ref 0. in
      let pull_stats () =
        Prof.note_rss ();
        let merged, per_shard = Cluster.stats cluster in
        let missing =
          List.filter_map
            (fun (sid, snap) -> if snap = None then Some sid else None)
            per_shard
        in
        merged_rss := Float.max !merged_rss
            (Metrics.gauge_value merged "max_rss_bytes");
        assess_slo merged;
        (merged, missing)
      in
      tick_hook :=
        (fun () ->
          let merged, missing = pull_stats () in
          prerr_endline
            (Serve_proto.stats_response_json ~missing ~format:metrics_format
               merged);
          match !last_slo with
          | Some a -> prerr_endline ("faerie: serve: " ^ Slo.render a)
          | None -> ());
      Metrics.set g_index_generation 0.;
      let reloads = ref 0 in
      let reload () =
        match Cluster.reload cluster with
        | Ok g ->
            incr reloads;
            Metrics.incr m_index_reloads;
            Metrics.set g_index_generation (float_of_int g);
            Printf.eprintf "faerie: serve: reloaded cluster (generation %d)\n%!"
              g;
            (* The reloaded source predates the WAL's pending mutations;
               re-route them so a reload never rolls back accepted writes
               (pure no-ops for any the source already absorbed). *)
            (match wal with
            | Some w -> (
                try wal_replay_into (Wal.path w) apply_op
                with e ->
                  Printf.eprintf
                    "faerie: serve: wal re-apply after reload failed: %s\n%!"
                    (Printexc.to_string e))
            | None -> ())
        | Error msg ->
            Printf.eprintf
              "faerie: serve: reload failed, keeping generation %d: %s\n%!"
              (Cluster.generation cluster) msg
      in
      let maybe_reload () =
        if Atomic.exchange sighup false then reload ()
        else if mtime_changed () then reload ()
      in
      (* Same durability order as single mode: fsynced WAL append first,
         only then the routed in-memory mutation. *)
      let mutate op =
        let opname, wop =
          match op with
          | `Add r -> ("dict_add", Wal.Add r)
          | `Remove r -> ("dict_remove", Wal.Remove r)
        in
        match (match wal with Some w -> Wal.append w wop | None -> ()) with
        | exception Faerie_util.Fault.Injected site ->
            Serve_proto.admin_error_json ~op:opname
              (Printf.sprintf "injected fault at %s: mutation not applied"
                 site)
        | exception e ->
            Serve_proto.admin_error_json ~op:opname
              ("wal append failed: " ^ Printexc.to_string e)
        | () ->
            let applied, entity =
              match op with
              | `Add r -> (
                  match Cluster.dict_add cluster r with
                  | `Added id -> (true, id)
                  | `Exists id -> (false, id))
              | `Remove r -> (
                  match Cluster.dict_remove cluster r with
                  | `Removed id -> (true, id)
                  | `Absent -> (false, -1))
            in
            Serve_proto.dict_response_json ~op:opname ~applied ~entity
              ~entities:(Cluster.live_count cluster)
              ~gen:(Cluster.generation cluster)
      in
      let do_compact () =
        if wal <> None && index_file = None then
          Serve_proto.admin_error_json ~op:"compact"
            "compact with --wal requires --index (a durable snapshot to fold \
             into)"
        else
          match Cluster.compact cluster with
          | Error msg -> Serve_proto.admin_error_json ~op:"compact" msg
          | Ok (g, folded) ->
              (* The cluster's own snapshots live in its (possibly temp)
                 shard dir; fold the result into the durable --index source
                 too, then drop the WAL. A crash between these steps is
                 safe: the WAL replays idempotently against whichever
                 snapshot the restart loads. *)
              (match index_file with
              | Some path ->
                  let live =
                    List.init (Cluster.live_count cluster) (fun i ->
                        Option.get (Cluster.entity_raw cluster i))
                  in
                  let p = Problem.create ~sim ~q live in
                  Ix.Codec.save (Problem.dictionary p) (Problem.index p) path;
                  ignore (mtime_changed () : bool)
              | None -> ());
              (match wal with Some w -> Wal.truncate w | None -> ());
              Metrics.set g_index_generation (float_of_int g);
              Serve_proto.compact_response_json ~gen:g ~folded
                ~entities:(Cluster.live_count cluster)
      in
      let outcomes = ref [] in
      let ord = ref 0 in
      let continue = ref true in
      while !continue do
        match read_request_line () with
        | None -> continue := false
        | Some line ->
            maybe_reload ();
            maybe_tick ();
            if Atomic.get client_gone then continue := false
            else if String.trim line <> "" then begin
              match Serve_proto.parse_admin line with
              | Some (Error e) -> print_line (admin_error_line e)
              | Some (Ok Serve_proto.Stats) ->
                  let merged, missing = pull_stats () in
                  print_line
                    (Serve_proto.stats_response_json ~missing
                       ~format:metrics_format merged)
              | Some (Ok Serve_proto.Health) ->
                  (* No shard round-trips here: the SLO window and peak
                     RSS are whatever the last stats pull cached. *)
                  let status, shard_healths = Cluster.health cluster in
                  print_line
                    (Serve_proto.health_response_json
                       ~uptime_s:(Unix.gettimeofday () -. t_start)
                       ~max_rss_bytes:
                         (Float.max
                            (float_of_int (Prof.max_rss_bytes ()))
                            !merged_rss)
                       ?slo:(slo_json ())
                       ~status:(health_status status)
                       shard_healths)
              | Some (Ok Serve_proto.Slowlog_dump) ->
                  print_line (slowlog_response ())
              | Some (Ok (Serve_proto.Dict_add raw)) ->
                  print_line (mutate (`Add raw))
              | Some (Ok (Serve_proto.Dict_remove raw)) ->
                  print_line (mutate (`Remove raw))
              | Some (Ok Serve_proto.Compact) -> print_line (do_compact ())
              | None -> (
                  let o = !ord in
                  incr ord;
                  match Serve_proto.parse_request ~ord:o line with
                  | Error e -> print_line (Serve_proto.error_json ~ord:o e)
                  | Ok req ->
                      let id = req.Serve_proto.id in
                      let timeout_ms =
                        match req.Serve_proto.timeout_ms with
                        | Some _ as t -> t
                        | None -> timeout_ms
                      in
                      let text = req.Serve_proto.text in
                      let stages_ref = ref [] in
                      let stages_out =
                        if slowlog_on then Some stages_ref else None
                      in
                      let t0 = Trace.now_ns () in
                      let out =
                        Cluster.submit cluster ?id ?timeout_ms ?stages_out
                          ~doc:o text
                      in
                      let wall_ns =
                        Int64.to_float (Int64.sub (Trace.now_ns ()) t0)
                      in
                      let tid =
                        if Sampling.armed () && Sampling.decide o then
                          Sampling.trace_id o
                        else 0
                      in
                      (* Grafted shard spans were adopted into the
                         coordinator's buffer; collect them now so span
                         memory stays bounded. *)
                      (if tid <> 0 then
                         ignore (Trace.drain_trace tid : Trace.span list));
                      (if slowlog_on then
                         let budget =
                           {
                             Budget.spec_unlimited with
                             timeout_ms;
                             max_bytes = max_doc_bytes;
                           }
                         in
                         capture_slowrec ~wall_ns
                           (slowrec ~doc_id:o ~id ~trace:tid
                              ~gen:(Cluster.generation cluster) ~wall_ns
                              ~stages_ns:!stages_ref ~budget ~text out));
                      outcomes := out :: !outcomes;
                      print_line
                        (Serve_proto.response_json ~ord:o ~id
                           ~gen:(Cluster.generation cluster) out))
            end
      done;
      (* The cluster-merged snapshot must be pulled while the shards still
         live; it lands in the summary's "metrics" object. *)
      Prof.note_rss ();
      let final_metrics, _ = Cluster.stats cluster in
      Cluster.shutdown cluster;
      Slowlog.disarm ();
      assess_slo final_metrics;
      let tot = Cluster.totals cluster in
      let summary = Outcome.summarize (Array.of_list (List.rev !outcomes)) in
      prerr_endline
        (Serve_proto.cluster_summary_json ~metrics:final_metrics
           ?slo:(slo_json ()) ~reloads:!reloads ~shards
           ~shard_restarts:tot.Cluster.shard_restarts
           ~shard_timeouts:tot.Cluster.shard_timeouts
           ~docs_partial:tot.Cluster.docs_partial
           ~quarantined_pairs:tot.Cluster.quarantined_pairs summary);
      0
    in
    if shards > 0 then serve_cluster () else serve_single ()
  in
  let doc =
    "Long-running extraction service: NDJSON requests on stdin \
     ({\"text\":..., \"id\":..., \"timeout_ms\":...}), one NDJSON response \
     per document on stdout, supervised worker pool with retry, quarantine \
     and load shedding, hot index reload on SIGHUP or --index mtime change. \
     With --shards N the dictionary is range-partitioned across N forked \
     shard processes, each running its own supervised pool; responses merge \
     per-shard match sets and degrade to partial results when a shard is \
     written off. A summary JSON line goes to stderr at EOF."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ sim_arg $ q_arg $ dict_opt_arg $ index_opt_arg $ pruning_arg
      $ domains_arg $ retries_arg $ backoff_arg $ backoff_max_arg
      $ quarantine_arg $ shed_arg $ timeout_arg $ max_doc_bytes_arg $ queue_arg
      $ inject_arg $ shards_arg $ shard_timeout_arg $ metrics_format_arg
      $ stats_interval_arg $ trace_sample_arg $ trace_seed_arg $ slow_ms_arg
      $ slowlog_file_arg $ slowlog_k_arg $ slo_arg $ wal_arg)

(* ---- dict: offline dynamic-dictionary tooling ---- *)

let dict_group_cmd =
  let wal_req_arg =
    let doc = "Write-ahead log file (created if missing)." in
    Arg.(required & opt (some string) None & info [ "wal" ] ~docv:"FILE" ~doc)
  in
  let entities_pos =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"ENTITY" ~doc:"Raw entity string(s).")
  in
  let append op_name mk =
    let run wal_path entities =
      guard @@ fun () ->
      let w = Wal.openfile wal_path in
      Fun.protect
        ~finally:(fun () -> Wal.close w)
        (fun () -> List.iter (fun raw -> Wal.append w (mk raw)) entities);
      Printf.printf "appended %d %s mutation(s) to %s\n" (List.length entities)
        op_name wal_path;
      0
    in
    Term.(const run $ wal_req_arg $ entities_pos)
  in
  let add_cmd =
    Cmd.v
      (Cmd.info "add"
         ~doc:
           "Append dictionary-add mutations to a write-ahead log. A serving \
            process with the same --wal applies them at startup or on SIGHUP \
            reload; 'dict compact' folds them into an index snapshot.")
      (append "add" (fun raw -> Wal.Add raw))
  in
  let remove_cmd =
    Cmd.v
      (Cmd.info "remove"
         ~doc:"Append dictionary-remove mutations to a write-ahead log.")
      (append "remove" (fun raw -> Wal.Remove raw))
  in
  let compact_cmd =
    let index_req_arg =
      let doc = "Index snapshot to fold the WAL into (rewritten atomically)." in
      Arg.(required & opt (some file) None & info [ "index" ] ~docv:"FILE" ~doc)
    in
    let run sim wal_path index_path =
      guard @@ fun () ->
      let _dict, index = Ix.Codec.load index_path in
      let d = Ix.Delta.create index in
      let n, tail =
        Wal.replay wal_path (function
          | Wal.Add raw -> ignore (Ix.Delta.add d raw : Ix.Delta.add_result)
          | Wal.Remove raw ->
              ignore (Ix.Delta.remove d raw : Ix.Delta.remove_result))
      in
      (match tail with
      | Wal.Torn { at; len } ->
          Printf.eprintf
            "faerie: dict: wal torn tail repaired (whole records up to byte \
             %d of %d)\n"
            at len;
          Wal.repair wal_path tail
      | Wal.Clean -> ());
      if n = 0 then begin
        print_endline "wal empty; nothing to fold";
        0
      end
      else begin
        let p = Problem.of_index ~sim (Ix.Delta.compact d) in
        Ix.Codec.save (Problem.dictionary p) (Problem.index p) index_path;
        let w = Wal.openfile wal_path in
        Fun.protect ~finally:(fun () -> Wal.close w) (fun () -> Wal.truncate w);
        Printf.printf "folded %d mutation(s) into %s (%d entities)\n" n
          index_path (Ix.Delta.live_count d);
        0
      end
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Fold a mutation WAL into an index snapshot: replay the log over \
            the index's Delta overlay, rebuild a fresh compressed snapshot, \
            save it atomically in place and truncate the WAL. Crash-safe: \
            interrupted anywhere, index + WAL still replay to the same \
            dictionary.")
      Term.(const run $ sim_arg $ wal_req_arg $ index_req_arg)
  in
  Cmd.group
    (Cmd.info "dict"
       ~doc:
         "Dynamic-dictionary tooling: append add/remove mutations to a \
          write-ahead log and fold them into an index snapshot.")
    [ add_cmd; remove_cmd; compact_cmd ]

(* ---- gen ---- *)

let gen_cmd =
  let profile_arg =
    let doc = "Corpus profile: dblp, pubmed or webpage." in
    Arg.(value & opt (enum [ ("dblp", `Dblp); ("pubmed", `Pubmed); ("webpage", `Webpage) ]) `Dblp & info [ "profile" ] ~doc)
  in
  let n_entities_arg =
    Arg.(value & opt int 1000 & info [ "entities" ] ~docv:"N" ~doc:"Number of entities.")
  in
  let n_docs_arg =
    Arg.(value & opt int 100 & info [ "documents" ] ~docv:"N" ~doc:"Number of documents.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let out_arg =
    Arg.(value & opt string "corpus" & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run profile n_entities n_documents seed out =
    guard @@ fun () ->
    let corpus =
      match profile with
      | `Dblp -> Corpus.dblp ~seed ~n_entities ~n_documents ()
      | `Pubmed -> Corpus.pubmed ~seed ~n_entities ~n_documents ()
      | `Webpage -> Corpus.webpage ~seed ~n_entities ~n_documents ()
    in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let write_file path f =
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)
    in
    write_file (Filename.concat out "entities.txt") (fun oc ->
        Array.iter (fun e -> output_string oc (e ^ "\n")) corpus.Corpus.entities);
    let docs_dir = Filename.concat out "docs" in
    if not (Sys.file_exists docs_dir) then Sys.mkdir docs_dir 0o755;
    Array.iteri
      (fun i (d : Corpus.document) ->
        write_file
          (Filename.concat docs_dir (Printf.sprintf "doc%04d.txt" i))
          (fun oc -> output_string oc d.Corpus.text))
      corpus.Corpus.documents;
    Format.printf "wrote %s: %a@." out Corpus.pp_stats (Corpus.stats corpus);
    0
  in
  let doc = "Generate a synthetic corpus (entities.txt + docs/)." in
  Cmd.v
    (Cmd.info "gen" ~doc)
    Term.(const run $ profile_arg $ n_entities_arg $ n_docs_arg $ seed_arg $ out_arg)

let () =
  let doc = "Approximate dictionary-based entity extraction (Faerie)." in
  let info = Cmd.info "faerie" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            extract_cmd; explain_cmd; flame_cmd; stats_cmd; regress_cmd;
            gen_cmd; index_cmd; serve_cmd; dict_group_cmd;
          ]))
