(* Differential fuzzer: random extraction instances, every algorithm must
   agree with the brute-force oracle. The qcheck suites run bounded counts
   under `dune runtest`; this binary runs open-ended campaigns.

   On any oracle disagreement or crash, a self-contained reproduction
   (seed, sim, q, entities, document) is dumped to stderr and to a file.

   Usage: dune exec bin/fuzz.exe -- [--faults] [iterations] [seed]
          dune exec bin/fuzz.exe -- --replay=FILE --dict=FILE [--gen=N]

   With --faults, the campaign instead runs with deterministic fault
   injection armed (sites: tokenize, heap_merge, verify, codec_io) and
   asserts containment: every injected fault must surface as a structured
   Failed outcome for exactly the affected document — never a process
   crash — and fault-free documents of the same batch must produce results
   identical to a run with injection disabled. Two further phases cover
   the serving layer: a supervised-pool campaign (site supervisor_worker:
   worker deaths mid-batch must lose no documents) and a request-decode
   campaign (site serve_decode: poison request lines must surface as
   parse errors, never crashes).

   With --replay, each NDJSON quarantine record written by the supervisor
   (faerie serve --quarantine) is replayed against the dictionary in
   --dict: the recorded fault campaign is re-armed and the poison document
   re-extracted under its original fault key; exit 0 iff every record
   reproduces a failure. Records are stamped with the dictionary
   generation that was serving when they were written; --gen (default 0)
   declares which generation --dict holds, and a record whose stamp
   differs is refused — its text would extract against the wrong
   dictionary and prove nothing.                                            *)

module Sim = Faerie_sim.Sim
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Tk = Faerie_tokenize
module Naive = Faerie_baselines.Naive
module Ngpp = Faerie_baselines.Ngpp
module Ish = Faerie_baselines.Ish
module Xorshift = Faerie_util.Xorshift
module Fault = Faerie_util.Fault
module Ix = Faerie_index
module Parallel = Core.Parallel
module Outcome = Core.Outcome

let alphabet = [| 'a'; 'b'; 'c' |]

let random_string rng lo hi =
  let n = Xorshift.int_in_range rng ~lo ~hi in
  String.init n (fun _ -> Xorshift.choose rng alphabet)

let random_words rng lo hi =
  let n = Xorshift.int_in_range rng ~lo ~hi in
  List.init n (fun _ -> Xorshift.choose rng [| "aa"; "bb"; "cc"; "dd"; "ee" |])
  |> String.concat " "

type instance = {
  sim : Sim.t;
  q : int;
  entities : string list;
  document : string;
}

let random_instance rng =
  let char_based = Xorshift.bool rng in
  if char_based then begin
    let sim =
      match Xorshift.int rng 5 with
      | 0 -> Sim.Edit_distance 0
      | 1 -> Sim.Edit_distance 1
      | 2 -> Sim.Edit_distance 2
      | 3 -> Sim.Edit_similarity 0.7
      | _ -> Sim.Edit_similarity 0.9
    in
    {
      sim;
      q = Xorshift.int_in_range rng ~lo:2 ~hi:3;
      entities =
        List.init (Xorshift.int_in_range rng ~lo:1 ~hi:5) (fun _ ->
            random_string rng 1 8);
      document = random_string rng 5 40;
    }
  end
  else begin
    let d = Xorshift.choose rng [| 0.5; 0.7; 0.8; 1.0 |] in
    let sim =
      match Xorshift.int rng 3 with
      | 0 -> Sim.Jaccard d
      | 1 -> Sim.Cosine d
      | _ -> Sim.Dice d
    in
    {
      sim;
      q = 1;
      entities =
        List.init (Xorshift.int_in_range rng ~lo:1 ~hi:5) (fun _ ->
            random_words rng 1 4);
      document = random_words rng 3 20;
    }
  end

let triples ms =
  List.map
    (fun (m : Types.char_match) -> (m.Types.c_entity, m.Types.c_start, m.Types.c_len))
    ms

let faerie_matches ?pruning problem doc =
  let matches, _ = Core.Single_heap.run ?pruning problem doc in
  let main =
    List.map
      (fun (m : Types.token_match) ->
        let c_start, c_len =
          Tk.Document.char_extent doc ~start:m.Types.m_start ~len:m.Types.m_len
        in
        { Types.c_entity = m.Types.m_entity; c_start; c_len; c_score = m.Types.m_score })
      matches
  in
  List.sort_uniq Types.compare_char_match (Core.Fallback.run problem doc @ main)

let check_instance inst =
  let problem = Problem.create ~sim:inst.sim ~q:inst.q inst.entities in
  let doc = Problem.tokenize_document problem inst.document in
  let oracle = triples (Naive.extract problem doc) in
  let failures = ref [] in
  let expect name got =
    if got <> oracle then failures := name :: !failures
  in
  List.iter
    (fun pruning ->
      expect
        ("faerie/" ^ Types.pruning_name pruning)
        (triples (faerie_matches ~pruning problem doc)))
    Types.all_prunings;
  List.iter
    (fun (name, algorithm) ->
      let ms, _ = Core.Multi_heap.run ~algorithm problem doc in
      let as_char =
        List.map
          (fun (m : Types.token_match) ->
            let c_start, c_len =
              Tk.Document.char_extent doc ~start:m.Types.m_start ~len:m.Types.m_len
            in
            { Types.c_entity = m.Types.m_entity; c_start; c_len; c_score = m.Types.m_score })
          ms
      in
      let full =
        List.sort_uniq Types.compare_char_match
          (Core.Fallback.run problem doc @ as_char)
      in
      expect ("multi-heap/" ^ name) (triples full))
    [ ("heap", Core.Multi_heap.Heap_count); ("mergeskip", Core.Multi_heap.Merge_skip);
      ("divideskip", Core.Multi_heap.Divide_skip) ];
  (match inst.sim with
  | Sim.Edit_distance tau ->
      let ngpp = Ngpp.build ~tau inst.entities in
      expect "ngpp" (triples (Ngpp.extract ngpp inst.document))
  | Sim.Jaccard _ | Sim.Edit_similarity _ ->
      let ish = Ish.build problem in
      expect "ish" (triples (Ish.extract ish doc))
  | Sim.Cosine _ | Sim.Dice _ -> ());
  !failures

(* ---- reproduction dumps ---- *)

let repro_text ~seed ~iteration inst ~trouble =
  let b = Buffer.create 512 in
  Printf.bprintf b "==== FAERIE FUZZ REPRO ====\n";
  Printf.bprintf b "trouble:   %s\n" trouble;
  Printf.bprintf b "seed:      %d\n" seed;
  Printf.bprintf b "iteration: %d\n" iteration;
  Printf.bprintf b "sim:       %s\n" (Sim.to_string inst.sim);
  Printf.bprintf b "q:         %d\n" inst.q;
  Printf.bprintf b "entities:\n";
  List.iter (fun e -> Printf.bprintf b "  %S\n" e) inst.entities;
  Printf.bprintf b "document:  %S\n" inst.document;
  Printf.bprintf b "rerun:     dune exec bin/fuzz.exe -- %d %d\n" iteration seed;
  Printf.bprintf b "===========================\n";
  Buffer.contents b

let dump_repro ~seed ~iteration inst ~trouble =
  let text = repro_text ~seed ~iteration inst ~trouble in
  prerr_string text;
  flush stderr;
  try
    let path, oc =
      Filename.open_temp_file
        (Printf.sprintf "faerie-fuzz-repro-%d-%d-" seed iteration)
        ".txt"
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc text);
    Printf.eprintf "repro written to %s\n%!" path
  with Sys_error msg -> Printf.eprintf "could not write repro file: %s\n%!" msg

(* ---- differential campaign (default mode) ---- *)

let run_differential iterations seed =
  Printf.printf "fuzzing %d instances (seed %d)\n%!" iterations seed;
  let rng = Xorshift.create seed in
  let failed = ref 0 in
  for i = 1 to iterations do
    let inst = random_instance rng in
    (match check_instance inst with
    | [] -> ()
    | names ->
        incr failed;
        dump_repro ~seed ~iteration:i inst
          ~trouble:("oracle mismatch: " ^ String.concat "," names)
    | exception exn ->
        incr failed;
        dump_repro ~seed ~iteration:i inst
          ~trouble:("crash: " ^ Printexc.to_string exn));
    if i mod 500 = 0 then Printf.printf "  %d/%d ok so far\n%!" (i - !failed) i
  done;
  if !failed = 0 then
    Printf.printf "all %d instances agree with the oracle\n" iterations
  else begin
    Printf.printf "%d failing instances\n" !failed;
    exit 1
  end

(* ---- fault-injection campaign (--faults) ---- *)

let fault_rates =
  [ ("tokenize", 0.2); ("heap_merge", 0.2); ("verify", 0.03); ("codec_io", 0.3) ]

let mix_seed seed i = (seed * 0x9e3779b1) lxor (i * 0x85ebca77) land 0x3FFFFFFF

let run_fault_campaign iterations seed =
  Printf.printf "fault campaign: %d instances (seed %d), sites %s\n%!"
    iterations seed
    (String.concat "," (List.map fst fault_rates));
  let rng = Xorshift.create seed in
  let escapes = ref 0 and mismatches = ref 0 in
  let failed_docs = ref 0 and ok_docs = ref 0 in
  Fault.reset_counts ();
  for i = 1 to iterations do
    let inst = random_instance rng in
    let doc_of_kind () =
      if Faerie_sim.Sim.char_based inst.sim then random_string rng 5 40
      else random_words rng 3 20
    in
    let docs =
      Array.append [| inst.document |] (Array.init 3 (fun _ -> doc_of_kind ()))
    in
    (match Problem.create ~sim:inst.sim ~q:inst.q inst.entities with
    | problem -> (
        (* Baseline with injection disabled, then the same batch armed. *)
        Fault.disarm ();
        let baseline, _ = Parallel.extract_all_outcomes ~domains:2 problem docs in
        Fault.configure { Fault.seed = mix_seed seed i; rates = fault_rates };
        (match Parallel.extract_all_outcomes ~domains:2 problem docs with
        | outcomes, _ ->
            Array.iteri
              (fun j outcome ->
                match (outcome, baseline.(j)) with
                | Outcome.Failed (Outcome.Injected_fault _), _ ->
                    incr failed_docs
                | Outcome.Ok got, Outcome.Ok want ->
                    incr ok_docs;
                    if got <> want then begin
                      incr mismatches;
                      dump_repro ~seed ~iteration:i inst
                        ~trouble:
                          (Printf.sprintf
                             "fault isolation violated: fault-free document \
                              %d differs from injection-disabled run"
                             j)
                    end
                | _ ->
                    incr escapes;
                    dump_repro ~seed ~iteration:i inst
                      ~trouble:
                        (Printf.sprintf "unexpected outcome for document %d" j))
              outcomes
        | exception exn ->
            incr escapes;
            dump_repro ~seed ~iteration:i inst
              ~trouble:("fault escaped the pipeline: " ^ Printexc.to_string exn));
        (* Codec decode under injection must fail only as Injected/Corrupt. *)
        let data =
          Ix.Codec.encode (Problem.dictionary problem) (Problem.index problem)
        in
        (match
           Fault.with_context (1_000_000 + i) (fun () -> Ix.Codec.decode data)
         with
        | _ -> ()
        | exception Fault.Injected _ -> incr failed_docs
        | exception Ix.Codec.Corrupt _ -> ()
        | exception exn ->
            incr escapes;
            dump_repro ~seed ~iteration:i inst
              ~trouble:("codec fault escaped: " ^ Printexc.to_string exn));
        Fault.disarm ())
    | exception exn ->
        Fault.disarm ();
        incr escapes;
        dump_repro ~seed ~iteration:i inst
          ~trouble:("problem build crashed: " ^ Printexc.to_string exn));
    if i mod 500 = 0 then Printf.printf "  %d/%d instances\n%!" i iterations
  done;
  let injected = Fault.injected_count () in
  Printf.printf
    "injected %d faults: %d contained as Failed outcomes, %d fault-free \
     documents identical to the disabled run\n"
    injected !failed_docs !ok_docs;
  if injected <> !failed_docs then begin
    Printf.printf "CONTAINMENT LEAK: %d injected but %d surfaced\n" injected
      !failed_docs;
    exit 1
  end;
  if !escapes > 0 || !mismatches > 0 then begin
    Printf.printf "%d escapes, %d isolation mismatches\n" !escapes !mismatches;
    exit 1
  end;
  Printf.printf "fault containment holds on all %d instances\n" iterations

(* ---- supervised-pool campaign (part of --faults) ---- *)

module Supervisor = Core.Supervisor
module Serve_proto = Core.Serve_proto
module Extractor = Core.Extractor
module Metrics = Faerie_obs.Metrics
module Slo = Faerie_obs.Slo

let supervisor_rates = [ ("supervisor_worker", 0.3); ("tokenize", 0.2) ]

(* Worker-death containment: under supervisor_worker faults (which kill the
   worker domain holding the document, outside the per-document containment
   boundary) every submitted document must still reach exactly one outcome,
   quarantine must absorb retry-exhausted documents (no plain Failed when a
   dead-letter sink is armed and every fault is transient), and fault-free
   documents must match a clean run. *)
let run_supervisor_campaign iterations seed =
  Printf.printf "supervisor campaign: %d instances (seed %d), sites %s\n%!"
    iterations seed
    (String.concat "," (List.map fst supervisor_rates));
  let rng = Xorshift.create seed in
  let problems = ref 0 in
  let quarantine = Filename.temp_file "faerie-fuzz-quarantine-" ".ndjson" in
  let total_quarantined = ref 0 in
  let before = Metrics.snapshot () in
  let config =
    {
      Supervisor.domains = 3;
      retry = { Supervisor.default_retry with retries = 1; backoff_ms = 0 };
      queue_capacity = 16;
      quarantine = Some quarantine;
      shed = false;
      shard = None;
    }
  in
  for i = 1 to iterations do
    let inst = random_instance rng in
    let doc_of_kind () =
      if Faerie_sim.Sim.char_based inst.sim then random_string rng 5 40
      else random_words rng 3 20
    in
    let docs =
      Array.append [| inst.document |] (Array.init 7 (fun _ -> doc_of_kind ()))
    in
    (match Problem.create ~sim:inst.sim ~q:inst.q inst.entities with
    | problem -> (
        Fault.disarm ();
        let baseline, _ = Parallel.extract_all_outcomes ~domains:2 problem docs in
        Fault.configure
          { Fault.seed = mix_seed seed i; rates = supervisor_rates };
        (match Supervisor.run_batch ~config problem docs with
        | outcomes, summary ->
            if Array.length outcomes <> Array.length docs then begin
              incr problems;
              dump_repro ~seed ~iteration:i inst
                ~trouble:"supervisor lost or duplicated documents"
            end;
            if
              summary.Outcome.n_ok + summary.Outcome.n_degraded
              + summary.Outcome.n_failed + summary.Outcome.n_shed
              + summary.Outcome.n_quarantined
              <> summary.Outcome.n_docs
            then begin
              incr problems;
              dump_repro ~seed ~iteration:i inst
                ~trouble:"summary classes do not sum to n_docs"
            end;
            total_quarantined := !total_quarantined + summary.Outcome.n_quarantined;
            Array.iteri
              (fun j outcome ->
                match (outcome, baseline.(j)) with
                | Outcome.Failed (Outcome.Quarantined _), _ -> ()
                | Outcome.Failed err, _ ->
                    (* All armed sites produce transient errors and a
                       quarantine sink is configured, so a plain Failed
                       means a document slipped past the dead-letter path. *)
                    incr problems;
                    dump_repro ~seed ~iteration:i inst
                      ~trouble:
                        (Printf.sprintf
                           "document %d ended plain Failed (%s) despite \
                            quarantine"
                           j
                           (Outcome.error_to_string err))
                | Outcome.Ok got, Outcome.Ok want ->
                    if got <> want then begin
                      incr problems;
                      dump_repro ~seed ~iteration:i inst
                        ~trouble:
                          (Printf.sprintf
                             "supervised document %d differs from clean run" j)
                    end
                | _ -> ())
              outcomes
        | exception exn ->
            incr problems;
            dump_repro ~seed ~iteration:i inst
              ~trouble:
                ("worker death escaped the supervisor: "
                ^ Printexc.to_string exn));
        Fault.disarm ())
    | exception exn ->
        Fault.disarm ();
        incr problems;
        dump_repro ~seed ~iteration:i inst
          ~trouble:("problem build crashed: " ^ Printexc.to_string exn))
  done;
  let after = Metrics.snapshot () in
  let delta name =
    Metrics.counter_value after name - Metrics.counter_value before name
  in
  let restarts = delta "worker_restarts" in
  let quarantined = delta "docs_quarantined" in
  Printf.printf
    "supervisor: %d worker restarts, %d retries, %d quarantined, %d shed\n"
    restarts (delta "doc_retries") quarantined (delta "docs_shed");
  if quarantined <> !total_quarantined then begin
    Printf.printf "QUARANTINE MISCOUNT: counter %d vs summaries %d\n"
      quarantined !total_quarantined;
    exit 1
  end;
  (* Every dead-letter line must be a parseable, self-contained record. *)
  let lines = ref [] in
  let ic = open_in quarantine in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  if List.length !lines <> !total_quarantined then begin
    Printf.printf "QUARANTINE FILE MISCOUNT: %d lines vs %d outcomes\n"
      (List.length !lines) !total_quarantined;
    exit 1
  end;
  List.iter
    (fun line ->
      match Supervisor.Quarantine.of_json line with
      | Ok _ -> ()
      | Error e ->
          Printf.printf "UNPARSEABLE QUARANTINE RECORD (%s): %s\n" e line;
          exit 1)
    !lines;
  Sys.remove quarantine;
  if restarts = 0 && iterations > 0 then begin
    Printf.printf "NO WORKER RESTARTS: supervisor_worker site never fired?\n";
    exit 1
  end;
  if !problems > 0 then begin
    Printf.printf "%d supervisor containment problems\n" !problems;
    exit 1
  end;
  Printf.printf "zero lost documents across %d supervised batches\n" iterations

(* ---- request-decode campaign (part of --faults) ---- *)

let run_serve_decode_campaign iterations seed =
  Printf.printf "serve_decode campaign: %d requests (seed %d)\n%!" iterations
    seed;
  Fault.reset_counts ();
  Fault.configure { Fault.seed; rates = [ ("serve_decode", 0.5) ] };
  let errors = ref 0 in
  for i = 1 to iterations do
    match Serve_proto.parse_request ~ord:i {|{"text":"aa bb cc"}|} with
    | Ok _ -> ()
    | Error _ -> incr errors
    | exception exn ->
        Fault.disarm ();
        Printf.printf "DECODE FAULT ESCAPED: %s\n" (Printexc.to_string exn);
        exit 1
  done;
  Fault.disarm ();
  let injected = Fault.injected_count () in
  if injected <> !errors then begin
    Printf.printf "DECODE CONTAINMENT LEAK: %d injected but %d errors\n"
      injected !errors;
    exit 1
  end;
  Printf.printf "all %d injected decode faults surfaced as error responses\n"
    injected

(* ---- cluster shard-kill campaign (part of --faults) ---- *)

module Cluster = Core.Cluster

let cluster_rates = [ ("shard_frame", 0.25); ("supervisor_worker", 0.15) ]

(* Zero-lost-documents under shard-process deaths: with shard_frame faults
   armed (which kill the whole shard process, outside every containment
   boundary the shard has) every document fanned through the cluster must
   still reach exactly one merged outcome. Failures must ride the
   dead-letter path (Quarantined), never surface as plain Failed, and Ok
   merges must be byte-identical to a clean single-process run regardless
   of the shard count. Iterations are few — each forks a fresh cluster —
   but every one cycles a different shard count over the same documents.

   This campaign must run BEFORE any phase that spawns domains: once a
   domain has ever been created in a process, Unix.fork refuses outright
   (not merely while domains are live), so the coordinator here computes
   its clean baseline with the plain single-threaded extractor. *)
let run_cluster_campaign iterations seed =
  Printf.printf "cluster campaign: %d clusters (seed %d), sites %s\n%!"
    iterations seed
    (String.concat "," (List.map fst cluster_rates));
  let rng = Xorshift.create seed in
  let problems = ref 0 in
  let quarantine = Filename.temp_file "faerie-fuzz-cluster-q-" ".ndjson" in
  let restarts = ref 0 in
  let qpairs = ref 0 in
  let shard_quarantined = ref 0 in
  let partials = ref 0 in
  let shard_counts = [| 1; 2; 4 |] in
  for i = 1 to iterations do
    let inst = random_instance rng in
    let doc_of_kind () =
      if Faerie_sim.Sim.char_based inst.sim then random_string rng 5 40
      else random_words rng 3 20
    in
    let docs =
      Array.append [| inst.document |] (Array.init 5 (fun _ -> doc_of_kind ()))
    in
    let shards = shard_counts.(i mod Array.length shard_counts) in
    (match Problem.create ~sim:inst.sim ~q:inst.q inst.entities with
    | problem -> (
        Fault.disarm ();
        let baseline =
          let ex = Extractor.of_problem problem in
          Array.map
            (fun d -> Parallel.outcome_of_report (Extractor.run ex (`Text d)))
            docs
        in
        Fault.configure { Fault.seed = mix_seed seed i; rates = cluster_rates };
        let config =
          {
            Cluster.shards;
            pool =
              {
                Supervisor.domains = 1;
                retry =
                  { Supervisor.default_retry with retries = 1; backoff_ms = 0 };
                queue_capacity = 8;
                quarantine = Some quarantine;
                shed = false;
                shard = None;
              };
            retry =
              { Supervisor.default_retry with retries = 3; backoff_ms = 0 };
            shard_timeout_ms = None;
            pruning = Types.Binary_window;
            budget = Faerie_util.Budget.spec_unlimited;
            snapshot_dir = None;
            slow_stages = false;
          }
        in
        (match
           Cluster.run_batch ~config ~sim:inst.sim ~q:inst.q
             ~entities:inst.entities docs
         with
        | outcomes, summary, totals ->
            restarts := !restarts + totals.Cluster.shard_restarts;
            qpairs := !qpairs + totals.Cluster.quarantined_pairs;
            shard_quarantined :=
              !shard_quarantined + totals.Cluster.shard_quarantined;
            partials := !partials + totals.Cluster.docs_partial;
            if Array.length outcomes <> Array.length docs then begin
              incr problems;
              dump_repro ~seed ~iteration:i inst
                ~trouble:
                  (Printf.sprintf
                     "cluster (%d shards) lost or duplicated documents: %d of \
                      %d"
                     shards (Array.length outcomes) (Array.length docs))
            end;
            if
              summary.Outcome.n_ok + summary.Outcome.n_degraded
              + summary.Outcome.n_failed + summary.Outcome.n_shed
              + summary.Outcome.n_quarantined
              <> summary.Outcome.n_docs
            then begin
              incr problems;
              dump_repro ~seed ~iteration:i inst
                ~trouble:"cluster summary classes do not sum to n_docs"
            end;
            Array.iteri
              (fun j outcome ->
                match (outcome, baseline.(j)) with
                | Outcome.Failed (Outcome.Quarantined _), _ -> ()
                | Outcome.Failed err, _ ->
                    (* Every armed fault is transient and the dead-letter
                       sink is configured: a plain Failed means a (doc,
                       shard) pair slipped past quarantine. *)
                    incr problems;
                    dump_repro ~seed ~iteration:i inst
                      ~trouble:
                        (Printf.sprintf
                           "document %d ended plain Failed (%s) despite \
                            quarantine (%d shards)"
                           j
                           (Outcome.error_to_string err)
                           shards)
                | Outcome.Ok got, Outcome.Ok want ->
                    (* The merged set is span-sorted; sort the baseline the
                       same way before comparing. *)
                    if List.sort compare got <> List.sort compare want
                    then begin
                      incr problems;
                      dump_repro ~seed ~iteration:i inst
                        ~trouble:
                          (Printf.sprintf
                             "document %d merged across %d shards differs \
                              from clean run"
                             j shards)
                    end
                | _ -> ())
              outcomes
        | exception exn ->
            incr problems;
            dump_repro ~seed ~iteration:i inst
              ~trouble:
                (Printf.sprintf "shard death escaped the coordinator (%d \
                                 shards): %s"
                   shards (Printexc.to_string exn)));
        Fault.disarm ())
    | exception exn ->
        Fault.disarm ();
        incr problems;
        dump_repro ~seed ~iteration:i inst
          ~trouble:("problem build crashed: " ^ Printexc.to_string exn))
  done;
  Printf.printf
    "cluster: %d shard restarts, %d quarantined pairs, %d in-shard \
     quarantines, %d partial documents\n"
    !restarts !qpairs !shard_quarantined !partials;
  (* Every dead-letter line — written by coordinator and shard processes
     alike through single-write O_APPEND — must be a complete, parseable,
     self-contained record, and every *counted* write-off must have a
     line. The file may hold more lines than the totals: in-shard
     quarantine counts travel in the shard's Bye reply, so an incarnation
     killed after appending its record but before saying Bye leaves a
     durable (and replayable) line the totals never see. The O_APPEND
     record outliving its process is the point; the count is best-effort. *)
  let lines = ref [] in
  let ic = open_in quarantine in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let n_lines = List.length !lines in
  if n_lines < !qpairs + !shard_quarantined then begin
    Printf.printf "CLUSTER QUARANTINE MISCOUNT: %d lines vs %d + %d totals\n"
      n_lines !qpairs !shard_quarantined;
    exit 1
  end;
  List.iter
    (fun line ->
      match Supervisor.Quarantine.of_json line with
      | Ok _ -> ()
      | Error e ->
          Printf.printf "TORN OR UNPARSEABLE CLUSTER RECORD (%s): %s\n" e line;
          exit 1)
    !lines;
  Sys.remove quarantine;
  if !restarts = 0 && iterations > 0 then begin
    Printf.printf "NO SHARD RESTARTS: shard_frame site never fired?\n";
    exit 1
  end;
  if !problems > 0 then begin
    Printf.printf "%d cluster containment problems\n" !problems;
    exit 1
  end;
  Printf.printf "zero lost documents across %d sharded clusters\n" iterations

(* ---- observability campaign (part of --faults) ---- *)

module Json = Faerie_util.Json
module Obs_trace = Faerie_obs.Trace

let random_snapshot rng =
  let counters =
    List.init (Xorshift.int_in_range rng ~lo:0 ~hi:5) (fun i ->
        (Printf.sprintf "m%d" i, Xorshift.int rng 1_000_000))
  in
  let gauges =
    List.init (Xorshift.int_in_range rng ~lo:0 ~hi:4) (fun i ->
        ( Printf.sprintf "g%d" i,
          {
            Metrics.value = float_of_int (Xorshift.int rng 1000);
            agg = (if Xorshift.bool rng then `Sum else `Max);
            label =
              (if Xorshift.bool rng then Some ("fam", "shard", string_of_int i)
               else None);
          } ))
  in
  let histograms =
    List.init (Xorshift.int_in_range rng ~lo:0 ~hi:2) (fun i ->
        let nb = Xorshift.int_in_range rng ~lo:1 ~hi:4 in
        let counts = Array.init (nb + 1) (fun _ -> Xorshift.int rng 50) in
        let exemplars =
          if Xorshift.bool rng then [||]
          else
            Array.init (nb + 1) (fun _ ->
                if Xorshift.bool rng then
                  (1 + Xorshift.int rng 1000, float_of_int (Xorshift.int rng 900))
                else (0, 0.))
        in
        ( Printf.sprintf "h%d" i,
          {
            Metrics.upper = Array.init nb (fun j -> float_of_int ((j + 1) * 10));
            counts;
            sum = float_of_int (Xorshift.int rng 500);
            count = Array.fold_left ( + ) 0 counts;
            exemplars;
          } ))
  in
  { Metrics.counters; gauges; histograms }

(* Nanosecond int64s beyond 2^53 are exactly the values a JSON double
   would silently round; draw starts across the whole positive range. *)
let random_span rng =
  {
    Obs_trace.name = random_string rng 1 8;
    start_ns =
      Int64.logor
        (Int64.shift_left (Int64.of_int (Xorshift.int rng 0x3FFFFFFF)) 32)
        (Int64.of_int (Xorshift.int rng 0xFFFFFF));
    dur_ns = Int64.of_int (Xorshift.int rng 1_000_000_000);
    depth = Xorshift.int rng 8;
    domain = Xorshift.int rng 16;
    trace = Xorshift.int rng 1000;
    ok = Xorshift.bool rng;
    attrs =
      (if Xorshift.bool rng then [ ("k\"x", "v\nw"); ("doc", "7") ] else []);
  }

let random_admin_line rng =
  match Xorshift.int rng 7 with
  | 0 -> {|{"op":"stats"}|}
  | 1 -> {|{"op":"health"}|}
  | 2 -> Printf.sprintf {|{"op":"%s"}|} (random_string rng 0 6)
  | 3 -> Printf.sprintf {|{"text":"%s"}|} (random_string rng 0 10)
  | 4 -> Printf.sprintf {|{"op":"stats","v":%d}|} (Xorshift.int rng 4)
  | 5 -> {|{"op":"slowlog"}|}
  | _ -> random_string rng 0 20

let random_slowrec rng =
  let sims = [| Sim.Edit_distance 1; Sim.Edit_distance 2; Sim.Jaccard 0.8 |] in
  let prunings = Array.of_list Types.all_prunings in
  let opt f = if Xorshift.bool rng then Some (f ()) else None in
  {
    Serve_proto.Slowrec.doc_id = Xorshift.int rng 10_000;
    id = opt (fun () -> random_string rng 0 6);
    trace = Xorshift.int rng 1000;
    gen = Xorshift.int rng 10;
    wall_ms = float_of_int (Xorshift.int rng 100_000) /. 10.;
    outcome = Xorshift.choose rng [| "ok"; "degraded"; "failed" |];
    stages_ms =
      List.init (Xorshift.int rng 5) (fun i ->
          ( Printf.sprintf "stage%d" i,
            float_of_int (Xorshift.int rng 10_000) /. 100. ));
    sim = Xorshift.choose rng sims;
    q = Xorshift.int_in_range rng ~lo:1 ~hi:4;
    pruning = Xorshift.choose rng prunings;
    budget =
      {
        Faerie_util.Budget.timeout_ms = opt (fun () -> Xorshift.int rng 10_000);
        max_bytes = opt (fun () -> Xorshift.int rng 100_000);
        max_candidates = opt (fun () -> Xorshift.int rng 1_000);
      };
    fault =
      opt (fun () ->
          {
            Fault.seed = Xorshift.int rng 1_000_000;
            rates = [ ("verify", 0.5); ("tokenize", 0.01) ];
          });
    text = random_words rng 0 6;
  }

let random_slo_spec rng =
  match Xorshift.int rng 5 with
  | 0 -> Printf.sprintf "p%d=%dms" (Xorshift.int_in_range rng ~lo:1 ~hi:99)
            (1 + Xorshift.int rng 5000)
  | 1 -> Printf.sprintf "avail=9%d.%d" (Xorshift.int rng 10) (Xorshift.int rng 10)
  | 2 -> Printf.sprintf "p99=%ds,avail=99.9" (1 + Xorshift.int rng 9)
  | 3 -> random_string rng 0 12
  | _ -> Printf.sprintf "%s=%s" (random_string rng 0 4) (random_string rng 0 4)

(* The observability surface: the metrics-snapshot and trace-span wire
   codecs must round-trip full-fidelity through their rendered strings,
   parse_admin must classify any line without raising, and a stats pull
   against a cluster whose shards are being killed at the shard_stats
   site must return a partial merge within the deadline — never a hang,
   never an exception — while the cluster keeps serving documents.

   Forks shard processes, so this must run in the pre-domain phase. *)
let run_obs_campaign iterations seed =
  Printf.printf "observability campaign: %d codec instances (seed %d)\n%!"
    iterations seed;
  let rng = Xorshift.create (mix_seed seed 77) in
  for _ = 1 to iterations do
    let snap = random_snapshot rng in
    (match Json.of_string (Json.to_string (Serve_proto.snapshot_to_json snap)) with
    | Ok j when Serve_proto.snapshot_of_json j = Some snap -> ()
    | _ ->
        Printf.printf "SNAPSHOT CODEC MISMATCH: %s\n"
          (Json.to_string (Serve_proto.snapshot_to_json snap));
        exit 1);
    let sp = random_span rng in
    (match Json.of_string (Json.to_string (Serve_proto.span_to_json sp)) with
    | Ok j when Serve_proto.span_of_json j = Some sp -> ()
    | _ ->
        Printf.printf "SPAN CODEC MISMATCH: %s\n"
          (Json.to_string (Serve_proto.span_to_json sp));
        exit 1);
    let r = random_slowrec rng in
    (match Serve_proto.Slowrec.of_json (Serve_proto.Slowrec.to_json r) with
    | Ok r' when r' = r -> ()
    | Ok _ ->
        Printf.printf "SLOWREC CODEC MISMATCH: %s\n"
          (Serve_proto.Slowrec.to_json r);
        exit 1
    | Error e ->
        Printf.printf "SLOWREC CODEC REJECTED ITS OWN OUTPUT (%s): %s\n" e
          (Serve_proto.Slowrec.to_json r);
        exit 1);
    let spec = random_slo_spec rng in
    (match Slo.parse spec with
    | Ok o ->
        (* a parsed objective must render to something that re-parses *)
        if Slo.parse (Slo.to_string o) = Ok o then ()
        else begin
          Printf.printf "SLO RENDER/REPARSE MISMATCH on %S -> %S\n" spec
            (Slo.to_string o);
          exit 1
        end
    | Error _ -> ()
    | exception exn ->
        Printf.printf "SLO.PARSE RAISED on %S: %s\n" spec
          (Printexc.to_string exn);
        exit 1);
    let line = random_admin_line rng in
    match Serve_proto.parse_admin line with
    | Some _ | None -> ()
    | exception exn ->
        Printf.printf "PARSE_ADMIN RAISED on %S: %s\n" line
          (Printexc.to_string exn);
        exit 1
  done;
  Printf.printf
    "snapshot/span/slowrec codecs, Slo.parse and parse_admin survived %d \
     instances\n"
    iterations;
  let pulls = max 5 (iterations / 100) in
  Fault.configure
    { Fault.seed = mix_seed seed 78; rates = [ ("shard_stats", 0.5) ] };
  let config =
    {
      Cluster.default_config with
      Cluster.shards = 3;
      pool =
        {
          Supervisor.domains = 1;
          retry = { Supervisor.default_retry with retries = 1; backoff_ms = 0 };
          queue_capacity = 8;
          quarantine = None;
          shed = false;
          shard = None;
        };
      retry = { Supervisor.default_retry with retries = 3; backoff_ms = 0 };
      shard_timeout_ms = Some 5000;
    }
  in
  let cluster =
    Cluster.create ~config ~sim:(Sim.Edit_distance 1) ~q:2 (fun () ->
        [ "aabb"; "bbcc" ])
  in
  let partial = ref 0 in
  (try
     for i = 1 to pulls do
       let merged, per_shard = Cluster.stats cluster in
       if List.length per_shard <> 3 then begin
         Printf.printf "STATS PULL LOST A SHARD SLOT: %d of 3\n"
           (List.length per_shard);
         exit 1
       end;
       List.iter
         (fun (_, s) -> if s = None then incr partial)
         per_shard;
       ignore (Metrics.counter_value merged "docs_processed");
       match Cluster.submit cluster ~doc:i "aabb ccdd" with
       | Outcome.Ok _ | Outcome.Degraded _ -> ()
       | out ->
           Printf.printf "CLUSTER STOPPED SERVING AFTER STATS KILLS: %s\n"
             (match out with
             | Outcome.Failed e -> Outcome.error_to_string e
             | _ -> "?");
           exit 1
     done
   with exn ->
     Printf.printf "STATS PULL ESCAPED: %s\n" (Printexc.to_string exn);
     exit 1);
  Fault.disarm ();
  Cluster.shutdown cluster;
  if !partial = 0 then begin
    Printf.printf "NO PARTIAL STATS PULLS: shard_stats site never fired?\n";
    exit 1
  end;
  Printf.printf
    "%d partial shard snapshots across %d stats pulls, cluster kept serving\n"
    !partial pulls

(* ---- quarantine replay (--replay) ---- *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (if String.trim line = "" then acc else line :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop [])

(* Replay each dead-letter record: rebuild the problem from the dictionary
   and the record's sim/q, re-arm the recorded fault campaign, and re-run
   the document under its original fault key (the first attempt's key is
   the plain doc id; cluster coordinator records carry the shard-salted
   key). The record reproduces iff the document fails again — a shard
   death at the shard_frame site, a worker death at the supervisor_worker
   site, or a contained Failed outcome.

   Slow-query records (serve --slowlog; discriminated by "kind":"slowlog")
   share the stream and the replay machinery, but most captured a request
   that SUCCEEDED slowly, so their bar is different: the record reproduces
   iff re-running the document yields the same outcome class (an injected
   crash counts as "failed").

   Both record kinds carry the dictionary generation they were captured
   under; a record whose [gen] differs from [expected_gen] (the --gen
   flag, i.e. the generation --dict holds) is refused with an error
   rather than replayed against the wrong dictionary. *)
let run_replay ~replay_file ~dict_file ~expected_gen =
  let entities =
    List.filter_map
      (fun l -> match String.trim l with "" -> None | e -> Some e)
      (read_lines dict_file)
  in
  let records = read_lines replay_file in
  let failures = ref 0 in
  (* Generation gate: a record captured under a different dictionary
     generation must not be replayed — refuse it loudly instead of
     producing a meaningless (non-)reproduction. *)
  let gen_mismatch ~idx ~kind ~doc_id record_gen =
    if record_gen = expected_gen then false
    else begin
      incr failures;
      Printf.printf
        "record %d (%s doc %d): GENERATION MISMATCH — captured at dictionary \
         generation %d but --dict is generation %d; refusing replay (pass \
         --gen=%d with the matching dictionary snapshot)\n"
        idx kind doc_id record_gen expected_gen record_gen;
      true
    end
  in
  (* Shared single-process re-run: rebuild, re-arm, extract under the
     recorded fault key, classify. *)
  let rerun ~sim ~q ~fault ~pruning ~budget ~doc_id text =
    let problem = Problem.create ~sim ~q entities in
    (match fault with
    | Some cfg -> Fault.configure cfg
    | None -> Fault.disarm ());
    let opts = { Extractor.default_opts with pruning; budget; doc_id } in
    let ex = Extractor.of_problem problem in
    let cls =
      match
        Fault.with_context doc_id (fun () ->
            Fault.site "shard_frame";
            Fault.site "supervisor_worker");
        Extractor.run ~opts ex (`Text text)
      with
      | report -> Outcome.class_name (Outcome.classify report.Extractor.outcome)
      | exception Fault.Injected _ -> "failed"
    in
    Fault.disarm ();
    cls
  in
  List.iteri
    (fun idx line ->
      match Serve_proto.Slowrec.of_json line with
      | Ok r
        when gen_mismatch ~idx ~kind:"slowlog"
               ~doc_id:r.Serve_proto.Slowrec.doc_id r.Serve_proto.Slowrec.gen ->
          ()
      | Ok r ->
          let cls =
            rerun ~sim:r.Serve_proto.Slowrec.sim ~q:r.Serve_proto.Slowrec.q
              ~fault:r.Serve_proto.Slowrec.fault
              ~pruning:r.Serve_proto.Slowrec.pruning
              ~budget:r.Serve_proto.Slowrec.budget
              ~doc_id:r.Serve_proto.Slowrec.doc_id r.Serve_proto.Slowrec.text
          in
          if cls = r.Serve_proto.Slowrec.outcome then
            Printf.printf "record %d (slowlog doc %d): reproduced — %s\n" idx
              r.Serve_proto.Slowrec.doc_id cls
          else begin
            incr failures;
            Printf.printf
              "record %d (slowlog doc %d): DID NOT REPRODUCE (%s, recorded %s)\n"
              idx r.Serve_proto.Slowrec.doc_id cls r.Serve_proto.Slowrec.outcome
          end
      | Error _ -> (
          match Supervisor.Quarantine.of_json line with
          | Error e ->
              incr failures;
              Printf.printf "record %d: unparseable (%s)\n" idx e
          | Ok r
            when gen_mismatch ~idx ~kind:"quarantine"
                   ~doc_id:r.Supervisor.Quarantine.doc_id
                   r.Supervisor.Quarantine.gen ->
              ()
          | Ok r ->
              let cls =
                rerun ~sim:r.Supervisor.Quarantine.sim
                  ~q:r.Supervisor.Quarantine.q
                  ~fault:r.Supervisor.Quarantine.fault
                  ~pruning:r.Supervisor.Quarantine.pruning
                  ~budget:r.Supervisor.Quarantine.budget
                  ~doc_id:r.Supervisor.Quarantine.doc_id
                  r.Supervisor.Quarantine.text
              in
              if cls = "failed" then
                Printf.printf "record %d (doc %d): reproduced — %s\n" idx
                  r.Supervisor.Quarantine.doc_id r.Supervisor.Quarantine.error
              else begin
                incr failures;
                Printf.printf "record %d (doc %d): DID NOT REPRODUCE\n" idx
                  r.Supervisor.Quarantine.doc_id
              end))
    records;
  if !failures > 0 then begin
    Printf.printf "%d of %d records failed to reproduce\n" !failures
      (List.length records);
    exit 1
  end;
  Printf.printf "all %d records reproduce\n" (List.length records)

let () =
  let faults = ref false in
  let replay = ref None in
  let dict = ref None in
  let gen = ref 0 in
  let positional = ref [] in
  let prefixed ~prefix arg =
    if String.length arg > String.length prefix
       && String.sub arg 0 (String.length prefix) = prefix
    then
      Some
        (String.sub arg (String.length prefix)
           (String.length arg - String.length prefix))
    else None
  in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        if arg = "--faults" then faults := true
        else
          match prefixed ~prefix:"--replay=" arg with
          | Some f -> replay := Some f
          | None -> (
              match prefixed ~prefix:"--dict=" arg with
              | Some f -> dict := Some f
              | None -> (
                  match prefixed ~prefix:"--gen=" arg with
                  | Some g -> gen := int_of_string g
                  | None -> positional := int_of_string arg :: !positional)))
    Sys.argv;
  let positional = List.rev !positional in
  let iterations = match positional with n :: _ -> n | [] -> 2_000 in
  let seed =
    match positional with
    | _ :: s :: _ -> s
    | _ -> int_of_float (Unix.gettimeofday () *. 1000.) land 0xFFFFFF
  in
  match (!replay, !dict) with
  | Some replay_file, Some dict_file ->
      run_replay ~replay_file ~dict_file ~expected_gen:!gen
  | Some _, None ->
      prerr_endline "fuzz: --replay requires --dict=FILE";
      exit 2
  | None, _ ->
      if !faults then begin
        (* Cluster first: it forks shard processes, and Unix.fork refuses
           in any process that has ever spawned a domain — which every
           later phase does. *)
        run_cluster_campaign (max 1 (iterations / 50)) seed;
        run_obs_campaign iterations seed;
        run_fault_campaign iterations seed;
        run_supervisor_campaign (max 1 (iterations / 10)) seed;
        run_serve_decode_campaign iterations seed
      end
      else run_differential iterations seed
